#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/logger.hpp"
#include "obs/trace.hpp"

namespace mdm {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    Option opt;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opt.name = arg.substr(0, eq);
      opt.value = arg.substr(eq + 1);
    } else {
      opt.name = arg;
      // `--key value`: consume the next token as a value unless it is
      // itself an option.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        opt.value = argv[++i];
      }
    }
    options_.push_back(std::move(opt));
  }
}

bool CommandLine::has(const std::string& name) const {
  for (const auto& o : options_)
    if (o.name == name) return true;
  return false;
}

std::optional<std::string> CommandLine::value(const std::string& name) const {
  for (const auto& o : options_)
    if (o.name == name) return o.value;
  return std::nullopt;
}

std::string CommandLine::get_string(const std::string& name,
                                    const std::string& fallback) const {
  const auto v = value(name);
  return v ? *v : fallback;
}

long long CommandLine::get_int(const std::string& name,
                               long long fallback) const {
  const auto v = value(name);
  if (!v || !v->size()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double CommandLine::get_double(const std::string& name,
                               double fallback) const {
  const auto v = value(name);
  if (!v || !v->size()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool CommandLine::get_bool(const std::string& name, bool fallback) const {
  if (!has(name)) return fallback;
  const auto v = value(name);
  if (!v || v->empty()) return true;
  return *v != "0" && *v != "false" && *v != "no";
}

std::vector<long long> CommandLine::get_int_list(
    const std::string& name, std::vector<long long> fallback) const {
  const auto v = value(name);
  if (!v || v->empty()) return fallback;
  std::vector<long long> out;
  std::size_t pos = 0;
  const std::string& s = *v;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto piece = s.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
    if (!piece.empty()) out.push_back(std::strtoll(piece.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void apply_observability_cli(const CommandLine& cli) {
  if (const auto level = cli.value("log-level")) {
    obs::LogLevel parsed;
    if (level && obs::Logger::parse_level(*level, parsed)) {
      obs::Logger::set_level(parsed);
    } else {
      MDM_LOG_WARN("unknown --log-level '%s' (want debug|info|warn|error|off)",
                   level ? level->c_str() : "");
    }
  }
  if (cli.has("trace")) obs::Trace::set_enabled(cli.get_bool("trace", true));
}

}  // namespace mdm
