#pragma once

/// \file fft.hpp
/// Minimal self-contained FFT: iterative radix-2 Cooley-Tukey on
/// power-of-two lengths, plus a 3D transform over a cubic grid. Built for
/// the smooth particle-mesh Ewald solver (the O(N log N) alternative the
/// paper cites as ref. [4] and proposes to compare against).

#include <complex>
#include <cstddef>
#include <vector>

namespace mdm {

using Complex = std::complex<double>;

/// True if n is a power of two (and > 0).
constexpr bool is_power_of_two(std::size_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

/// In-place FFT of length-n power-of-two data; inverse = conjugate
/// transform scaled by 1/n.
void fft(std::vector<Complex>& data, bool inverse);

/// In-place FFT on a strided view (used by the 3D transform).
void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse);

/// Cubic K x K x K grid of complex values, indexed [(z*K + y)*K + x].
class Grid3D {
 public:
  explicit Grid3D(std::size_t k);

  std::size_t k() const { return k_; }
  std::size_t size() const { return data_.size(); }

  Complex& at(std::size_t x, std::size_t y, std::size_t z) {
    return data_[(z * k_ + y) * k_ + x];
  }
  const Complex& at(std::size_t x, std::size_t y, std::size_t z) const {
    return data_[(z * k_ + y) * k_ + x];
  }
  std::vector<Complex>& data() { return data_; }
  const std::vector<Complex>& data() const { return data_; }

  void clear();

  /// In-place 3D FFT (inverse = conjugate transform scaled by 1/K^3).
  void transform(bool inverse);

 private:
  std::size_t k_;
  std::vector<Complex> data_;
};

}  // namespace mdm
