#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <atomic>

namespace mdm {

namespace {

/// Pool whose chunk the current thread is executing right now (nullptr when
/// outside any chunk). Set around run_chunk for both workers and the
/// chunk-0 caller; consulted by parallel_for_raw to run re-entrant calls
/// inline instead of deadlocking on the single task slot.
thread_local const ThreadPool* tls_running_pool = nullptr;

struct RunningPoolScope {
  const ThreadPool* prev;
  explicit RunningPoolScope(const ThreadPool* p) : prev(tls_running_pool) {
    tls_running_pool = p;
  }
  ~RunningPoolScope() { tls_running_pool = prev; }
};

std::atomic<unsigned> g_global_threads_override{0};
std::atomic<bool> g_global_pool_created{false};

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  // Worker 0 is the calling thread; spawn the rest.
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  obs::Registry::global().gauge("thread_pool.workers").set(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(const Task& task, unsigned chunk, unsigned nchunks) {
  const std::size_t n = task.n;
  const std::size_t base = n / nchunks;
  const std::size_t rem = n % nchunks;
  // Chunks 0..rem-1 get base+1 items; the rest get base.
  const std::size_t begin =
      chunk * base + std::min<std::size_t>(chunk, rem);
  const std::size_t end = begin + base + (chunk < rem ? 1 : 0);
  if (begin < end) task.raw(task.ctx, chunk, begin, end);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  static obs::Counter& idle_ns =
      obs::Registry::global().counter("thread_pool.idle_ns");
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      const std::uint64_t wait_start = obs::Trace::now_ns();
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      idle_ns.add(obs::Trace::now_ns() - wait_start);
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
    }
    std::exception_ptr error;
    try {
      RunningPoolScope scope(this);
      obs::TraceContextScope trace_scope(task.trace_ctx);
      run_chunk(task, worker_index, size());
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn,
    std::size_t min_parallel) {
  parallel_for_raw(
      n,
      [](void* ctx, unsigned chunk, std::size_t begin, std::size_t end) {
        (*static_cast<const std::function<void(unsigned, std::size_t,
                                               std::size_t)>*>(ctx))(
            chunk, begin, end);
      },
      const_cast<void*>(static_cast<const void*>(&fn)), min_parallel);
}

void ThreadPool::parallel_for_raw(std::size_t n, RawFn raw, void* ctx,
                                  std::size_t min_parallel) {
  if (n == 0) return;
  if (tls_running_pool == this) {
    // Re-entrant call from inside one of our own chunks: the task slot is
    // occupied, so fanning out would deadlock. Run the range inline.
    static obs::Counter& reentrant =
        obs::Registry::global().counter("thread_pool.reentrant_inline");
    reentrant.add(1);
    raw(ctx, 0, 0, n);
    return;
  }
  static obs::Counter& tasks =
      obs::Registry::global().counter("thread_pool.tasks");
  static obs::Counter& chunks =
      obs::Registry::global().counter("thread_pool.chunks");
  static obs::Gauge& fanout =
      obs::Registry::global().gauge("thread_pool.last_fanout");
  const unsigned nchunks = size();
  const bool inline_run = nchunks == 1 || n == 1 || n < min_parallel;
  tasks.add(1);
  chunks.add(inline_run ? 1 : nchunks);
  fanout.set(inline_run ? 1 : nchunks);
  if (inline_run) {
    raw(ctx, 0, 0, n);
    return;
  }
  Task task;
  task.raw = raw;
  task.ctx = ctx;
  task.n = n;
  task.trace_ctx = obs::TraceContext::current();
  {
    std::lock_guard lock(mutex_);
    task_ = task;
    first_error_ = nullptr;
    remaining_ = nchunks - 1;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr my_error;
  try {
    RunningPoolScope scope(this);
    run_chunk(task, 0, nchunks);
  } catch (...) {
    my_error = std::current_exception();
  }
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    if (!first_error_ && my_error) first_error_ = my_error;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

bool ThreadPool::running_on_this_pool() const {
  return tls_running_pool == this;
}

unsigned ThreadPool::default_threads() {
  if (const unsigned o = g_global_threads_override.load()) return o;
  if (const char* env = std::getenv("MDM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::set_global_threads(unsigned threads) {
  if (g_global_pool_created.load()) return false;
  g_global_threads_override.store(threads);
  return !g_global_pool_created.load();
}

ThreadPool& ThreadPool::global() {
  // Sized by set_global_threads, then MDM_THREADS, then
  // hardware_concurrency (default_threads, via the 0 argument). The created
  // flag locks out later set_global_threads calls.
  static ThreadPool pool([] {
    g_global_pool_created.store(true);
    return 0u;
  }());
  return pool;
}

void parallel_for_each(std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(
      n, [&fn](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      });
}

}  // namespace mdm
