#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdm {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  // Worker 0 is the calling thread; spawn the rest.
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  obs::Registry::global().gauge("thread_pool.workers").set(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(const Task& task, unsigned chunk, unsigned nchunks) {
  const std::size_t n = task.n;
  const std::size_t base = n / nchunks;
  const std::size_t rem = n % nchunks;
  // Chunks 0..rem-1 get base+1 items; the rest get base.
  const std::size_t begin =
      chunk * base + std::min<std::size_t>(chunk, rem);
  const std::size_t end = begin + base + (chunk < rem ? 1 : 0);
  if (begin < end) task.raw(task.ctx, chunk, begin, end);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  static obs::Counter& idle_ns =
      obs::Registry::global().counter("thread_pool.idle_ns");
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      const std::uint64_t wait_start = obs::Trace::now_ns();
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      idle_ns.add(obs::Trace::now_ns() - wait_start);
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
    }
    std::exception_ptr error;
    try {
      run_chunk(task, worker_index, size());
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn,
    std::size_t min_parallel) {
  parallel_for_raw(
      n,
      [](void* ctx, unsigned chunk, std::size_t begin, std::size_t end) {
        (*static_cast<const std::function<void(unsigned, std::size_t,
                                               std::size_t)>*>(ctx))(
            chunk, begin, end);
      },
      const_cast<void*>(static_cast<const void*>(&fn)), min_parallel);
}

void ThreadPool::parallel_for_raw(std::size_t n, RawFn raw, void* ctx,
                                  std::size_t min_parallel) {
  if (n == 0) return;
  static obs::Counter& tasks =
      obs::Registry::global().counter("thread_pool.tasks");
  static obs::Counter& chunks =
      obs::Registry::global().counter("thread_pool.chunks");
  static obs::Gauge& fanout =
      obs::Registry::global().gauge("thread_pool.last_fanout");
  const unsigned nchunks = size();
  const bool inline_run = nchunks == 1 || n == 1 || n < min_parallel;
  tasks.add(1);
  chunks.add(inline_run ? 1 : nchunks);
  fanout.set(inline_run ? 1 : nchunks);
  if (inline_run) {
    raw(ctx, 0, 0, n);
    return;
  }
  Task task;
  task.raw = raw;
  task.ctx = ctx;
  task.n = n;
  {
    std::lock_guard lock(mutex_);
    task_ = task;
    first_error_ = nullptr;
    remaining_ = nchunks - 1;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr my_error;
  try {
    run_chunk(task, 0, nchunks);
  } catch (...) {
    my_error = std::current_exception();
  }
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    if (!first_error_ && my_error) first_error_ = my_error;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

ThreadPool& ThreadPool::global() {
  // MDM_THREADS overrides hardware_concurrency for the shared pool (the
  // per-instance constructor argument is unaffected).
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MDM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

void parallel_for_each(std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(
      n, [&fn](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      });
}

}  // namespace mdm
