#pragma once

/// \file thread_pool.hpp
/// Persistent worker pool with a `parallel_for` that splits an index range
/// into contiguous chunks. Force loops in the MD engine and the hardware
/// simulators use this instead of spawning threads per step.
///
/// Determinism: `parallel_for` assigns chunk c = [bounds) to worker c
/// statically, so per-chunk partial results can be reduced in chunk order and
/// a run is bit-reproducible regardless of scheduling.
///
/// Tiny ranges run inline on the calling thread (no condition-variable
/// wakeup): below `min_parallel` items the whole range executes as chunk 0.
/// Callers whose per-item work is heavy can pass min_parallel = 0 to force
/// fan-out even for short ranges.
///
/// Re-entrancy: a pool has one task slot, so `parallel_for` called from
/// inside one of its own chunks (which concurrent serve jobs can do through
/// nested force evaluations) must not enqueue a second task — it would
/// corrupt the in-flight counter and deadlock the outer call. Such nested
/// calls are detected through a thread-local marker and run the whole range
/// inline as chunk 0. Nesting across *different* pools fans out normally.
///
/// The single task slot also means a pool supports ONE external caller at a
/// time: concurrent `parallel_for` calls from unrelated threads race on the
/// slot. Give independent callers independent pools (the serve scheduler
/// hands each worker its own slice for exactly this reason).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace_context.hpp"

namespace mdm {

class ThreadPool {
 public:
  /// Ranges shorter than this run inline by default (a pool wakeup costs
  /// more than scanning a few dozen items, e.g. small k-vector sets).
  static constexpr std::size_t kDefaultGrain = 32;

  /// Create a pool with `threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(chunk_index, begin, end) over [0, n) split into size() contiguous
  /// chunks. Blocks until all chunks finish. The calling thread executes
  /// chunk 0 itself. Exceptions from chunks propagate (first one wins).
  /// Ranges with n < min_parallel run inline as fn(0, 0, n).
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, std::size_t,
                                             std::size_t)>& fn,
                    std::size_t min_parallel = kDefaultGrain);

  /// Allocation-free variant: `raw(ctx, chunk_index, begin, end)`. The hot
  /// force loops use this form (constructing a std::function from a
  /// capturing lambda may heap-allocate on every step). `ctx` must stay
  /// valid until the call returns; the call blocks like parallel_for.
  using RawFn = void (*)(void* ctx, unsigned chunk, std::size_t begin,
                         std::size_t end);
  void parallel_for_raw(std::size_t n, RawFn raw, void* ctx,
                        std::size_t min_parallel = kDefaultGrain);

  /// Shared process-wide pool (created on first use). Size comes from
  /// `set_global_threads` when called before first use, otherwise from the
  /// MDM_THREADS environment variable when set (>= 1), otherwise from
  /// hardware_concurrency.
  static ThreadPool& global();

  /// Thread count an explicit-size-0 pool (and the global pool) resolves
  /// to: the set_global_threads override, then MDM_THREADS, then
  /// hardware_concurrency. Always >= 1.
  static unsigned default_threads();

  /// Programmatic size override for the global pool (the `--threads` CLI
  /// flag; takes precedence over MDM_THREADS). Must be called before
  /// global() is first used; returns false — and changes nothing — once the
  /// global pool exists. Non-global pools are unaffected: give each its own
  /// explicit size (this is how the serve scheduler hands every job a
  /// bounded slice without touching the environment).
  static bool set_global_threads(unsigned threads);

  /// True while the calling thread is executing a chunk of this pool (used
  /// by the re-entrancy guard; exposed for tests).
  bool running_on_this_pool() const;

 private:
  struct Task {
    RawFn raw = nullptr;
    void* ctx = nullptr;
    std::size_t n = 0;
    std::size_t generation = 0;
    /// Dispatcher's ambient TraceContext, installed on workers around each
    /// chunk so pool-side spans join the dispatcher's trace (DESIGN.md §10).
    obs::TraceContext trace_ctx;
  };

  void worker_loop(unsigned worker_index);
  static void run_chunk(const Task& task, unsigned chunk, unsigned nchunks);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Convenience wrapper: element-wise parallel loop over [0, n) on the global
/// pool; `fn(i)` is called for every index.
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Dispatch a capturing lambda `fn(chunk, begin, end)` over the pool through
/// parallel_for_raw — no std::function, no allocation. The lambda outlives
/// the (blocking) call, so passing its address is safe.
template <typename Fn>
void pool_for(ThreadPool& pool, std::size_t n, Fn&& fn,
              std::size_t min_parallel = ThreadPool::kDefaultGrain) {
  pool.parallel_for_raw(
      n,
      [](void* ctx, unsigned chunk, std::size_t begin, std::size_t end) {
        (*static_cast<std::remove_reference_t<Fn>*>(ctx))(chunk, begin, end);
      },
      const_cast<void*>(static_cast<const void*>(&fn)), min_parallel);
}

}  // namespace mdm
