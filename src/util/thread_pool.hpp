#pragma once

/// \file thread_pool.hpp
/// Persistent worker pool with a `parallel_for` that splits an index range
/// into contiguous chunks. Force loops in the MD engine and the hardware
/// simulators use this instead of spawning threads per step.
///
/// Determinism: `parallel_for` assigns chunk c = [bounds) to worker c
/// statically, so per-chunk partial results can be reduced in chunk order and
/// a run is bit-reproducible regardless of scheduling.
///
/// Tiny ranges run inline on the calling thread (no condition-variable
/// wakeup): below `min_parallel` items the whole range executes as chunk 0.
/// Callers whose per-item work is heavy can pass min_parallel = 0 to force
/// fan-out even for short ranges.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mdm {

class ThreadPool {
 public:
  /// Ranges shorter than this run inline by default (a pool wakeup costs
  /// more than scanning a few dozen items, e.g. small k-vector sets).
  static constexpr std::size_t kDefaultGrain = 32;

  /// Create a pool with `threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(chunk_index, begin, end) over [0, n) split into size() contiguous
  /// chunks. Blocks until all chunks finish. The calling thread executes
  /// chunk 0 itself. Exceptions from chunks propagate (first one wins).
  /// Ranges with n < min_parallel run inline as fn(0, 0, n).
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, std::size_t,
                                             std::size_t)>& fn,
                    std::size_t min_parallel = kDefaultGrain);

  /// Allocation-free variant: `raw(ctx, chunk_index, begin, end)`. The hot
  /// force loops use this form (constructing a std::function from a
  /// capturing lambda may heap-allocate on every step). `ctx` must stay
  /// valid until the call returns; the call blocks like parallel_for.
  using RawFn = void (*)(void* ctx, unsigned chunk, std::size_t begin,
                         std::size_t end);
  void parallel_for_raw(std::size_t n, RawFn raw, void* ctx,
                        std::size_t min_parallel = kDefaultGrain);

  /// Shared process-wide pool (created on first use). Size comes from the
  /// MDM_THREADS environment variable when set (>= 1), otherwise from
  /// hardware_concurrency.
  static ThreadPool& global();

 private:
  struct Task {
    RawFn raw = nullptr;
    void* ctx = nullptr;
    std::size_t n = 0;
    std::size_t generation = 0;
  };

  void worker_loop(unsigned worker_index);
  static void run_chunk(const Task& task, unsigned chunk, unsigned nchunks);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Convenience wrapper: element-wise parallel loop over [0, n) on the global
/// pool; `fn(i)` is called for every index.
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Dispatch a capturing lambda `fn(chunk, begin, end)` over the pool through
/// parallel_for_raw — no std::function, no allocation. The lambda outlives
/// the (blocking) call, so passing its address is safe.
template <typename Fn>
void pool_for(ThreadPool& pool, std::size_t n, Fn&& fn,
              std::size_t min_parallel = ThreadPool::kDefaultGrain) {
  pool.parallel_for_raw(
      n,
      [](void* ctx, unsigned chunk, std::size_t begin, std::size_t end) {
        (*static_cast<std::remove_reference_t<Fn>*>(ctx))(chunk, begin, end);
      },
      const_cast<void*>(static_cast<const void*>(&fn)), min_parallel);
}

}  // namespace mdm
