#pragma once

/// \file thread_pool.hpp
/// Persistent worker pool with a `parallel_for` that splits an index range
/// into contiguous chunks. Force loops in the MD engine and the hardware
/// simulators use this instead of spawning threads per step.
///
/// Determinism: `parallel_for` assigns chunk c = [bounds) to worker c
/// statically, so per-chunk partial results can be reduced in chunk order and
/// a run is bit-reproducible regardless of scheduling.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdm {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(chunk_index, begin, end) over [0, n) split into size() contiguous
  /// chunks. Blocks until all chunks finish. The calling thread executes
  /// chunk 0 itself. Exceptions from chunks propagate (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, std::size_t,
                                             std::size_t)>& fn);

  /// Shared process-wide pool (created on first use; size from
  /// hardware_concurrency).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(unsigned, std::size_t, std::size_t)>* fn =
        nullptr;
    std::size_t n = 0;
    std::size_t generation = 0;
  };

  void worker_loop(unsigned worker_index);
  static void run_chunk(const Task& task, unsigned chunk, unsigned nchunks);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Convenience wrapper: element-wise parallel loop over [0, n) on the global
/// pool; `fn(i)` is called for every index.
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace mdm
