#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mdm {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back({std::move(row), false});
}

void AsciiTable::add_rule() { rows_.push_back({{}, true}); }

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  absorb(header_);
  for (const auto& row : rows_)
    if (!row.rule) absorb(row.cells);

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (auto w : widths) total += w;

  auto print_rule = [&] { os << std::string(total, '-') << '\n'; };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) os << " | ";
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << title_ << '\n';
    print_rule();
  }
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (row.rule)
      print_rule();
    else
      print_cells(row.cells);
  }
}

std::string AsciiTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits - 1, v);
  return buf;
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_int(long long v) {
  std::string digits = std::to_string(std::llabs(v));
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return (v < 0 ? "-" : "") + out;
}

}  // namespace mdm
