#pragma once

/// \file random.hpp
/// Small, fast, reproducible RNG (xoshiro256++) plus the distributions the MD
/// engine needs. We avoid <random>'s engines for cross-platform determinism
/// of streams: every simulation in the test and benchmark suites is seeded
/// and must produce identical trajectories on any conforming compiler.

#include <cstdint>
#include <cmath>

#include "util/vec3.hpp"

namespace mdm {

__extension__ typedef unsigned __int128 uint128_t_mdm;

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Serialized generator state: the four xoshiro words plus the Marsaglia
/// polar cache. Trivially copyable; written verbatim into checkpoints
/// (core/checkpoint) so a restored stream continues bit-identically.
struct RandomState {
  std::uint64_t s[4] = {};
  double cached = 0.0;
  std::uint8_t have_cached = 0;
};

/// xoshiro256++ generator (public-domain algorithm by Blackman & Vigna).
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
    have_cached_ = false;
  }

  /// Serialize the full stream state (including the cached normal draw).
  RandomState state() const {
    RandomState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.cached = cached_;
    st.have_cached = have_cached_ ? 1 : 0;
    return st;
  }

  /// Restore a stream serialized by state(); the next draws continue the
  /// original sequence exactly.
  void set_state(const RandomState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_ = st.cached;
    have_cached_ = st.have_cached != 0;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_below(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    uint128_t_mdm m = static_cast<uint128_t_mdm>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<uint128_t_mdm>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * f;
    have_cached_ = true;
    return u * f;
  }

  /// Normal with mean/sigma.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Isotropic Gaussian 3-vector with per-component sigma.
  Vec3 normal_vec3(double sigma) {
    return {normal(0.0, sigma), normal(0.0, sigma), normal(0.0, sigma)};
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace mdm
