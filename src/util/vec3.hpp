#pragma once

/// \file vec3.hpp
/// Minimal 3-component double vector used throughout the MD engine and the
/// hardware simulators. Kept as a plain aggregate so arrays of Vec3 are
/// tightly packed and trivially copyable.

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace mdm {

/// Three-component Cartesian vector (double precision).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return (*this) *= (1.0 / s); }

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

constexpr double norm2(const Vec3& a) { return dot(a, a); }

inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

/// Component-wise product (useful for box scalings).
constexpr Vec3 hadamard(const Vec3& a, const Vec3& b) {
  return {a.x * b.x, a.y * b.y, a.z * b.z};
}

/// Wrap a coordinate into [0, L). Assumes |v| is within a few boxes of the
/// primary cell, which holds for any finite-timestep MD move.
inline double wrap_coordinate(double v, double box) {
  v -= box * std::floor(v / box);
  // floor() rounding can land exactly on `box`; fold that edge case back.
  if (v >= box) v -= box;
  if (v < 0.0) v += box;
  return v;
}

/// Wrap a position into the primary cell [0, L)^3 of a cubic box.
inline Vec3 wrap_position(Vec3 r, double box) {
  r.x = wrap_coordinate(r.x, box);
  r.y = wrap_coordinate(r.y, box);
  r.z = wrap_coordinate(r.z, box);
  return r;
}

/// Minimum-image displacement in a cubic box of side `box`:
/// returns the periodic image of (a - b) with each component in
/// [-box/2, box/2).
inline Vec3 minimum_image(const Vec3& a, const Vec3& b, double box) {
  Vec3 d = a - b;
  d.x -= box * std::nearbyint(d.x / box);
  d.y -= box * std::nearbyint(d.y / box);
  d.z -= box * std::nearbyint(d.z / box);
  return d;
}

std::ostream& operator<<(std::ostream& os, const Vec3& v);

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace mdm
