#pragma once

/// \file timer.hpp
/// Wall-clock stopwatch for the benchmark harness.

#include <chrono>

namespace mdm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or last reset().
  double elapsed_ms() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mdm
