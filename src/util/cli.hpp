#pragma once

/// \file cli.hpp
/// Tiny declarative command-line parser for the example and benchmark
/// binaries: `--flag`, `--key value` and `--key=value` forms.

#include <optional>
#include <string>
#include <vector>

namespace mdm {

class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  /// True if `--name` appeared (with or without a value).
  bool has(const std::string& name) const;

  /// Value of `--name value` / `--name=value`, if present.
  std::optional<std::string> value(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Comma-separated integer list, e.g. `--sizes 512,4096`.
  std::vector<long long> get_int_list(const std::string& name,
                                      std::vector<long long> fallback) const;

  /// Positional (non ``--``) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  struct Option {
    std::string name;
    std::optional<std::string> value;
  };

  std::string program_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

/// Apply the shared observability switches:
///   --log-level debug|info|warn|error|off  (obs::Logger threshold)
///   --trace / --trace=0                    (runtime span recording)
/// Unrecognized values emit a warning and are ignored.
void apply_observability_cli(const CommandLine& cli);

}  // namespace mdm
