#include "util/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdm {

void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse) {
  if (!is_power_of_two(n))
    throw std::invalid_argument("fft: length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / double(len);
    const Complex w_len(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        Complex& a = data[(i + j) * stride];
        Complex& b = data[(i + j + len / 2) * stride];
        const Complex t = b * w;
        b = a - t;
        a += t;
        w *= w_len;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / double(n);
    for (std::size_t i = 0; i < n; ++i) data[i * stride] *= scale;
  }
}

void fft(std::vector<Complex>& data, bool inverse) {
  fft_strided(data.data(), data.size(), 1, inverse);
}

Grid3D::Grid3D(std::size_t k) : k_(k), data_(k * k * k) {
  if (!is_power_of_two(k))
    throw std::invalid_argument("Grid3D: K must be a power of two");
}

void Grid3D::clear() {
  for (auto& v : data_) v = Complex{};
}

void Grid3D::transform(bool inverse) {
  // x lines (contiguous).
  for (std::size_t z = 0; z < k_; ++z)
    for (std::size_t y = 0; y < k_; ++y)
      fft_strided(&at(0, y, z), k_, 1, inverse);
  // y lines (stride K).
  for (std::size_t z = 0; z < k_; ++z)
    for (std::size_t x = 0; x < k_; ++x)
      fft_strided(&at(x, 0, z), k_, k_, inverse);
  // z lines (stride K^2).
  for (std::size_t y = 0; y < k_; ++y)
    for (std::size_t x = 0; x < k_; ++x)
      fft_strided(&at(x, y, 0), k_, k_ * k_, inverse);
}

}  // namespace mdm
