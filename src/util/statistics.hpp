#pragma once

/// \file statistics.hpp
/// Streaming statistics used by the observables and the benchmark harness:
/// Welford running mean/variance, min/max tracking, and block averaging for
/// correlated MD time series.

#include <cstddef>
#include <vector>

namespace mdm {

/// Numerically stable streaming mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Block averaging: estimates the standard error of the mean of a correlated
/// series by doubling block sizes until the error estimate plateaus.
/// Standard practice for MD observables (Flyvbjerg & Petersen 1989).
class BlockAverager {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }

  double mean() const;

  /// Standard error of the mean at a given blocking level (block length
  /// 2^level). Returns 0 if there are fewer than 2 blocks.
  double standard_error(int level) const;

  /// Largest error over all blocking levels with >= 8 blocks; a practical
  /// plateau estimate for short series.
  double plateau_standard_error() const;

 private:
  std::vector<double> samples_;
};

/// Relative difference |a-b| / max(|a|,|b|,floor); convenient for accuracy
/// benches comparing hardware-pipeline output against a double reference.
double relative_error(double a, double b, double floor = 1e-300);

}  // namespace mdm
