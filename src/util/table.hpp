#pragma once

/// \file table.hpp
/// ASCII table printer used by the benchmark harness to regenerate the
/// paper's tables in a readable fixed-width layout.

#include <iosfwd>
#include <string>
#include <vector>

namespace mdm {

/// Column-aligned ASCII table. Rows are added as vectors of preformatted
/// strings; `print` pads every column to its widest cell.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Horizontal rule between row groups.
  void add_rule();

  void print(std::ostream& os) const;
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format helpers used throughout the bench binaries.
std::string format_sci(double v, int digits = 3);   ///< e.g. 6.75e+14
std::string format_fixed(double v, int digits = 2); ///< e.g. 43.80
std::string format_int(long long v);                ///< e.g. 18,821,096

}  // namespace mdm
