#pragma once

/// \file fixed_point.hpp
/// Two's-complement fixed-point arithmetic used by the WINE-2 pipeline
/// emulator. The real chip computes every stage of the DFT/IDFT in
/// fixed-point ("Fixed-point two's complement format is used in all the
/// arithmetic calculations in a pipeline", sec. 3.4.4); this header provides
/// a software model that is bit-exact for a configurable Q-format.
///
/// A format Q(i, f) has `i` integer bits (including sign) and `f` fraction
/// bits; values are stored as int64 raw words equal to round(x * 2^f),
/// saturated to the representable range. The widths in the WINE-2 emulator
/// are chosen to reproduce the paper's stated relative force accuracy of
/// about 10^-4.5.

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mdm {

// 128-bit intermediate for exact fixed-point products (GCC/Clang extension;
// __extension__ silences the pedantic warning).
__extension__ typedef __int128 int128_t_mdm;

/// Describes a two's-complement Q(i, f) fixed-point format.
/// total width = int_bits + frac_bits <= 63 so raw values fit in int64.
struct QFormat {
  int int_bits = 16;   ///< integer bits, including the sign bit
  int frac_bits = 16;  ///< fraction bits

  constexpr int total_bits() const { return int_bits + frac_bits; }

  /// Largest representable raw word.
  constexpr std::int64_t raw_max() const {
    return (std::int64_t{1} << (total_bits() - 1)) - 1;
  }
  /// Smallest (most negative) representable raw word.
  constexpr std::int64_t raw_min() const {
    return -(std::int64_t{1} << (total_bits() - 1));
  }
  /// Value of one least-significant bit.
  constexpr double lsb() const { return std::ldexp(1.0, -frac_bits); }
  /// Largest representable value.
  constexpr double max_value() const {
    return static_cast<double>(raw_max()) * lsb();
  }
  /// Smallest representable value.
  constexpr double min_value() const {
    return static_cast<double>(raw_min()) * lsb();
  }

  constexpr bool valid() const {
    return int_bits >= 1 && frac_bits >= 0 && total_bits() <= 63;
  }

  friend constexpr bool operator==(const QFormat&, const QFormat&) = default;
};

/// A fixed-point value: raw two's-complement word plus its format.
/// Arithmetic saturates (the hardware clamps on overflow rather than
/// wrapping, which keeps a pipeline overflow from corrupting the sign of an
/// accumulated force).
class Fixed {
 public:
  Fixed() = default;

  /// Quantize a real value into format `fmt` (round-to-nearest, saturating).
  static Fixed from_double(double v, QFormat fmt) {
    if (!fmt.valid()) throw std::invalid_argument("invalid QFormat");
    const double scaled = v * std::ldexp(1.0, fmt.frac_bits);
    double rounded = std::nearbyint(scaled);
    rounded = std::clamp(rounded, static_cast<double>(fmt.raw_min()),
                         static_cast<double>(fmt.raw_max()));
    return Fixed(static_cast<std::int64_t>(rounded), fmt);
  }

  /// Reinterpret a raw word in format `fmt` (no range check beyond clamp).
  static Fixed from_raw(std::int64_t raw, QFormat fmt) {
    raw = std::clamp(raw, fmt.raw_min(), fmt.raw_max());
    return Fixed(raw, fmt);
  }

  std::int64_t raw() const { return raw_; }
  QFormat format() const { return fmt_; }

  double to_double() const {
    return static_cast<double>(raw_) * fmt_.lsb();
  }

  /// Convert to another format (arithmetic shift with round-to-nearest when
  /// dropping fraction bits; saturate on overflow).
  Fixed convert(QFormat to) const {
    std::int64_t r = raw_;
    const int shift = to.frac_bits - fmt_.frac_bits;
    if (shift >= 0) {
      // Gaining fraction bits: detect overflow before shifting.
      if (shift >= 63 || std::llabs(r) > (to.raw_max() >> shift)) {
        r = r >= 0 ? to.raw_max() : to.raw_min();
      } else {
        r <<= shift;
      }
    } else {
      r = shift_right_round(r, -shift);
    }
    return from_raw(r, to);
  }

  /// Saturating addition; operands must share a format.
  friend Fixed add(const Fixed& a, const Fixed& b) {
    require_same(a, b);
    return from_raw(a.raw_ + b.raw_, a.fmt_);
  }

  /// Saturating subtraction; operands must share a format.
  friend Fixed sub(const Fixed& a, const Fixed& b) {
    require_same(a, b);
    return from_raw(a.raw_ - b.raw_, a.fmt_);
  }

  /// Multiply, producing a result quantized into format `out`
  /// (round-to-nearest on the dropped bits, saturating).
  friend Fixed mul(const Fixed& a, const Fixed& b, QFormat out) {
    // The exact product has fa+fb fraction bits; use __int128 to avoid
    // intermediate overflow for wide formats.
    const int128_t_mdm prod = static_cast<int128_t_mdm>(a.raw_) *
                              static_cast<int128_t_mdm>(b.raw_);
    const int shift = a.fmt_.frac_bits + b.fmt_.frac_bits - out.frac_bits;
    int128_t_mdm r = prod;
    if (shift > 0) {
      const int128_t_mdm half = int128_t_mdm{1} << (shift - 1);
      r = (r + half) >> shift;
    } else if (shift < 0) {
      r <<= -shift;
    }
    const int128_t_mdm lo = out.raw_min();
    const int128_t_mdm hi = out.raw_max();
    if (r < lo) r = lo;
    if (r > hi) r = hi;
    return from_raw(static_cast<std::int64_t>(r), out);
  }

  Fixed operator-() const { return from_raw(-raw_, fmt_); }

 private:
  Fixed(std::int64_t raw, QFormat fmt) : raw_(raw), fmt_(fmt) {}

  static void require_same(const Fixed& a, const Fixed& b) {
    if (!(a.fmt_ == b.fmt_))
      throw std::invalid_argument("Fixed format mismatch");
  }

  static std::int64_t shift_right_round(std::int64_t v, int shift) {
    if (shift <= 0) return v;
    if (shift >= 63) return 0;
    const std::int64_t half = std::int64_t{1} << (shift - 1);
    // Arithmetic shift after adding half rounds to nearest (ties away from
    // zero for positives; the sub-LSB bias is far below the modeled noise).
    return (v + half) >> shift;
  }

  std::int64_t raw_ = 0;
  QFormat fmt_{};
};

/// Quantization helper: round `v` to the grid of format `fmt` and return the
/// result as a double. This is how the pipeline models are written: values
/// flow as doubles but pass through `quantize` at every hardware register.
inline double quantize(double v, QFormat fmt) {
  return Fixed::from_double(v, fmt).to_double();
}

}  // namespace mdm
