#pragma once

/// \file units.hpp
/// Internal unit system of the library and the physical constants connecting
/// it to SI. All modules use:
///
///   length  : angstrom (A)
///   energy  : electron-volt (eV)
///   charge  : elementary charge (e)
///   mass    : unified atomic mass unit (amu)
///   time    : femtosecond (fs)
///   temperature : kelvin (K)
///
/// With these choices force is eV/A and the equation of motion needs the
/// single conversion factor `kAccelUnit` below.

namespace mdm::units {

/// Coulomb constant 1/(4 pi eps0) in eV*A/e^2.
inline constexpr double kCoulomb = 14.399645352;

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmann = 8.617333262e-5;

/// Conversion for Newton's second law: a [A/fs^2] = kAccelUnit * F[eV/A] / m[amu].
inline constexpr double kAccelUnit = 9.64853322e-3;

/// 1 erg in eV (Tosi-Fumi parameters are tabulated in CGS).
inline constexpr double kErg = 6.241509074e11;

/// 1e-19 J in eV - the customary unit for the Tosi-Fumi `b` constant.
inline constexpr double k1e19J = 0.6241509074;

/// 1e-79 J*m^6 in eV*A^6 - customary unit of the c_ij dispersion constants.
inline constexpr double kC6Unit = 0.6241509074;

/// 1e-99 J*m^8 in eV*A^8 - customary unit of the d_ij dispersion constants.
inline constexpr double kD8Unit = 0.6241509074;

/// Masses of the ions simulated in the paper (amu).
inline constexpr double kMassNa = 22.98976928;
inline constexpr double kMassCl = 35.453;
/// Potassium, for the KCl scenario (amu).
inline constexpr double kMassK = 39.0983;

}  // namespace mdm::units
