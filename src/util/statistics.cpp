#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

namespace mdm {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double BlockAverager::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double BlockAverager::standard_error(int level) const {
  const std::size_t block = std::size_t{1} << level;
  const std::size_t nblocks = samples_.size() / block;
  if (nblocks < 2) return 0.0;
  RunningStats stats;
  for (std::size_t b = 0; b < nblocks; ++b) {
    double s = 0.0;
    for (std::size_t i = 0; i < block; ++i)
      s += samples_[b * block + i];
    stats.add(s / static_cast<double>(block));
  }
  return stats.stddev() / std::sqrt(static_cast<double>(nblocks));
}

double BlockAverager::plateau_standard_error() const {
  double best = 0.0;
  for (int level = 0;; ++level) {
    const std::size_t block = std::size_t{1} << level;
    if (samples_.size() / block < 8) break;
    best = std::max(best, standard_error(level));
  }
  return best;
}

double relative_error(double a, double b, double floor) {
  const double denom = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / denom;
}

}  // namespace mdm
