#pragma once

/// \file observables.hpp
/// Scalar observables beyond those on ParticleSystem: pressure from the
/// virial, and the relative temperature fluctuation used by Figure 2.

#include "core/particle_system.hpp"

namespace mdm {

/// 1 eV/A^3 in gigapascal.
inline constexpr double kEvPerA3InGPa = 160.21766208;

/// Instantaneous pressure P = (2 KE / 3 + W / 3) / V where W = sum r.f is
/// the pair virial. Returned in eV/A^3 (multiply by kEvPerA3InGPa for GPa).
double pressure(const ParticleSystem& system, double virial);

/// Canonical-ensemble prediction of the relative temperature fluctuation
/// for an ideal sampler: sigma_T / <T> = sqrt(2 / (3 N)). Figure 2's point
/// is that the measured fluctuation follows this 1/sqrt(N) law.
double expected_relative_temperature_fluctuation(std::size_t n_particles);

}  // namespace mdm
