#include "core/health.hpp"

#include <cmath>
#include <cstdio>

#include "obs/flight_recorder.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"

namespace mdm {
namespace {

const char* kind_label(SimulationHealthError::Kind kind) {
  switch (kind) {
    case SimulationHealthError::Kind::kNonFinite: return "non_finite";
    case SimulationHealthError::Kind::kTemperature: return "temperature";
    case SimulationHealthError::Kind::kEnergyDrift: return "energy_drift";
  }
  return "health";
}

}  // namespace

bool HealthMonitor::finite(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

void HealthMonitor::raise(SimulationHealthError::Kind kind, int step,
                          long long particle, std::string message) {
  static obs::Counter& violations =
      obs::Registry::global().counter("health.violations");
  violations.add(1);
  obs::FlightRecorder::record(obs::FlightKind::kHealth, kind_label(kind),
                              step, particle);
  MDM_LOG_ERROR("health: %s", message.c_str());
  throw SimulationHealthError(kind, step, particle, message);
}

void HealthMonitor::check_finite_span(std::span<const Vec3> values,
                                      const char* quantity, int step,
                                      long long id_base) const {
  if (!config_.check_finite) return;
  for (std::size_t i = 0; i < values.size(); ++i)
    check_finite_one(values[i], quantity, step,
                     id_base + static_cast<long long>(i));
}

void HealthMonitor::check_finite_one(const Vec3& v, const char* quantity,
                                     int step, long long particle) const {
  if (!config_.check_finite || finite(v)) return;
  char msg[160];
  std::snprintf(msg, sizeof msg,
                "non-finite %s for particle %lld at step %d "
                "(%g, %g, %g)",
                quantity, particle, step, v.x, v.y, v.z);
  raise(SimulationHealthError::Kind::kNonFinite, step, particle, msg);
}

void HealthMonitor::check_temperature(double temperature_K, int step) const {
  if (config_.max_temperature_K <= 0.0) return;
  if (std::isfinite(temperature_K) &&
      temperature_K <= config_.max_temperature_K)
    return;
  char msg[160];
  std::snprintf(msg, sizeof msg,
                "temperature %g K at step %d exceeds the %g K watchdog limit",
                temperature_K, step, config_.max_temperature_K);
  raise(SimulationHealthError::Kind::kTemperature, step, -1, msg);
}

void HealthMonitor::observe_energy(double total_eV, int step) {
  if (config_.max_energy_drift <= 0.0) return;
  if (!std::isfinite(total_eV)) {
    char msg[128];
    std::snprintf(msg, sizeof msg, "non-finite total energy at step %d",
                  step);
    raise(SimulationHealthError::Kind::kEnergyDrift, step, -1, msg);
  }
  if (!have_reference_) {
    have_reference_ = true;
    reference_eV_ = total_eV;
    return;
  }
  const double denom =
      std::fabs(reference_eV_) > 0.0 ? std::fabs(reference_eV_) : 1.0;
  const double drift = std::fabs(total_eV - reference_eV_) / denom;
  if (drift <= config_.max_energy_drift) return;
  char msg[192];
  std::snprintf(msg, sizeof msg,
                "energy drift %.3e at step %d exceeds tolerance %.3e "
                "(E=%.12g eV, reference %.12g eV)",
                drift, step, config_.max_energy_drift, total_eV,
                reference_eV_);
  raise(SimulationHealthError::Kind::kEnergyDrift, step, -1, msg);
}

}  // namespace mdm
