#pragma once

/// \file particle_system.hpp
/// Structure-of-arrays particle container for a cubic periodic box. This is
/// the state shared by the MD engine, the reference Ewald solver and the
/// hardware simulators (which receive positions/charges/types from it, just
/// as the real MDM host streams particle data to the boards).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace mdm {

/// Particle species; index doubles as the MDGRAPE-2 "atom type" (the chip
/// supports at most 32 types, enforced by the mdgrape2 module).
struct Species {
  std::string name;
  double mass = 0.0;    ///< amu
  double charge = 0.0;  ///< e
};

class ParticleSystem {
 public:
  /// Create an empty system in a cubic box of side `box` angstrom.
  explicit ParticleSystem(double box);

  /// Register a species; returns its type index.
  int add_species(Species s);

  /// Append a particle of species `type` (positions wrapped into the box).
  void add_particle(int type, const Vec3& position,
                    const Vec3& velocity = {});

  std::size_t size() const { return position_.size(); }
  double box() const { return box_; }
  /// Number density N / L^3 in 1/A^3.
  double number_density() const {
    return static_cast<double>(size()) / (box_ * box_ * box_);
  }

  std::span<Vec3> positions() { return position_; }
  std::span<const Vec3> positions() const { return position_; }
  std::span<Vec3> velocities() { return velocity_; }
  std::span<const Vec3> velocities() const { return velocity_; }
  std::span<const int> types() const { return type_; }

  const Species& species(int type) const { return species_.at(type); }
  int species_count() const { return static_cast<int>(species_.size()); }

  double charge(std::size_t i) const { return species_[type_[i]].charge; }
  double mass(std::size_t i) const { return species_[type_[i]].mass; }
  int type(std::size_t i) const { return type_[i]; }

  /// Sum of charges; 0 for any sane ionic system, asserted by Ewald.
  double total_charge() const;
  /// Sum of q_i^2, used by the Ewald self-energy.
  double total_charge_squared() const;

  /// Total linear momentum (amu * A/fs).
  Vec3 total_momentum() const;
  /// Kinetic energy in eV.
  double kinetic_energy() const;
  /// Instantaneous temperature in K; `remove_drift_dof` subtracts the three
  /// center-of-mass degrees of freedom (the convention used whenever the
  /// thermostat has zeroed total momentum).
  double temperature(bool remove_drift_dof = true) const;

  /// Remove center-of-mass velocity.
  void zero_momentum();

  /// Wrap every position back into [0, box)^3.
  void wrap_positions();

  /// Set the box edge without touching coordinates. Used by checkpoint
  /// restore of an NPT run whose volume drifted from the construction-time
  /// box; the caller is responsible for loading consistent positions.
  void set_box(double box);

  /// Isotropic volume change: multiply the box edge and every coordinate by
  /// `factor` (barostat couplings and Monte-Carlo volume moves). Velocities
  /// are untouched.
  void rescale(double factor);

 private:
  double box_;
  std::vector<Species> species_;
  std::vector<Vec3> position_;
  std::vector<Vec3> velocity_;
  std::vector<int> type_;
};

}  // namespace mdm
