#pragma once

/// \file simulation.hpp
/// High-level simulation driver implementing the paper's run protocol
/// (sec. 5): an NVT phase with velocity scaling followed by an NVE phase,
/// sampling temperature and energies every step — the data behind Fig. 2 and
/// the energy-conservation claim.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/force_field.hpp"
#include "core/integrator.hpp"
#include "core/particle_system.hpp"
#include "core/thermostat.hpp"

namespace mdm {

struct SimulationConfig {
  double dt_fs = 2.0;            ///< paper: 2 fs
  int nvt_steps = 2000;          ///< paper: first 2000 steps NVT
  int nve_steps = 1000;          ///< paper: last 1000 steps NVE
  double temperature_K = 1200.0; ///< paper: 1200 K
  int sample_interval = 1;       ///< record observables every k steps
  int rescale_interval = 1;      ///< apply thermostat every k steps
  /// Optional temperature schedule for the NVT phase (step -> target K);
  /// overrides temperature_K when set. This is how quench/solidification
  /// protocols (the ref. [14] study) are expressed.
  std::function<double(int)> temperature_schedule;
};

/// One sampled point of the run.
struct Sample {
  int step = 0;
  double time_ps = 0.0;
  double temperature_K = 0.0;
  double kinetic_eV = 0.0;
  double potential_eV = 0.0;
  double total_eV = 0.0;
  /// Instantaneous pressure from the pair virial, GPa. Zero on the MDM
  /// backend (the hardware does not report a virial).
  double pressure_GPa = 0.0;
};

class Simulation {
 public:
  /// `system` and `field` are borrowed; they must outlive the Simulation.
  Simulation(ParticleSystem& system, ForceField& field,
             SimulationConfig config);

  /// Run the full NVT + NVE protocol. `observer`, if set, is called after
  /// every step with the freshly recorded state.
  void run(const std::function<void(const Sample&)>& observer = {});

  /// Run only `steps` of NVE (used by the energy-conservation bench).
  void run_nve(int steps,
               const std::function<void(const Sample&)>& observer = {});

  const std::vector<Sample>& samples() const { return samples_; }

  /// Samples restricted to the NVE phase (step >= nvt_steps).
  std::vector<Sample> nve_samples() const;

  /// Max |E(t) - E(0)| / |E(0)| over the NVE samples — the paper reports
  /// < 5e-5 percent for the 18.8M-particle run.
  double nve_energy_drift() const;

  const SimulationConfig& config() const { return config_; }

 private:
  void record(int step);

  ParticleSystem* system_;
  SimulationConfig config_;
  VelocityVerlet integrator_;
  VelocityScalingThermostat thermostat_;
  std::vector<Sample> samples_;
};

}  // namespace mdm
