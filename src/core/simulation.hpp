#pragma once

/// \file simulation.hpp
/// High-level simulation driver implementing the paper's run protocol
/// (sec. 5): an NVT phase with velocity scaling followed by an NVE phase,
/// sampling temperature and energies every step — the data behind Fig. 2 and
/// the energy-conservation claim.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/force_field.hpp"
#include "core/health.hpp"
#include "core/integrator.hpp"
#include "core/particle_system.hpp"
#include "core/thermostat.hpp"

namespace mdm {

struct CheckpointState;
class CheckpointManager;
class Barostat;

/// Thermostat used during the NVT phase. The paper's protocol is plain
/// velocity scaling (sec. 5); Berendsen weak coupling is the gentler option
/// the scenario engine exposes.
enum class ThermostatKind { kVelocityScaling, kBerendsen };

struct SimulationConfig {
  double dt_fs = 2.0;            ///< paper: 2 fs
  int nvt_steps = 2000;          ///< paper: first 2000 steps NVT
  int nve_steps = 1000;          ///< paper: last 1000 steps NVE
  double temperature_K = 1200.0; ///< paper: 1200 K
  int sample_interval = 1;       ///< record observables every k steps
  int rescale_interval = 1;      ///< apply thermostat every k steps
  /// Optional temperature schedule for the NVT phase (step -> target K);
  /// overrides temperature_K when set. This is how quench/solidification
  /// protocols (the ref. [14] study) are expressed.
  std::function<double(int)> temperature_schedule;
  /// Numerical-health watchdog, checked every step (core/health).
  HealthConfig health{};
  ThermostatKind thermostat = ThermostatKind::kVelocityScaling;
  /// Berendsen coupling time constant (fs); ignored by velocity scaling.
  double thermostat_tau_fs = 100.0;
};

/// One sampled point of the run.
struct Sample {
  int step = 0;
  double time_ps = 0.0;
  double temperature_K = 0.0;
  double kinetic_eV = 0.0;
  double potential_eV = 0.0;
  double total_eV = 0.0;
  /// Instantaneous pressure from the pair virial, GPa. Zero on the MDM
  /// backend (the hardware does not report a virial).
  double pressure_GPa = 0.0;
};

class Simulation {
 public:
  /// `system` and `field` are borrowed; they must outlive the Simulation.
  Simulation(ParticleSystem& system, ForceField& field,
             SimulationConfig config);

  /// Run the full NVT + NVE protocol. `observer`, if set, is called after
  /// every step with the freshly recorded state.
  void run(const std::function<void(const Sample&)>& observer = {});

  /// Run only `steps` of NVE (used by the energy-conservation bench).
  void run_nve(int steps,
               const std::function<void(const Sample&)>& observer = {});

  const std::vector<Sample>& samples() const { return samples_; }

  /// Samples restricted to the NVE phase (step >= nvt_steps).
  std::vector<Sample> nve_samples() const;

  /// Max |E(t) - E(0)| / |E(0)| over the NVE samples — the paper reports
  /// < 5e-5 percent for the 18.8M-particle run.
  double nve_energy_drift() const;

  const SimulationConfig& config() const { return config_; }

  /// ---- checkpoint/restart (core/checkpoint, DESIGN.md §8) ----

  /// Write a rotating checkpoint into `manager` every `interval` completed
  /// steps (0 or nullptr disables). `manager` is borrowed.
  void enable_checkpointing(CheckpointManager* manager, int interval);

  /// Snapshot the live run state (system + thermostat + progress); a fresh
  /// Simulation restored from it continues the trajectory bit-identically.
  CheckpointState checkpoint_state() const;

  /// Resume from `state`: restores positions/velocities and thermostat
  /// accumulators; the next run() continues after state.step (its step-0
  /// sample is skipped).
  void restore(const CheckpointState& state);

  const Thermostat& thermostat() const { return *thermostat_; }

  /// Couple an isobaric run: `barostat` (borrowed, may be nullptr to
  /// disable) is applied at the end of every `interval` completed steps
  /// with coupling time interval * dt. When it reports a box change the
  /// integrator re-primes and force-field caches are invalidated, so the
  /// next step runs against the new geometry. Checkpoints then carry the
  /// barostat state and restore() re-applies a drifted box (format v3).
  void set_barostat(Barostat* barostat, int interval);

  const Barostat* barostat() const { return barostat_; }

 private:
  void record(int step);
  /// Per-step watchdog + checkpoint hooks; `nve` marks drift-checked steps.
  void step_hooks(int step, bool nve);

  ParticleSystem* system_;
  ForceField* field_;  ///< borrowed; restore() must invalidate its caches
  SimulationConfig config_;
  VelocityVerlet integrator_;
  std::unique_ptr<Thermostat> thermostat_;
  std::vector<Sample> samples_;
  HealthMonitor health_;
  Barostat* barostat_ = nullptr;  ///< borrowed
  int barostat_interval_ = 1;
  CheckpointManager* checkpoint_manager_ = nullptr;  ///< borrowed
  int checkpoint_interval_ = 0;
  int current_step_ = 0;
  int resume_step_ = 0;
};

}  // namespace mdm
