#include "core/thermostat.hpp"

#include <cmath>
#include <stdexcept>

namespace mdm {

void VelocityScalingThermostat::apply(ParticleSystem& system, double target_K,
                                      double /*dt_fs*/) {
  const double t = system.temperature();
  if (t <= 0.0) return;
  const double scale = std::sqrt(target_K / t);
  const double kinetic = system.kinetic_energy();
  for (auto& v : system.velocities()) v *= scale;
  record_scale(scale, kinetic);
}

BerendsenThermostat::BerendsenThermostat(double tau_fs) : tau_fs_(tau_fs) {
  if (!(tau_fs > 0.0)) throw std::invalid_argument("tau must be positive");
}

void BerendsenThermostat::apply(ParticleSystem& system, double target_K,
                                double dt_fs) {
  const double t = system.temperature();
  if (t <= 0.0) return;
  const double lambda2 = 1.0 + dt_fs / tau_fs_ * (target_K / t - 1.0);
  if (lambda2 <= 0.0) return;
  const double scale = std::sqrt(lambda2);
  const double kinetic = system.kinetic_energy();
  for (auto& v : system.velocities()) v *= scale;
  record_scale(scale, kinetic);
}

}  // namespace mdm
