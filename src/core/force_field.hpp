#pragma once

/// \file force_field.hpp
/// Force-provider interface shared by the reference solvers, the short-range
/// potentials and the MDM hardware-simulator backend. A force field
/// *accumulates* into the caller's force array so providers compose the way
/// the machine composes: host sums contributions from WINE-2, MDGRAPE-2 and
/// its own bonded-force loop.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/particle_system.hpp"
#include "util/vec3.hpp"

namespace mdm {

/// Scalar results of one force evaluation.
struct ForceResult {
  double potential = 0.0;  ///< potential energy contribution (eV)
  double virial = 0.0;     ///< sum over pairs of r_ij . f_ij (eV)

  ForceResult& operator+=(const ForceResult& o) {
    potential += o.potential;
    virial += o.virial;
    return *this;
  }
};

class ForceField {
 public:
  virtual ~ForceField() = default;

  /// Add this field's forces into `forces` (size == system.size()) and
  /// return the potential-energy/virial contribution.
  virtual ForceResult add_forces(const ParticleSystem& system,
                                 std::span<Vec3> forces) = 0;

  virtual std::string name() const = 0;

  /// Drop any internal state keyed to previously seen positions (cell-list
  /// displacement anchors, cached neighbour structures). Called after the
  /// caller teleports particles — checkpoint restore, backend handoff — so
  /// lazy rebuild heuristics cannot compare against stale reference
  /// positions. Stateless fields need not override.
  virtual void invalidate_caches() {}

  /// The periodic box changed (barostat coupling / Monte-Carlo volume move,
  /// core/barostat). Fields that re-read system.box() every evaluation need
  /// not override; solvers that cache box-derived quantities — Ewald's
  /// beta = alpha/L and its real-space cell geometry — must.
  virtual void set_box(double /*box*/) {}
};

/// Sum of several force fields (owned).
class CompositeForceField final : public ForceField {
 public:
  void add(std::unique_ptr<ForceField> field) {
    fields_.push_back(std::move(field));
  }

  std::size_t count() const { return fields_.size(); }
  ForceField& field(std::size_t i) { return *fields_.at(i); }

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override;
  void invalidate_caches() override;
  void set_box(double box) override;

 private:
  std::vector<std::unique_ptr<ForceField>> fields_;
};

/// Evaluate a force field from scratch: zero `forces`, then accumulate.
ForceResult evaluate_forces(ForceField& field, const ParticleSystem& system,
                            std::span<Vec3> forces);

}  // namespace mdm
