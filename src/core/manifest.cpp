#include "core/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "core/checkpoint_io.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"

namespace mdm {
namespace {

namespace fs = std::filesystem;

using ckptio::ByteReader;
using ckptio::ByteWriter;

constexpr std::uint64_t kMagic = 0x4d444d4a4f424d31ULL;  // "MDMJOBM1"

obs::Counter& writes_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.manifest.writes");
  return c;
}
obs::Counter& restores_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.manifest.restores");
  return c;
}
obs::Counter& corrupt_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.manifest.corrupt_skipped");
  return c;
}

/// Field-by-field (never whole-struct: padding bytes would leak
/// indeterminate memory into the CRC and the file image).
void put_sample(ByteWriter& w, const Sample& s) {
  w.put(static_cast<std::int32_t>(s.step));
  w.put(s.time_ps);
  w.put(s.temperature_K);
  w.put(s.kinetic_eV);
  w.put(s.potential_eV);
  w.put(s.total_eV);
  w.put(s.pressure_GPa);
}

Sample get_sample(ByteReader& r) {
  Sample s;
  s.step = r.get<std::int32_t>("sample step");
  s.time_ps = r.get<double>("sample time");
  s.temperature_K = r.get<double>("sample temperature");
  s.kinetic_eV = r.get<double>("sample kinetic");
  s.potential_eV = r.get<double>("sample potential");
  s.total_eV = r.get<double>("sample total");
  s.pressure_GPa = r.get<double>("sample pressure");
  return s;
}

}  // namespace

void write_manifest_file(const std::string& path,
                         const JobResumeManifest& manifest) {
  ByteWriter w;
  w.put(kMagic);
  w.put(kManifestVersion);
  w.put(manifest.job_key);
  w.put(manifest.step);
  w.put(manifest.total_steps);
  w.put(static_cast<std::uint64_t>(manifest.samples.size()));
  for (const auto& s : manifest.samples) put_sample(w, s);
  const std::uint32_t crc = ckptio::crc32(w.bytes().data(), w.bytes().size());
  w.put(crc);
  ckptio::write_file_atomic(path, w.bytes());
  writes_counter().add(1);
}

JobResumeManifest read_manifest_file(const std::string& path) {
  const std::vector<char> buf = ckptio::read_file(path);
  if (buf.size() < sizeof(std::uint64_t) + sizeof(std::uint32_t))
    throw CheckpointError("manifest '" + path + "' truncated at offset " +
                          std::to_string(buf.size()) + " reading header");
  std::uint64_t magic = 0;
  std::memcpy(&magic, buf.data(), sizeof magic);
  if (magic != kMagic)
    throw CheckpointError("'" + path + "' is not an MDM job manifest");
  const std::size_t crc_offset = buf.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, buf.data() + crc_offset, sizeof stored);
  const std::uint32_t computed = ckptio::crc32(buf.data(), crc_offset);
  if (stored != computed) {
    char detail[96];
    std::snprintf(detail, sizeof detail, "stored 0x%08x, computed 0x%08x",
                  stored, computed);
    throw CheckpointError("manifest CRC mismatch in '" + path +
                          "' at offset " + std::to_string(crc_offset) + ": " +
                          detail);
  }

  ByteReader r(buf, crc_offset, path);
  JobResumeManifest m;
  r.get<std::uint64_t>("magic");
  m.version = r.get<std::uint32_t>("version");
  if (m.version != kManifestVersion)
    throw CheckpointError("manifest '" + path + "' has unsupported version " +
                          std::to_string(m.version));
  m.job_key = r.get<std::uint64_t>("job key");
  m.step = r.get<std::uint64_t>("step");
  m.total_steps = r.get<std::uint32_t>("total steps");
  const auto n = r.get<std::uint64_t>("sample count");
  m.samples.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.samples.push_back(get_sample(r));
  restores_counter().add(1);
  return m;
}

ManifestStore::ManifestStore(std::string directory, int keep_generations)
    : dir_(std::move(directory)), keep_(keep_generations) {
  if (keep_ < 1)
    throw std::invalid_argument("ManifestStore: keep_generations >= 1");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw CheckpointError("cannot create manifest directory '" + dir_ +
                          "': " + ec.message());
}

std::string ManifestStore::path_for_step(std::uint64_t step) const {
  char name[40];
  std::snprintf(name, sizeof name, "manifest.%06llu.mdm",
                static_cast<unsigned long long>(step));
  return (fs::path(dir_) / name).string();
}

std::vector<std::string> ManifestStore::generations() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "manifest.", suffix = ".mdm";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    found.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [step, path] : found) out.push_back(std::move(path));
  return out;
}

std::string ManifestStore::write(const JobResumeManifest& manifest) {
  const std::string path = path_for_step(manifest.step);
  write_manifest_file(path, manifest);
  auto gens = generations();
  while (gens.size() > static_cast<std::size_t>(keep_)) {
    std::error_code ec;
    fs::remove(gens.front(), ec);
    gens.erase(gens.begin());
  }
  return path;
}

std::optional<JobResumeManifest> ManifestStore::restore_latest() const {
  const auto gens = generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    try {
      return read_manifest_file(*it);
    } catch (const CheckpointError& e) {
      corrupt_counter().add(1);
      MDM_LOG_WARN("manifest: skipping unreadable generation: %s", e.what());
    }
  }
  return std::nullopt;
}

std::optional<ResumePoint> find_resume_point(const std::string& directory,
                                             std::uint64_t expected_key,
                                             std::size_t expected_particles) {
  std::error_code ec;
  if (!fs::exists(directory, ec)) return std::nullopt;
  const ManifestStore manifests(directory);
  const CheckpointManager checkpoints(directory);
  const auto gens = manifests.generations();
  // Newest pair first; any invalid half (truncated mid-migration, pruned,
  // CRC-corrupt) walks to the next older manifest generation.
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    JobResumeManifest m;
    try {
      m = read_manifest_file(*it);
    } catch (const CheckpointError& e) {
      corrupt_counter().add(1);
      MDM_LOG_WARN("manifest: skipping unreadable generation: %s", e.what());
      continue;
    }
    if (expected_key != 0 && m.job_key != expected_key) {
      MDM_LOG_WARN("manifest '%s' belongs to another job (key mismatch); "
                   "skipping", it->c_str());
      continue;
    }
    try {
      CheckpointState state =
          read_checkpoint_file(checkpoints.path_for_step(m.step));
      if (state.step != m.step) continue;
      if (expected_particles != 0 && state.size() != expected_particles)
        continue;
      return ResumePoint{std::move(state), std::move(m)};
    } catch (const CheckpointError& e) {
      corrupt_counter().add(1);
      MDM_LOG_WARN("manifest: checkpoint for step %llu unusable (%s); "
                   "falling back to an older generation",
                   static_cast<unsigned long long>(m.step), e.what());
    }
  }
  return std::nullopt;
}

}  // namespace mdm
