#include "core/lattice.hpp"

#include <cmath>
#include <stdexcept>

#include "util/random.hpp"
#include "util/units.hpp"

namespace mdm {

ParticleSystem make_rock_salt_crystal(int n_cells, double lattice_constant,
                                      const Species& cation,
                                      const Species& anion) {
  if (n_cells < 1) throw std::invalid_argument("n_cells must be >= 1");
  const double a = lattice_constant;
  ParticleSystem system(n_cells * a);
  const int na = system.add_species(cation);
  const int cl = system.add_species(anion);

  // Rock salt: cations on the fcc lattice, anions displaced by a/2 along x.
  static constexpr double kFcc[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  for (int ix = 0; ix < n_cells; ++ix) {
    for (int iy = 0; iy < n_cells; ++iy) {
      for (int iz = 0; iz < n_cells; ++iz) {
        const Vec3 origin{ix * a, iy * a, iz * a};
        for (const auto& site : kFcc) {
          const Vec3 base = origin + Vec3{site[0] * a, site[1] * a, site[2] * a};
          system.add_particle(na, base);
          system.add_particle(cl, base + Vec3{0.5 * a, 0.0, 0.0});
        }
      }
    }
  }
  return system;
}

ParticleSystem make_nacl_crystal(int n_cells, double lattice_constant) {
  return make_rock_salt_crystal(n_cells, lattice_constant,
                                {"Na", units::kMassNa, +1.0},
                                {"Cl", units::kMassCl, -1.0});
}

void assign_maxwell_velocities(ParticleSystem& system, double temperature_K,
                               std::uint64_t seed) {
  Random rng(seed);
  auto velocities = system.velocities();
  for (std::size_t i = 0; i < system.size(); ++i) {
    // sigma^2 = kB T / m in these units: v [A/fs], kB T in eV -> multiply by
    // the acceleration conversion factor.
    const double sigma = std::sqrt(units::kBoltzmann * temperature_K *
                                   units::kAccelUnit / system.mass(i));
    velocities[i] = rng.normal_vec3(sigma);
  }
  system.zero_momentum();
  // Rescale to hit the requested temperature exactly despite the drift
  // removal and finite-sample noise.
  const double t_now = system.temperature();
  if (t_now > 0.0) {
    const double scale = std::sqrt(temperature_K / t_now);
    for (auto& v : velocities) v *= scale;
  }
}

}  // namespace mdm
