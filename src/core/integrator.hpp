#pragma once

/// \file integrator.hpp
/// Time integrators for Newton's equations — the "other operations" the MDM
/// host performs (sec. 3.1: update of positions and velocities). Velocity
/// Verlet is the default; leapfrog is provided for cross-checks.

#include <span>
#include <vector>

#include "core/force_field.hpp"
#include "core/particle_system.hpp"

namespace mdm {

/// Velocity-Verlet (kick-drift-kick) integrator. Forces are cached between
/// steps so each step costs exactly one force evaluation.
class VelocityVerlet {
 public:
  explicit VelocityVerlet(ForceField& field) : field_(&field) {}

  /// Advance one step of `dt_fs` femtoseconds. Returns the force-field
  /// result evaluated at the *new* positions.
  ForceResult step(ParticleSystem& system, double dt_fs);

  /// Forces at the current positions (valid after the first step()).
  std::span<const Vec3> forces() const { return forces_; }
  /// Potential energy at the current positions (valid after first step()).
  double potential() const { return last_.potential; }
  double virial() const { return last_.virial; }

  /// Drop the force cache; call after externally modifying positions or the
  /// force field so the next step() starts from fresh forces.
  void invalidate() { valid_ = false; }

  /// Ensure forces are evaluated for the current configuration (also fills
  /// potential()); used before sampling step 0. Returns true when a force
  /// evaluation actually ran (false when the cache was already valid).
  bool prime(ParticleSystem& system);

 private:
  ForceField* field_;
  std::vector<Vec3> forces_;
  ForceResult last_;
  bool valid_ = false;
};

/// Leapfrog integrator (velocities live at half steps). Equivalent accuracy
/// class to velocity Verlet; used by tests to cross-validate trajectories.
class Leapfrog {
 public:
  explicit Leapfrog(ForceField& field) : field_(&field) {}

  ForceResult step(ParticleSystem& system, double dt_fs);
  void invalidate() { valid_ = false; }

 private:
  ForceField* field_;
  std::vector<Vec3> forces_;
  bool valid_ = false;
};

}  // namespace mdm
