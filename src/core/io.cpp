#include "core/io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mdm {
namespace {

constexpr std::uint64_t kCheckpointMagic = 0x4d444d434b505431ULL;  // "MDMCKPT1"

void require(bool ok, const char* message) {
  if (!ok) throw std::runtime_error(message);
}

}  // namespace

void write_xyz_frame(const std::string& path, const ParticleSystem& system,
                     const std::string& comment, bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  require(out.good(), "cannot open xyz file for writing");
  out << system.size() << '\n' << comment << '\n';
  const auto positions = system.positions();
  for (std::size_t i = 0; i < system.size(); ++i) {
    const auto& s = system.species(system.type(i));
    out << s.name << ' ' << positions[i].x << ' ' << positions[i].y << ' '
        << positions[i].z << '\n';
  }
  require(out.good(), "xyz write failed");
}

void write_samples_csv(const std::string& path,
                       const std::vector<Sample>& samples) {
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "cannot open csv file for writing");
  out << "step,time_ps,temperature_K,kinetic_eV,potential_eV,total_eV,"
         "pressure_GPa\n";
  out.precision(12);
  for (const auto& s : samples) {
    out << s.step << ',' << s.time_ps << ',' << s.temperature_K << ','
        << s.kinetic_eV << ',' << s.potential_eV << ',' << s.total_eV << ','
        << s.pressure_GPa << '\n';
  }
  require(out.good(), "csv write failed");
}

void save_checkpoint(const std::string& path, const ParticleSystem& system) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "cannot open checkpoint for writing");
  const std::uint64_t magic = kCheckpointMagic;
  const std::uint64_t n = system.size();
  const double box = system.box();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&box), sizeof box);
  const auto pos = system.positions();
  const auto vel = system.velocities();
  out.write(reinterpret_cast<const char*>(pos.data()),
            static_cast<std::streamsize>(pos.size_bytes()));
  out.write(reinterpret_cast<const char*>(vel.data()),
            static_cast<std::streamsize>(vel.size_bytes()));
  require(out.good(), "checkpoint write failed");
}

void load_checkpoint(const std::string& path, ParticleSystem& system) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open checkpoint for reading");
  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  double box = 0.0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&box), sizeof box);
  require(in.good() && magic == kCheckpointMagic, "not an MDM checkpoint");
  require(n == system.size(), "checkpoint particle count mismatch");
  require(box == system.box(), "checkpoint box mismatch");
  auto pos = system.positions();
  auto vel = system.velocities();
  in.read(reinterpret_cast<char*>(pos.data()),
          static_cast<std::streamsize>(pos.size_bytes()));
  in.read(reinterpret_cast<char*>(vel.data()),
          static_cast<std::streamsize>(vel.size_bytes()));
  require(in.good(), "checkpoint truncated");
}

}  // namespace mdm
