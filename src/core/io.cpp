#include "core/io.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/checkpoint.hpp"

namespace mdm {
namespace {

/// Report a stream failure with the path and the OS-level cause. Checked
/// *after* writing (through an explicit flush), not just on open, so an
/// ENOSPC or short write is caught at write time rather than at next load.
void require_stream(std::ios& stream, const char* context,
                    const std::string& path) {
  if (stream.good()) return;
  const int err = errno;
  std::string msg = std::string(context) + " '" + path + "'";
  if (err != 0) msg += ": " + std::string(std::strerror(err));
  throw std::runtime_error(msg);
}

}  // namespace

void write_xyz_frame(const std::string& path, const ParticleSystem& system,
                     const std::string& comment, bool append) {
  errno = 0;
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  require_stream(out, "cannot open xyz file for writing", path);
  out << system.size() << '\n' << comment << '\n';
  const auto positions = system.positions();
  for (std::size_t i = 0; i < system.size(); ++i) {
    const auto& s = system.species(system.type(i));
    out << s.name << ' ' << positions[i].x << ' ' << positions[i].y << ' '
        << positions[i].z << '\n';
  }
  out.flush();
  require_stream(out, "xyz write failed for", path);
}

void write_samples_csv(const std::string& path,
                       const std::vector<Sample>& samples) {
  errno = 0;
  std::ofstream out(path, std::ios::trunc);
  require_stream(out, "cannot open csv file for writing", path);
  out << "step,time_ps,temperature_K,kinetic_eV,potential_eV,total_eV,"
         "pressure_GPa\n";
  out.precision(12);
  for (const auto& s : samples) {
    out << s.step << ',' << s.time_ps << ',' << s.temperature_K << ','
        << s.kinetic_eV << ',' << s.potential_eV << ',' << s.total_eV << ','
        << s.pressure_GPa << '\n';
  }
  out.flush();
  require_stream(out, "csv write failed for", path);
}

void save_checkpoint(const std::string& path, const ParticleSystem& system) {
  write_checkpoint_file(path, CheckpointState::capture(system));
}

void load_checkpoint(const std::string& path, ParticleSystem& system) {
  read_checkpoint_file(path).apply_to(system);
}

}  // namespace mdm
