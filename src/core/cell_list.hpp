#pragma once

/// \file cell_list.hpp
/// Link-cell (cell-index) spatial decomposition, Hockney & Eastwood style,
/// as used by the MDGRAPE-2 board (sec. 2.2, eqs. 7-8): the box is divided
/// into cells at least r_cut wide, a particle interacts with the particles
/// of its 27 neighbouring cells, and particle indices within a cell are
/// contiguous (the board's dual counters stream `jstart_c..jend_c` ranges).
///
/// The same structure also backs the fast software force loops, where a
/// half stencil restores Newton's third law (which the hardware forgoes).

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace mdm {

class CellList {
 public:
  /// Range [begin, end) into order() listing one cell's particles.
  struct Range {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t size() const { return end - begin; }
  };

  /// Prepare a grid for a cubic box of side `box` with cells at least
  /// `min_cell_side` wide ("a little larger than r_cut" in the paper).
  /// The grid has max(1, floor(box / min_cell_side))^3 cells.
  CellList(double box, double min_cell_side);

  /// Bin the given positions. Positions may be slightly outside the box;
  /// they are wrapped when binned. Must be called before any query.
  void build(std::span<const Vec3> positions);

  int cells_per_side() const { return m_; }
  int cell_count() const { return m_ * m_ * m_; }
  double cell_side() const { return box_ / m_; }
  double box() const { return box_; }

  /// Linear cell id from integer coordinates (wrapped into [0, m)).
  int cell_index(int ix, int iy, int iz) const;
  /// Cell id containing a position.
  int cell_of(const Vec3& r) const;

  /// Particle indices sorted by cell; within a cell the original order is
  /// preserved (counting sort is stable).
  std::span<const std::uint32_t> order() const { return order_; }
  /// Index range of cell `c` within order().
  Range cell_range(int c) const { return ranges_[c]; }
  /// Particle ids of cell `c`.
  std::span<const std::uint32_t> cell_particles(int c) const;

  /// The 27 neighbour cell ids of `c` (including `c` itself), in the fixed
  /// scan order of the hardware's cell-index counter. When the grid is
  /// narrower than 3 cells a neighbour id can repeat, exactly as a naive
  /// hardware scan would revisit the same physical cell.
  std::array<int, 27> neighbors27(int c) const;

  /// True when the 27-cell stencil visits each distinct cell once (grid at
  /// least 3 cells wide); required by the half-stencil pair iteration.
  bool stencil_unique() const { return m_ >= 3; }

  /// Visit every unordered pair (i, j) with minimum-image distance below
  /// `cutoff` exactly once: fn(i, j, delta, r2) where delta = ri - rj
  /// (minimum image) and r2 = |delta|^2. Falls back to the O(N^2) double
  /// loop when the grid is too small for the half stencil.
  void for_each_pair_within(
      std::span<const Vec3> positions, double cutoff,
      const std::function<void(std::uint32_t, std::uint32_t, const Vec3&,
                               double)>& fn) const;

 private:
  double box_;
  int m_;
  std::vector<std::uint32_t> order_;
  std::vector<Range> ranges_;
};

}  // namespace mdm
