#pragma once

/// \file cell_list.hpp
/// Link-cell (cell-index) spatial decomposition, Hockney & Eastwood style,
/// as used by the MDGRAPE-2 board (sec. 2.2, eqs. 7-8): the box is divided
/// into cells at least r_cut wide, a particle interacts with the particles
/// of its 27 neighbouring cells, and particle indices within a cell are
/// contiguous (the board's dual counters stream `jstart_c..jend_c` ranges).
///
/// The same structure also backs the fast software force loops, where a
/// half stencil restores Newton's third law (which the hardware forgoes).
///
/// Pair iteration comes in two forms:
///  * `for_each_pair_within(positions, cutoff, fn)` — serial, templated on
///    the visitor so the pair kernel inlines into the traversal (no
///    std::function indirection on the hottest loop in the repo);
///  * `parallel_for_each_pair(pool, scratch, positions, cutoff, forces,
///    kernel)` — the same traversal partitioned over a fixed set of cell
///    chunks executed on a ThreadPool, with per-chunk force scratch buffers
///    reduced in chunk order. The chunk partition depends only on the grid
///    (never on the pool size), so forces and tallies are bit-identical for
///    ANY pool size, including the inline serial path (pool == nullptr).

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace mdm {

/// Per-chunk scalar sums of a pair sweep, reduced in fixed chunk order.
struct PairTally {
  double potential = 0.0;
  double virial = 0.0;
  std::uint64_t pairs = 0;

  PairTally& operator+=(const PairTally& o) {
    potential += o.potential;
    virial += o.virial;
    pairs += o.pairs;
    return *this;
  }
};

/// Reusable scratch arena for `CellList::parallel_for_each_pair`: one force
/// buffer + tally per logical chunk, sized once and reused across steps (the
/// steady-state step loop performs no allocations). Buffers are kept
/// all-zero outside each chunk's dirty slot range, so only the touched
/// ranges are reduced and re-zeroed after every sweep.
class PairScratch {
 public:
  /// Ensure capacity for `chunks` buffers of `slots` entries each. Only
  /// grows (or first-time sizes) storage; steady-state calls are no-ops.
  void ensure(int chunks, std::size_t slots) {
    if (chunks == chunks_ && slots == slots_) return;
    chunks_ = chunks;
    slots_ = slots;
    forces_.assign(static_cast<std::size_t>(chunks) * slots, Vec3{});
    dirty_.assign(static_cast<std::size_t>(chunks), {0, 0});
    tally_.assign(static_cast<std::size_t>(chunks), PairTally{});
  }

  int chunks() const { return chunks_; }
  std::size_t slots() const { return slots_; }

 private:
  friend class CellList;

  std::span<Vec3> chunk_forces(int c) {
    return {forces_.data() + static_cast<std::size_t>(c) * slots_, slots_};
  }

  int chunks_ = 0;
  std::size_t slots_ = 0;
  std::vector<Vec3> forces_;  ///< [chunk * slots + slot], zero outside dirty
  /// Half-open slot range each chunk wrote this sweep.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dirty_;
  std::vector<PairTally> tally_;
};

class CellList {
 public:
  /// Logical chunk count of the parallel pair sweep. Fixed (independent of
  /// the pool size) so the chunk-ordered reduction gives bit-identical
  /// results at any thread count; small enough that the scratch arena stays
  /// a few hundred bytes per particle.
  static constexpr int kPairChunks = 16;

  /// Range [begin, end) into order() listing one cell's particles.
  struct Range {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t size() const { return end - begin; }
  };

  /// Prepare a grid for a cubic box of side `box` with cells at least
  /// `min_cell_side` wide ("a little larger than r_cut" in the paper).
  /// The grid has max(1, floor(box / min_cell_side))^3 cells.
  CellList(double box, double min_cell_side);

  /// Bin the given positions. Positions may be slightly outside the box;
  /// they are wrapped when binned. Must be called before any query.
  /// Internal buffers are reused across rebuilds (the integrator loop
  /// rebuilds every step), so steady-state rebuilds allocate nothing.
  void build(std::span<const Vec3> positions);

  /// Rebuild only when necessary: skip the counting sort while no particle
  /// has moved more than half the skin (cell_side - cutoff) since the last
  /// full build, tracked against anchored positions. Safe because a pair
  /// within `cutoff` then has anchor separation <= cutoff + 2 * skin/2 =
  /// cell_side, so its (stale) cells are still within the 27-cell stencil;
  /// pair distances are always recomputed from current positions, so no
  /// spurious pairs appear either. Returns true if a rebuild ran.
  ///
  /// Skipping keeps the binning - and therefore the traversal order and
  /// summation order - bit-identical across the skipped steps, but it makes
  /// the rebuild schedule depend on the trajectory history, which is not
  /// checkpointed. The reference/emulator paths therefore keep eager
  /// per-step build() (bit-identical restart, DESIGN.md §8); the native
  /// backend, whose contract is envelope accuracy rather than bit equality,
  /// uses build_auto (DESIGN.md §11).
  bool build_auto(std::span<const Vec3> positions, double cutoff);

  /// Forget the build_auto anchor so the next build_auto performs a full
  /// rebuild. Must be called whenever positions change by means other than
  /// integration drift (checkpoint restore, backend handoff): the half-skin
  /// displacement test against a pre-restore anchor is meaningless and could
  /// wrongly skip the rebuild, leaving the binning — and the traversal /
  /// summation order derived from it — keyed to the dead trajectory.
  void invalidate() { built_ = false; }

  int cells_per_side() const { return m_; }
  int cell_count() const { return m_ * m_ * m_; }
  double cell_side() const { return box_ / m_; }
  double box() const { return box_; }

  /// Linear cell id from integer coordinates (wrapped into [0, m)).
  int cell_index(int ix, int iy, int iz) const;
  /// Cell id containing a position.
  int cell_of(const Vec3& r) const;

  /// Particle indices sorted by cell; within a cell the original order is
  /// preserved (counting sort is stable).
  std::span<const std::uint32_t> order() const { return order_; }
  /// Index range of cell `c` within order().
  Range cell_range(int c) const { return ranges_[c]; }
  /// Particle ids of cell `c`.
  std::span<const std::uint32_t> cell_particles(int c) const;

  /// The 27 neighbour cell ids of `c` (including `c` itself), in the fixed
  /// scan order of the hardware's cell-index counter. When the grid is
  /// narrower than 3 cells a neighbour id can repeat, exactly as a naive
  /// hardware scan would revisit the same physical cell.
  std::array<int, 27> neighbors27(int c) const;

  /// True when the 27-cell stencil visits each distinct cell once (grid at
  /// least 3 cells wide); required by the half-stencil pair iteration.
  bool stencil_unique() const { return m_ >= 3; }

  /// Grid unusable for the half stencil: pair traversal runs the plain
  /// O(N^2) minimum-image loop instead. Public so external kernels (the
  /// native backend) can mirror the traversal mode.
  bool use_n2_fallback(double cutoff) const {
    return !stencil_unique() || cell_side() < cutoff;
  }

  /// Half stencil: 13 of the 26 neighbour offsets, chosen so each unordered
  /// cell pair is visited once. Shared with the native backend's sweep so
  /// both traversals enumerate cell pairs in the same order.
  static constexpr int kHalfStencil[13][3] = {
      {1, 0, 0},   {1, 1, 0},  {0, 1, 0},  {-1, 1, 0}, {1, 0, 1},
      {1, 1, 1},   {0, 1, 1},  {-1, 1, 1}, {1, -1, 1}, {0, -1, 1},
      {-1, -1, 1}, {0, 0, 1},  {-1, 0, 1}};

  /// Visit every unordered pair (i, j) with minimum-image distance below
  /// `cutoff` exactly once: fn(i, j, delta, r2) where delta = ri - rj
  /// (minimum image) and r2 = |delta|^2. Falls back to the O(N^2) double
  /// loop when the grid is too small for the half stencil. Templated on the
  /// visitor so the pair kernel inlines into the traversal.
  template <typename Fn>
  void for_each_pair_within(std::span<const Vec3> positions, double cutoff,
                            Fn&& fn) const {
    const double cutoff2 = cutoff * cutoff;
    if (use_n2_fallback(cutoff)) {
      visit_n2_range(positions, cutoff2, 0, positions.size(),
                     [&fn](std::uint32_t i, std::uint32_t j, std::uint32_t,
                           std::uint32_t, const Vec3& d, double r2) {
                       fn(i, j, d, r2);
                     });
      return;
    }
    visit_cell_range(positions, cutoff2, 0, cell_count(),
                     [&fn](std::uint32_t i, std::uint32_t j, std::uint32_t,
                           std::uint32_t, const Vec3& d, double r2) {
                       fn(i, j, d, r2);
                     });
  }

  /// Parallel half-stencil pair sweep. The kernel sees each in-range pair
  /// exactly once:
  ///
  ///   kernel(i, j, delta, r2, f, tally)
  ///
  /// and must write the pair force on i into `f` (the engine adds f to i
  /// and -f to j, Newton's third law) and may add scalars to `tally`
  /// (potential/virial; `tally.pairs` is counted by the engine). Forces are
  /// accumulated into per-chunk scratch buffers and reduced into `forces`
  /// (indexed like `positions`) in fixed chunk order; the chunk partition is
  /// a pure function of the grid, so the result is bit-identical for any
  /// pool size. `pool == nullptr` runs the identical chunked computation
  /// inline. Returns the chunk-order-reduced tally.
  template <typename Kernel>
  PairTally parallel_for_each_pair(ThreadPool* pool, PairScratch& scratch,
                                   std::span<const Vec3> positions,
                                   double cutoff, std::span<Vec3> forces,
                                   Kernel&& kernel) const {
    const double cutoff2 = cutoff * cutoff;
    const std::size_t n = positions.size();
    const bool n2 = use_n2_fallback(cutoff);
    const std::size_t units = n2 ? n : static_cast<std::size_t>(cell_count());
    const int chunks =
        static_cast<int>(std::min<std::size_t>(kPairChunks, units ? units : 1));
    scratch.ensure(chunks, n);

    auto run_chunk = [&](std::size_t k) {
      auto buf = scratch.chunk_forces(static_cast<int>(k));
      // Track the touched slot range so reduction and re-zeroing only walk
      // slots this chunk wrote.
      std::uint32_t lo = static_cast<std::uint32_t>(n);
      std::uint32_t hi = 0;
      PairTally tally;
      auto sink = [&](std::uint32_t i, std::uint32_t j, std::uint32_t slot_i,
                      std::uint32_t slot_j, const Vec3& d, double r2) {
        Vec3 f{};
        kernel(i, j, d, r2, f, tally);
        buf[slot_i] += f;
        buf[slot_j] -= f;
        lo = std::min({lo, slot_i, slot_j});
        hi = std::max({hi, slot_i + 1, slot_j + 1});
        ++tally.pairs;
      };
      if (n2) {
        const std::size_t begin = k * n / chunks;
        const std::size_t end = (k + 1) * n / chunks;
        visit_n2_range(positions, cutoff2, begin, end, sink);
      } else {
        const int c_begin = static_cast<int>(k * units / chunks);
        const int c_end = static_cast<int>((k + 1) * units / chunks);
        visit_cell_range(positions, cutoff2, c_begin, c_end, sink);
      }
      scratch.dirty_[k] = {lo, lo < hi ? hi : lo};
      scratch.tally_[k] = tally;
    };

    if (pool && pool->size() > 1) {
      pool_for(
          *pool, static_cast<std::size_t>(chunks),
          [&](unsigned, std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) run_chunk(k);
          },
          /*min_parallel=*/0);
    } else {
      for (std::size_t k = 0; k < static_cast<std::size_t>(chunks); ++k)
        run_chunk(k);
    }

    // Chunk-ordered reduction; buffers are re-zeroed for the next sweep.
    PairTally total;
    for (int k = 0; k < chunks; ++k) {
      auto buf = scratch.chunk_forces(k);
      const auto [lo, hi] = scratch.dirty_[k];
      if (n2) {
        for (std::uint32_t s = lo; s < hi; ++s) {
          forces[s] += buf[s];
          buf[s] = Vec3{};
        }
      } else {
        for (std::uint32_t s = lo; s < hi; ++s) {
          forces[order_[s]] += buf[s];
          buf[s] = Vec3{};
        }
      }
      total += scratch.tally_[k];
    }
    return total;
  }

 private:
  /// O(N^2) fallback over i in [i_begin, i_end), j > i. The sink receives
  /// (i, j, slot_i, slot_j, delta, r2); slots equal particle ids here.
  template <typename Sink>
  void visit_n2_range(std::span<const Vec3> positions, double cutoff2,
                      std::size_t i_begin, std::size_t i_end,
                      Sink&& sink) const {
    const std::size_t n = positions.size();
    for (std::size_t i = i_begin; i < i_end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const Vec3 d = minimum_image(positions[i], positions[j], box_);
        const double r2 = norm2(d);
        if (r2 < cutoff2)
          sink(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
               static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
               d, r2);
      }
    }
  }

  /// Half-stencil traversal of cells [c_begin, c_end). The sink receives
  /// (i, j, slot_i, slot_j, delta, r2) where slots index order().
  template <typename Sink>
  void visit_cell_range(std::span<const Vec3> positions, double cutoff2,
                        int c_begin, int c_end, Sink&& sink) const {
    for (int c = c_begin; c < c_end; ++c) {
      const Range own_range = ranges_[c];
      const auto own = cell_particles(c);
      // Pairs within the cell.
      for (std::size_t a = 0; a < own.size(); ++a) {
        for (std::size_t b = a + 1; b < own.size(); ++b) {
          const std::uint32_t i = own[a];
          const std::uint32_t j = own[b];
          const Vec3 d = minimum_image(positions[i], positions[j], box_);
          const double r2 = norm2(d);
          if (r2 < cutoff2)
            sink(i, j, own_range.begin + static_cast<std::uint32_t>(a),
                 own_range.begin + static_cast<std::uint32_t>(b), d, r2);
        }
      }
      // Pairs with the 13 forward neighbour cells.
      const int ix = c % m_;
      const int iy = (c / m_) % m_;
      const int iz = c / (m_ * m_);
      for (const auto& off : kHalfStencil) {
        const int nc = cell_index(ix + off[0], iy + off[1], iz + off[2]);
        const Range other_range = ranges_[nc];
        const auto other = cell_particles(nc);
        for (std::size_t a = 0; a < own.size(); ++a) {
          const std::uint32_t i = own[a];
          for (std::size_t b = 0; b < other.size(); ++b) {
            const std::uint32_t j = other[b];
            const Vec3 d = minimum_image(positions[i], positions[j], box_);
            const double r2 = norm2(d);
            if (r2 < cutoff2)
              sink(i, j, own_range.begin + static_cast<std::uint32_t>(a),
                   other_range.begin + static_cast<std::uint32_t>(b), d, r2);
          }
        }
      }
    }
  }

  double box_;
  int m_;
  std::vector<std::uint32_t> order_;
  std::vector<Range> ranges_;
  /// build() scratch, reused across rebuilds.
  std::vector<std::uint32_t> build_cell_of_;
  std::vector<std::uint32_t> build_counts_;
  std::vector<std::uint32_t> build_cursor_;
  /// build_auto() state: positions at the last full build.
  std::vector<Vec3> anchor_;
  bool built_ = false;
};

}  // namespace mdm
