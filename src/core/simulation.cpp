#include "core/simulation.hpp"

#include <cmath>
#include <stdexcept>

#include "core/barostat.hpp"
#include "core/checkpoint.hpp"
#include "core/observables.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"

namespace mdm {

Simulation::Simulation(ParticleSystem& system, ForceField& field,
                       SimulationConfig config)
    : system_(&system), field_(&field), config_(config), integrator_(field),
      health_(config.health) {
  if (config_.dt_fs <= 0.0) throw std::invalid_argument("dt must be positive");
  if (config_.sample_interval < 1 || config_.rescale_interval < 1)
    throw std::invalid_argument("intervals must be >= 1");
  switch (config_.thermostat) {
    case ThermostatKind::kVelocityScaling:
      thermostat_ = std::make_unique<VelocityScalingThermostat>();
      break;
    case ThermostatKind::kBerendsen:
      thermostat_ = std::make_unique<BerendsenThermostat>(
          config_.thermostat_tau_fs);
      break;
  }
}

void Simulation::set_barostat(Barostat* barostat, int interval) {
  if (barostat && interval < 1)
    throw std::invalid_argument("barostat interval must be >= 1");
  barostat_ = barostat;
  barostat_interval_ = interval;
}

void Simulation::enable_checkpointing(CheckpointManager* manager,
                                      int interval) {
  checkpoint_manager_ = manager;
  checkpoint_interval_ = interval;
}

CheckpointState Simulation::checkpoint_state() const {
  auto state = CheckpointState::capture(
      *system_, static_cast<std::uint64_t>(current_step_),
      current_step_ * config_.dt_fs * 1e-3);
  state.thermostat = thermostat_->state();
  if (barostat_) state.barostat = barostat_->state();
  return state;
}

void Simulation::restore(const CheckpointState& state) {
  if (barostat_ && state.box != system_->box()) {
    // An NPT run's volume drifts from the construction-time box; adopt the
    // checkpointed edge before apply_to's exact-box check.
    system_->set_box(state.box);
    field_->set_box(state.box);
  }
  state.apply_to(*system_);
  thermostat_->set_state(state.thermostat);
  if (barostat_) barostat_->set_state(state.barostat);
  current_step_ = resume_step_ = static_cast<int>(state.step);
  integrator_.invalidate();
  // The restore teleported every particle: lazy position-anchored caches in
  // the force field (native cell-list displacement tracking) must not
  // compare the restored coordinates against the dead trajectory's anchor.
  field_->invalidate_caches();
  health_.reset_energy_reference();
}

void Simulation::record(int step) {
  obs::ScopedPhase phase(obs::Phase::kHost);
  obs::TraceSpan span("sim.sample");
  Sample s;
  s.step = step;
  s.time_ps = step * config_.dt_fs * 1e-3;
  s.temperature_K = system_->temperature();
  s.kinetic_eV = system_->kinetic_energy();
  s.potential_eV = integrator_.potential();
  s.total_eV = s.kinetic_eV + s.potential_eV;
  s.pressure_GPa =
      pressure(*system_, integrator_.virial()) * kEvPerA3InGPa;
  samples_.push_back(s);
}

void Simulation::step_hooks(int step, bool nve) {
  current_step_ = step;
  if (config_.health.check_finite) {
    health_.check_finite_span(system_->positions(), "position", step);
    health_.check_finite_span(system_->velocities(), "velocity", step);
    health_.check_finite_span(integrator_.forces(), "force", step);
  }
  if (!samples_.empty() && samples_.back().step == step) {
    const Sample& s = samples_.back();
    health_.check_temperature(s.temperature_K, step);
    if (nve) health_.observe_energy(s.total_eV, step);
  }
  if (checkpoint_manager_ && checkpoint_interval_ > 0 &&
      step % checkpoint_interval_ == 0 && step > resume_step_)
    checkpoint_manager_->write(checkpoint_state());
}

void Simulation::run(const std::function<void(const Sample&)>& observer) {
  {
    // prime() evaluates the forces once before the loop — count it as step
    // 0 so the Table-1 phase accumulators line up with the step count.
    // After a restore the step-0 sample is skipped: the restored run's
    // samples continue from resume_step + 1.
    obs::TraceSpan span("sim.step");
    const std::uint64_t t0 = obs::Trace::now_ns();
    integrator_.prime(*system_);
    if (resume_step_ == 0) record(0);
    obs::record_step(static_cast<double>(obs::Trace::now_ns() - t0) * 1e-6);
  }
  if (resume_step_ == 0 && observer) observer(samples_.back());

  const int total = config_.nvt_steps + config_.nve_steps;
  for (int step = resume_step_ + 1; step <= total; ++step) {
    obs::TraceSpan span("sim.step");
    const std::uint64_t t0 = obs::Trace::now_ns();
    integrator_.step(*system_, config_.dt_fs);
    const bool nvt_phase = step <= config_.nvt_steps;
    if (nvt_phase && step % config_.rescale_interval == 0) {
      obs::ScopedPhase thermostat_phase(obs::Phase::kHost);
      obs::TraceSpan thermostat_span("sim.thermostat");
      const double target = config_.temperature_schedule
                                ? config_.temperature_schedule(step)
                                : config_.temperature_K;
      thermostat_->apply(*system_, target, config_.dt_fs);
    }
    if (step % config_.sample_interval == 0) {
      record(step);
      if (observer) observer(samples_.back());
    }
    if (barostat_ && step % barostat_interval_ == 0) {
      // Before step_hooks so a checkpoint written this step captures the
      // post-coupling box and barostat state — the resumed run then skips
      // straight to step + 1 without replaying (or losing) this move.
      obs::ScopedPhase barostat_phase(obs::Phase::kHost);
      obs::TraceSpan barostat_span("sim.barostat");
      const ForceResult last{integrator_.potential(), integrator_.virial()};
      if (barostat_->apply(*system_, *field_, last,
                           barostat_interval_ * config_.dt_fs)) {
        integrator_.invalidate();
        field_->invalidate_caches();
      }
    }
    step_hooks(step, /*nve=*/!nvt_phase);
    obs::record_step(static_cast<double>(obs::Trace::now_ns() - t0) * 1e-6);
  }
}

void Simulation::run_nve(int steps,
                         const std::function<void(const Sample&)>& observer) {
  {
    obs::TraceSpan span("sim.step");
    const std::uint64_t t0 = obs::Trace::now_ns();
    const bool primed = integrator_.prime(*system_);
    if (samples_.empty()) record(0);
    if (primed)
      obs::record_step(static_cast<double>(obs::Trace::now_ns() - t0) * 1e-6);
  }
  if (!samples_.empty() && samples_.back().step == 0 && observer)
    observer(samples_.back());
  const int start = samples_.empty() ? 0 : samples_.back().step;
  for (int step = start + 1; step <= start + steps; ++step) {
    obs::TraceSpan span("sim.step");
    const std::uint64_t t0 = obs::Trace::now_ns();
    integrator_.step(*system_, config_.dt_fs);
    if (step % config_.sample_interval == 0) {
      record(step);
      if (observer) observer(samples_.back());
    }
    step_hooks(step, /*nve=*/true);
    obs::record_step(static_cast<double>(obs::Trace::now_ns() - t0) * 1e-6);
  }
}

std::vector<Sample> Simulation::nve_samples() const {
  std::vector<Sample> out;
  for (const auto& s : samples_)
    if (s.step >= config_.nvt_steps) out.push_back(s);
  return out;
}

double Simulation::nve_energy_drift() const {
  const auto nve = nve_samples();
  if (nve.size() < 2) return 0.0;
  const double e0 = nve.front().total_eV;
  double worst = 0.0;
  for (const auto& s : nve)
    worst = std::max(worst, std::fabs(s.total_eV - e0));
  return worst / std::fabs(e0);
}

}  // namespace mdm
