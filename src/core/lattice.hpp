#pragma once

/// \file lattice.hpp
/// Rock-salt NaCl supercell builder matching the paper's setups: the runs in
/// section 5 start from the crystal state at the melt density N/L^3 =
/// 0.030645 1/A^3 (lattice constant a = 6.3910 A, 8 ions per cubic cell).
/// The paper's own system sizes are n^3 supercells of this cell:
/// n = 24 -> 110,592 ions, n = 57 -> 1,481,544, n = 133 -> 18,821,096
/// (and 133 * a = 850 A, the quoted box).

#include <cstdint>

#include "core/particle_system.hpp"

namespace mdm {

/// Lattice constant reproducing the paper's density (A).
inline constexpr double kPaperLatticeConstant = 6.391047;

/// Build an n x n x n rock-salt supercell (8 ions per cubic unit cell:
/// 4 cations on the fcc sites, 4 anions on the interleaved fcc sites).
/// Species 0 = cation, species 1 = anion. Used by the scenario engine for
/// any alkali-halide lattice (NaCl, KCl, ...).
ParticleSystem make_rock_salt_crystal(int n_cells, double lattice_constant,
                                      const Species& cation,
                                      const Species& anion);

/// Build an n x n x n rock-salt supercell (8 ions per cubic unit cell:
/// 4 Na+ on the fcc sites, 4 Cl- on the interleaved fcc sites).
/// Species 0 = Na+ (charge +1), species 1 = Cl- (charge -1).
ParticleSystem make_nacl_crystal(int n_cells,
                                 double lattice_constant = kPaperLatticeConstant);

/// Draw Maxwell-Boltzmann velocities at temperature `temperature_K`, remove
/// the center-of-mass drift, and rescale so the instantaneous temperature is
/// exactly `temperature_K`. Deterministic for a given seed.
void assign_maxwell_velocities(ParticleSystem& system, double temperature_K,
                               std::uint64_t seed);

/// Number of ions in an n^3 supercell (8 n^3).
constexpr long long nacl_ion_count(int n_cells) {
  return 8LL * n_cells * n_cells * n_cells;
}

}  // namespace mdm
