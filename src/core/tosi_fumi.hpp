#pragma once

/// \file tosi_fumi.hpp
/// Tosi-Fumi (Born-Mayer-Huggins) rigid-ion potential used by the paper
/// (eq. 15) for molten NaCl:
///
///   phi_ij(r) = q_i q_j / r                     (Coulomb - handled by Ewald)
///             + A_ij b exp((sigma_i + sigma_j - r) / rho)   (overlap repulsion)
///             - c_ij / r^6 - d_ij / r^8                     (dispersion)
///
/// This module evaluates the *short-range* (non-Coulomb) part with the same
/// r_cut used for the real-space Ewald term. On the real machine these terms
/// run as extra MDGRAPE-2 passes with g(x)-tables (see mdgrape2/gtables);
/// here they also exist as a clean double-precision force field that serves
/// as the reference for those passes.

#include <array>
#include <optional>

#include "core/cell_list.hpp"
#include "core/force_field.hpp"
#include "util/thread_pool.hpp"

namespace mdm {

/// Per-pair Tosi-Fumi constants (energies eV, lengths A).
struct TosiFumiParameters {
  static constexpr int kMaxSpecies = 4;

  int species_count = 0;
  /// Born-Mayer prefactor B_ij = A_ij * b * exp((sigma_i + sigma_j)/rho), eV.
  std::array<std::array<double, kMaxSpecies>, kMaxSpecies> born_prefactor{};
  double rho = 0.0;  ///< softness parameter, A
  /// Dispersion coefficients c_ij (eV A^6) and d_ij (eV A^8).
  std::array<std::array<double, kMaxSpecies>, kMaxSpecies> c6{};
  std::array<std::array<double, kMaxSpecies>, kMaxSpecies> d8{};

  /// Canonical Fumi-Tosi 1964 parameters for NaCl (species 0 = Na,
  /// 1 = Cl), converted from the customary CGS tabulation:
  /// b = 3.38e-20 J, rho = 0.317 A, sigma_Na = 1.170 A, sigma_Cl = 1.585 A,
  /// Pauling factors A_++ = 1.25, A_+- = 1, A_-- = 0.75,
  /// c in 1e-79 J m^6: {1.68, 11.2, 116}, d in 1e-99 J m^8: {0.8, 13.9, 233}.
  static TosiFumiParameters nacl();

  /// Fumi-Tosi 1964 parameters for KCl (species 0 = K, 1 = Cl):
  /// rho = 0.337 A, sigma_K = 1.463 A, sigma_Cl = 1.585 A, same Pauling
  /// factors, c in 1e-79 J m^6: {24.3, 48, 124.5}, d in 1e-99 J m^8:
  /// {24, 73, 250}.
  static TosiFumiParameters kcl();

  /// Short-range pair energy phi_sr(r) in eV (no Coulomb term).
  double pair_energy(int ti, int tj, double r) const;
  /// Scalar s(r) = -phi_sr'(r)/r, so the force on i is s(r) * r_ij.
  double pair_force_over_r(int ti, int tj, double r) const;
};

/// Cell-list-accelerated evaluation of the short-range Tosi-Fumi terms with
/// plain truncation at r_cut (the paper truncates "the real-space part of
/// the Coulomb and other forces" at the same 26.4 A cutoff).
class TosiFumiShortRange final : public ForceField {
 public:
  /// `shift_energy` subtracts phi_sr(r_cut) per pair so the truncated
  /// potential is continuous at the cutoff; forces are unchanged. Plain
  /// truncation (the paper's choice) is the default; the shifted form is
  /// useful when strict NVE energy conservation matters on small boxes
  /// where a coordination shell sits near r_cut.
  TosiFumiShortRange(TosiFumiParameters params, double r_cut,
                     bool shift_energy = false);

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "tosi-fumi-short-range"; }

  double r_cut() const { return r_cut_; }
  bool shift_energy() const { return shift_energy_; }
  const TosiFumiParameters& parameters() const { return params_; }

  /// Run the pair sweep on a thread pool (nullptr = serial). Forces are
  /// bit-identical to the serial sweep at any pool size (fixed-chunk
  /// reduction, see CellList::parallel_for_each_pair).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  TosiFumiParameters params_;
  double r_cut_;
  bool shift_energy_;
  ThreadPool* pool_ = nullptr;
  /// Persistent cell list + force scratch, reused across steps (rebuilt if
  /// the system's box changes). Steady-state steps allocate nothing.
  std::optional<CellList> cells_;
  PairScratch scratch_;
  /// phi_sr(r_cut) per type pair, subtracted when shift_energy_ is set.
  std::array<std::array<double, TosiFumiParameters::kMaxSpecies>,
             TosiFumiParameters::kMaxSpecies>
      shift_{};
};

}  // namespace mdm
