#include "core/barostat.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/observables.hpp"
#include "util/units.hpp"

namespace mdm {

namespace {

double instantaneous_pressure_GPa(const ParticleSystem& system,
                                  double virial) {
  return pressure(system, virial) * kEvPerA3InGPa;
}

}  // namespace

BerendsenBarostat::BerendsenBarostat(double target_GPa, double tau_fs,
                                     double compressibility_per_GPa)
    : target_GPa_(target_GPa),
      tau_fs_(tau_fs),
      kappa_per_GPa_(compressibility_per_GPa) {
  if (!(tau_fs > 0.0) || !(compressibility_per_GPa > 0.0))
    throw std::invalid_argument(
        "BerendsenBarostat: tau and compressibility must be positive");
}

bool BerendsenBarostat::apply(ParticleSystem& system, ForceField& field,
                              const ForceResult& last,
                              double coupling_dt_fs) {
  ++state_.applications;
  const double p_GPa = instantaneous_pressure_GPa(system, last.virial);
  double mu3 =
      1.0 - kappa_per_GPa_ * (coupling_dt_fs / tau_fs_) * (target_GPa_ - p_GPa);
  mu3 = std::clamp(mu3, kMuCubedMin, kMuCubedMax);
  const double mu = std::cbrt(mu3);
  state_.last_scale = mu;
  state_.record_box(system.box() * mu);
  if (mu == 1.0) return false;
  system.rescale(mu);
  field.set_box(system.box());
  return true;
}

MonteCarloBarostat::MonteCarloBarostat(double target_GPa, double temperature_K,
                                       double max_frac_dv, std::uint64_t seed)
    : target_GPa_(target_GPa),
      temperature_K_(temperature_K),
      max_frac_dv_(max_frac_dv),
      rng_(seed) {
  if (!(temperature_K > 0.0))
    throw std::invalid_argument("MonteCarloBarostat: temperature must be > 0");
  if (!(max_frac_dv > 0.0) || !(max_frac_dv < 0.5))
    throw std::invalid_argument(
        "MonteCarloBarostat: max fractional dV must be in (0, 0.5)");
  state_.rng = rng_.state();
}

bool MonteCarloBarostat::apply(ParticleSystem& system, ForceField& field,
                               const ForceResult& last,
                               double /*coupling_dt_fs*/) {
  ++state_.applications;
  ++state_.attempts;

  const double box_old = system.box();
  const double v_old = box_old * box_old * box_old;
  const double u_old = last.potential;

  // Linear-in-V proposal; both draws happen unconditionally so the stream
  // position is a function of the attempt count alone.
  const double dv = rng_.uniform(-max_frac_dv_, max_frac_dv_) * v_old;
  const double accept_draw = rng_.uniform();
  state_.rng = rng_.state();

  const double v_new = v_old + dv;
  const double scale = std::cbrt(v_new / v_old);

  const auto positions = system.positions();
  saved_positions_.assign(positions.begin(), positions.end());
  force_scratch_.assign(system.size(), Vec3{});

  system.rescale(scale);
  field.set_box(system.box());
  const ForceResult trial = evaluate_forces(field, system, force_scratch_);

  // Metropolis in the isobaric-isothermal ensemble:
  //   acc = exp(-(dU + P dV) / kT + N ln(Vn / Vo))
  const double kT = units::kBoltzmann * temperature_K_;
  const double p_eVA3 = target_GPa_ / kEvPerA3InGPa;
  const double n = static_cast<double>(system.size());
  const double log_acc = -(trial.potential - u_old + p_eVA3 * dv) / kT +
                         n * std::log(v_new / v_old);

  if (std::log(accept_draw) <= log_acc) {
    ++state_.accepts;
    state_.last_scale = scale;
    state_.record_box(system.box());
    return true;
  }

  // Reject: restore the exact pre-move geometry. rescale(1/scale) would
  // accumulate rounding in every coordinate, so copy the saved positions
  // back instead — bit-exact by construction.
  system.set_box(box_old);
  std::copy(saved_positions_.begin(), saved_positions_.end(),
            system.positions().begin());
  field.set_box(box_old);
  state_.last_scale = 1.0;
  state_.record_box(box_old);
  return true;  // trial evaluation perturbed force-field caches either way
}

}  // namespace mdm
