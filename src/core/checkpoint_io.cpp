#include "core/checkpoint_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace mdm::ckptio {
namespace {

namespace fs = std::filesystem;

std::atomic<int> g_fail_writes{0};

[[noreturn]] void fail_errno(const std::string& context,
                             const std::string& path) {
  const int err = errno;
  std::string msg = context + " '" + path + "'";
  if (err != 0) msg += ": " + std::string(std::strerror(err));
  throw CheckpointError(msg);
}

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};

/// Write `buf` durably to `fd`; honours the test failpoint by failing after
/// half the payload, like a disk running out of space mid-write.
void write_all(int fd, const std::vector<char>& buf,
               const std::string& path) {
  std::size_t limit = buf.size();
  bool inject_failure = false;
  int expected = g_fail_writes.load(std::memory_order_relaxed);
  while (expected > 0 &&
         !g_fail_writes.compare_exchange_weak(expected, expected - 1)) {
  }
  if (expected > 0) {
    inject_failure = true;
    limit = buf.size() / 2;
  }
  std::size_t written = 0;
  while (written < limit) {
    const ssize_t n = ::write(fd, buf.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("checkpoint write failed for", path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (inject_failure) {
    errno = ENOSPC;
    fail_errno("checkpoint write failed for", path);
  }
}

void fsync_path(int fd, const std::string& path) {
  if (::fsync(fd) != 0) fail_errno("checkpoint fsync failed for", path);
}

/// Make the rename itself durable: fsync the containing directory.
void fsync_parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: not all filesystems allow this
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void set_fail_next_writes(int count) {
  g_fail_writes.store(count < 0 ? 0 : count, std::memory_order_relaxed);
}

std::uint32_t crc32(const char* data, std::size_t size) {
  static const Crc32Table table;
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table.t[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void write_file_atomic(const std::string& path,
                       const std::vector<char>& buf) {
  const std::string tmp = path + ".tmp";
  errno = 0;
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno("cannot open checkpoint temp file", tmp);
  try {
    write_all(fd, buf, tmp);
    fsync_path(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail_errno("checkpoint close failed for", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_errno("checkpoint rename failed for", path);
  }
  fsync_parent_dir(path);
}

std::vector<char> read_file(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail_errno("cannot open checkpoint", path);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void ByteReader::get_bytes(void* out, std::size_t size, const char* what) {
  if (off_ + size > limit_)
    throw CheckpointError("checkpoint '" + path_ +
                          "' truncated at offset " + std::to_string(off_) +
                          " reading " + what);
  std::memcpy(out, buf_.data() + off_, size);
  off_ += size;
}

}  // namespace mdm::ckptio
