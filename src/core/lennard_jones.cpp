#include "core/lennard_jones.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cell_list.hpp"

namespace mdm {

LennardJonesParameters LennardJonesParameters::single(double epsilon_eV,
                                                      double sigma_A) {
  LennardJonesParameters p;
  p.species_count = 1;
  p.epsilon[0][0] = epsilon_eV;
  p.sigma[0][0] = sigma_A;
  return p;
}

LennardJonesParameters LennardJonesParameters::lorentz_berthelot(
    std::span<const double> eps, std::span<const double> sig) {
  if (eps.size() != sig.size() || eps.empty() ||
      eps.size() > static_cast<std::size_t>(kMaxSpecies))
    throw std::invalid_argument("bad species arrays");
  LennardJonesParameters p;
  p.species_count = static_cast<int>(eps.size());
  for (int i = 0; i < p.species_count; ++i) {
    for (int j = 0; j < p.species_count; ++j) {
      p.epsilon[i][j] = std::sqrt(eps[i] * eps[j]);
      p.sigma[i][j] = 0.5 * (sig[i] + sig[j]);
    }
  }
  return p;
}

double LennardJonesParameters::pair_energy(int ti, int tj, double r) const {
  const double sr2 = sigma[ti][tj] * sigma[ti][tj] / (r * r);
  const double sr6 = sr2 * sr2 * sr2;
  return 4.0 * epsilon[ti][tj] * sr6 * (sr6 - 1.0);
}

double LennardJonesParameters::pair_force_over_r(int ti, int tj,
                                                 double r) const {
  const double inv_r2 = 1.0 / (r * r);
  const double sr2 = sigma[ti][tj] * sigma[ti][tj] * inv_r2;
  const double sr6 = sr2 * sr2 * sr2;
  return 24.0 * epsilon[ti][tj] * sr6 * (2.0 * sr6 - 1.0) * inv_r2;
}

LennardJones::LennardJones(LennardJonesParameters params, double r_cut)
    : params_(params), r_cut_(r_cut) {
  if (!(r_cut > 0.0)) throw std::invalid_argument("r_cut must be positive");
}

ForceResult LennardJones::add_forces(const ParticleSystem& system,
                                     std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("force array size mismatch");
  const auto positions = system.positions();
  const auto types = system.types();

  if (!cells_ || cells_->box() != system.box())
    cells_.emplace(system.box(), r_cut_);
  cells_->build(positions);

  const PairTally tally = cells_->parallel_for_each_pair(
      pool_, scratch_, positions, r_cut_, forces,
      [this, types](std::uint32_t i, std::uint32_t j, const Vec3& d, double r2,
                    Vec3& f, PairTally& t) {
        const double r = std::sqrt(r2);
        const double s = params_.pair_force_over_r(types[i], types[j], r);
        f = s * d;
        t.potential += params_.pair_energy(types[i], types[j], r);
        t.virial += s * r2;
      });
  ForceResult result;
  result.potential = tally.potential;
  result.virial = tally.virial;
  return result;
}

}  // namespace mdm
