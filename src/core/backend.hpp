#pragma once

/// \file backend.hpp
/// The force-evaluation backend selector (DESIGN.md §11). Every entry point
/// that evaluates MDM forces — the serve layer, the parallel application,
/// the example CLIs — takes a `Backend`:
///
///  * `kEmulator` — the behaviour-faithful MDGRAPE-2/WINE-2 pipelines with
///    the paper's fixed-point formats; forces carry the hardware's accuracy
///    envelope (~1e-7 real-space, ~10^-4.5 wavenumber relative RMS) and
///    bit-reproduce the machine.
///  * `kNative` — the vectorized structure-of-arrays kernels (src/native):
///    same physics, double precision throughout, validated against both the
///    reference solver and the emulators by the `backend` ctest label.
///
/// The two backends agree within the emulator envelope by construction; the
/// parity suite (test_backend_parity) enforces it on every run.

#include <stdexcept>
#include <string>

namespace mdm {

enum class Backend {
  kEmulator,  ///< MDGRAPE-2 + WINE-2 fixed-point pipeline emulation
  kNative,    ///< vectorized double-precision SoA kernels
};

inline const char* to_string(Backend b) {
  return b == Backend::kNative ? "native" : "emulator";
}

/// Parse a CLI/spec value ("emulator" | "native"); throws on anything else.
inline Backend backend_from_string(const std::string& s) {
  if (s == "emulator") return Backend::kEmulator;
  if (s == "native") return Backend::kNative;
  throw std::invalid_argument("unknown backend '" + s +
                              "' (expected emulator|native)");
}

}  // namespace mdm
