#pragma once

/// \file barostat.hpp
/// Isobaric (NPT) couplings for the scenario engine. Two classic schemes:
///
///  * BerendsenBarostat — weak coupling: after each interval the box is
///    rescaled by mu = (1 - kappa (dt/tau) (P0 - P))^(1/3), relaxing the
///    virial pressure toward the target.
///  * MonteCarloBarostat — Metropolis volume moves: propose an isotropic
///    linear-in-V change, re-evaluate the potential, accept with
///    exp(-(dU + P dV)/kT + N ln(Vn/Vo)); rejected moves restore the saved
///    positions bit-exactly.
///
/// Both report state through BarostatState so checkpoint restore (format v3,
/// core/checkpoint) resumes an NPT trajectory bit-identically: the move RNG
/// stream, acceptance counters and a bounded box-edge history all persist.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/force_field.hpp"
#include "core/particle_system.hpp"
#include "util/random.hpp"

namespace mdm {

/// Serializable barostat bookkeeping (checkpoint payload, format v3).
struct BarostatState {
  std::uint64_t applications = 0;  ///< apply() calls
  std::uint64_t attempts = 0;      ///< MC volume moves proposed
  std::uint64_t accepts = 0;       ///< MC volume moves accepted
  double last_scale = 1.0;         ///< most recent linear box scale factor
  RandomState rng{};               ///< MC volume-move stream
  /// Recent box edges (A), most recent last; bounded at kMaxBoxHistory so
  /// the checkpoint stays O(1). Gives restarted runs a volume trace to
  /// splice diagnostics against.
  std::vector<double> box_history;

  static constexpr std::size_t kMaxBoxHistory = 64;

  void record_box(double box) {
    box_history.push_back(box);
    if (box_history.size() > kMaxBoxHistory)
      box_history.erase(box_history.begin());
  }
};

class Barostat {
 public:
  virtual ~Barostat() = default;

  /// Couple the system toward the target pressure. `last` is the force
  /// result of the step just taken (its virial feeds the instantaneous
  /// pressure) and `coupling_dt_fs` the simulated time since the previous
  /// application. Returns true if the box changed — the caller must then
  /// invalidate integrator/force caches.
  virtual bool apply(ParticleSystem& system, ForceField& field,
                     const ForceResult& last, double coupling_dt_fs) = 0;

  virtual double target_pressure_GPa() const = 0;

  const BarostatState& state() const { return state_; }
  virtual void set_state(const BarostatState& state) { state_ = state; }

 protected:
  BarostatState state_{};
};

/// Berendsen weak-coupling barostat with time constant tau (fs) and
/// isothermal compressibility kappa (1/GPa; ~0.05 for molten salts, 4.5e-4
/// for a stiff reference). The cube of the linear scale is clamped to
/// [kMuCubedMin, kMuCubedMax] so one application never changes the volume
/// by more than ~5%.
class BerendsenBarostat final : public Barostat {
 public:
  BerendsenBarostat(double target_GPa, double tau_fs,
                    double compressibility_per_GPa);

  bool apply(ParticleSystem& system, ForceField& field,
             const ForceResult& last, double coupling_dt_fs) override;
  double target_pressure_GPa() const override { return target_GPa_; }

  static constexpr double kMuCubedMin = 0.95;
  static constexpr double kMuCubedMax = 1.05;

 private:
  double target_GPa_;
  double tau_fs_;
  double kappa_per_GPa_;
};

/// Metropolis Monte-Carlo volume moves, linear in V with maximum fractional
/// step `max_frac_dv` (dV uniform in [-f V, +f V]). The acceptance draw is
/// consumed on every attempt (even auto-rejects) so the RNG stream position
/// depends only on the attempt count — a restored checkpoint replays moves
/// bit-identically.
class MonteCarloBarostat final : public Barostat {
 public:
  MonteCarloBarostat(double target_GPa, double temperature_K,
                     double max_frac_dv, std::uint64_t seed);

  bool apply(ParticleSystem& system, ForceField& field,
             const ForceResult& last, double coupling_dt_fs) override;
  double target_pressure_GPa() const override { return target_GPa_; }

  void set_state(const BarostatState& state) override {
    state_ = state;
    rng_.set_state(state.rng);
  }

 private:
  double target_GPa_;
  double temperature_K_;
  double max_frac_dv_;
  Random rng_;
  std::vector<Vec3> saved_positions_;  ///< reject restore, reused each move
  std::vector<Vec3> force_scratch_;
};

}  // namespace mdm
