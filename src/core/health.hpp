#pragma once

/// \file health.hpp
/// Numerical-health watchdog (DESIGN.md §8). A 36-hour production run must
/// not spend its last 30 hours integrating NaNs: the watchdog is checked
/// every step and turns silent numerical garbage into a typed error —
/// NaN/Inf positions, velocities or forces, temperature explosion, and
/// NVE energy drift beyond a configurable tolerance. The parallel app can
/// react by rolling back to the last checkpoint and halting cleanly.
///
/// Every violation increments the `health.violations` counter before the
/// error is raised.

#include <span>
#include <stdexcept>
#include <string>

#include "util/vec3.hpp"

namespace mdm {

struct HealthConfig {
  bool check_finite = true;        ///< NaN/Inf scan of pos/vel/force
  double max_temperature_K = 0.0;  ///< explosion guard; <= 0 disables
  double max_energy_drift = 0.0;   ///< relative NVE drift; <= 0 disables
};

/// Raised by the watchdog; carries the offending step and (when a specific
/// particle is implicated) its global particle id, -1 otherwise.
class SimulationHealthError : public std::runtime_error {
 public:
  enum class Kind { kNonFinite, kTemperature, kEnergyDrift };

  SimulationHealthError(Kind kind, int step, long long particle,
                        const std::string& what)
      : std::runtime_error(what), kind_(kind), step_(step),
        particle_(particle) {}

  Kind kind() const noexcept { return kind_; }
  int step() const noexcept { return step_; }
  long long particle() const noexcept { return particle_; }

 private:
  Kind kind_;
  int step_;
  long long particle_;
};

class HealthMonitor {
 public:
  HealthMonitor() = default;
  explicit HealthMonitor(const HealthConfig& config) : config_(config) {}

  const HealthConfig& config() const { return config_; }

  static bool finite(const Vec3& v);

  /// NaN/Inf scan of a per-particle array; particle i is reported as
  /// id_base + i. `quantity` names the array ("position", "force", ...).
  void check_finite_span(std::span<const Vec3> values, const char* quantity,
                         int step, long long id_base = 0) const;

  /// Single-particle variant with an explicit global id (parallel ranks,
  /// whose slots are not globally contiguous).
  void check_finite_one(const Vec3& v, const char* quantity, int step,
                        long long particle) const;

  void check_temperature(double temperature_K, int step) const;

  /// NVE-phase energy tracking: the first observation becomes the drift
  /// reference, later ones are checked against max_energy_drift.
  void observe_energy(double total_eV, int step);
  void reset_energy_reference() { have_reference_ = false; }

 private:
  [[noreturn]] static void raise(SimulationHealthError::Kind kind, int step,
                                 long long particle, std::string message);

  HealthConfig config_{};
  bool have_reference_ = false;
  double reference_eV_ = 0.0;
};

}  // namespace mdm
