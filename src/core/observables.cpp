#include "core/observables.hpp"

#include <cmath>

namespace mdm {

double pressure(const ParticleSystem& system, double virial) {
  const double volume = system.box() * system.box() * system.box();
  return (2.0 * system.kinetic_energy() + virial) / (3.0 * volume);
}

double expected_relative_temperature_fluctuation(std::size_t n_particles) {
  if (n_particles == 0) return 0.0;
  return std::sqrt(2.0 / (3.0 * static_cast<double>(n_particles)));
}

}  // namespace mdm
