#include "core/force_field.hpp"

namespace mdm {

ForceResult CompositeForceField::add_forces(const ParticleSystem& system,
                                            std::span<Vec3> forces) {
  ForceResult total;
  for (auto& f : fields_) total += f->add_forces(system, forces);
  return total;
}

void CompositeForceField::invalidate_caches() {
  for (auto& f : fields_) f->invalidate_caches();
}

void CompositeForceField::set_box(double box) {
  for (auto& f : fields_) f->set_box(box);
}

std::string CompositeForceField::name() const {
  std::string n = "composite(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) n += " + ";
    n += fields_[i]->name();
  }
  return n + ")";
}

ForceResult evaluate_forces(ForceField& field, const ParticleSystem& system,
                            std::span<Vec3> forces) {
  for (auto& f : forces) f = Vec3{};
  return field.add_forces(system, forces);
}

}  // namespace mdm
