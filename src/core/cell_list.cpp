#include "core/cell_list.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdm {

CellList::CellList(double box, double min_cell_side) : box_(box) {
  if (!(box > 0.0)) throw std::invalid_argument("box must be positive");
  if (!(min_cell_side > 0.0))
    throw std::invalid_argument("cell side must be positive");
  m_ = std::max(1, static_cast<int>(std::floor(box / min_cell_side)));
  ranges_.assign(static_cast<std::size_t>(m_) * m_ * m_, Range{});
}

int CellList::cell_index(int ix, int iy, int iz) const {
  auto wrap = [this](int v) {
    v %= m_;
    return v < 0 ? v + m_ : v;
  };
  return (wrap(iz) * m_ + wrap(iy)) * m_ + wrap(ix);
}

int CellList::cell_of(const Vec3& r) const {
  auto coord = [this](double v) {
    int c = static_cast<int>(std::floor(wrap_coordinate(v, box_) / box_ * m_));
    // Guard the v == box - epsilon edge where rounding can produce m_.
    return std::min(c, m_ - 1);
  };
  return cell_index(coord(r.x), coord(r.y), coord(r.z));
}

void CellList::build(std::span<const Vec3> positions) {
  MDM_TRACE_SCOPE("cell_list.build");
  const std::size_t n = positions.size();
  std::vector<std::uint32_t> cell_of_particle(n);
  std::vector<std::uint32_t> counts(ranges_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = cell_of(positions[i]);
    cell_of_particle[i] = static_cast<std::uint32_t>(c);
    ++counts[c];
  }
  // Prefix sums -> per-cell ranges.
  std::uint32_t offset = 0;
  std::uint32_t max_count = 0;
  for (std::size_t c = 0; c < ranges_.size(); ++c) {
    ranges_[c].begin = offset;
    offset += counts[c];
    ranges_[c].end = offset;
    max_count = std::max(max_count, counts[c]);
  }
  {
    auto& reg = obs::Registry::global();
    static obs::Counter& rebuilds = reg.counter("cell_list.rebuilds");
    static obs::Gauge& mean_occ = reg.gauge("cell_list.mean_occupancy");
    static obs::Gauge& max_occ = reg.gauge("cell_list.max_occupancy");
    rebuilds.add(1);
    mean_occ.set(static_cast<double>(n) / static_cast<double>(ranges_.size()));
    max_occ.set(max_count);
  }
  // Stable counting sort of particle ids by cell.
  order_.assign(n, 0);
  std::vector<std::uint32_t> cursor(ranges_.size());
  for (std::size_t c = 0; c < ranges_.size(); ++c)
    cursor[c] = ranges_[c].begin;
  for (std::size_t i = 0; i < n; ++i)
    order_[cursor[cell_of_particle[i]]++] = static_cast<std::uint32_t>(i);
}

std::span<const std::uint32_t> CellList::cell_particles(int c) const {
  const Range r = ranges_[c];
  return {order_.data() + r.begin, r.end - r.begin};
}

std::array<int, 27> CellList::neighbors27(int c) const {
  const int ix = c % m_;
  const int iy = (c / m_) % m_;
  const int iz = c / (m_ * m_);
  std::array<int, 27> out{};
  int k = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        out[k++] = cell_index(ix + dx, iy + dy, iz + dz);
  return out;
}

void CellList::for_each_pair_within(
    std::span<const Vec3> positions, double cutoff,
    const std::function<void(std::uint32_t, std::uint32_t, const Vec3&,
                             double)>& fn) const {
  const double cutoff2 = cutoff * cutoff;
  const std::size_t n = positions.size();

  if (!stencil_unique() || cell_side() < cutoff) {
    // Grid unusable for the half stencil: plain O(N^2) minimum-image loop.
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        const Vec3 d = minimum_image(positions[i], positions[j], box_);
        const double r2 = norm2(d);
        if (r2 < cutoff2) fn(i, j, d, r2);
      }
    }
    return;
  }

  // Half stencil: 13 of the 26 neighbour offsets, chosen so each unordered
  // cell pair is visited once.
  static constexpr int kHalf[13][3] = {
      {1, 0, 0},  {1, 1, 0},   {0, 1, 0},  {-1, 1, 0}, {1, 0, 1},
      {1, 1, 1},  {0, 1, 1},   {-1, 1, 1}, {1, -1, 1}, {0, -1, 1},
      {-1, -1, 1}, {0, 0, 1},  {-1, 0, 1}};

  for (int c = 0; c < cell_count(); ++c) {
    const auto own = cell_particles(c);
    // Pairs within the cell.
    for (std::size_t a = 0; a < own.size(); ++a) {
      for (std::size_t b = a + 1; b < own.size(); ++b) {
        const std::uint32_t i = own[a];
        const std::uint32_t j = own[b];
        const Vec3 d = minimum_image(positions[i], positions[j], box_);
        const double r2 = norm2(d);
        if (r2 < cutoff2) fn(i, j, d, r2);
      }
    }
    // Pairs with the 13 forward neighbour cells.
    const int ix = c % m_;
    const int iy = (c / m_) % m_;
    const int iz = c / (m_ * m_);
    for (const auto& off : kHalf) {
      const int nc = cell_index(ix + off[0], iy + off[1], iz + off[2]);
      const auto other = cell_particles(nc);
      for (const std::uint32_t i : own) {
        for (const std::uint32_t j : other) {
          const Vec3 d = minimum_image(positions[i], positions[j], box_);
          const double r2 = norm2(d);
          if (r2 < cutoff2) fn(i, j, d, r2);
        }
      }
    }
  }
}

}  // namespace mdm
