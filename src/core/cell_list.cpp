#include "core/cell_list.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdm {

CellList::CellList(double box, double min_cell_side) : box_(box) {
  if (!(box > 0.0)) throw std::invalid_argument("box must be positive");
  if (!(min_cell_side > 0.0))
    throw std::invalid_argument("cell side must be positive");
  m_ = std::max(1, static_cast<int>(std::floor(box / min_cell_side)));
  ranges_.assign(static_cast<std::size_t>(m_) * m_ * m_, Range{});
}

int CellList::cell_index(int ix, int iy, int iz) const {
  auto wrap = [this](int v) {
    v %= m_;
    return v < 0 ? v + m_ : v;
  };
  return (wrap(iz) * m_ + wrap(iy)) * m_ + wrap(ix);
}

int CellList::cell_of(const Vec3& r) const {
  auto coord = [this](double v) {
    int c = static_cast<int>(std::floor(wrap_coordinate(v, box_) / box_ * m_));
    // Guard the v == box - epsilon edge where rounding can produce m_.
    return std::min(c, m_ - 1);
  };
  return cell_index(coord(r.x), coord(r.y), coord(r.z));
}

void CellList::build(std::span<const Vec3> positions) {
  MDM_TRACE_SCOPE("cell_list.build");
  const std::size_t n = positions.size();
  // Scratch buffers are members reused across rebuilds: the integrator loop
  // rebuilds every step and steady-state rebuilds must not allocate.
  build_cell_of_.resize(n);
  build_counts_.assign(ranges_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = cell_of(positions[i]);
    build_cell_of_[i] = static_cast<std::uint32_t>(c);
    ++build_counts_[c];
  }
  // Prefix sums -> per-cell ranges.
  std::uint32_t offset = 0;
  std::uint32_t max_count = 0;
  for (std::size_t c = 0; c < ranges_.size(); ++c) {
    ranges_[c].begin = offset;
    offset += build_counts_[c];
    ranges_[c].end = offset;
    max_count = std::max(max_count, build_counts_[c]);
  }
  {
    auto& reg = obs::Registry::global();
    static obs::Counter& rebuilds = reg.counter("cell_list.rebuilds");
    static obs::Gauge& mean_occ = reg.gauge("cell_list.mean_occupancy");
    static obs::Gauge& max_occ = reg.gauge("cell_list.max_occupancy");
    rebuilds.add(1);
    mean_occ.set(static_cast<double>(n) / static_cast<double>(ranges_.size()));
    max_occ.set(max_count);
  }
  // Stable counting sort of particle ids by cell.
  order_.resize(n);
  build_cursor_.resize(ranges_.size());
  for (std::size_t c = 0; c < ranges_.size(); ++c)
    build_cursor_[c] = ranges_[c].begin;
  for (std::size_t i = 0; i < n; ++i)
    order_[build_cursor_[build_cell_of_[i]]++] = static_cast<std::uint32_t>(i);
  // A direct build() invalidates the build_auto anchor: the next build_auto
  // re-anchors instead of skipping against stale reference positions.
  built_ = false;
}

bool CellList::build_auto(std::span<const Vec3> positions, double cutoff) {
  if (built_ && positions.size() == anchor_.size()) {
    // In N^2-fallback mode the traversal never consults the bins, so any
    // build is as good as any other.
    bool fresh_enough = use_n2_fallback(cutoff);
    if (!fresh_enough) {
      const double half_skin = 0.5 * (cell_side() - cutoff);
      if (half_skin > 0.0) {
        double max2 = 0.0;
        for (std::size_t i = 0; i < positions.size(); ++i)
          max2 = std::max(
              max2, norm2(minimum_image(positions[i], anchor_[i], box_)));
        fresh_enough = max2 <= half_skin * half_skin;
      }
    }
    if (fresh_enough) {
      static obs::Counter& skipped =
          obs::Registry::global().counter("cell_list.rebuilds_skipped");
      skipped.add(1);
      return false;
    }
  }
  build(positions);
  anchor_.assign(positions.begin(), positions.end());
  built_ = true;
  return true;
}

std::span<const std::uint32_t> CellList::cell_particles(int c) const {
  const Range r = ranges_[c];
  return {order_.data() + r.begin, r.end - r.begin};
}

std::array<int, 27> CellList::neighbors27(int c) const {
  const int ix = c % m_;
  const int iy = (c / m_) % m_;
  const int iz = c / (m_ * m_);
  std::array<int, 27> out{};
  int k = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        out[k++] = cell_index(ix + dx, iy + dy, iz + dz);
  return out;
}

}  // namespace mdm
