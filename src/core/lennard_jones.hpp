#pragma once

/// \file lennard_jones.hpp
/// Standard 12-6 Lennard-Jones potential with per-pair epsilon/sigma, the
/// "van der Waals" force of the paper's eq. 4. The paper writes the force as
///
///   F_i(vdW) = sum_j eps'(at_i,at_j) [ 2 (sigma/r)^14 - (sigma/r)^8 ] r_ij
///
/// which is the 12-6 force with eps' = 24 eps / sigma^2 folded into the
/// prefactor; on MDGRAPE-2 it maps to g(x) = 2 x^-7 - x^-4 with
/// a_ij = sigma^-2 and b_ij = eps' (sec. 3.5.4). This class is the
/// double-precision reference for that hardware path.

#include <array>
#include <optional>

#include "core/cell_list.hpp"
#include "core/force_field.hpp"
#include "util/thread_pool.hpp"

namespace mdm {

struct LennardJonesParameters {
  static constexpr int kMaxSpecies = 8;

  int species_count = 0;
  std::array<std::array<double, kMaxSpecies>, kMaxSpecies> epsilon{};  ///< eV
  std::array<std::array<double, kMaxSpecies>, kMaxSpecies> sigma{};    ///< A

  /// Single-species helper.
  static LennardJonesParameters single(double epsilon_eV, double sigma_A);

  /// Build from per-species eps/sigma with Lorentz-Berthelot mixing.
  static LennardJonesParameters lorentz_berthelot(
      std::span<const double> eps, std::span<const double> sig);

  double pair_energy(int ti, int tj, double r) const;
  /// s(r) = -phi'(r)/r so the force on i is s(r) * r_ij.
  double pair_force_over_r(int ti, int tj, double r) const;
};

/// Cell-list LJ force field with plain truncation at r_cut.
class LennardJones final : public ForceField {
 public:
  LennardJones(LennardJonesParameters params, double r_cut);

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "lennard-jones"; }

  double r_cut() const { return r_cut_; }
  const LennardJonesParameters& parameters() const { return params_; }

  /// Run the pair sweep on a thread pool (nullptr = serial); forces are
  /// bit-identical to serial at any pool size.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  LennardJonesParameters params_;
  double r_cut_;
  ThreadPool* pool_ = nullptr;
  /// Persistent cell list + force scratch, reused across steps.
  std::optional<CellList> cells_;
  PairScratch scratch_;
};

}  // namespace mdm
