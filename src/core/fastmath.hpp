#pragma once

/// \file fastmath.hpp
/// Branch-free polynomial transcendentals for the vectorized force kernels.
///
/// The native backend's hot loops (src/native) must auto-vectorize, which
/// rules out libm calls (`std::erfc`, `std::exp` compile to opaque calls
/// that break SLP/loop vectorization) and data-dependent branches. This
/// header provides:
///
///  * `fast_exp(x)`      - Cephes-style exp: range reduction by log2(e),
///                         a degree-2/3 Pade kernel, and 2^n applied through
///                         the exponent bits. Peak relative error ~2 ulp
///                         over the full non-overflowing domain.
///  * `erfc_from_exp(x, expmx2)` - the SANDER/cpptraj three-range rational
///                         erfc (Hart/Cody coefficients, see SNIPPETS'
///                         erfc_func) restricted to x >= 0, with all three
///                         range polynomials evaluated unconditionally and
///                         the result chosen by comparisons. The ternaries
///                         compile to SIMD blends, so a loop calling this
///                         stays a straight-line vector body. The caller
///                         passes exp(-x^2) (shared with the Gaussian force
///                         term, which needs it anyway).
///  * `fast_erfc(x)`     - convenience composition of the two.
///
/// Both Ewald real-space paths (the reference EwaldCoulomb and PME) use
/// `erfc_from_exp` with a libm-accurate `std::exp(-x^2)`; the native kernel
/// feeds it `fast_exp`. Accuracy (vs libm, verified in test_fastmath):
/// |fast_erfc - std::erfc| < 1e-12 absolute on x in [0, 6].

#include <bit>
#include <cstdint>

namespace mdm::fastmath {

/// exp(x) without a libm call. Domain edges are clamped: arguments below
/// -708 (where the true exp enters the subnormal range) return exactly 0 and
/// arguments above 709 return +inf, so the result is never a subnormal. The
/// Ewald kernels only ever pass x = -(beta r)^2 <= 0, far from overflow.
inline double fast_exp(double x) {
  // Cephes exp.c constants: x = n ln2 + r with |r| <= ln2 / 2, exp(r) via
  // exp(r) = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2)).
  constexpr double kLog2E = 1.4426950408889634073599;
  constexpr double kC1 = 6.93145751953125e-1;          // ln2 high part
  constexpr double kC2 = 1.42860682030941723212e-6;    // ln2 low part
  constexpr double kP0 = 1.26177193074810590878e-4;
  constexpr double kP1 = 3.02994407707441961300e-2;
  constexpr double kP2 = 9.99999999999999999910e-1;
  constexpr double kQ0 = 3.00198505138664455042e-6;
  constexpr double kQ1 = 2.52448340349684104192e-3;
  constexpr double kQ2 = 2.27265548208155028766e-1;
  constexpr double kQ3 = 2.00000000000000000005e0;

  const double x_in = x;
  // Clamp into the range where 2^n stays a normal double; out-of-range
  // inputs are fixed up by the final selects.
  x = x < -708.0 ? -708.0 : (x > 709.0 ? 709.0 : x);

  double nf = kLog2E * x + 0.5;
  nf = static_cast<double>(static_cast<std::int64_t>(nf) -
                           (nf < 0.0 ? 1 : 0));  // floor without libm
  const auto n = static_cast<std::int64_t>(nf);
  x -= nf * kC1;
  x -= nf * kC2;

  const double xx = x * x;
  const double p = x * ((kP0 * xx + kP1) * xx + kP2);
  const double q = ((kQ0 * xx + kQ1) * xx + kQ2) * xx + kQ3;
  double r = 1.0 + 2.0 * p / (q - p);

  // Scale by 2^n through the exponent field (|n| <= 1023 after clamping).
  r *= std::bit_cast<double>(static_cast<std::uint64_t>(n + 1023) << 52);
  r = x_in < -708.0 ? 0.0 : r;
  return x_in > 709.0 ? std::bit_cast<double>(0x7ff0000000000000ULL) : r;
}

/// Above this argument erfc underflows into the subnormal range (erfc(x)
/// ~ exp(-x^2)/(x sqrt(pi)) drops below the smallest normal double near
/// x = 26.5). The fitted rationals are only calibrated on normal-range
/// inputs, so past the cut the result is flushed to exactly 0 instead of
/// letting a subnormal exp(-x^2) propagate garbage low bits through the
/// rational evaluation.
inline constexpr double kErfcUnderflowCut = 26.5;

/// erfc(x) given expmx2 = exp(-x^2). All three range approximations are
/// evaluated unconditionally; the comparisons at the end become SIMD blends
/// inside a vectorized loop. Domain edges are clamped rather than left
/// unspecified: x < 0 (outside the fitted range; the Ewald kernels always
/// pass beta * r >= 0) falls back to the exact limit value 1 at 0-, and
/// x >= kErfcUnderflowCut returns exactly 0 — never a subnormal — even when
/// the caller's expmx2 has already degraded to a subnormal or to 0.
inline double erfc_from_exp(double x, double expmx2) {
  const double x2 = x * x;

  // x <= 0.5: erfc = 1 - x P1(x^2) / Q1(x^2).
  const double p_lo = ((-0.356098437018154e-1 * x2 + 0.699638348861914e1) * x2 +
                       0.219792616182942e2) * x2 +
                      0.242667955230532e3;
  const double q_lo =
      ((x2 + 0.150827976304078e2) * x2 + 0.911649054045149e2) * x2 +
      0.215058875869861e3;
  const double erfc_lo = 1.0 - x * p_lo / q_lo;

  // 0.5 < x < 4: erfc = exp(-x^2) P2(x) / Q2(x).
  const double p_mid =
      ((((((-0.136864857382717e-6 * x + 0.564195517478974) * x +
           0.721175825088309e1) * x +
          0.431622272220567e2) * x +
         0.152989285046940e3) * x +
        0.339320816734344e3) * x +
       0.451918953711873e3) * x +
      0.300459261020162e3;
  const double q_mid =
      ((((((x + 0.127827273196294e2) * x + 0.770001529352295e2) * x +
          0.277585444743988e3) * x +
         0.638980264465631e3) * x +
        0.931354094850610e3) * x +
       0.790950925327898e3) * x +
      0.300459260956983e3;
  const double erfc_mid = expmx2 * p_mid / q_mid;

  // x >= 4: erfc = exp(-x^2)/x * (1/sqrt(pi) - P3(c)/Q3(c) * c), c = 1/x^2.
  // Guard the reciprocal so the unselected lane stays finite at small x.
  const double c = 1.0 / (x2 > 1.0 ? x2 : 1.0);
  const double p_hi = (((0.223192459734185e-1 * c + 0.278661308609648) * c +
                        0.226956593539687) * c +
                       0.494730910623251e-1) * c +
                      0.299610707703542e-2;
  const double q_hi = (((c + 0.198733201817135e1) * c + 0.105167510706793e1) *
                           c + 0.191308926107830) * c +
                      0.106209230528468e-1;
  const double erfc_hi =
      expmx2 * (0.564189583547756 - c * p_hi / q_hi) / (x > 1.0 ? x : 1.0);

  double r = x <= 0.5 ? erfc_lo : (x < 4.0 ? erfc_mid : erfc_hi);
  r = x >= kErfcUnderflowCut ? 0.0 : r;
  // Flush a would-be-subnormal result to exactly 0 as well: a degraded
  // (subnormal or zero) expmx2 from the caller scales the mid/high rationals
  // into the subnormal range even for in-range x.
  r = r < 2.2250738585072014e-308 ? 0.0 : r;
  return x < 0.0 ? 1.0 : r;
}

/// erfc(x), fully libm-free (flushes to exactly 0 beyond kErfcUnderflowCut,
/// matching erfc's true decay to below the normal double minimum, and to the
/// limit value 1 for x < 0).
inline double fast_erfc(double x) { return erfc_from_exp(x, fast_exp(-x * x)); }

}  // namespace mdm::fastmath
