#include "core/integrator.hpp"

#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm {

bool VelocityVerlet::prime(ParticleSystem& system) {
  if (valid_ && forces_.size() == system.size()) return false;
  forces_.assign(system.size(), Vec3{});
  obs::TraceSpan span("force.eval");
  last_ = field_->add_forces(system, forces_);
  valid_ = true;
  return true;
}

ForceResult VelocityVerlet::step(ParticleSystem& system, double dt_fs) {
  prime(system);
  auto positions = system.positions();
  auto velocities = system.velocities();
  const std::size_t n = system.size();

  {
    // First half kick + drift.
    obs::ScopedPhase host_phase(obs::Phase::kHost);
    obs::TraceSpan span("integrate.kick_drift");
    for (std::size_t i = 0; i < n; ++i) {
      const double c = 0.5 * dt_fs * units::kAccelUnit / system.mass(i);
      velocities[i] += c * forces_[i];
      positions[i] += dt_fs * velocities[i];
    }
    system.wrap_positions();
  }

  {
    // Forces at the new positions.
    obs::TraceSpan span("force.eval");
    for (auto& f : forces_) f = Vec3{};
    last_ = field_->add_forces(system, forces_);
  }

  {
    // Second half kick.
    obs::ScopedPhase host_phase(obs::Phase::kHost);
    obs::TraceSpan span("integrate.kick");
    for (std::size_t i = 0; i < n; ++i) {
      const double c = 0.5 * dt_fs * units::kAccelUnit / system.mass(i);
      velocities[i] += c * forces_[i];
    }
  }
  return last_;
}

ForceResult Leapfrog::step(ParticleSystem& system, double dt_fs) {
  if (!valid_ || forces_.size() != system.size()) {
    forces_.assign(system.size(), Vec3{});
    obs::TraceSpan span("force.eval");
    field_->add_forces(system, forces_);
    valid_ = true;
  }
  auto positions = system.positions();
  auto velocities = system.velocities();
  const std::size_t n = system.size();

  {
    // v(t+dt/2) = v(t-dt/2) + a(t) dt ; r(t+dt) = r(t) + v(t+dt/2) dt.
    obs::ScopedPhase host_phase(obs::Phase::kHost);
    obs::TraceSpan span("integrate.kick_drift");
    for (std::size_t i = 0; i < n; ++i) {
      const double c = dt_fs * units::kAccelUnit / system.mass(i);
      velocities[i] += c * forces_[i];
      positions[i] += dt_fs * velocities[i];
    }
    system.wrap_positions();
  }

  for (auto& f : forces_) f = Vec3{};
  obs::TraceSpan span("force.eval");
  return field_->add_forces(system, forces_);
}

}  // namespace mdm
