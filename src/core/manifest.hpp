#pragma once

/// \file manifest.hpp
/// Portable job-resume manifest (DESIGN.md §13). A checkpoint generation
/// (core/checkpoint) restores the *dynamic* state of a run bit-identically,
/// but a migrated serving job must also carry its identity and the
/// observable trajectory it has already produced — otherwise the shard that
/// resumes it can only return a suffix of the samples. The manifest is that
/// sidecar: written beside each checkpoint generation, it records
///
///  * the canonical job key (hash of the physics-relevant JobSpec fields),
///    so a shard never resumes the wrong job's checkpoint directory;
///  * the step the paired generation was taken at, plus the total step
///    budget of the protocol;
///  * every Sample recorded so far (step 0..step), so the resumed run's
///    result is the *complete* trajectory, bit-identical to an
///    uninterrupted standalone run.
///
/// Durability mirrors checkpoints exactly: versioned magic ("MDMJOBM1"),
/// CRC32 footer, atomic temp+fsync+rename writes, N-generation rotation
/// with automatic fallback across corrupt generations. `find_resume_point`
/// pairs the newest valid manifest with its same-step checkpoint
/// generation, walking backwards when either file of the newest pair was
/// truncated mid-migration.
///
/// Observability: `ckpt.manifest.writes`, `ckpt.manifest.restores`,
/// `ckpt.manifest.corrupt_skipped` counters in the global registry.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/simulation.hpp"

namespace mdm {

/// Current manifest on-disk format version.
inline constexpr std::uint32_t kManifestVersion = 1;

/// Identity + trajectory prefix of a resumable serving job.
struct JobResumeManifest {
  /// Canonical job key (serve::canonical_job_hash); 0 = not enforced.
  std::uint64_t job_key = 0;
  std::uint64_t step = 0;        ///< step of the paired checkpoint generation
  std::uint32_t total_steps = 0; ///< protocol budget (nvt + nve)
  std::vector<Sample> samples;   ///< all samples recorded through `step`
  std::uint32_t version = kManifestVersion;
};

/// Serialize / parse one manifest file. Both throw CheckpointError (the
/// manifest is part of the checkpoint durability contract): writes are
/// atomic and honour the ENOSPC failpoint; reads name the file and offset
/// on magic/CRC/truncation problems.
void write_manifest_file(const std::string& path,
                         const JobResumeManifest& manifest);
JobResumeManifest read_manifest_file(const std::string& path);

/// Rotating manifest directory, sharing `directory` with a
/// CheckpointManager: `write` emits `manifest.<step>.mdm` and prunes
/// generations beyond `keep`.
class ManifestStore {
 public:
  explicit ManifestStore(std::string directory, int keep_generations = 3);

  const std::string& directory() const { return dir_; }
  std::string path_for_step(std::uint64_t step) const;

  std::string write(const JobResumeManifest& manifest);

  /// Manifest paths on disk, sorted oldest to newest.
  std::vector<std::string> generations() const;

  /// Newest manifest that passes its CRC, walking backwards over corrupt
  /// generations (each counted in `ckpt.manifest.corrupt_skipped`).
  std::optional<JobResumeManifest> restore_latest() const;

 private:
  std::string dir_;
  int keep_;
};

/// A paired resume point: a checkpoint generation plus the manifest taken
/// at the same step.
struct ResumePoint {
  CheckpointState state;
  JobResumeManifest manifest;
};

/// Newest (manifest, checkpoint) pair that both validate and agree on the
/// step, walking backwards across generations when the newest manifest or
/// its checkpoint is corrupt/truncated (e.g. a shard killed mid-write).
/// `expected_key` != 0 additionally requires the manifest to carry that
/// canonical job key; `expected_particles` != 0 requires the checkpoint to
/// hold that many particles. Returns nullopt when no valid pair exists —
/// the caller then starts the job from scratch (still zero lost work, just
/// recomputed).
std::optional<ResumePoint> find_resume_point(const std::string& directory,
                                             std::uint64_t expected_key = 0,
                                             std::size_t expected_particles = 0);

}  // namespace mdm
