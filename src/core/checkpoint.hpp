#pragma once

/// \file checkpoint.hpp
/// Crash-consistent checkpoint/restart for long MDM campaigns (DESIGN.md
/// §8). The paper's headline run is 3,000 steps x 43.8 s/step ~ 36 hours on
/// a 24-process machine; at that scale a run must survive process death.
/// This module provides the durable half of the failure model:
///
///  * a versioned binary format — magic + version + CRC32 footer — holding
///    the *complete* restart state (positions, velocities, species, types,
///    box, step, time, thermostat accumulators, RNG stream), so a restarted
///    run continues the trajectory bit-identically;
///  * crash-consistent writes: temp file + fsync + atomic rename (+ parent
///    directory fsync), so a crash mid-write never corrupts an existing
///    checkpoint and never leaves a partial file under the final name;
///  * N-generation rotation (`ckpt.000042.mdm` + a `latest` pointer) with
///    automatic fallback across generations when the newest file fails its
///    CRC.
///
/// Observability: `ckpt.writes`, `ckpt.bytes`, `ckpt.restores`,
/// `ckpt.corrupt_skipped` counters in the global registry.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/barostat.hpp"
#include "core/particle_system.hpp"
#include "core/thermostat.hpp"
#include "util/random.hpp"
#include "util/vec3.hpp"

namespace mdm {

/// Current on-disk format version ("MDMCKPT3"): version 2 plus the barostat
/// block (volume-move RNG stream, acceptance counters, box history) so NPT
/// runs restore bit-identically. Version-2 files and version-1 files (the
/// old bare positions+velocities dump) are still readable.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Everything needed to resume a run bit-identically.
struct CheckpointState {
  std::uint64_t step = 0;   ///< last completed step
  double time_ps = 0.0;     ///< simulation time at `step`
  double box = 0.0;         ///< cubic box edge (angstrom)
  std::vector<Species> species;
  std::vector<std::int32_t> types;  ///< species index per particle
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  ThermostatState thermostat{};
  RandomState rng{};
  /// NPT coupling state (format v3+); default-initialized for NVE/NVT runs
  /// and legacy files.
  BarostatState barostat{};
  /// Format version the state was read from (kCheckpointVersion when built
  /// in memory; 1 for legacy files, which carry only box/positions/
  /// velocities).
  std::uint32_t version = kCheckpointVersion;

  std::size_t size() const { return positions.size(); }

  /// Snapshot a particle system (static + dynamic state).
  static CheckpointState capture(const ParticleSystem& system,
                                 std::uint64_t step = 0,
                                 double time_ps = 0.0);

  /// Restore the dynamic state into `system`, which must already hold the
  /// same particle count, box and (for v2 states) per-particle types.
  void apply_to(ParticleSystem& system) const;
};

/// Raised on any checkpoint read/write failure. CRC and truncation errors
/// name the offending file and byte offset.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize `state` to `path` crash-consistently (temp + fsync + rename).
/// On failure the temp file is removed and `path` is left untouched.
void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state);

/// Parse a checkpoint file (current or legacy format). Throws
/// CheckpointError naming the file and offset on magic/CRC/truncation
/// problems.
CheckpointState read_checkpoint_file(const std::string& path);

/// Rotating checkpoint directory: `write` emits `ckpt.<step>.mdm`, refreshes
/// the `latest` pointer file and prunes generations beyond `keep`.
class CheckpointManager {
 public:
  /// Creates `directory` if needed. `keep_generations` >= 1.
  explicit CheckpointManager(std::string directory, int keep_generations = 3);

  const std::string& directory() const { return dir_; }
  int keep_generations() const { return keep_; }

  /// Generation file name for a step (inside the managed directory).
  std::string path_for_step(std::uint64_t step) const;

  /// Write one generation; returns the final path.
  std::string write(const CheckpointState& state);

  /// Generation paths on disk, sorted oldest to newest.
  std::vector<std::string> generations() const;

  /// Newest generation that passes its CRC, walking backwards over corrupt
  /// ones (each counted in `ckpt.corrupt_skipped` and logged). The `latest`
  /// pointer is consulted first but never trusted over the CRC. Returns
  /// nullopt when no valid generation exists.
  std::optional<CheckpointState> restore_latest() const;

 private:
  std::string dir_;
  int keep_;
};

/// Test-only failpoint: make the next `count` checkpoint payload writes fail
/// mid-write as if the disk filled up (0 disables). Used to prove the
/// atomic-rename protocol leaves no partial file behind.
void checkpoint_fail_next_writes_for_testing(int count);

}  // namespace mdm
