#include "core/particle_system.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mdm {

ParticleSystem::ParticleSystem(double box) : box_(box) {
  if (!(box > 0.0)) throw std::invalid_argument("box side must be positive");
}

int ParticleSystem::add_species(Species s) {
  species_.push_back(std::move(s));
  return static_cast<int>(species_.size()) - 1;
}

void ParticleSystem::add_particle(int type, const Vec3& position,
                                  const Vec3& velocity) {
  if (type < 0 || type >= species_count())
    throw std::out_of_range("unknown species index");
  position_.push_back(wrap_position(position, box_));
  velocity_.push_back(velocity);
  type_.push_back(type);
}

double ParticleSystem::total_charge() const {
  double q = 0.0;
  for (std::size_t i = 0; i < size(); ++i) q += charge(i);
  return q;
}

double ParticleSystem::total_charge_squared() const {
  double q2 = 0.0;
  for (std::size_t i = 0; i < size(); ++i) q2 += charge(i) * charge(i);
  return q2;
}

Vec3 ParticleSystem::total_momentum() const {
  Vec3 p;
  for (std::size_t i = 0; i < size(); ++i) p += mass(i) * velocity_[i];
  return p;
}

double ParticleSystem::kinetic_energy() const {
  // v in A/fs, m in amu: KE[eV] = 1/2 m v^2 / kAccelUnit.
  double twice_ke = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    twice_ke += mass(i) * norm2(velocity_[i]);
  return 0.5 * twice_ke / units::kAccelUnit;
}

double ParticleSystem::temperature(bool remove_drift_dof) const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  double dof = 3.0 * static_cast<double>(n);
  if (remove_drift_dof && n > 1) dof -= 3.0;
  return 2.0 * kinetic_energy() / (dof * units::kBoltzmann);
}

void ParticleSystem::zero_momentum() {
  if (size() == 0) return;
  double total_mass = 0.0;
  for (std::size_t i = 0; i < size(); ++i) total_mass += mass(i);
  const Vec3 v_cm = total_momentum() / total_mass;
  for (auto& v : velocity_) v -= v_cm;
}

void ParticleSystem::wrap_positions() {
  for (auto& r : position_) r = wrap_position(r, box_);
}

void ParticleSystem::set_box(double box) {
  if (!(box > 0.0)) throw std::invalid_argument("box side must be positive");
  box_ = box;
}

void ParticleSystem::rescale(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("rescale factor must be positive");
  box_ *= factor;
  for (auto& r : position_) r *= factor;
}

}  // namespace mdm
