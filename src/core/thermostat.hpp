#pragma once

/// \file thermostat.hpp
/// Thermostats for the NVT phase. The paper's runs use plain velocity
/// scaling ("NVT constant ensemble by scaling the velocity", sec. 5);
/// Berendsen is included as a gentler alternative for the examples.

#include "core/particle_system.hpp"

namespace mdm {

class Thermostat {
 public:
  virtual ~Thermostat() = default;
  /// Adjust velocities toward `target_K`; `dt_fs` is the step just taken.
  virtual void apply(ParticleSystem& system, double target_K,
                     double dt_fs) = 0;
};

/// Rescale velocities so the instantaneous temperature equals the target
/// exactly (isokinetic scaling, as in the paper).
class VelocityScalingThermostat final : public Thermostat {
 public:
  void apply(ParticleSystem& system, double target_K, double dt_fs) override;
};

/// Berendsen weak-coupling thermostat with time constant tau (fs).
class BerendsenThermostat final : public Thermostat {
 public:
  explicit BerendsenThermostat(double tau_fs);
  void apply(ParticleSystem& system, double target_K, double dt_fs) override;

 private:
  double tau_fs_;
};

}  // namespace mdm
