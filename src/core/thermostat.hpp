#pragma once

/// \file thermostat.hpp
/// Thermostats for the NVT phase. The paper's runs use plain velocity
/// scaling ("NVT constant ensemble by scaling the velocity", sec. 5);
/// Berendsen is included as a gentler alternative for the examples.

#include <cstdint>

#include "core/particle_system.hpp"

namespace mdm {

/// Accumulated thermostat bookkeeping, part of the checkpoint payload
/// (core/checkpoint): restoring it makes the cumulative-work diagnostic —
/// E_total minus work_eV is the NVT conserved quantity — survive a restart.
struct ThermostatState {
  std::uint64_t applications = 0;  ///< times apply() rescaled velocities
  double last_scale = 1.0;         ///< most recent velocity scale factor
  double work_eV = 0.0;            ///< kinetic energy added (+) / removed (-)
};

class Thermostat {
 public:
  virtual ~Thermostat() = default;
  /// Adjust velocities toward `target_K`; `dt_fs` is the step just taken.
  virtual void apply(ParticleSystem& system, double target_K,
                     double dt_fs) = 0;

  const ThermostatState& state() const { return state_; }
  void set_state(const ThermostatState& state) { state_ = state; }

 protected:
  /// Record one rescale by `scale` of a system whose kinetic energy was
  /// `kinetic_before_eV`.
  void record_scale(double scale, double kinetic_before_eV) {
    ++state_.applications;
    state_.last_scale = scale;
    state_.work_eV += (scale * scale - 1.0) * kinetic_before_eV;
  }

  ThermostatState state_{};
};

/// Rescale velocities so the instantaneous temperature equals the target
/// exactly (isokinetic scaling, as in the paper).
class VelocityScalingThermostat final : public Thermostat {
 public:
  void apply(ParticleSystem& system, double target_K, double dt_fs) override;
};

/// Berendsen weak-coupling thermostat with time constant tau (fs).
class BerendsenThermostat final : public Thermostat {
 public:
  explicit BerendsenThermostat(double tau_fs);
  void apply(ParticleSystem& system, double target_K, double dt_fs) override;

 private:
  double tau_fs_;
};

}  // namespace mdm
