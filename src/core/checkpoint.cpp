#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>

#include "core/checkpoint_io.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"

namespace mdm {
namespace {

namespace fs = std::filesystem;

using ckptio::ByteReader;
using ckptio::ByteWriter;

constexpr std::uint64_t kMagicV3 = 0x4d444d434b505433ULL;  // "MDMCKPT3"
constexpr std::uint64_t kMagicV2 = 0x4d444d434b505432ULL;  // "MDMCKPT2"
constexpr std::uint64_t kMagicV1 = 0x4d444d434b505431ULL;  // "MDMCKPT1"

obs::Counter& writes_counter() {
  static obs::Counter& c = obs::Registry::global().counter("ckpt.writes");
  return c;
}
obs::Counter& bytes_counter() {
  static obs::Counter& c = obs::Registry::global().counter("ckpt.bytes");
  return c;
}
obs::Counter& restores_counter() {
  static obs::Counter& c = obs::Registry::global().counter("ckpt.restores");
  return c;
}
obs::Counter& corrupt_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.corrupt_skipped");
  return c;
}

void serialize(const CheckpointState& state, ByteWriter& w) {
  w.put(kMagicV3);
  w.put(kCheckpointVersion);
  w.put(state.step);
  w.put(state.time_ps);
  w.put(state.box);
  w.put(static_cast<std::uint64_t>(state.positions.size()));
  w.put(static_cast<std::uint32_t>(state.species.size()));
  for (const auto& s : state.species) {
    w.put(static_cast<std::uint32_t>(s.name.size()));
    w.put_bytes(s.name.data(), s.name.size());
    w.put(s.mass);
    w.put(s.charge);
  }
  w.put_bytes(state.types.data(),
              state.types.size() * sizeof(std::int32_t));
  w.put_bytes(state.positions.data(), state.positions.size() * sizeof(Vec3));
  w.put_bytes(state.velocities.data(),
              state.velocities.size() * sizeof(Vec3));
  w.put(state.thermostat.applications);
  w.put(state.thermostat.last_scale);
  w.put(state.thermostat.work_eV);
  for (int i = 0; i < 4; ++i) w.put(state.rng.s[i]);
  w.put(state.rng.cached);
  w.put(state.rng.have_cached);
  // v3 barostat block.
  w.put(state.barostat.applications);
  w.put(state.barostat.attempts);
  w.put(state.barostat.accepts);
  w.put(state.barostat.last_scale);
  for (int i = 0; i < 4; ++i) w.put(state.barostat.rng.s[i]);
  w.put(state.barostat.rng.cached);
  w.put(state.barostat.rng.have_cached);
  w.put(static_cast<std::uint32_t>(state.barostat.box_history.size()));
  if (!state.barostat.box_history.empty())
    w.put_bytes(state.barostat.box_history.data(),
                state.barostat.box_history.size() * sizeof(double));
}

/// "MDMCKPT2" and "MDMCKPT3" share the layout; v3 appends the barostat
/// block before the CRC footer.
CheckpointState deserialize_v2plus(const std::vector<char>& buf,
                                   const std::string& path,
                                   std::uint32_t expected_version) {
  // The last 4 bytes are the CRC footer, already verified by the caller.
  ByteReader r(buf, buf.size() - sizeof(std::uint32_t), path);
  CheckpointState state;
  r.get<std::uint64_t>("magic");
  const auto version = r.get<std::uint32_t>("version");
  if (version != expected_version)
    throw CheckpointError("checkpoint '" + path + "' has unsupported version " +
                          std::to_string(version));
  state.version = version;
  state.step = r.get<std::uint64_t>("step");
  state.time_ps = r.get<double>("time_ps");
  state.box = r.get<double>("box");
  const auto n = r.get<std::uint64_t>("particle count");
  const auto n_species = r.get<std::uint32_t>("species count");
  state.species.resize(n_species);
  for (auto& s : state.species) {
    const auto len = r.get<std::uint32_t>("species name length");
    s.name.resize(len);
    r.get_bytes(s.name.data(), len, "species name");
    s.mass = r.get<double>("species mass");
    s.charge = r.get<double>("species charge");
  }
  state.types.resize(n);
  r.get_bytes(state.types.data(), n * sizeof(std::int32_t), "types");
  state.positions.resize(n);
  r.get_bytes(state.positions.data(), n * sizeof(Vec3), "positions");
  state.velocities.resize(n);
  r.get_bytes(state.velocities.data(), n * sizeof(Vec3), "velocities");
  state.thermostat.applications =
      r.get<std::uint64_t>("thermostat applications");
  state.thermostat.last_scale = r.get<double>("thermostat scale");
  state.thermostat.work_eV = r.get<double>("thermostat work");
  for (int i = 0; i < 4; ++i)
    state.rng.s[i] = r.get<std::uint64_t>("rng word");
  state.rng.cached = r.get<double>("rng cache");
  state.rng.have_cached = r.get<std::uint8_t>("rng cache flag");
  if (version >= 3) {
    state.barostat.applications =
        r.get<std::uint64_t>("barostat applications");
    state.barostat.attempts = r.get<std::uint64_t>("barostat attempts");
    state.barostat.accepts = r.get<std::uint64_t>("barostat accepts");
    state.barostat.last_scale = r.get<double>("barostat scale");
    for (int i = 0; i < 4; ++i)
      state.barostat.rng.s[i] = r.get<std::uint64_t>("barostat rng word");
    state.barostat.rng.cached = r.get<double>("barostat rng cache");
    state.barostat.rng.have_cached =
        r.get<std::uint8_t>("barostat rng cache flag");
    const auto history = r.get<std::uint32_t>("box history count");
    state.barostat.box_history.resize(history);
    if (history > 0)
      r.get_bytes(state.barostat.box_history.data(),
                  history * sizeof(double), "box history");
  }
  return state;
}

/// Legacy "MDMCKPT1": magic, n, box, positions, velocities — no CRC.
CheckpointState deserialize_v1(const std::vector<char>& buf,
                               const std::string& path) {
  ByteReader r(buf, buf.size(), path);
  CheckpointState state;
  state.version = 1;
  r.get<std::uint64_t>("magic");
  const auto n = r.get<std::uint64_t>("particle count");
  state.box = r.get<double>("box");
  state.positions.resize(n);
  r.get_bytes(state.positions.data(), n * sizeof(Vec3), "positions");
  state.velocities.resize(n);
  r.get_bytes(state.velocities.data(), n * sizeof(Vec3), "velocities");
  return state;
}

}  // namespace

void checkpoint_fail_next_writes_for_testing(int count) {
  ckptio::set_fail_next_writes(count);
}

CheckpointState CheckpointState::capture(const ParticleSystem& system,
                                         std::uint64_t step,
                                         double time_ps) {
  CheckpointState state;
  state.step = step;
  state.time_ps = time_ps;
  state.box = system.box();
  for (int t = 0; t < system.species_count(); ++t)
    state.species.push_back(system.species(t));
  const auto types = system.types();
  state.types.assign(types.begin(), types.end());
  const auto pos = system.positions();
  state.positions.assign(pos.begin(), pos.end());
  const auto vel = system.velocities();
  state.velocities.assign(vel.begin(), vel.end());
  return state;
}

void CheckpointState::apply_to(ParticleSystem& system) const {
  if (positions.size() != system.size() ||
      velocities.size() != positions.size())
    throw CheckpointError("checkpoint particle count mismatch: file holds " +
                          std::to_string(positions.size()) +
                          ", system holds " + std::to_string(system.size()));
  if (box != system.box())
    throw CheckpointError("checkpoint box mismatch");
  if (!types.empty()) {
    for (std::size_t i = 0; i < types.size(); ++i)
      if (types[i] != system.type(i))
        throw CheckpointError("checkpoint species mismatch at particle " +
                              std::to_string(i));
  }
  auto pos = system.positions();
  auto vel = system.velocities();
  std::copy(positions.begin(), positions.end(), pos.begin());
  std::copy(velocities.begin(), velocities.end(), vel.begin());
}

void write_checkpoint_file(const std::string& path,
                           const CheckpointState& state) {
  if (state.velocities.size() != state.positions.size() ||
      state.types.size() != state.positions.size())
    throw CheckpointError(
        "checkpoint state arrays disagree on particle count");
  ByteWriter w;
  serialize(state, w);
  const std::uint32_t crc = ckptio::crc32(w.bytes().data(), w.bytes().size());
  w.put(crc);
  ckptio::write_file_atomic(path, w.bytes());
  writes_counter().add(1);
  bytes_counter().add(w.bytes().size());
}

CheckpointState read_checkpoint_file(const std::string& path) {
  const std::vector<char> buf = ckptio::read_file(path);
  if (buf.size() < sizeof(std::uint64_t))
    throw CheckpointError("checkpoint '" + path + "' truncated at offset " +
                          std::to_string(buf.size()) + " reading magic");
  std::uint64_t magic = 0;
  std::memcpy(&magic, buf.data(), sizeof magic);
  CheckpointState state;
  if (magic == kMagicV1) {
    state = deserialize_v1(buf, path);
  } else if (magic == kMagicV2 || magic == kMagicV3) {
    if (buf.size() < sizeof(std::uint64_t) + sizeof(std::uint32_t))
      throw CheckpointError("checkpoint '" + path + "' truncated at offset " +
                            std::to_string(buf.size()) + " reading footer");
    const std::size_t crc_offset = buf.size() - sizeof(std::uint32_t);
    std::uint32_t stored = 0;
    std::memcpy(&stored, buf.data() + crc_offset, sizeof stored);
    const std::uint32_t computed = ckptio::crc32(buf.data(), crc_offset);
    if (stored != computed) {
      char detail[96];
      std::snprintf(detail, sizeof detail,
                    "stored 0x%08x, computed 0x%08x", stored, computed);
      throw CheckpointError("checkpoint CRC mismatch in '" + path +
                            "' at offset " + std::to_string(crc_offset) +
                            ": " + detail);
    }
    state = deserialize_v2plus(buf, path, magic == kMagicV2 ? 2u : 3u);
  } else {
    throw CheckpointError("'" + path + "' is not an MDM checkpoint");
  }
  restores_counter().add(1);
  return state;
}

CheckpointManager::CheckpointManager(std::string directory,
                                     int keep_generations)
    : dir_(std::move(directory)), keep_(keep_generations) {
  if (keep_ < 1)
    throw std::invalid_argument("CheckpointManager: keep_generations >= 1");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw CheckpointError("cannot create checkpoint directory '" + dir_ +
                          "': " + ec.message());
}

std::string CheckpointManager::path_for_step(std::uint64_t step) const {
  char name[32];
  std::snprintf(name, sizeof name, "ckpt.%06llu.mdm",
                static_cast<unsigned long long>(step));
  return (fs::path(dir_) / name).string();
}

std::vector<std::string> CheckpointManager::generations() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "ckpt.", suffix = ".mdm";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    found.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [step, path] : found) out.push_back(std::move(path));
  return out;
}

std::string CheckpointManager::write(const CheckpointState& state) {
  obs::TraceSpan span("checkpoint.write");
  const std::string path = path_for_step(state.step);
  write_checkpoint_file(path, state);
  obs::FlightRecorder::record(obs::FlightKind::kCheckpoint, "write",
                              static_cast<std::int64_t>(state.step));

  // Refresh the `latest` pointer (same atomic protocol; advisory only —
  // restore_latest re-validates everything against the CRCs).
  const std::string pointer = (fs::path(dir_) / "latest").string();
  const std::string name = fs::path(path).filename().string() + "\n";
  ckptio::write_file_atomic(pointer, {name.begin(), name.end()});

  // Prune: keep the newest `keep_` generations.
  auto gens = generations();
  while (gens.size() > static_cast<std::size_t>(keep_)) {
    std::error_code ec;
    fs::remove(gens.front(), ec);
    gens.erase(gens.begin());
  }
  return path;
}

std::optional<CheckpointState> CheckpointManager::restore_latest() const {
  auto gens = generations();  // oldest..newest
  // Candidate order: the `latest` pointer first (when it names a real
  // generation), then every generation newest-first.
  std::vector<std::string> candidates;
  {
    std::ifstream in(fs::path(dir_) / "latest");
    std::string name;
    if (in >> name) {
      const std::string path = (fs::path(dir_) / name).string();
      if (std::find(gens.begin(), gens.end(), path) != gens.end())
        candidates.push_back(path);
    }
  }
  for (auto it = gens.rbegin(); it != gens.rend(); ++it)
    if (candidates.empty() || *it != candidates.front())
      candidates.push_back(*it);

  for (const auto& path : candidates) {
    try {
      return read_checkpoint_file(path);
    } catch (const CheckpointError& e) {
      corrupt_counter().add(1);
      MDM_LOG_WARN("checkpoint: skipping unreadable generation: %s",
                   e.what());
    }
  }
  return std::nullopt;
}

}  // namespace mdm
