#pragma once

/// \file rdf.hpp
/// Radial distribution function and mean-squared displacement - the
/// structural/dynamic observables behind the paper's physics goal (sec. 1:
/// solidification and solid-liquid phase transitions of ionic systems).
/// g(r) distinguishes the crystal's sharp shells from the melt's broad
/// first peak; the MSD slope gives the diffusion coefficient that vanishes
/// in the solid.

#include <cstdint>
#include <vector>

#include "core/particle_system.hpp"

namespace mdm {

/// Accumulates pair-distance histograms over frames and normalizes to the
/// ideal-gas reference. Supports species-resolved partials (Na-Na, Na-Cl,
/// Cl-Cl for the NaCl system).
class RadialDistribution {
 public:
  /// Histogram up to r_max (must be <= L/2) with `bins` bins.
  RadialDistribution(double r_max, int bins, int species_count);

  /// Accumulate one configuration (O(N^2) pair loop with minimum image).
  void accumulate(const ParticleSystem& system);

  int bins() const { return bins_; }
  double r_max() const { return r_max_; }
  std::size_t frames() const { return frames_; }

  /// Bin centre radius.
  double r(int bin) const;

  /// Total g(r) over all pairs.
  std::vector<double> total() const;
  /// Partial g_ab(r) between species a and b.
  std::vector<double> partial(int a, int b) const;

 private:
  double r_max_;
  int bins_;
  int species_count_;
  std::size_t frames_ = 0;
  double density_sum_ = 0.0;  ///< accumulated N/V for normalization
  std::vector<std::uint64_t> species_counts_;  ///< particles/species (last frame)
  /// counts_[((a * species + b) * bins) + bin], a <= b.
  std::vector<std::uint64_t> counts_;

  std::uint64_t& cell(int a, int b, int bin);
  std::uint64_t cell(int a, int b, int bin) const;
};

/// Mean-squared displacement tracker with periodic unwrapping: feed the
/// wrapped positions every sample; displacements are reconstructed from
/// minimum-image increments (valid while no particle moves more than L/2
/// between samples - guaranteed for any MD timestep).
class MeanSquaredDisplacement {
 public:
  /// Capture the reference (t = 0) configuration.
  explicit MeanSquaredDisplacement(const ParticleSystem& system);

  /// Record the next sample; returns the current MSD in A^2.
  double update(const ParticleSystem& system);

  /// MSD after the latest update (0 before any update).
  double value() const { return msd_; }

  /// Diffusion estimate D = MSD / (6 t) in A^2/fs for elapsed time t.
  double diffusion(double elapsed_fs) const;

 private:
  double box_;
  std::vector<Vec3> last_wrapped_;
  std::vector<Vec3> displacement_;
  double msd_ = 0.0;
};

}  // namespace mdm
