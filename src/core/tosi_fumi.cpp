#include "core/tosi_fumi.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cell_list.hpp"
#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm {

TosiFumiParameters TosiFumiParameters::nacl() {
  TosiFumiParameters p;
  p.species_count = 2;
  p.rho = 0.317;

  const double b = 3.38e-20 * 6.241509074e18;  // J -> eV: 0.21096 eV
  const double sigma[2] = {1.170, 1.585};      // Na, Cl
  const double pauling[2][2] = {{1.25, 1.00}, {1.00, 0.75}};
  // Sangster-Dixon tabulation, units 1e-79 J m^6 and 1e-99 J m^8.
  const double c_cgs[2][2] = {{1.68, 11.2}, {11.2, 116.0}};
  const double d_cgs[2][2] = {{0.8, 13.9}, {13.9, 233.0}};

  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      p.born_prefactor[i][j] =
          pauling[i][j] * b * std::exp((sigma[i] + sigma[j]) / p.rho);
      p.c6[i][j] = c_cgs[i][j] * units::kC6Unit;
      p.d8[i][j] = d_cgs[i][j] * units::kD8Unit;
    }
  }
  return p;
}

TosiFumiParameters TosiFumiParameters::kcl() {
  TosiFumiParameters p;
  p.species_count = 2;
  p.rho = 0.337;

  const double b = 3.38e-20 * 6.241509074e18;  // J -> eV: 0.21096 eV
  const double sigma[2] = {1.463, 1.585};      // K, Cl
  const double pauling[2][2] = {{1.25, 1.00}, {1.00, 0.75}};
  // Sangster-Dixon tabulation, units 1e-79 J m^6 and 1e-99 J m^8.
  const double c_cgs[2][2] = {{24.3, 48.0}, {48.0, 124.5}};
  const double d_cgs[2][2] = {{24.0, 73.0}, {73.0, 250.0}};

  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      p.born_prefactor[i][j] =
          pauling[i][j] * b * std::exp((sigma[i] + sigma[j]) / p.rho);
      p.c6[i][j] = c_cgs[i][j] * units::kC6Unit;
      p.d8[i][j] = d_cgs[i][j] * units::kD8Unit;
    }
  }
  return p;
}

double TosiFumiParameters::pair_energy(int ti, int tj, double r) const {
  const double r2 = r * r;
  const double r6 = r2 * r2 * r2;
  const double r8 = r6 * r2;
  return born_prefactor[ti][tj] * std::exp(-r / rho) - c6[ti][tj] / r6 -
         d8[ti][tj] / r8;
}

double TosiFumiParameters::pair_force_over_r(int ti, int tj, double r) const {
  const double r2 = r * r;
  const double r8 = r2 * r2 * r2 * r2;
  const double r10 = r8 * r2;
  return born_prefactor[ti][tj] * std::exp(-r / rho) / (rho * r) -
         6.0 * c6[ti][tj] / r8 - 8.0 * d8[ti][tj] / r10;
}

TosiFumiShortRange::TosiFumiShortRange(TosiFumiParameters params,
                                       double r_cut, bool shift_energy)
    : params_(params), r_cut_(r_cut), shift_energy_(shift_energy) {
  if (!(r_cut > 0.0)) throw std::invalid_argument("r_cut must be positive");
  if (shift_energy_) {
    for (int i = 0; i < params_.species_count; ++i)
      for (int j = 0; j < params_.species_count; ++j)
        shift_[i][j] = params_.pair_energy(i, j, r_cut_);
  }
}

ForceResult TosiFumiShortRange::add_forces(const ParticleSystem& system,
                                           std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("force array size mismatch");
  obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
  MDM_TRACE_SCOPE("tosi_fumi.short_range");
  const auto positions = system.positions();
  const auto types = system.types();

  if (!cells_ || cells_->box() != system.box())
    cells_.emplace(system.box(), r_cut_);
  cells_->build(positions);

  const PairTally tally = cells_->parallel_for_each_pair(
      pool_, scratch_, positions, r_cut_, forces,
      [this, types](std::uint32_t i, std::uint32_t j, const Vec3& d, double r2,
                    Vec3& f, PairTally& t) {
        const double r = std::sqrt(r2);
        const int ti = types[i];
        const int tj = types[j];
        const double s = params_.pair_force_over_r(ti, tj, r);
        f = s * d;  // force on i; Newton's third law applied by the engine
        t.potential += params_.pair_energy(ti, tj, r) - shift_[ti][tj];
        t.virial += s * r2;
      });
  static obs::Counter& pair_counter =
      obs::Registry::global().counter("core.short_range_pairs");
  pair_counter.add(tally.pairs);
  ForceResult result;
  result.potential = tally.potential;
  result.virial = tally.virial;
  return result;
}

}  // namespace mdm
