#pragma once

/// \file io.hpp
/// File I/O performed by the MDM host (sec. 3.1): XYZ trajectory frames,
/// binary checkpoints, and CSV time series for the plotting benches.

#include <string>
#include <vector>

#include "core/particle_system.hpp"
#include "core/simulation.hpp"

namespace mdm {

/// Append one frame in extended-XYZ format (element, x, y, z).
void write_xyz_frame(const std::string& path, const ParticleSystem& system,
                     const std::string& comment = "", bool append = false);

/// Write the sampled time series as CSV:
/// step,time_ps,temperature_K,kinetic_eV,potential_eV,total_eV.
void write_samples_csv(const std::string& path,
                       const std::vector<Sample>& samples);

/// Binary checkpoint of a particle system, written in the versioned
/// crash-consistent format of core/checkpoint (magic + version + CRC32
/// footer, temp-file + fsync + atomic rename). load_checkpoint also reads
/// the legacy bare positions+velocities format. The target system must
/// already hold the same particle count, box and species; only the dynamic
/// state is restored. For rotating checkpoints, step/thermostat/RNG state
/// and automatic fallback, use CheckpointManager directly.
void save_checkpoint(const std::string& path, const ParticleSystem& system);
void load_checkpoint(const std::string& path, ParticleSystem& system);

}  // namespace mdm
