#include "core/rdf.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdm {

RadialDistribution::RadialDistribution(double r_max, int bins,
                                       int species_count)
    : r_max_(r_max), bins_(bins), species_count_(species_count) {
  if (!(r_max > 0.0) || bins < 1 || species_count < 1)
    throw std::invalid_argument("RadialDistribution: bad arguments");
  counts_.assign(
      static_cast<std::size_t>(species_count) * species_count * bins, 0);
  species_counts_.assign(species_count, 0);
}

std::uint64_t& RadialDistribution::cell(int a, int b, int bin) {
  if (a > b) std::swap(a, b);
  return counts_[(static_cast<std::size_t>(a) * species_count_ + b) * bins_ +
                 bin];
}

std::uint64_t RadialDistribution::cell(int a, int b, int bin) const {
  if (a > b) std::swap(a, b);
  return counts_[(static_cast<std::size_t>(a) * species_count_ + b) * bins_ +
                 bin];
}

void RadialDistribution::accumulate(const ParticleSystem& system) {
  if (r_max_ > 0.5 * system.box() + 1e-9)
    throw std::invalid_argument("RadialDistribution: r_max must be <= L/2");
  if (system.species_count() > species_count_)
    throw std::invalid_argument("RadialDistribution: too many species");
  const auto positions = system.positions();
  const double bin_width = r_max_ / bins_;
  for (std::size_t i = 0; i < system.size(); ++i) {
    for (std::size_t j = i + 1; j < system.size(); ++j) {
      const double r =
          norm(minimum_image(positions[i], positions[j], system.box()));
      if (r >= r_max_) continue;
      const int bin = std::min(static_cast<int>(r / bin_width), bins_ - 1);
      ++cell(system.type(i), system.type(j), bin);
    }
  }
  for (auto& c : species_counts_) c = 0;
  for (std::size_t i = 0; i < system.size(); ++i)
    ++species_counts_[system.type(i)];
  density_sum_ += system.number_density();
  ++frames_;
}

double RadialDistribution::r(int bin) const {
  return (bin + 0.5) * r_max_ / bins_;
}

std::vector<double> RadialDistribution::partial(int a, int b) const {
  std::vector<double> g(bins_, 0.0);
  if (frames_ == 0) return g;
  const double bin_width = r_max_ / bins_;
  // Pair normalization: expected ideal-gas pairs in a shell for the (a, b)
  // species pair. For a == b: N_a (N_a - 1) / 2 ordered/2; for a != b:
  // N_a N_b (counted once since we store unordered pairs).
  const double na = static_cast<double>(species_counts_[a]);
  const double nb = static_cast<double>(species_counts_[b]);
  const double pair_count = a == b ? 0.5 * na * (na - 1.0) : na * nb;
  if (pair_count <= 0.0) return g;
  const double density = density_sum_ / static_cast<double>(frames_);
  // Volume inferred from the last frame's composition.
  const double total_n = [this] {
    double s = 0.0;
    for (const auto c : species_counts_) s += static_cast<double>(c);
    return s;
  }();
  const double volume = total_n / density;
  for (int bin = 0; bin < bins_; ++bin) {
    const double r_lo = bin * bin_width;
    const double r_hi = r_lo + bin_width;
    const double shell = 4.0 / 3.0 * std::numbers::pi *
                         (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = pair_count * shell / volume;
    g[bin] = static_cast<double>(cell(a, b, bin)) /
             (ideal * static_cast<double>(frames_));
  }
  return g;
}

std::vector<double> RadialDistribution::total() const {
  std::vector<double> g(bins_, 0.0);
  if (frames_ == 0) return g;
  const double bin_width = r_max_ / bins_;
  double total_n = 0.0;
  for (const auto c : species_counts_) total_n += static_cast<double>(c);
  const double pair_count = 0.5 * total_n * (total_n - 1.0);
  const double density = density_sum_ / static_cast<double>(frames_);
  const double volume = total_n / density;
  for (int bin = 0; bin < bins_; ++bin) {
    std::uint64_t count = 0;
    for (int a = 0; a < species_count_; ++a)
      for (int b = a; b < species_count_; ++b) count += cell(a, b, bin);
    const double r_lo = bin * bin_width;
    const double r_hi = r_lo + bin_width;
    const double shell = 4.0 / 3.0 * std::numbers::pi *
                         (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = pair_count * shell / volume;
    g[bin] = static_cast<double>(count) /
             (ideal * static_cast<double>(frames_));
  }
  return g;
}

MeanSquaredDisplacement::MeanSquaredDisplacement(const ParticleSystem& system)
    : box_(system.box()),
      last_wrapped_(system.positions().begin(), system.positions().end()),
      displacement_(system.size(), Vec3{}) {}

double MeanSquaredDisplacement::update(const ParticleSystem& system) {
  if (system.size() != displacement_.size())
    throw std::invalid_argument("MSD: particle count changed");
  const auto positions = system.positions();
  double total = 0.0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    // Minimum-image increment unwraps the trajectory.
    displacement_[i] += minimum_image(positions[i], last_wrapped_[i], box_);
    last_wrapped_[i] = positions[i];
    total += norm2(displacement_[i]);
  }
  msd_ = total / static_cast<double>(system.size());
  return msd_;
}

double MeanSquaredDisplacement::diffusion(double elapsed_fs) const {
  if (elapsed_fs <= 0.0) return 0.0;
  return msd_ / (6.0 * elapsed_fs);
}

}  // namespace mdm
