#pragma once

/// \file checkpoint_io.hpp
/// Shared binary-format plumbing of the durable on-disk formats (checkpoint
/// generations, DESIGN.md §8; job-resume manifests, DESIGN.md §13): CRC32,
/// bounds-checked byte cursors and the crash-consistent atomic file write
/// (temp + fsync + rename + parent fsync). Split out of checkpoint.cpp so
/// every format shares one implementation of the durability protocol — and
/// one test failpoint.

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "core/checkpoint.hpp"  // CheckpointError

namespace mdm::ckptio {

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
std::uint32_t crc32(const char* data, std::size_t size);

/// Backing store of checkpoint_fail_next_writes_for_testing: make the next
/// `count` payload writes (checkpoints AND manifests) fail mid-write.
void set_fail_next_writes(int count);

/// Crash-consistent byte dump: tmp + fsync + rename + parent-dir fsync. On
/// failure the temp file is removed and `path` is left untouched. Honours
/// the checkpoint_fail_next_writes_for_testing failpoint (fails after half
/// the payload with ENOSPC, like a disk filling up mid-write).
void write_file_atomic(const std::string& path, const std::vector<char>& buf);

/// Read a whole file; throws CheckpointError with errno context on failure.
std::vector<char> read_file(const std::string& path);

/// Append-only buffer a payload is serialized into before hitting disk.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }
  void put_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  std::vector<char>& bytes() { return buf_; }

 private:
  std::vector<char> buf_;
};

/// Cursor over a file image; every overrun names the file and offset.
class ByteReader {
 public:
  ByteReader(const std::vector<char>& buf, std::size_t limit,
             const std::string& path)
      : buf_(buf), limit_(limit), path_(path) {}

  template <typename T>
  T get(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    get_bytes(&v, sizeof(T), what);
    return v;
  }
  void get_bytes(void* out, std::size_t size, const char* what);
  std::size_t offset() const { return off_; }

 private:
  const std::vector<char>& buf_;
  std::size_t limit_;
  std::size_t off_ = 0;
  std::string path_;
};

}  // namespace mdm::ckptio
