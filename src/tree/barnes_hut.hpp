#pragma once

/// \file barnes_hut.hpp
/// Barnes-Hut O(N log N) Coulomb/gravity solver for open boundaries -
/// the sec. 6.3 program: "Makino et al. performed gravitational calculation
/// with tree-code ... and found that GRAPE machine can accelerate
/// tree-code. If we use tree-code with MDM, we can not only compare the
/// accuracy with Ewald method but also perform larger simulation that
/// cannot be done with Ewald method."
///
/// Two evaluation backends share one traversal:
///  * software double precision, and
///  * the MDGRAPE-2 chip: each particle's interaction list (monopoles +
///    opened-leaf particles) is streamed through the pipelines with a plain
///    1/r^3 g-table and per-pseudo-particle charges - exactly the
///    GRAPE-treecode pattern.

#include <span>

#include "mdgrape2/chip.hpp"
#include "tree/octree.hpp"

namespace mdm::tree {

struct BarnesHutStats {
  double potential = 0.0;         ///< software path only (eV-scale units)
  std::size_t interactions = 0;   ///< total pseudo-particle evaluations
  std::size_t max_list = 0;       ///< longest per-particle list
  double mean_list() const {
    return interactions == 0 ? 0.0
                             : static_cast<double>(interactions) /
                                   static_cast<double>(count);
  }
  std::size_t count = 0;          ///< number of targets
};

class BarnesHutCoulomb {
 public:
  /// `theta` is the opening angle (0 reproduces the direct sum; larger is
  /// faster and less accurate; 0.3-0.7 is the practical range).
  explicit BarnesHutCoulomb(double theta = 0.5, TreeConfig tree = {});

  double theta() const { return theta_; }

  /// Software evaluation: adds k_e q_i q_j / r^2 pair forces (monopole
  /// approximated) into `forces`; returns the half-summed potential.
  BarnesHutStats compute(std::span<const Vec3> positions,
                         std::span<const double> charges,
                         std::span<Vec3> forces) const;

  /// Same traversal, force kernel on an MDGRAPE-2 chip: 1/r^3 g-table,
  /// per-pseudo-particle charge, single-precision datapath.
  BarnesHutStats compute_on_mdgrape(std::span<const Vec3> positions,
                                    std::span<const double> charges,
                                    mdgrape2::Chip& chip,
                                    std::span<Vec3> forces) const;

 private:
  double theta_;
  TreeConfig tree_config_;
};

/// g(x) = x^{-3/2}: the bare 1/r^2 central force shape for the tree pass.
double g_bare_coulomb_force(double x);

}  // namespace mdm::tree
