#include "tree/octree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace mdm::tree {

Octree::Octree(std::span<const Vec3> positions,
               std::span<const double> charges, TreeConfig config)
    : config_(config) {
  if (positions.empty() || positions.size() != charges.size())
    throw std::invalid_argument("Octree: bad input arrays");
  if (config_.leaf_capacity < 1 || config_.max_depth < 1)
    throw std::invalid_argument("Octree: bad config");

  const std::size_t n = positions.size();
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    order_[i] = static_cast<std::uint32_t>(i);
  positions_.assign(positions.begin(), positions.end());
  charges_.assign(charges.begin(), charges.end());

  // Root cube: tight bounding box expanded to a cube with a small margin.
  Vec3 lo = positions[0], hi = positions[0];
  for (const auto& r : positions) {
    lo.x = std::min(lo.x, r.x);
    lo.y = std::min(lo.y, r.y);
    lo.z = std::min(lo.z, r.z);
    hi.x = std::max(hi.x, r.x);
    hi.y = std::max(hi.y, r.y);
    hi.z = std::max(hi.z, r.z);
  }
  Node root;
  root.center = 0.5 * (lo + hi);
  root.half_width =
      0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-12}) *
      1.0001;
  root.begin = 0;
  root.end = static_cast<std::uint32_t>(n);
  nodes_.push_back(root);
  build(0, 0);
}

void Octree::build(int node_index, int depth) {
  depth_ = std::max(depth_, depth);
  // Monopole of this node.
  {
    Node& node = nodes_[node_index];
    Vec3 weighted;
    double q = 0.0, absq = 0.0;
    for (auto s = node.begin; s < node.end; ++s) {
      q += charges_[s];
      absq += std::fabs(charges_[s]);
      weighted += std::fabs(charges_[s]) * positions_[s];
    }
    node.charge = q;
    node.abs_charge = absq;
    // Neutral-aggregate fallback: geometric mean of member positions.
    if (absq > 0.0) {
      node.centroid = weighted / absq;
    } else {
      Vec3 mean;
      for (auto s = node.begin; s < node.end; ++s) mean += positions_[s];
      node.centroid = mean / static_cast<double>(node.count());
    }
  }

  const Node node = nodes_[node_index];  // copy: vector may reallocate
  if (node.count() <= static_cast<std::uint32_t>(config_.leaf_capacity) ||
      depth >= config_.max_depth)
    return;

  // Partition the slot range into the 8 octants (three stable partitions).
  auto octant_of = [&node](const Vec3& r) {
    return (r.x >= node.center.x ? 1 : 0) | (r.y >= node.center.y ? 2 : 0) |
           (r.z >= node.center.z ? 4 : 0);
  };
  // Count and bucket.
  std::array<std::vector<std::uint32_t>, 8> slots_by_octant;
  std::array<std::vector<Vec3>, 8> pos_by_octant;
  std::array<std::vector<double>, 8> q_by_octant;
  for (auto s = node.begin; s < node.end; ++s) {
    const int o = octant_of(positions_[s]);
    slots_by_octant[o].push_back(order_[s]);
    pos_by_octant[o].push_back(positions_[s]);
    q_by_octant[o].push_back(charges_[s]);
  }
  // Rewrite the range in octant order.
  std::uint32_t cursor = node.begin;
  std::array<std::uint32_t, 9> bounds{};
  bounds[0] = node.begin;
  for (int o = 0; o < 8; ++o) {
    for (std::size_t k = 0; k < slots_by_octant[o].size(); ++k) {
      order_[cursor] = slots_by_octant[o][k];
      positions_[cursor] = pos_by_octant[o][k];
      charges_[cursor] = q_by_octant[o][k];
      ++cursor;
    }
    bounds[o + 1] = cursor;
  }

  const int first_child = static_cast<int>(nodes_.size());
  nodes_[node_index].first_child = first_child;
  const double child_half = 0.5 * node.half_width;
  for (int o = 0; o < 8; ++o) {
    Node child;
    child.center = node.center + Vec3{(o & 1) ? child_half : -child_half,
                                      (o & 2) ? child_half : -child_half,
                                      (o & 4) ? child_half : -child_half};
    child.half_width = child_half;
    child.begin = bounds[o];
    child.end = bounds[o + 1];
    nodes_.push_back(child);
  }
  for (int o = 0; o < 8; ++o) {
    if (nodes_[first_child + o].count() > 0)
      build(first_child + o, depth + 1);
    else
      nodes_[first_child + o].charge = 0.0;  // empty leaf
  }
}

void Octree::interaction_list(const Vec3& target, double theta,
                              std::uint32_t self_index,
                              std::vector<PseudoParticle>& out) const {
  // Iterative DFS with an explicit stack.
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    if (node.count() == 0) continue;
    const double d = norm(target - node.centroid);
    const double size = 2.0 * node.half_width;
    if (!node.is_leaf() && size >= theta * d) {
      for (int o = 0; o < 8; ++o) stack.push_back(node.first_child + o);
      continue;
    }
    if (node.is_leaf()) {
      for (auto s = node.begin; s < node.end; ++s) {
        if (order_[s] == self_index) continue;
        out.push_back({positions_[s], charges_[s]});
      }
    } else {
      // Accepted internal node: its monopole stands in for the contents.
      out.push_back({node.centroid, node.charge});
    }
  }
}

}  // namespace mdm::tree
