#include "tree/barnes_hut.hpp"

#include <cmath>
#include <stdexcept>

#include "mdgrape2/gtables.hpp"
#include "util/units.hpp"

namespace mdm::tree {

double g_bare_coulomb_force(double x) { return 1.0 / (x * std::sqrt(x)); }

BarnesHutCoulomb::BarnesHutCoulomb(double theta, TreeConfig tree)
    : theta_(theta), tree_config_(tree) {
  if (!(theta >= 0.0)) throw std::invalid_argument("theta must be >= 0");
}

BarnesHutStats BarnesHutCoulomb::compute(std::span<const Vec3> positions,
                                         std::span<const double> charges,
                                         std::span<Vec3> forces) const {
  if (forces.size() != positions.size())
    throw std::invalid_argument("BarnesHut: force array size mismatch");
  const Octree tree(positions, charges, tree_config_);
  BarnesHutStats stats;
  stats.count = positions.size();

  std::vector<PseudoParticle> list;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    list.clear();
    tree.interaction_list(positions[i], theta_,
                          static_cast<std::uint32_t>(i), list);
    Vec3 f;
    double phi = 0.0;
    for (const auto& p : list) {
      const Vec3 d = positions[i] - p.position;
      const double r2 = norm2(d);
      if (r2 == 0.0) continue;
      const double r = std::sqrt(r2);
      f += (p.charge / (r2 * r)) * d;
      phi += p.charge / r;
    }
    forces[i] += (units::kCoulomb * charges[i]) * f;
    stats.potential += 0.5 * units::kCoulomb * charges[i] * phi;
    stats.interactions += list.size();
    stats.max_list = std::max(stats.max_list, list.size());
  }
  return stats;
}

BarnesHutStats BarnesHutCoulomb::compute_on_mdgrape(
    std::span<const Vec3> positions, std::span<const double> charges,
    mdgrape2::Chip& chip, std::span<Vec3> forces) const {
  if (forces.size() != positions.size())
    throw std::invalid_argument("BarnesHut: force array size mismatch");
  const Octree tree(positions, charges, tree_config_);
  BarnesHutStats stats;
  stats.count = positions.size();

  // Map the open system into a cyclic box large enough that no pair ever
  // wraps: the box is 4 root half-widths wide and everything is shifted to
  // its middle, so all separations stay below box/2.
  const auto& root = tree.root();
  const double box = 8.0 * root.half_width;
  const Vec3 offset =
      Vec3{box / 2, box / 2, box / 2} - root.center;

  // Bare 1/r^2 force table with per-pseudo-particle charges: b_ij = 1, the
  // host applies k_e q_i afterwards.
  mdgrape2::ForcePass pass;
  mdgrape2::TableConfig cfg;
  cfg.x_min = std::pow(root.half_width * 2e-4, 2);
  cfg.x_max = std::pow(2.0 * std::sqrt(3.0) * root.half_width * 1.01, 2);
  pass.table = mdgrape2::SegmentedTable::fit(g_bare_coulomb_force, cfg);
  pass.coefficients.species_count = 1;
  pass.coefficients.a[0][0] = 1.0;
  pass.coefficients.b[0][0] = 1.0;
  pass.use_particle_charge = true;
  chip.load_pass(pass);

  std::vector<PseudoParticle> list;
  std::vector<mdgrape2::StoredParticle> stream;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    list.clear();
    tree.interaction_list(positions[i], theta_,
                          static_cast<std::uint32_t>(i), list);
    stream.clear();
    stream.reserve(list.size());
    for (const auto& p : list) {
      mdgrape2::StoredParticle sp;
      sp.position = mdgrape2::to_cyclic(p.position + offset, box);
      sp.type = 0;
      sp.charge = static_cast<float>(p.charge);
      stream.push_back(sp);
    }
    mdgrape2::StoredParticle target;
    target.position = mdgrape2::to_cyclic(positions[i] + offset, box);
    target.type = 0;

    Vec3 f;
    chip.calc_forces({&target, 1}, stream, box, {&f, 1});
    forces[i] += (units::kCoulomb * charges[i]) * f;
    stats.interactions += list.size();
    stats.max_list = std::max(stats.max_list, list.size());
  }
  return stats;
}

}  // namespace mdm::tree
