#pragma once

/// \file octree.hpp
/// Octree over an open-boundary particle set - the substrate of the
/// Barnes-Hut O(N log N) method the paper discusses in sec. 6.3 as the
/// main alternative to Ewald summation (and which Makino showed GRAPE-class
/// hardware accelerates; our barnes_hut.cpp runs the interaction lists
/// through the MDGRAPE-2 pipeline the same way).
///
/// Monopole-only expansion: each node carries its total charge (or mass)
/// and charge-weighted centroid, the classic GRAPE-treecode choice.

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace mdm::tree {

struct TreeConfig {
  int leaf_capacity = 8;  ///< split nodes above this occupancy
  int max_depth = 32;
};

/// A source for the force evaluation: either a node's monopole or an
/// individual particle from an opened leaf.
struct PseudoParticle {
  Vec3 position;
  double charge = 0.0;
};

class Octree {
 public:
  /// Build over the given positions/charges (borrowed spans; the tree
  /// stores copies of what it needs). Throws on empty input.
  Octree(std::span<const Vec3> positions, std::span<const double> charges,
         TreeConfig config = {});

  struct Node {
    Vec3 center;             ///< geometric centre of the cube
    double half_width = 0.0;
    Vec3 centroid;           ///< |charge|-weighted centroid of contents
    double charge = 0.0;     ///< total charge (signed)
    double abs_charge = 0.0; ///< total |charge| (centroid weight)
    std::uint32_t begin = 0; ///< particle-index range (into order())
    std::uint32_t end = 0;
    int first_child = -1;    ///< index of first of 8 children; -1 for leaf
    bool is_leaf() const { return first_child < 0; }
    std::uint32_t count() const { return end - begin; }
  };

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& root() const { return nodes_.front(); }
  /// Particle ids sorted in tree order; each node's [begin, end) indexes
  /// into this array.
  std::span<const std::uint32_t> order() const { return order_; }

  std::size_t size() const { return order_.size(); }
  int depth() const { return depth_; }

  /// Build the Barnes-Hut interaction list for a target position with
  /// opening angle theta: nodes with half-width*2 / distance < theta enter
  /// as monopoles, opened leaves contribute their particles (the particle
  /// at `self_index` is skipped). The list is appended to `out`.
  void interaction_list(const Vec3& target, double theta,
                        std::uint32_t self_index,
                        std::vector<PseudoParticle>& out) const;

 private:
  void build(int node_index, int depth);

  TreeConfig config_;
  std::vector<Vec3> positions_;   // tree-ordered copies
  std::vector<double> charges_;
  std::vector<std::uint32_t> order_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace mdm::tree
