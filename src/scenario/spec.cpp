#include "scenario/spec.hpp"

#include <cstdio>

namespace mdm::scenario {

namespace {

void append_kv(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += " = \"";
  out += value;
  out += "\"\n";
}

void append_kv(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += key;
  out += " = ";
  out += buf;
  out += "\n";
}

void append_kv(std::string& out, const char* key, int value) {
  out += key;
  out += " = ";
  out += std::to_string(value);
  out += "\n";
}

void append_kv(std::string& out, const char* key, std::uint64_t value) {
  out += key;
  out += " = ";
  out += std::to_string(value);
  out += "\n";
}

void append_kv(std::string& out, const char* key, bool value) {
  out += key;
  out += " = ";
  out += value ? "true" : "false";
  out += "\n";
}

}  // namespace

std::string to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kLattice: return "lattice";
    case SystemKind::kRandom: return "random";
  }
  return "?";
}

std::string to_string(ForceFieldKind kind) {
  switch (kind) {
    case ForceFieldKind::kTosiFumiNaCl: return "tosi-fumi-nacl";
    case ForceFieldKind::kTosiFumiKCl: return "tosi-fumi-kcl";
    case ForceFieldKind::kLennardJones: return "lennard-jones";
  }
  return "?";
}

std::string to_string(EnsembleKind kind) {
  switch (kind) {
    case EnsembleKind::kNve: return "nve";
    case EnsembleKind::kNvt: return "nvt";
    case EnsembleKind::kNpt: return "npt";
  }
  return "?";
}

std::string to_string(BarostatKind kind) {
  switch (kind) {
    case BarostatKind::kBerendsen: return "berendsen";
    case BarostatKind::kMonteCarlo: return "monte-carlo";
  }
  return "?";
}

std::string to_string(ThermostatKind kind) {
  switch (kind) {
    case ThermostatKind::kVelocityScaling: return "velocity-scaling";
    case ThermostatKind::kBerendsen: return "berendsen";
  }
  return "?";
}

std::string to_string(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kRdf: return "rdf";
    case AnalysisKind::kMsd: return "msd";
    case AnalysisKind::kEnergy: return "energy";
    case AnalysisKind::kTrajectory: return "trajectory";
  }
  return "?";
}

int ScenarioSpec::species_index(const std::string& species_name) const {
  for (std::size_t i = 0; i < species.size(); ++i)
    if (species[i].name == species_name) return static_cast<int>(i);
  return -1;
}

std::string ScenarioSpec::canonical_text() const {
  std::string out;
  out += "[scenario]\n";
  append_kv(out, "name", name);

  for (const auto& s : species) {
    out += "\n[species." + s.name + "]\n";
    append_kv(out, "mass", s.mass);
    append_kv(out, "charge", s.charge);
    append_kv(out, "sigma", s.sigma);
    append_kv(out, "eps", s.eps);
    append_kv(out, "count", s.count);
  }

  out += "\n[system]\n";
  append_kv(out, "kind", to_string(system.kind));
  if (system.kind == SystemKind::kLattice) {
    append_kv(out, "cells", system.cells);
    append_kv(out, "lattice_constant", system.lattice_constant);
  } else {
    append_kv(out, "box", system.box);
    append_kv(out, "min_distance", system.min_distance);
  }
  append_kv(out, "seed", system.seed);

  out += "\n[forcefield]\n";
  append_kv(out, "kind", to_string(forcefield.kind));
  append_kv(out, "coulomb", forcefield.coulomb);
  append_kv(out, "alpha", forcefield.alpha);
  append_kv(out, "r_cut", forcefield.r_cut);
  append_kv(out, "shift_energy", forcefield.shift_energy);

  out += "\n[ensemble]\n";
  append_kv(out, "kind", to_string(ensemble.kind));
  append_kv(out, "thermostat", to_string(ensemble.thermostat));
  append_kv(out, "thermostat_tau_fs", ensemble.thermostat_tau_fs);
  if (ensemble.kind == EnsembleKind::kNpt) {
    append_kv(out, "barostat", to_string(ensemble.barostat));
    append_kv(out, "pressure_GPa", ensemble.pressure_GPa);
    append_kv(out, "barostat_tau_fs", ensemble.barostat_tau_fs);
    append_kv(out, "compressibility_per_GPa",
              ensemble.compressibility_per_GPa);
    append_kv(out, "max_volume_change", ensemble.max_volume_change);
    append_kv(out, "barostat_interval", ensemble.barostat_interval);
    append_kv(out, "barostat_seed", ensemble.barostat_seed);
  }

  out += "\n[run]\n";
  append_kv(out, "dt_fs", run.dt_fs);
  append_kv(out, "equilibration", run.equilibration);
  append_kv(out, "production", run.production);
  append_kv(out, "temperature_K", run.temperature_K);
  append_kv(out, "sample_interval", run.sample_interval);
  append_kv(out, "rescale_interval", run.rescale_interval);

  for (const auto& a : analyses) {
    out += "\n[analysis." + a.name + "]\n";
    append_kv(out, "kind", to_string(a.kind));
    append_kv(out, "nstep", a.nstep);
    append_kv(out, "file", a.file);
    if (a.kind == AnalysisKind::kRdf) {
      append_kv(out, "bins", a.bins);
      append_kv(out, "r_max", a.r_max);
      if (!a.species_a.empty()) append_kv(out, "species_a", a.species_a);
      if (!a.species_b.empty()) append_kv(out, "species_b", a.species_b);
    }
  }
  return out;
}

}  // namespace mdm::scenario
