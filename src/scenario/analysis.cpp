#include "scenario/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/io.hpp"

namespace mdm::scenario {

namespace fs = std::filesystem;

ScenarioAnalysis::ScenarioAnalysis(std::string name, int nstep)
    : name_(std::move(name)), nstep_(nstep) {
  if (nstep_ < 1) throw std::invalid_argument("analysis nstep must be >= 1");
}

void ScenarioAnalysis::sample(const ParticleSystem& system, const Sample& s) {
  ++calls_;
  if (calls_ % static_cast<std::uint64_t>(nstep_) != 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  do_sample(system, s);
  ++fires_;
  elapsed_ms_ += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
}

std::string ScenarioAnalysis::finalize(const std::string& dir) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string path = do_finalize(dir);
  elapsed_ms_ += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return path;
}

AnalysisSet::AnalysisSet(const ScenarioSpec& spec, std::string output_dir)
    : output_dir_(std::move(output_dir)) {
  for (const auto& a : spec.analyses) {
    switch (a.kind) {
      case AnalysisKind::kEnergy:
        add(std::make_unique<EnergyAnalysis>(a));
        break;
      case AnalysisKind::kRdf:
        add(std::make_unique<RdfAnalysis>(a, spec.species_index(a.species_a),
                                          spec.species_index(a.species_b)));
        break;
      case AnalysisKind::kMsd:
        add(std::make_unique<MsdAnalysis>(a));
        break;
      case AnalysisKind::kTrajectory:
        add(std::make_unique<TrajectoryAnalysis>(a, output_dir_));
        break;
    }
  }
}

void AnalysisSet::add(std::unique_ptr<ScenarioAnalysis> analysis) {
  analyses_.push_back(std::move(analysis));
}

void AnalysisSet::sample(const ParticleSystem& system, const Sample& s) {
  for (auto& a : analyses_) a->sample(system, s);
}

std::vector<std::string> AnalysisSet::finalize() {
  std::vector<std::string> files;
  if (!analyses_.empty() && !output_dir_.empty())
    fs::create_directories(output_dir_);
  for (auto& a : analyses_) {
    std::string path = a->finalize(output_dir_);
    if (!path.empty()) files.push_back(std::move(path));
  }
  return files;
}

std::string AnalysisSet::report() const {
  double total_ms = 0.0;
  for (const auto& a : analyses_) total_ms += a->elapsed_ms();
  std::string out = "analysis cost (total " +
                    std::to_string(total_ms) + " ms):\n";
  for (const auto& a : analyses_) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-16s nstep=%-4d fires=%-6llu %8.2f ms  %5.1f%%\n",
                  a->name().c_str(), a->nstep(),
                  static_cast<unsigned long long>(a->fires()),
                  a->elapsed_ms(),
                  total_ms > 0.0 ? 100.0 * a->elapsed_ms() / total_ms : 0.0);
    out += line;
  }
  return out;
}

EnergyAnalysis::EnergyAnalysis(const AnalysisSpec& spec)
    : ScenarioAnalysis(spec.name, spec.nstep), file_(spec.file) {}

void EnergyAnalysis::do_sample(const ParticleSystem& system,
                               const Sample& s) {
  rows_.push_back({s, system.box()});
}

std::string EnergyAnalysis::do_finalize(const std::string& dir) {
  if (rows_.empty()) return "";
  const std::string path = (fs::path(dir) / file_).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot write " + path);
  std::fprintf(f,
               "step,time_ps,temperature_K,kinetic_eV,potential_eV,"
               "total_eV,pressure_GPa,box_A\n");
  for (const auto& r : rows_)
    std::fprintf(f, "%d,%.6f,%.6f,%.10g,%.10g,%.10g,%.10g,%.10g\n",
                 r.sample.step, r.sample.time_ps, r.sample.temperature_K,
                 r.sample.kinetic_eV, r.sample.potential_eV,
                 r.sample.total_eV, r.sample.pressure_GPa, r.box);
  std::fclose(f);
  return path;
}

RdfAnalysis::RdfAnalysis(const AnalysisSpec& spec, int species_a,
                         int species_b)
    : ScenarioAnalysis(spec.name, spec.nstep),
      file_(spec.file),
      bins_(spec.bins),
      r_max_(spec.r_max),
      species_a_(species_a),
      species_b_(species_b) {}

void RdfAnalysis::do_sample(const ParticleSystem& system,
                            const Sample& /*s*/) {
  if (!rdf_) {
    const double r_max =
        r_max_ > 0.0 ? std::min(r_max_, 0.5 * system.box())
                     : 0.45 * system.box();
    rdf_ = std::make_unique<RadialDistribution>(r_max, bins_,
                                                system.species_count());
  }
  rdf_->accumulate(system);
}

std::string RdfAnalysis::do_finalize(const std::string& dir) {
  if (!rdf_ || rdf_->frames() == 0) return "";
  const std::string path = (fs::path(dir) / file_).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot write " + path);
  const bool partial = species_a_ >= 0 && species_b_ >= 0;
  std::fprintf(f, partial ? "r_A,g_total,g_partial\n" : "r_A,g_total\n");
  const auto total = rdf_->total();
  const auto pair =
      partial ? rdf_->partial(species_a_, species_b_) : std::vector<double>{};
  for (int bin = 0; bin < rdf_->bins(); ++bin) {
    if (partial)
      std::fprintf(f, "%.6f,%.8g,%.8g\n", rdf_->r(bin), total[bin],
                   pair[bin]);
    else
      std::fprintf(f, "%.6f,%.8g\n", rdf_->r(bin), total[bin]);
  }
  std::fclose(f);
  return path;
}

MsdAnalysis::MsdAnalysis(const AnalysisSpec& spec)
    : ScenarioAnalysis(spec.name, spec.nstep), file_(spec.file) {}

void MsdAnalysis::do_sample(const ParticleSystem& system, const Sample& s) {
  if (!msd_) {
    // First fire captures the reference configuration (MSD 0).
    msd_ = std::make_unique<MeanSquaredDisplacement>(system);
    t0_ps_ = s.time_ps;
    rows_.push_back({s.step, s.time_ps, 0.0});
    return;
  }
  rows_.push_back({s.step, s.time_ps, msd_->update(system)});
}

std::string MsdAnalysis::do_finalize(const std::string& dir) {
  if (rows_.empty()) return "";
  const std::string path = (fs::path(dir) / file_).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot write " + path);
  std::fprintf(f, "step,time_ps,msd_A2,diffusion_A2_per_fs\n");
  for (const auto& r : rows_) {
    const double elapsed_fs = (r.time_ps - t0_ps_) * 1e3;
    std::fprintf(f, "%d,%.6f,%.8g,%.8g\n", r.step, r.time_ps, r.msd_A2,
                 elapsed_fs > 0.0 ? r.msd_A2 / (6.0 * elapsed_fs) : 0.0);
  }
  std::fclose(f);
  return path;
}

TrajectoryAnalysis::TrajectoryAnalysis(const AnalysisSpec& spec,
                                       std::string output_dir)
    : ScenarioAnalysis(spec.name, spec.nstep),
      path_((fs::path(output_dir) / spec.file).string()) {}

void TrajectoryAnalysis::do_sample(const ParticleSystem& system,
                                   const Sample& s) {
  if (!wrote_any_) {
    // Frames stream during the run, so the directory must exist up front.
    const auto parent = fs::path(path_).parent_path();
    if (!parent.empty()) fs::create_directories(parent);
  }
  char comment[64];
  std::snprintf(comment, sizeof comment, "step %d t=%.4f ps", s.step,
                s.time_ps);
  write_xyz_frame(path_, system, comment, /*append=*/wrote_any_);
  wrote_any_ = true;
}

std::string TrajectoryAnalysis::do_finalize(const std::string& /*dir*/) {
  return wrote_any_ ? path_ : "";
}

}  // namespace mdm::scenario
