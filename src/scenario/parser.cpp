#include "scenario/parser.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numbers>
#include <sstream>

#include "core/lennard_jones.hpp"

namespace mdm::scenario {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Strip a trailing `# comment` that is not inside a quoted string.
std::string strip_comment(const std::string& s) {
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (s[i] == '#' && !quoted) return s.substr(0, i);
  }
  return s;
}

struct Cursor {
  const std::string& origin;
  int line = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw ScenarioError(origin + ":" + std::to_string(line) + ": " + what);
  }
};

double parse_double(const Cursor& at, const std::string& key,
                    const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    at.fail("key '" + key + "' expects a number, got '" + value + "'");
  return v;
}

int parse_int(const Cursor& at, const std::string& key,
              const std::string& value) {
  const double v = parse_double(at, key, value);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v)
    at.fail("key '" + key + "' expects an integer, got '" + value + "'");
  return i;
}

std::uint64_t parse_u64(const Cursor& at, const std::string& key,
                        const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    at.fail("key '" + key + "' expects an unsigned integer, got '" + value +
            "'");
  return v;
}

bool parse_bool(const Cursor& at, const std::string& key,
                const std::string& value) {
  if (value == "true") return true;
  if (value == "false") return false;
  at.fail("key '" + key + "' expects true or false, got '" + value + "'");
}

std::string parse_string(const Cursor& at, const std::string& key,
                         const std::string& value) {
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
    return value.substr(1, value.size() - 2);
  if (value.find('"') != std::string::npos)
    at.fail("key '" + key + "' has an unterminated string: " + value);
  return value;
}

[[noreturn]] void unknown_key(const Cursor& at, const std::string& section,
                              const std::string& key) {
  at.fail("unknown key '" + key + "' in [" + section + "]");
}

}  // namespace

ScenarioSpec parse_scenario(const std::string& text,
                            const std::string& origin) {
  ScenarioSpec spec;
  // Scenario-file defaults favour explicitness: schedule/temperature come
  // from the file, not the struct defaults above (which serve in-code
  // construction). Keep struct defaults — they match the bundled specs.

  Cursor at{origin, 0};
  std::istringstream in(text);
  std::string raw;

  std::string section;      // "scenario", "species", "system", ...
  std::string sub;          // species / analysis instance name
  SpeciesSpec* species = nullptr;
  AnalysisSpec* analysis = nullptr;

  while (std::getline(in, raw)) {
    ++at.line;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']')
        at.fail("malformed section header: " + line);
      const std::string inner = trim(line.substr(1, line.size() - 2));
      const auto dot = inner.find('.');
      section = dot == std::string::npos ? inner : inner.substr(0, dot);
      sub = dot == std::string::npos ? "" : trim(inner.substr(dot + 1));
      species = nullptr;
      analysis = nullptr;

      if (section == "species") {
        if (sub.empty()) at.fail("[species] needs a name: [species.Na]");
        if (spec.species_index(sub) >= 0)
          at.fail("duplicate species '" + sub + "'");
        spec.species.push_back(SpeciesSpec{});
        spec.species.back().name = sub;
        species = &spec.species.back();
      } else if (section == "analysis") {
        if (sub.empty())
          at.fail("[analysis] needs an instance name: [analysis.rdf1]");
        for (const auto& a : spec.analyses)
          if (a.name == sub) at.fail("duplicate analysis '" + sub + "'");
        spec.analyses.push_back(AnalysisSpec{});
        spec.analyses.back().name = sub;
        analysis = &spec.analyses.back();
      } else if (section != "scenario" && section != "system" &&
                 section != "forcefield" && section != "ensemble" &&
                 section != "run") {
        at.fail("unknown section [" + inner + "]");
      } else if (!sub.empty()) {
        at.fail("section [" + section + "] takes no sub-name");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos)
      at.fail("expected 'key = value', got: " + line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) at.fail("empty key in: " + line);
    if (value.empty()) at.fail("key '" + key + "' has no value");
    if (section.empty())
      at.fail("key '" + key + "' outside any [section]");

    if (section == "scenario") {
      if (key == "name") spec.name = parse_string(at, key, value);
      else unknown_key(at, section, key);
    } else if (section == "species") {
      auto& s = *species;
      if (key == "mass") s.mass = parse_double(at, key, value);
      else if (key == "charge") s.charge = parse_double(at, key, value);
      else if (key == "sigma") s.sigma = parse_double(at, key, value);
      else if (key == "eps") s.eps = parse_double(at, key, value);
      else if (key == "count") s.count = parse_int(at, key, value);
      else unknown_key(at, section + "." + sub, key);
    } else if (section == "system") {
      auto& s = spec.system;
      if (key == "kind") {
        const std::string v = parse_string(at, key, value);
        if (v == "lattice") s.kind = SystemKind::kLattice;
        else if (v == "random") s.kind = SystemKind::kRandom;
        else at.fail("system kind must be lattice or random, got '" + v + "'");
      } else if (key == "cells") s.cells = parse_int(at, key, value);
      else if (key == "lattice_constant")
        s.lattice_constant = parse_double(at, key, value);
      else if (key == "box") s.box = parse_double(at, key, value);
      else if (key == "min_distance")
        s.min_distance = parse_double(at, key, value);
      else if (key == "seed") s.seed = parse_u64(at, key, value);
      else unknown_key(at, section, key);
    } else if (section == "forcefield") {
      auto& f = spec.forcefield;
      if (key == "kind") {
        const std::string v = parse_string(at, key, value);
        if (v == "tosi-fumi-nacl") f.kind = ForceFieldKind::kTosiFumiNaCl;
        else if (v == "tosi-fumi-kcl") f.kind = ForceFieldKind::kTosiFumiKCl;
        else if (v == "lennard-jones") f.kind = ForceFieldKind::kLennardJones;
        else at.fail("forcefield kind must be tosi-fumi-nacl, tosi-fumi-kcl "
                     "or lennard-jones, got '" + v + "'");
      } else if (key == "coulomb") f.coulomb = parse_bool(at, key, value);
      else if (key == "alpha") f.alpha = parse_double(at, key, value);
      else if (key == "r_cut") f.r_cut = parse_double(at, key, value);
      else if (key == "shift_energy")
        f.shift_energy = parse_bool(at, key, value);
      else unknown_key(at, section, key);
    } else if (section == "ensemble") {
      auto& e = spec.ensemble;
      if (key == "kind") {
        const std::string v = parse_string(at, key, value);
        if (v == "nve") e.kind = EnsembleKind::kNve;
        else if (v == "nvt") e.kind = EnsembleKind::kNvt;
        else if (v == "npt") e.kind = EnsembleKind::kNpt;
        else at.fail("ensemble kind must be nve, nvt or npt, got '" + v +
                     "'");
      } else if (key == "thermostat") {
        const std::string v = parse_string(at, key, value);
        if (v == "velocity-scaling")
          e.thermostat = ThermostatKind::kVelocityScaling;
        else if (v == "berendsen") e.thermostat = ThermostatKind::kBerendsen;
        else at.fail("thermostat must be velocity-scaling or berendsen, "
                     "got '" + v + "'");
      } else if (key == "thermostat_tau_fs")
        e.thermostat_tau_fs = parse_double(at, key, value);
      else if (key == "barostat") {
        const std::string v = parse_string(at, key, value);
        if (v == "berendsen") e.barostat = BarostatKind::kBerendsen;
        else if (v == "monte-carlo") e.barostat = BarostatKind::kMonteCarlo;
        else at.fail("barostat must be berendsen or monte-carlo, got '" + v +
                     "'");
      } else if (key == "pressure_GPa")
        e.pressure_GPa = parse_double(at, key, value);
      else if (key == "barostat_tau_fs")
        e.barostat_tau_fs = parse_double(at, key, value);
      else if (key == "compressibility_per_GPa")
        e.compressibility_per_GPa = parse_double(at, key, value);
      else if (key == "max_volume_change")
        e.max_volume_change = parse_double(at, key, value);
      else if (key == "barostat_interval")
        e.barostat_interval = parse_int(at, key, value);
      else if (key == "barostat_seed")
        e.barostat_seed = parse_u64(at, key, value);
      else unknown_key(at, section, key);
    } else if (section == "run") {
      auto& r = spec.run;
      if (key == "dt_fs") r.dt_fs = parse_double(at, key, value);
      else if (key == "equilibration")
        r.equilibration = parse_int(at, key, value);
      else if (key == "production") r.production = parse_int(at, key, value);
      else if (key == "temperature_K")
        r.temperature_K = parse_double(at, key, value);
      else if (key == "sample_interval")
        r.sample_interval = parse_int(at, key, value);
      else if (key == "rescale_interval")
        r.rescale_interval = parse_int(at, key, value);
      else unknown_key(at, section, key);
    } else if (section == "analysis") {
      auto& a = *analysis;
      if (key == "kind") {
        const std::string v = parse_string(at, key, value);
        if (v == "rdf") a.kind = AnalysisKind::kRdf;
        else if (v == "msd") a.kind = AnalysisKind::kMsd;
        else if (v == "energy") a.kind = AnalysisKind::kEnergy;
        else if (v == "trajectory") a.kind = AnalysisKind::kTrajectory;
        else at.fail("analysis kind must be rdf, msd, energy or trajectory, "
                     "got '" + v + "'");
      } else if (key == "nstep") a.nstep = parse_int(at, key, value);
      else if (key == "file") a.file = parse_string(at, key, value);
      else if (key == "bins") a.bins = parse_int(at, key, value);
      else if (key == "r_max") a.r_max = parse_double(at, key, value);
      else if (key == "species_a") a.species_a = parse_string(at, key, value);
      else if (key == "species_b") a.species_b = parse_string(at, key, value);
      else unknown_key(at, section + "." + sub, key);
    }
  }

  validate(spec, origin);
  return spec;
}

ScenarioSpec parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot open scenario file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario(text.str(), path);
}

void validate(const ScenarioSpec& spec, const std::string& origin) {
  const auto fail = [&origin](const std::string& what) {
    throw ScenarioError(origin + ": " + what);
  };

  if (spec.species.empty()) fail("no [species.*] sections");
  for (const auto& s : spec.species) {
    if (!(s.mass > 0.0))
      fail("species '" + s.name + "' needs a positive mass");
    if (s.sigma < 0.0)
      fail("species '" + s.name + "' has negative sigma");
    if (s.eps < 0.0) fail("species '" + s.name + "' has negative eps");
    if (s.count < 0) fail("species '" + s.name + "' has negative count");
  }
  if (spec.species.size() >
      static_cast<std::size_t>(LennardJonesParameters::kMaxSpecies))
    fail("too many species (max " +
         std::to_string(LennardJonesParameters::kMaxSpecies) + ")");

  const bool tosi_fumi = spec.forcefield.kind != ForceFieldKind::kLennardJones;
  if (tosi_fumi && spec.species.size() != 2)
    fail("tosi-fumi force fields take exactly 2 species (cation, anion)");
  if (spec.forcefield.kind == ForceFieldKind::kLennardJones)
    for (const auto& s : spec.species)
      if (!(s.sigma > 0.0))
        fail("lennard-jones needs sigma > 0 for species '" + s.name + "'");
  if (spec.forcefield.alpha < 0.0) fail("forcefield alpha must be >= 0");
  if (spec.forcefield.r_cut < 0.0) fail("forcefield r_cut must be >= 0");

  double total_charge = 0.0;
  long long total_count = 0;
  if (spec.system.kind == SystemKind::kLattice) {
    if (spec.species.size() != 2)
      fail("lattice placement takes exactly 2 species (cation, anion)");
    if (spec.system.cells < 1) fail("system cells must be >= 1");
    if (!(spec.system.lattice_constant > 0.0))
      fail("lattice_constant must be positive");
    const long long per_species =
        4LL * spec.system.cells * spec.system.cells * spec.system.cells;
    total_count = 2 * per_species;
    total_charge = static_cast<double>(per_species) *
                   (spec.species[0].charge + spec.species[1].charge);
  } else {
    if (!(spec.system.box > 0.0))
      fail("random placement needs a positive box");
    if (spec.system.min_distance < 0.0)
      fail("min_distance must be >= 0");
    for (const auto& s : spec.species) {
      total_count += s.count;
      total_charge += s.count * s.charge;
    }
    if (total_count < 1)
      fail("random placement needs at least one species count > 0");
    // Hard-sphere packing sanity: random insertion at min_distance d cannot
    // realistically exceed ~half the close-packing fraction.
    const double v = spec.system.box * spec.system.box * spec.system.box;
    const double d = spec.system.min_distance;
    const double packing = static_cast<double>(total_count) *
                           (std::numbers::pi / 6.0) * d * d * d / v;
    if (packing > 0.3)
      fail("insert-N is over-packed: " + std::to_string(total_count) +
           " particles at min_distance " + std::to_string(d) +
           " A fill fraction " + std::to_string(packing) +
           " of the box (limit 0.3)");
  }
  if (spec.forcefield.coulomb && std::fabs(total_charge) > 1e-9)
    fail("coulomb system is not charge neutral (total charge " +
         std::to_string(total_charge) + " e)");

  const auto& e = spec.ensemble;
  if (!(e.thermostat_tau_fs > 0.0)) fail("thermostat_tau_fs must be > 0");
  if (e.kind == EnsembleKind::kNpt) {
    if (e.barostat_interval < 1) fail("barostat_interval must be >= 1");
    if (e.barostat == BarostatKind::kBerendsen) {
      if (!(e.barostat_tau_fs > 0.0)) fail("barostat_tau_fs must be > 0");
      if (!(e.compressibility_per_GPa > 0.0))
        fail("compressibility_per_GPa must be > 0");
    } else {
      if (!(e.max_volume_change > 0.0) || !(e.max_volume_change < 0.5))
        fail("max_volume_change must be in (0, 0.5)");
    }
  }

  const auto& r = spec.run;
  if (!(r.dt_fs > 0.0)) fail("run dt_fs must be positive");
  if (r.equilibration < 0 || r.production < 0)
    fail("equilibration/production must be >= 0");
  if (!(r.temperature_K > 0.0)) fail("temperature_K must be positive");
  if (r.sample_interval < 1 || r.rescale_interval < 1)
    fail("sample_interval/rescale_interval must be >= 1");

  for (const auto& a : spec.analyses) {
    if (a.nstep < 1) fail("analysis '" + a.name + "' needs nstep >= 1");
    if (a.file.empty()) fail("analysis '" + a.name + "' needs a file");
    if (a.kind == AnalysisKind::kRdf) {
      if (a.bins < 1) fail("analysis '" + a.name + "' needs bins >= 1");
      if (a.r_max < 0.0) fail("analysis '" + a.name + "' has negative r_max");
      if (a.species_a.empty() != a.species_b.empty())
        fail("analysis '" + a.name +
             "' needs both species_a and species_b (or neither)");
      for (const auto* name : {&a.species_a, &a.species_b})
        if (!name->empty() && spec.species_index(*name) < 0)
          fail("analysis '" + a.name + "' references unknown species '" +
               *name + "'");
    }
  }
}

}  // namespace mdm::scenario
