#pragma once

/// \file parser.hpp
/// Flat TOML-like scenario parser (DESIGN.md §14): `[section]` /
/// `[section.sub]` headers, `key = value` lines, `#` comments, quoted or
/// bare strings, no external dependencies. Every failure throws
/// ScenarioError naming the file, line and offending token — specs are
/// user input, so "unknown key 'sigm' in [species.Na]" beats a silent
/// default.

#include <stdexcept>
#include <string>

#include "scenario/spec.hpp"

namespace mdm::scenario {

class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a scenario from text. `origin` names the source in error messages
/// (file path, "<inline>", ...). Performs full semantic validation: unknown
/// sections/keys, negative sigma/mass, non-neutral Coulomb systems,
/// over-packed insert-N requests and inconsistent analyses all throw.
ScenarioSpec parse_scenario(const std::string& text,
                            const std::string& origin = "<inline>");

/// Read and parse a scenario file.
ScenarioSpec parse_scenario_file(const std::string& path);

/// Semantic validation only (parse_scenario already runs this; exposed for
/// specs built in code). Throws ScenarioError on the first violation.
void validate(const ScenarioSpec& spec, const std::string& origin = "<spec>");

}  // namespace mdm::scenario
