#pragma once

/// \file parallel.hpp
/// Bridge a ScenarioSpec onto the parallel machine (host/parallel_app).
/// The domain-decomposed emulator path supports the salts the hardware was
/// built for — rock-salt lattices under Ewald + Tosi-Fumi in NVE/NVT — so
/// this adapter validates expressibility with named errors instead of
/// silently dropping spec features (NPT box changes do not decompose).

#include "host/parallel_app.hpp"
#include "scenario/spec.hpp"

namespace mdm::scenario {

/// True when the spec can run through MdmParallelApp.
bool parallel_expressible(const ScenarioSpec& spec);

/// Fill `config`'s physics fields (protocol, Ewald, Tosi-Fumi) from the
/// spec. Topology/backend/fault knobs are left to the caller. Throws
/// ScenarioError naming the unsupported feature when the spec cannot run
/// on the parallel machine; build the system with build_system(spec).
void apply_to_parallel_app(const ScenarioSpec& spec,
                           host::ParallelAppConfig& config);

}  // namespace mdm::scenario
