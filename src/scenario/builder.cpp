#include "scenario/builder.hpp"

#include <algorithm>
#include <cmath>

#include "core/lattice.hpp"
#include "core/lennard_jones.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "scenario/parser.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace mdm::scenario {

namespace {

ParticleSystem build_random_system(const ScenarioSpec& spec) {
  const auto& sys = spec.system;
  ParticleSystem system(sys.box);
  for (const auto& s : spec.species)
    system.add_species({s.name, s.mass, s.charge});

  // Placement draws come after the velocity stream seed is fixed, so use an
  // independent stream: seed ^ tag keeps placement and velocities decoupled
  // while both remain functions of the spec seed alone.
  Random rng(sys.seed ^ 0x9e3779b97f4a7c15ULL);
  const double d2 = sys.min_distance * sys.min_distance;
  std::vector<Vec3> placed;
  // Generous but finite: validate() already rejected over-packed requests,
  // so exhausting this means pathological bad luck, not user error.
  long long total = 0;
  for (const auto& s : spec.species) total += s.count;
  long long attempts_left = 1000LL * std::max<long long>(total, 1);

  for (std::size_t type = 0; type < spec.species.size(); ++type) {
    for (int k = 0; k < spec.species[type].count; ++k) {
      for (;;) {
        if (attempts_left-- <= 0)
          throw ScenarioError(
              "random placement failed: could not insert " +
              std::to_string(total) + " particles at min_distance " +
              std::to_string(sys.min_distance) + " A into a " +
              std::to_string(sys.box) + " A box (over-packed)");
        const Vec3 candidate{rng.uniform(0.0, sys.box),
                             rng.uniform(0.0, sys.box),
                             rng.uniform(0.0, sys.box)};
        bool ok = true;
        for (const auto& p : placed) {
          if (norm2(minimum_image(candidate, p, sys.box)) < d2) {
            ok = false;
            break;
          }
        }
        if (ok) {
          placed.push_back(candidate);
          system.add_particle(static_cast<int>(type), candidate);
          break;
        }
      }
    }
  }
  return system;
}

}  // namespace

ParticleSystem build_system(const ScenarioSpec& spec) {
  ParticleSystem system =
      spec.system.kind == SystemKind::kLattice
          ? make_rock_salt_crystal(
                spec.system.cells, spec.system.lattice_constant,
                {spec.species[0].name, spec.species[0].mass,
                 spec.species[0].charge},
                {spec.species[1].name, spec.species[1].mass,
                 spec.species[1].charge})
          : build_random_system(spec);
  assign_maxwell_velocities(system, spec.run.temperature_K,
                            spec.system.seed);
  return system;
}

EwaldParameters ewald_parameters(const ScenarioSpec& spec,
                                 const ParticleSystem& system) {
  EwaldParameters params =
      spec.forcefield.alpha > 0.0
          ? parameters_from_alpha(spec.forcefield.alpha, system.box())
          : software_parameters(static_cast<double>(system.size()),
                                system.box());
  if (spec.forcefield.r_cut > 0.0) params.r_cut = spec.forcefield.r_cut;
  return clamp_to_box(params, system.box());
}

LennardJonesParameters mixed_lj_parameters(const ScenarioSpec& spec) {
  std::vector<double> eps, sig;
  for (const auto& s : spec.species) {
    eps.push_back(s.eps);
    sig.push_back(s.sigma);
  }
  return LennardJonesParameters::lorentz_berthelot(eps, sig);
}

std::unique_ptr<ForceField> build_force_field(const ScenarioSpec& spec,
                                              const ParticleSystem& system,
                                              ThreadPool* pool) {
  auto composite = std::make_unique<CompositeForceField>();

  double short_range_cut = spec.forcefield.r_cut;
  if (spec.forcefield.coulomb) {
    const EwaldParameters params = ewald_parameters(spec, system);
    if (short_range_cut <= 0.0) short_range_cut = params.r_cut;
    auto coulomb = std::make_unique<EwaldCoulomb>(params, system.box());
    coulomb->set_thread_pool(pool);
    composite->add(std::move(coulomb));
  } else if (short_range_cut <= 0.0) {
    double sigma_max = 0.0;
    for (const auto& s : spec.species)
      sigma_max = std::max(sigma_max, s.sigma);
    short_range_cut = 2.5 * sigma_max;
  }
  short_range_cut = std::min(short_range_cut, 0.5 * system.box());

  switch (spec.forcefield.kind) {
    case ForceFieldKind::kTosiFumiNaCl:
    case ForceFieldKind::kTosiFumiKCl: {
      const TosiFumiParameters params =
          spec.forcefield.kind == ForceFieldKind::kTosiFumiNaCl
              ? TosiFumiParameters::nacl()
              : TosiFumiParameters::kcl();
      auto tf = std::make_unique<TosiFumiShortRange>(
          params, short_range_cut, spec.forcefield.shift_energy);
      tf->set_thread_pool(pool);
      composite->add(std::move(tf));
      break;
    }
    case ForceFieldKind::kLennardJones: {
      auto lj = std::make_unique<LennardJones>(mixed_lj_parameters(spec),
                                               short_range_cut);
      lj->set_thread_pool(pool);
      composite->add(std::move(lj));
      break;
    }
  }
  return composite;
}

SimulationConfig build_protocol(const ScenarioSpec& spec) {
  SimulationConfig protocol;
  protocol.dt_fs = spec.run.dt_fs;
  protocol.temperature_K = spec.run.temperature_K;
  protocol.sample_interval = spec.run.sample_interval;
  protocol.rescale_interval = spec.run.rescale_interval;
  protocol.thermostat = spec.ensemble.thermostat;
  protocol.thermostat_tau_fs = spec.ensemble.thermostat_tau_fs;
  if (spec.ensemble.kind == EnsembleKind::kNve) {
    protocol.nvt_steps = spec.run.equilibration;
    protocol.nve_steps = spec.run.production;
  } else {
    // NVT / NPT: thermostat through production too. The health monitor's
    // NVE drift check never engages.
    protocol.nvt_steps = spec.run.equilibration + spec.run.production;
    protocol.nve_steps = 0;
  }
  return protocol;
}

std::unique_ptr<Barostat> build_barostat(const ScenarioSpec& spec) {
  if (spec.ensemble.kind != EnsembleKind::kNpt) return nullptr;
  const auto& e = spec.ensemble;
  if (e.barostat == BarostatKind::kBerendsen)
    return std::make_unique<BerendsenBarostat>(e.pressure_GPa,
                                               e.barostat_tau_fs,
                                               e.compressibility_per_GPa);
  return std::make_unique<MonteCarloBarostat>(e.pressure_GPa,
                                              spec.run.temperature_K,
                                              e.max_volume_change,
                                              e.barostat_seed);
}

ScenarioSpec nacl_melt_scenario(int cells, int steps, double temperature_K,
                                std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "nacl-melt";
  spec.species = {
      {"Na", units::kMassNa, +1.0, 0.0, 0.0, 0},
      {"Cl", units::kMassCl, -1.0, 0.0, 0.0, 0},
  };
  spec.system.kind = SystemKind::kLattice;
  spec.system.cells = cells;
  spec.system.lattice_constant = kPaperLatticeConstant;
  spec.system.seed = seed;
  spec.forcefield.kind = ForceFieldKind::kTosiFumiNaCl;
  spec.forcefield.coulomb = true;
  spec.forcefield.shift_energy = true;
  spec.ensemble.kind = EnsembleKind::kNve;
  spec.run.dt_fs = 2.0;
  spec.run.temperature_K = temperature_K;
  spec.run.equilibration = 2 * steps / 3;  // the paper's 2000/1000 split
  spec.run.production = steps - spec.run.equilibration;
  return spec;
}

}  // namespace mdm::scenario
