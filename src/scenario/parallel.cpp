#include "scenario/parallel.hpp"

#include "core/tosi_fumi.hpp"
#include "scenario/builder.hpp"
#include "scenario/parser.hpp"

namespace mdm::scenario {

bool parallel_expressible(const ScenarioSpec& spec) {
  return spec.system.kind == SystemKind::kLattice &&
         spec.forcefield.kind != ForceFieldKind::kLennardJones &&
         spec.forcefield.coulomb &&
         spec.ensemble.kind != EnsembleKind::kNpt &&
         spec.ensemble.thermostat == ThermostatKind::kVelocityScaling;
}

void apply_to_parallel_app(const ScenarioSpec& spec,
                           host::ParallelAppConfig& config) {
  if (spec.system.kind != SystemKind::kLattice)
    throw ScenarioError(
        "parallel runs need a lattice system (random placement does not "
        "domain-decompose deterministically)");
  if (spec.forcefield.kind == ForceFieldKind::kLennardJones)
    throw ScenarioError(
        "parallel runs support the Tosi-Fumi salts only (lennard-jones is "
        "single-process for now)");
  if (!spec.forcefield.coulomb)
    throw ScenarioError("parallel runs require coulomb = true");
  if (spec.ensemble.kind == EnsembleKind::kNpt)
    throw ScenarioError(
        "parallel runs do not support npt (box changes do not decompose)");
  if (spec.ensemble.thermostat != ThermostatKind::kVelocityScaling)
    throw ScenarioError(
        "parallel runs support the velocity-scaling thermostat only");

  config.protocol = build_protocol(spec);
  const double box = spec.system.cells * spec.system.lattice_constant;
  const double n =
      8.0 * spec.system.cells * spec.system.cells * spec.system.cells;
  EwaldParameters params =
      spec.forcefield.alpha > 0.0
          ? parameters_from_alpha(spec.forcefield.alpha, box)
          : software_parameters(n, box);
  if (spec.forcefield.r_cut > 0.0) params.r_cut = spec.forcefield.r_cut;
  config.ewald = clamp_to_box(params, box);
  config.include_tosi_fumi = true;
  config.tosi_fumi = spec.forcefield.kind == ForceFieldKind::kTosiFumiNaCl
                         ? TosiFumiParameters::nacl()
                         : TosiFumiParameters::kcl();
}

}  // namespace mdm::scenario
