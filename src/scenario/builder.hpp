#pragma once

/// \file builder.hpp
/// Turn a validated ScenarioSpec into runnable pieces: the particle system
/// (lattice or insert-N random placement), the force field (Ewald Coulomb +
/// Tosi-Fumi, or Lorentz-Berthelot-mixed Lennard-Jones), the Simulation
/// protocol and the barostat. The NaCl examples build through these same
/// functions, so the bundled nacl_melt spec is the hard-coded driver —
/// bit-for-bit.

#include <memory>

#include "core/barostat.hpp"
#include "core/force_field.hpp"
#include "core/lennard_jones.hpp"
#include "core/particle_system.hpp"
#include "core/simulation.hpp"
#include "ewald/parameters.hpp"
#include "scenario/spec.hpp"
#include "util/thread_pool.hpp"

namespace mdm::scenario {

/// Build the initial configuration with Maxwell-Boltzmann velocities at the
/// run temperature. Lattice: rock-salt supercell of the two species.
/// Random: insert each species' count at uniform positions, rejecting any
/// candidate within min_distance of a placed particle (minimum image);
/// throws ScenarioError if the box cannot host the request.
ParticleSystem build_system(const ScenarioSpec& spec);

/// Resolved Ewald parameters for this spec/system (spec alpha or the
/// flop-balanced software choice, r_cut clamped to L/2).
EwaldParameters ewald_parameters(const ScenarioSpec& spec,
                                 const ParticleSystem& system);

/// Build the composite force field. `pool` (nullable, borrowed) is handed
/// to each pair sweep.
std::unique_ptr<ForceField> build_force_field(const ScenarioSpec& spec,
                                              const ParticleSystem& system,
                                              ThreadPool* pool = nullptr);

/// Map the spec's ensemble + schedule onto the Simulation protocol:
/// NVE runs equilibration NVT steps then production NVE steps (the paper's
/// protocol); NVT and NPT thermostat the whole run.
SimulationConfig build_protocol(const ScenarioSpec& spec);

/// The spec's barostat, or nullptr for NVE/NVT. Wire it up with
/// `sim.set_barostat(barostat.get(), spec.ensemble.barostat_interval)`.
std::unique_ptr<Barostat> build_barostat(const ScenarioSpec& spec);

/// Lorentz-Berthelot pair table over the spec's species (LJ force field).
LennardJonesParameters mixed_lj_parameters(const ScenarioSpec& spec);

/// The scenario equivalent of the hard-coded NaCl melt drivers: rock-salt
/// lattice at the paper's density, Tosi-Fumi + Ewald, NVT for 2/3 of
/// `steps` then NVE — reproduces examples/nacl_melt.cpp bit-for-bit.
ScenarioSpec nacl_melt_scenario(int cells, int steps, double temperature_K,
                                std::uint64_t seed);

}  // namespace mdm::scenario
