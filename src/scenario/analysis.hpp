#pragma once

/// \file analysis.hpp
/// ScenarioAnalysis sampler framework (modeled on the faunus Analysisbase):
/// every sampler declares a cadence `nstep` in recorded production samples
/// and fires on each nstep-th call, while the set keeps per-sampler
/// wall-clock so a run can report where its analysis time went. Concrete
/// samplers: RDF, MSD, energy/pressure/box time series, XYZ trajectory.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/particle_system.hpp"
#include "core/rdf.hpp"
#include "core/simulation.hpp"
#include "scenario/spec.hpp"

namespace mdm::scenario {

class ScenarioAnalysis {
 public:
  ScenarioAnalysis(std::string name, int nstep);
  virtual ~ScenarioAnalysis() = default;

  /// Feed one recorded production sample. Counts the call and, on every
  /// nstep-th one, times and runs the sampler — so N calls fire exactly
  /// floor(N / nstep) times.
  void sample(const ParticleSystem& system, const Sample& s);

  /// Write this sampler's output file into `dir`; returns the path (empty
  /// if the sampler produced nothing, e.g. zero fires).
  std::string finalize(const std::string& dir);

  const std::string& name() const { return name_; }
  int nstep() const { return nstep_; }
  std::uint64_t calls() const { return calls_; }
  std::uint64_t fires() const { return fires_; }
  double elapsed_ms() const { return elapsed_ms_; }

 protected:
  virtual void do_sample(const ParticleSystem& system, const Sample& s) = 0;
  virtual std::string do_finalize(const std::string& dir) = 0;

 private:
  std::string name_;
  int nstep_;
  std::uint64_t calls_ = 0;
  std::uint64_t fires_ = 0;
  double elapsed_ms_ = 0.0;
};

/// Ordered set of samplers sharing the fan-in point and the cost report.
class AnalysisSet {
 public:
  /// Build the samplers a spec asks for. `output_dir` is where finalize
  /// writes; trajectory samplers also stream frames there during the run.
  AnalysisSet(const ScenarioSpec& spec, std::string output_dir);

  void add(std::unique_ptr<ScenarioAnalysis> analysis);

  void sample(const ParticleSystem& system, const Sample& s);

  /// Finalize every sampler; returns the files written.
  std::vector<std::string> finalize();

  /// Human-readable relative-cost accounting: per sampler, fires and the
  /// share of total analysis wall-clock (the Analysisbase "relative time"
  /// column).
  std::string report() const;

  std::size_t size() const { return analyses_.size(); }
  const ScenarioAnalysis& at(std::size_t i) const { return *analyses_[i]; }

 private:
  std::string output_dir_;
  std::vector<std::unique_ptr<ScenarioAnalysis>> analyses_;
};

/// Energy / temperature / pressure / box time series -> CSV.
class EnergyAnalysis final : public ScenarioAnalysis {
 public:
  EnergyAnalysis(const AnalysisSpec& spec);

 protected:
  void do_sample(const ParticleSystem& system, const Sample& s) override;
  std::string do_finalize(const std::string& dir) override;

 private:
  struct Row {
    Sample sample;
    double box = 0.0;
  };
  std::string file_;
  std::vector<Row> rows_;
};

/// Radial distribution function (total + optional partial) -> CSV.
class RdfAnalysis final : public ScenarioAnalysis {
 public:
  RdfAnalysis(const AnalysisSpec& spec, int species_a, int species_b);

 protected:
  void do_sample(const ParticleSystem& system, const Sample& s) override;
  std::string do_finalize(const std::string& dir) override;

 private:
  std::string file_;
  int bins_;
  double r_max_;  ///< 0 -> 0.45 L on first sample
  int species_a_, species_b_;
  std::unique_ptr<RadialDistribution> rdf_;  ///< lazy: needs box + species
};

/// Mean-squared displacement time series -> CSV.
class MsdAnalysis final : public ScenarioAnalysis {
 public:
  MsdAnalysis(const AnalysisSpec& spec);

 protected:
  void do_sample(const ParticleSystem& system, const Sample& s) override;
  std::string do_finalize(const std::string& dir) override;

 private:
  struct Row {
    int step;
    double time_ps;
    double msd_A2;
  };
  std::string file_;
  std::unique_ptr<MeanSquaredDisplacement> msd_;  ///< lazy: needs reference
  double t0_ps_ = 0.0;
  std::vector<Row> rows_;
};

/// XYZ trajectory streamed during the run (frames appended on each fire).
class TrajectoryAnalysis final : public ScenarioAnalysis {
 public:
  TrajectoryAnalysis(const AnalysisSpec& spec, std::string output_dir);

 protected:
  void do_sample(const ParticleSystem& system, const Sample& s) override;
  std::string do_finalize(const std::string& dir) override;

 private:
  std::string path_;
  bool wrote_any_ = false;
};

}  // namespace mdm::scenario
