#pragma once

/// \file spec.hpp
/// Declarative scenario description (DESIGN.md §14). A scenario is the
/// workload unit the MDM service accepts: species with per-atom force
/// parameters, how to build the initial configuration, the force field and
/// mixing rule, the ensemble (NVE / NVT / the NPT barostats of
/// core/barostat), the run schedule, and a list of samplers. Parsed from a
/// flat TOML-like text (scenario/parser) and serialized back canonically so
/// the fleet result cache can key on the exact physics
/// (`ScenarioSpec::canonical_text`).

#include <cstdint>
#include <string>
#include <vector>

#include "core/lattice.hpp"
#include "core/simulation.hpp"

namespace mdm::scenario {

/// One atom species: identity plus the per-atom force-field inputs. sigma
/// and eps feed Lorentz-Berthelot mixing for the Lennard-Jones force field;
/// the Tosi-Fumi salts carry their own published pair tables and ignore
/// them. `count` is used by insert-N random placement only.
struct SpeciesSpec {
  std::string name;
  double mass = 0.0;    ///< amu
  double charge = 0.0;  ///< e
  double sigma = 0.0;   ///< A (LJ mixing)
  double eps = 0.0;     ///< eV (LJ mixing)
  int count = 0;        ///< particles to insert (random placement)
};

enum class SystemKind { kLattice, kRandom };

struct SystemSpec {
  SystemKind kind = SystemKind::kLattice;
  /// Lattice placement: n x n x n rock-salt supercell of the two species
  /// (first = cation, second = anion).
  int cells = 3;
  double lattice_constant = kPaperLatticeConstant;  ///< A
  /// Random placement: cubic box edge and the minimum allowed pair
  /// distance during insertion (overlap rejection).
  double box = 0.0;           ///< A
  double min_distance = 2.0;  ///< A
  std::uint64_t seed = 1;     ///< velocity + placement stream
};

enum class ForceFieldKind { kTosiFumiNaCl, kTosiFumiKCl, kLennardJones };

struct ForceFieldSpec {
  ForceFieldKind kind = ForceFieldKind::kTosiFumiNaCl;
  /// Full Coulomb via Ewald summation. Defaults on for the salts; an LJ
  /// mixture of neutral species runs without it.
  bool coulomb = true;
  /// Dimensionless Ewald splitting parameter; 0 selects the flop-balanced
  /// software alpha (ewald/parameters).
  double alpha = 0.0;
  /// Short-range cutoff override in A; 0 derives it (Ewald accuracy for
  /// Coulomb runs, 2.5 max-sigma for pure LJ), always clamped to L/2.
  double r_cut = 0.0;
  /// Shift the short-range energy to zero at the cutoff.
  bool shift_energy = true;
};

enum class EnsembleKind { kNve, kNvt, kNpt };
enum class BarostatKind { kBerendsen, kMonteCarlo };

struct EnsembleSpec {
  EnsembleKind kind = EnsembleKind::kNve;
  ThermostatKind thermostat = ThermostatKind::kVelocityScaling;
  double thermostat_tau_fs = 100.0;  ///< Berendsen thermostat only
  /// NPT only.
  BarostatKind barostat = BarostatKind::kBerendsen;
  double pressure_GPa = 0.0;
  double barostat_tau_fs = 500.0;            ///< Berendsen barostat
  double compressibility_per_GPa = 0.05;     ///< Berendsen barostat
  double max_volume_change = 0.02;           ///< MC moves, fraction of V
  int barostat_interval = 10;                ///< steps between couplings
  std::uint64_t barostat_seed = 2026;        ///< MC volume-move stream
};

struct RunSpec {
  double dt_fs = 2.0;
  int equilibration = 200;  ///< thermostatted steps
  int production = 100;     ///< NVE tail (nve) / further sampling (nvt, npt)
  double temperature_K = 1200.0;
  int sample_interval = 1;
  int rescale_interval = 1;
};

enum class AnalysisKind { kRdf, kMsd, kEnergy, kTrajectory };

/// One sampler instance: `nstep` is the cadence in *recorded samples* (the
/// neofaunus Analysisbase convention) — the sampler fires on every nstep-th
/// production sample.
struct AnalysisSpec {
  std::string name;  ///< instance name ([analysis.<name>] section)
  AnalysisKind kind = AnalysisKind::kEnergy;
  int nstep = 10;
  std::string file;  ///< output file name inside the run's output directory
  /// RDF only.
  int bins = 90;
  double r_max = 0.0;  ///< A; 0 selects 0.45 L
  std::string species_a, species_b;  ///< optional partial g_ab
};

struct ScenarioSpec {
  std::string name;
  std::vector<SpeciesSpec> species;
  SystemSpec system;
  ForceFieldSpec forcefield;
  EnsembleSpec ensemble;
  RunSpec run;
  std::vector<AnalysisSpec> analyses;

  /// Index of a species by name, -1 if absent.
  int species_index(const std::string& species_name) const;

  /// Deterministic serialization: fixed section/key order, %.17g doubles —
  /// equal specs produce equal text, so the fleet result cache and the
  /// duplicate-job detector key on it. The output is itself a valid
  /// scenario file (parse(canonical_text()) round-trips).
  std::string canonical_text() const;
};

/// Names for the enums (used by the parser, canonical_text and messages).
std::string to_string(SystemKind kind);
std::string to_string(ForceFieldKind kind);
std::string to_string(EnsembleKind kind);
std::string to_string(BarostatKind kind);
std::string to_string(ThermostatKind kind);
std::string to_string(AnalysisKind kind);

}  // namespace mdm::scenario
