#include "scenario/engine.hpp"

#include <optional>

#include "core/checkpoint.hpp"
#include "scenario/analysis.hpp"
#include "scenario/builder.hpp"

namespace mdm::scenario {

namespace {
struct CancelledSignal {};
}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioOptions& options) {
  ParticleSystem system = build_system(spec);
  auto field = build_force_field(spec, system, options.pool);
  auto barostat = build_barostat(spec);

  Simulation sim(system, *field, build_protocol(spec));
  if (barostat)
    sim.set_barostat(barostat.get(), spec.ensemble.barostat_interval);

  ScenarioResult out;
  std::optional<CheckpointManager> checkpoints;
  if (options.checkpoint_interval > 0 && !options.checkpoint_dir.empty()) {
    checkpoints.emplace(options.checkpoint_dir, options.keep_generations);
    if (options.resume) {
      if (auto latest = checkpoints->restore_latest();
          latest && latest->size() == system.size() && latest->step > 0) {
        sim.restore(*latest);
        out.resumed_from_step = latest->step;
      }
    }
    sim.enable_checkpointing(&*checkpoints, options.checkpoint_interval);
  }

  AnalysisSet analyses(spec, options.output_dir);
  const int equilibration = spec.run.equilibration;
  const int total = equilibration + spec.run.production;

  double pressure_sum = 0.0;
  double box_sum = 0.0;
  std::size_t production_samples = 0;

  try {
    sim.run([&](const Sample& s) {
      if (s.step > equilibration) {
        analyses.sample(system, s);
        pressure_sum += s.pressure_GPa;
        box_sum += system.box();
        ++production_samples;
      }
      if (options.on_sample) options.on_sample(s);
      if (options.cancel && s.step < total &&
          options.cancel->load(std::memory_order_relaxed))
        throw CancelledSignal{};
    });
  } catch (const CancelledSignal&) {
    out.cancelled = true;
  }

  out.samples = sim.samples();
  if (production_samples > 0) {
    out.mean_pressure_GPa =
        pressure_sum / static_cast<double>(production_samples);
    out.mean_box_A = box_sum / static_cast<double>(production_samples);
  }
  out.final_box_A = system.box();
  if (spec.ensemble.kind == EnsembleKind::kNve)
    out.nve_energy_drift = sim.nve_energy_drift();
  out.outputs = analyses.finalize();
  out.analysis_report = analyses.report();
  out.positions.assign(system.positions().begin(), system.positions().end());
  out.velocities.assign(system.velocities().begin(),
                        system.velocities().end());
  return out;
}

}  // namespace mdm::scenario
