#pragma once

/// \file engine.hpp
/// Run one scenario end to end: build the system and force field, execute
/// the ensemble protocol (with the barostat wired in for NPT), feed every
/// production sample through the AnalysisSet, and report means the tests
/// and the service assert on (pressure, box). The serve runner dispatches
/// scenario-carrying jobs here (serve/runner).

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "scenario/spec.hpp"
#include "util/thread_pool.hpp"

namespace mdm::scenario {

struct ScenarioOptions {
  ThreadPool* pool = nullptr;  ///< borrowed; nullptr = serial sweeps
  /// Cooperative cancellation, polled at every recorded sample.
  const std::atomic<bool>* cancel = nullptr;
  /// Directory for analysis outputs; empty runs the samplers but skips
  /// finalize-time files (trajectory samplers then write into the cwd).
  std::string output_dir;
  std::function<void(const Sample&)> on_sample;
  /// Rotating checkpoints (core/checkpoint v3, carries barostat state);
  /// empty dir or interval 0 disables. `resume` restores the newest valid
  /// generation before running.
  std::string checkpoint_dir;
  int checkpoint_interval = 0;
  int keep_generations = 3;
  bool resume = false;
};

struct ScenarioResult {
  std::vector<Sample> samples;
  bool cancelled = false;
  std::uint64_t resumed_from_step = 0;
  /// Means over the production phase (step > equilibration).
  double mean_pressure_GPa = 0.0;
  double mean_box_A = 0.0;
  double final_box_A = 0.0;
  double nve_energy_drift = 0.0;  ///< NVE ensemble only
  std::string analysis_report;
  std::vector<std::string> outputs;  ///< analysis files written
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
};

/// Execute `spec`. The spec must already be validated (scenario/parser does
/// this; call validate() for specs built in code).
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioOptions& options = {});

}  // namespace mdm::scenario
