#include "host/backend_dispatch.hpp"

#include "native/native_force_field.hpp"

namespace mdm::host {

std::unique_ptr<ForceField> make_backend_force_field(
    Backend backend, const MdmForceFieldConfig& config, double box,
    ThreadPool* pool) {
  if (backend == Backend::kNative) {
    native::NativeForceFieldConfig nc;
    nc.ewald = config.ewald;
    nc.include_tosi_fumi = config.include_tosi_fumi;
    nc.tosi_fumi = config.tosi_fumi;
    nc.tf_shift_energy = false;  // emulator convention: plain truncation
    auto field = std::make_unique<native::NativeForceField>(nc, box);
    field->set_thread_pool(pool);
    return field;
  }
  auto field = std::make_unique<MdmForceField>(config, box);
  field->set_thread_pool(pool);
  return field;
}

}  // namespace mdm::host
