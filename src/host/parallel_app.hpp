#pragma once

/// \file parallel_app.hpp
/// The paper's MD program (sec. 4): an MPI application with 16 real-space
/// processes and 8 wavenumber processes.
///
///  * Each real-space process owns one spatial domain. Per step it performs
///    the halo exchange ("each process should know positions of neighboring
///    particles before calling MR1calcvdw_block2, that is what you have to
///    manage with MPI routines"), drives its MDGRAPE-2 boards for the
///    real-space Coulomb + Tosi-Fumi passes, integrates its particles and
///    migrates the ones that left its domain.
///  * Each wavenumber process holds ~N/8 particles and calls the
///    MPI-parallel WINE-2 library (Wine2MpiLibrary), which allreduces the
///    structure factors internally.
///
/// The whole application runs on the virtual MPI world (threads); with the
/// hardware simulators underneath this is the full MDM software stack.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/health.hpp"
#include "core/particle_system.hpp"
#include "core/simulation.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/pme.hpp"
#include "host/domain.hpp"
#include "mdgrape2/system.hpp"
#include "wine2/formats.hpp"

namespace mdm::vmpi {
class FaultInjector;
}

namespace mdm::host {

/// Raised out of MdmParallelApp::run when the caller's cancel flag was
/// observed at a step boundary. Never triggers auto-recovery: a cancel is a
/// request, not a failure.
class ParallelCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// K-space solver run by the wavenumber processes (DESIGN.md §12).
/// kStructureFactor is the paper's WINE-2 / native-DFT path; kPme runs the
/// slab-decomposed particle-mesh engine (host/distributed_pme) on the same
/// rank topology — it is backend-independent (the emulator and native
/// backends differ only in the real-space part).
enum class KspaceSolver {
  kStructureFactor,
  kPme,
};

const char* to_string(KspaceSolver solver);
/// Parse "sf" / "structure-factor" / "ewald" or "pme" (case-sensitive);
/// throws std::invalid_argument naming the bad value. "auto" is NOT handled
/// here — the CLIs resolve it through perf::recommended_app_solver first.
KspaceSolver kspace_solver_from_string(const std::string& name);

struct ParallelAppConfig {
  int real_processes = 16;  ///< paper: 16 domains
  int wn_processes = 8;     ///< paper: 8 wavenumber processes

  /// Explicit real-space domain grid (nx * ny * nz must equal
  /// real_processes); all zero selects the near-cubic auto factorization.
  /// Validated at construction with named configuration errors.
  int domain_nx = 0;
  int domain_ny = 0;
  int domain_nz = 0;

  /// Which reciprocal-space sum the wavenumber group computes.
  KspaceSolver kspace_solver = KspaceSolver::kStructureFactor;
  /// PME mesh parameters (kspace_solver == kPme). alpha / r_cut <= 0
  /// inherit the Ewald values, so a caller usually only sets grid/order.
  /// The mesh must slab-decompose over wn_processes (grid % W == 0).
  PmeParameters pme{};

  SimulationConfig protocol{};
  EwaldParameters ewald{};
  bool include_tosi_fumi = true;
  TosiFumiParameters tosi_fumi = TosiFumiParameters::nacl();
  int mdgrape_boards_per_process = 2;  ///< one cluster per process
  int wine_boards_per_process = 7;     ///< one cluster per process
  wine2::WineFormats wine_formats = wine2::WineFormats::paper();

  /// Force-evaluation backend (DESIGN.md §11). kEmulator drives the
  /// MDGRAPE-2/WINE-2 pipelines; kNative runs the vectorized host kernels
  /// on the same rank topology (one-sided real sweeps over owned + halo,
  /// structure-factor allreduce over the wavenumber group).
  Backend backend = Backend::kEmulator;

  // Fault-tolerance knobs (DESIGN.md "Failure model of the virtual
  // fabric"). When fault_injector is null, MDM_FAULT_SPEC/MDM_FAULT_SEED
  // are consulted instead.
  vmpi::FaultInjector* fault_injector = nullptr;  ///< not owned
  int send_max_retries = 3;      ///< retransmissions for dropped messages
  double send_backoff_us = 50;   ///< initial retransmission backoff
  double recv_timeout_ms = 0;    ///< recv deadline; 0 = wait forever

  // Checkpoint/restart + numerical health (DESIGN.md §8). Rank 0 gathers
  // the full configuration every checkpoint_interval steps and writes a
  // rotating crash-consistent checkpoint; with auto_recover set, a rank
  // failure mid-run restores the latest valid generation, rebuilds the
  // domain decomposition and resumes bit-identically.
  std::string checkpoint_dir;  ///< empty = checkpointing disabled
  int checkpoint_interval = 0; ///< steps between checkpoints (0 = off)
  int checkpoint_keep = 3;     ///< generations kept on disk
  std::string restore_path;    ///< start from this checkpoint file
  bool auto_recover = false;   ///< restore + resume after a rank failure
  int max_recoveries = 1;      ///< in-run recovery budget
  HealthConfig health{};       ///< per-step numerical-health watchdog
  /// On a watchdog violation, restore the last checkpoint into the result
  /// and halt cleanly instead of rethrowing (halted_on_health is set).
  bool rollback_on_health_error = false;

  /// Cooperative cancel flag (not owned; may be null), checked by every
  /// real rank at each step boundary. When observed, the run unwinds with
  /// ParallelCancelled — the serve runner maps it to kCancelled.
  const std::atomic<bool>* cancel = nullptr;
};

struct ParallelRunResult {
  std::vector<Sample> samples;
  /// Final positions/velocities indexed by original particle id.
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;

  // Checkpoint/restart bookkeeping (DESIGN.md §8).
  int recoveries = 0;  ///< successful in-run restores after rank failures
  std::uint64_t restored_from_step = 0;  ///< last restore point (0 = none)
  bool halted_on_health = false;  ///< watchdog rolled the run back + halted
  std::string health_message;     ///< watchdog error text when halted
};

class MdmParallelApp {
 public:
  explicit MdmParallelApp(ParallelAppConfig config);

  /// Run the NVT+NVE protocol on a copy of `initial`. Blocking; spawns
  /// real_processes + wn_processes ranks on the virtual MPI world.
  ParallelRunResult run(const ParticleSystem& initial);

  const ParallelAppConfig& config() const { return config_; }

 private:
  ParallelAppConfig config_;
};

/// PME parameters with the alpha / r_cut <= 0 placeholders replaced by the
/// config's Ewald values. Shared by the app, the serve layer and the CLIs
/// so every entry point resolves identically.
PmeParameters resolved_pme(const ParallelAppConfig& config);

}  // namespace mdm::host
