#include "host/mdm_force_field.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "mdgrape2/gtables.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm::host {

EwaldParameters mdm_parameters(double n_particles, double box,
                               const EwaldAccuracy& accuracy) {
  const double alpha = std::max(balanced_alpha(n_particles, accuracy),
                                3.001 * accuracy.s1);
  return clamp_to_box(parameters_from_alpha(alpha, box, accuracy), box);
}

MdmForceField::MdmForceField(MdmForceFieldConfig config, double box)
    : config_(config),
      box_(box),
      kvectors_(box, config.ewald.alpha, config.ewald.lk_cut),
      mdgrape_(config.mdgrape),
      wine_(config.wine) {
  if (config_.potential_interval < 1)
    throw std::invalid_argument("MdmForceField: potential_interval >= 1");
  if (config_.ewald.r_cut * 3.0 > box * config_.mdgrape.cell_margin + 1e-9)
    throw std::invalid_argument(
        "MdmForceField: the MDGRAPE-2 cell-index method needs box >= 3 r_cut "
        "(use mdm_parameters to pick alpha)");
  wine_.load_waves(kvectors_);
}

void MdmForceField::build_passes(const ParticleSystem& system) {
  const double beta = config_.ewald.alpha / box_;
  std::vector<double> charges(system.species_count());
  for (int t = 0; t < system.species_count(); ++t)
    charges[t] = system.species(t).charge;

  coulomb_force_pass_ = mdgrape2::make_coulomb_real_pass(
      beta, config_.ewald.r_cut, charges);
  coulomb_potential_pass_ = mdgrape2::make_coulomb_real_potential_pass(
      beta, config_.ewald.r_cut, charges);
  if (config_.include_tosi_fumi) {
    tf_force_passes_ =
        mdgrape2::make_tosi_fumi_passes(config_.tosi_fumi,
                                        config_.ewald.r_cut);
    tf_potential_passes_ = mdgrape2::make_tosi_fumi_potential_passes(
        config_.tosi_fumi, config_.ewald.r_cut);
  }
  passes_built_ = true;
}

ForceResult MdmForceField::add_forces(const ParticleSystem& system,
                                      std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("MdmForceField: force array size mismatch");
  if (std::fabs(system.box() - box_) > 1e-12)
    throw std::invalid_argument("MdmForceField: box mismatch");
  if (!passes_built_) build_passes(system);

  // 1. Host -> MDGRAPE-2: upload particle image, run the force passes.
  mdgrape_.load_particles(system, config_.ewald.r_cut);
  mdgrape_.run_force_pass(coulomb_force_pass_, forces);
  for (const auto& pass : tf_force_passes_)
    mdgrape_.run_force_pass(pass, forces);

  // 2. Host -> WINE-2: DFT then IDFT (eqs. 9-11).
  charges_scratch_.resize(system.size());
  {
    obs::ScopedPhase host_phase(obs::Phase::kHost);
    for (std::size_t i = 0; i < system.size(); ++i)
      charges_scratch_[i] = system.charge(i);
  }
  wine_.set_particles(system.positions(), charges_scratch_, box_);
  const auto sf = wine_.run_dft();
  wine_.run_idft(sf, forces);

  // 3. Host-side energies. The expensive real-space potential passes run
  //    every `potential_interval` evaluations (sec. 5 samples the potential
  //    every 100 steps); in between the cached values are reported.
  const bool sample_potential =
      evaluations_ % config_.potential_interval == 0;
  ++evaluations_;
  if (sample_potential) {
    per_particle_scratch_.assign(system.size(), 0.0);
    mdgrape_.run_potential_pass(coulomb_potential_pass_, per_particle_scratch_);
    double real = 0.0;
    for (const double p : per_particle_scratch_) real += p;
    potential_.real_space = 0.5 * real;  // both-sides double counting

    potential_.short_range = 0.0;
    if (config_.include_tosi_fumi) {
      short_range_scratch_.assign(system.size(), 0.0);
      for (const auto& pass : tf_potential_passes_)
        mdgrape_.run_potential_pass(pass, short_range_scratch_);
      double total = 0.0;
      for (const double p : short_range_scratch_) total += p;
      potential_.short_range = 0.5 * total;
    }
  }
  // The wavenumber energy is a cheap host-side sum over the structure
  // factors, so it is refreshed every step.
  obs::ScopedPhase host_phase(obs::Phase::kHost);
  MDM_TRACE_SCOPE("mdm.host_energies");
  potential_.wavenumber = wine_.reciprocal_energy(sf);
  const double beta = config_.ewald.alpha / box_;
  potential_.self_energy = -units::kCoulomb * beta /
                           std::sqrt(std::numbers::pi) *
                           system.total_charge_squared();
  const double q_total = system.total_charge();
  potential_.background = -units::kCoulomb * std::numbers::pi /
                          (2.0 * beta * beta * box_ * box_ * box_) *
                          q_total * q_total;

  ForceResult result;
  result.potential = potential_.total();
  result.virial = 0.0;  // not produced by the hardware
  return result;
}

std::uint64_t MdmForceField::mdgrape_pair_operations() const {
  return mdgrape_.pair_operations();
}

std::uint64_t MdmForceField::wine_wave_particle_operations() const {
  return wine_.wave_particle_ops();
}

}  // namespace mdm::host
