#include "host/parallel_app.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "core/health.hpp"
#include "host/distributed_pme.hpp"
#include "host/fault_injector.hpp"
#include "host/vmpi.hpp"
#include "host/wine2_mpi.hpp"
#include "mdgrape2/gtables.hpp"
#include "native/kspace.hpp"
#include "native/real_kernel.hpp"
#include "native/soa.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "util/units.hpp"

namespace mdm::host {
namespace {

/// Message tags (sec. 4 communication patterns). Must avoid the collective
/// ranges of vmpi and the 7001+ tags of the WINE-2 MPI library.
enum Tag : int {
  kScatter = 100,
  kHalo = 200,
  kToWine = 300,
  kFromWine = 400,
  kWineEnergy = 450,
  kMigrate = 500,
  kGatherFinal = 600,
  kCkptGather = 700,
  kCkptAck = 701,
};

/// One particle as it travels between processes.
struct PRec {
  std::uint32_t id = 0;
  std::int32_t type = 0;
  Vec3 pos{};
  Vec3 vel{};
  Vec3 force{};
};
static_assert(std::is_trivially_copyable_v<PRec>);

/// Compact record shipped to the wavenumber processes.
struct WnRec {
  std::uint32_t id = 0;
  std::int32_t type = 0;
  Vec3 pos{};
};
static_assert(std::is_trivially_copyable_v<WnRec>);

struct IdForce {
  std::uint32_t id = 0;
  Vec3 force{};
};
static_assert(std::is_trivially_copyable_v<IdForce>);

/// Immutable data shared by all ranks (read-only after construction).
struct Shared {
  ParallelAppConfig config;
  double box = 0.0;
  std::size_t n_particles = 0;
  std::vector<Species> species;
  std::vector<PRec> initial;  // full initial state
  double self_energy = 0.0;
  double background_energy = 0.0;
  int total_steps = 0;
  vmpi::FaultInjector* injector = nullptr;  ///< not owned; may be null

  // Checkpoint/restart wiring (DESIGN.md §8). `initial` and `start_step`
  // are rewritten between recovery attempts; threads are joined in between,
  // so the mutation is race-free.
  int start_step = 0;                      ///< resume after this step
  CheckpointManager* checkpoint = nullptr; ///< not owned; may be null
  int checkpoint_interval = 0;             ///< steps between checkpoints
};

/// Injected rank failure: the rank throws at its fault step, exactly like a
/// crashed MPI process; vmpi propagates it to every peer.
void maybe_fail_rank(const Shared& shared, int rank, int step) {
  if (shared.injector && shared.injector->should_fail_rank(rank, step)) {
    obs::FlightRecorder::record(obs::FlightKind::kRankFail, "injected", step,
                                rank);
    throw std::runtime_error("injected fault: rank " + std::to_string(rank) +
                             " failed at step " + std::to_string(step));
  }
}

/// Cooperative cancel, polled by every real rank at each step boundary. The
/// first rank to observe the flag unwinds (poisoning the fabric wakes any
/// blocked peer); World::run rethrows the ParallelCancelled.
void maybe_cancel(const Shared& shared, int rank, int step) {
  if (shared.config.cancel &&
      shared.config.cancel->load(std::memory_order_relaxed)) {
    obs::FlightRecorder::record(obs::FlightKind::kNote, "cancelled", step,
                                rank);
    throw ParallelCancelled("parallel app cancelled at step " +
                            std::to_string(step));
  }
}

double charge_of(const Shared& shared, int type) {
  return shared.species[type].charge;
}

double ms_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::Trace::now_ns() - start_ns) * 1e-6;
}

/// Flight-recorder dump next to the checkpoints (DESIGN.md §10): the last
/// ~512 events per thread — steps, sends/recvs, health samples, checkpoint
/// generations — for the postmortem of a failed run. Requires a checkpoint
/// directory ("alongside the latest checkpoint"); without one the events
/// stay in memory.
void dump_flight(const ParallelAppConfig& config, const char* reason) {
  if (!obs::FlightRecorder::enabled() || config.checkpoint_dir.empty())
    return;
  const std::string path =
      config.checkpoint_dir + "/flight_" + reason + ".json";
  if (obs::FlightRecorder::write_json_file(path)) {
    MDM_LOG_WARN("parallel: flight recorder dumped to %s (%llu events "
                 "recorded)",
                 path.c_str(),
                 static_cast<unsigned long long>(
                     obs::FlightRecorder::recorded_count()));
  }
}

/// ---------------- wavenumber process ------------------------------------

/// Native-backend wavenumber process (DESIGN.md §11): the same rank topology
/// and message flow as the WINE-2 path, but the structure factors come from
/// the vectorized NativeKspace DFT on the local particle slice and are
/// summed across the wavenumber group with an explicit allreduce (the WINE-2
/// MPI library does the equivalent reduction internally).
void wavenumber_main_native(const Shared& shared, vmpi::Communicator& comm) {
  const int R = shared.config.real_processes;
  const int W = shared.config.wn_processes;
  std::vector<int> wn_ranks(W);
  for (int w = 0; w < W; ++w) wn_ranks[w] = R + w;
  auto wn_comm = comm.subgroup(wn_ranks);

  const KVectorTable kvectors(shared.box, shared.config.ewald.alpha,
                              shared.config.ewald.lk_cut);
  native::NativeKspace kspace(kvectors);
  std::vector<double> charge_of_type(shared.species.size());
  for (std::size_t t = 0; t < shared.species.size(); ++t)
    charge_of_type[t] = shared.species[t].charge;

  // Structure-factor allreduce tags: above the WINE-2 library's 7001+ range.
  constexpr int kSfSinTag = 7101;
  constexpr int kSfCosTag = 7103;

  native::SoaParticles soa;
  StructureFactors sf;
  std::vector<Vec3> positions;
  std::vector<int> types;

  for (int round = shared.start_step; round <= shared.total_steps; ++round) {
    obs::TraceSpan round_span("wn.round");
    maybe_fail_rank(shared, comm.rank(), round);
    std::vector<WnRec> local;
    std::vector<int> owner;
    {
      obs::ScopedPhase comm_phase(obs::Phase::kComm);
      MDM_TRACE_SCOPE("parallel.wn_recv");
      for (int r = 0; r < R; ++r) {
        const auto batch = comm.recv<WnRec>(r, kToWine);
        for (const auto& rec : batch) {
          local.push_back(rec);
          owner.push_back(r);
        }
      }
    }

    positions.resize(local.size());
    types.resize(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      positions[i] = local[i].pos;
      types[i] = local[i].type;
    }
    soa.sync(shared.box, positions, types, charge_of_type);

    kspace.dft(soa, sf);
    {
      obs::ScopedPhase comm_phase(obs::Phase::kComm);
      MDM_TRACE_SCOPE("parallel.sf_allreduce");
      wn_comm.allreduce_sum(sf.s, kSfSinTag);
      wn_comm.allreduce_sum(sf.c, kSfCosTag);
    }

    std::vector<Vec3> forces(local.size(), Vec3{});
    kspace.idft(soa, sf, forces);

    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.wn_send");
    std::vector<std::vector<IdForce>> outgoing(R);
    for (std::size_t i = 0; i < local.size(); ++i)
      outgoing[owner[i]].push_back({local[i].id, forces[i]});
    for (int r = 0; r < R; ++r) comm.send(r, kFromWine, outgoing[r]);

    if (wn_comm.rank() == 0)
      comm.send_value(0, kWineEnergy, kspace.energy_virial(sf).potential);
  }
}

/// Distributed-PME wavenumber process (DESIGN.md §12): same rank topology
/// and message flow as the structure-factor paths, but the reciprocal sum
/// runs on the slab-decomposed mesh engine. Real ranks route each particle
/// to the owner of its base spreading plane (PmeSlabLayout::route), not by
/// id, so every rank spreads only onto its own slab plus its ghost planes.
void wavenumber_main_pme(const Shared& shared, vmpi::Communicator& comm) {
  const int R = shared.config.real_processes;
  const int W = shared.config.wn_processes;
  std::vector<int> wn_ranks(W);
  for (int w = 0; w < W; ++w) wn_ranks[w] = R + w;
  auto wn_comm = comm.subgroup(wn_ranks);

  const PmeParameters pme =
      validated_pme(resolved_pme(shared.config), shared.box);
  DistributedPmeRank engine(pme, shared.box, wn_comm);

  std::vector<Vec3> positions;
  std::vector<double> charges;
  std::vector<Vec3> forces;

  for (int round = shared.start_step; round <= shared.total_steps; ++round) {
    obs::TraceSpan round_span("wn.round");
    std::vector<WnRec> local;
    std::vector<int> owner;
    {
      obs::ScopedPhase comm_phase(obs::Phase::kComm);
      MDM_TRACE_SCOPE("parallel.wn_recv");
      for (int r = 0; r < R; ++r) {
        const auto batch = comm.recv<WnRec>(r, kToWine);
        for (const auto& rec : batch) {
          local.push_back(rec);
          owner.push_back(r);
        }
      }
    }
    // Fault poll after the recv, not at the top of the round: an injected
    // death here models a k-space rank dying mid-FFT — its peers are
    // already inside the collective mesh transform and surface
    // PeerFailedError from the transpose/ghost-plane exchanges.
    maybe_fail_rank(shared, comm.rank(), round);

    positions.resize(local.size());
    charges.resize(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      positions[i] = local[i].pos;
      charges[i] = charge_of(shared, local[i].type);
    }
    const double energy = engine.step(positions, charges, forces);

    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.wn_send");
    std::vector<std::vector<IdForce>> outgoing(R);
    for (std::size_t i = 0; i < local.size(); ++i)
      outgoing[owner[i]].push_back({local[i].id, forces[i]});
    for (int r = 0; r < R; ++r) comm.send(r, kFromWine, outgoing[r]);

    if (wn_comm.rank() == 0)
      comm.send_value(0, kWineEnergy, energy);
  }
}

void wavenumber_main(const Shared& shared, vmpi::Communicator& comm) {
  if (shared.config.kspace_solver == KspaceSolver::kPme)
    return wavenumber_main_pme(shared, comm);
  if (shared.config.backend == Backend::kNative)
    return wavenumber_main_native(shared, comm);
  const int R = shared.config.real_processes;
  const int W = shared.config.wn_processes;
  std::vector<int> wn_ranks(W);
  for (int w = 0; w < W; ++w) wn_ranks[w] = R + w;
  auto wn_comm = comm.subgroup(wn_ranks);

  Wine2MpiLibrary lib;
  lib.wine2_set_MPI_community(&wn_comm);
  lib.wine2_allocate_board(shared.config.wine_boards_per_process);
  lib.wine2_initialize_board(shared.config.wine_formats);

  const KVectorTable kvectors(shared.box, shared.config.ewald.alpha,
                              shared.config.ewald.lk_cut);

  // One round per force evaluation: the resume (or initial) priming pass
  // plus one per remaining step. Round k serves the force evaluation of
  // step k.
  for (int round = shared.start_step; round <= shared.total_steps; ++round) {
    // Coarse per-rank span (always compiled, unlike MDM_TRACE_SCOPE): the
    // merged job trace shows every rank's round cadence in Release too.
    obs::TraceSpan round_span("wn.round");
    maybe_fail_rank(shared, comm.rank(), round);
    // One (possibly empty) batch from every real rank.
    std::vector<WnRec> local;
    std::vector<int> owner;  // real rank per local particle
    {
      obs::ScopedPhase comm_phase(obs::Phase::kComm);
      MDM_TRACE_SCOPE("parallel.wn_recv");
      for (int r = 0; r < R; ++r) {
        const auto batch = comm.recv<WnRec>(r, kToWine);
        for (const auto& rec : batch) {
          local.push_back(rec);
          owner.push_back(r);
        }
      }
    }

    std::vector<Vec3> positions(local.size());
    std::vector<double> charges(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      positions[i] = local[i].pos;
      charges[i] = charge_of(shared, local[i].type);
    }
    std::vector<Vec3> forces(local.size(), Vec3{});
    const double energy = lib.calculate_force_and_pot_wavepart_nooffset(
        positions, charges, shared.box, kvectors, forces);

    // Return forces to the owning real ranks.
    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.wn_send");
    std::vector<std::vector<IdForce>> outgoing(R);
    for (std::size_t i = 0; i < local.size(); ++i)
      outgoing[owner[i]].push_back({local[i].id, forces[i]});
    for (int r = 0; r < R; ++r) comm.send(r, kFromWine, outgoing[r]);

    if (wn_comm.rank() == 0)
      comm.send_value(0, kWineEnergy, energy);
  }
  lib.wine2_free_board();
}

/// ---------------- real-space process -------------------------------------

class RealProcess {
 public:
  RealProcess(const Shared& shared, vmpi::Communicator& comm)
      : shared_(shared),
        comm_(comm),
        grid_(shared.config.domain_nx > 0
                  ? DomainGrid(shared.config.domain_nx,
                               shared.config.domain_ny,
                               shared.config.domain_nz, shared.box)
                  : DomainGrid::for_processes(shared.config.real_processes,
                                              shared.box)),
        mdgrape_({.clusters = shared.config.mdgrape_boards_per_process,
                  .boards_per_cluster = 1}) {
    if (shared_.config.kspace_solver == KspaceSolver::kPme) {
      const PmeParameters pme = resolved_pme(shared_.config);
      pme_layout_ = PmeSlabLayout::create(pme.grid, pme.order,
                                          shared_.config.wn_processes);
      use_pme_ = true;
    }
    std::vector<double> charges(shared_.species.size());
    for (std::size_t t = 0; t < shared_.species.size(); ++t)
      charges[t] = shared_.species[t].charge;
    species_charge_ = charges;
    const double beta = shared_.config.ewald.alpha / shared_.box;
    if (shared_.config.backend == Backend::kNative) {
      native::NativeRealKernel::Config rc;
      rc.box = shared_.box;
      rc.beta = beta;
      rc.r_cut = shared_.config.ewald.r_cut;
      rc.include_tosi_fumi = shared_.config.include_tosi_fumi;
      rc.tosi_fumi = shared_.config.tosi_fumi;
      native_kernel_ = std::make_unique<native::NativeRealKernel>(rc);
      return;
    }
    force_passes_.push_back(mdgrape2::make_coulomb_real_pass(
        beta, shared_.config.ewald.r_cut, charges));
    potential_passes_.push_back(mdgrape2::make_coulomb_real_potential_pass(
        beta, shared_.config.ewald.r_cut, charges));
    if (shared_.config.include_tosi_fumi) {
      for (auto& p : mdgrape2::make_tosi_fumi_passes(
               shared_.config.tosi_fumi, shared_.config.ewald.r_cut))
        force_passes_.push_back(std::move(p));
      for (auto& p : mdgrape2::make_tosi_fumi_potential_passes(
               shared_.config.tosi_fumi, shared_.config.ewald.r_cut))
        potential_passes_.push_back(std::move(p));
    }
  }

  void main() {
    const int start = shared_.start_step;
    obs::FlightRecorder::record(obs::FlightKind::kPhase, "scatter", start);
    scatter_initial();
    apply_injected_faults(start);
    compute_forces();
    // Collective: every real rank joins the reductions. After a restore
    // the samples continue from start + 1.
    if (start == 0) record_sample(0);
    const auto& cfg = shared_.config.protocol;
    for (int step = start + 1; step <= shared_.total_steps; ++step) {
      // Coarse per-rank span (always compiled, unlike MDM_TRACE_SCOPE): the
      // merged job trace shows every rank's step cadence in Release too.
      obs::TraceSpan step_span("rank.step");
      obs::FlightRecorder::record(obs::FlightKind::kStep, nullptr, step);
      maybe_cancel(shared_, rank(), step);
      apply_injected_faults(step);
      half_kick();
      drift();
      migrate();
      compute_forces();
      half_kick();
      if (step <= cfg.nvt_steps && step % cfg.rescale_interval == 0)
        thermostat();
      check_health(step);
      if (step % cfg.sample_interval == 0) record_sample(step);
      maybe_checkpoint(step);
    }
    obs::FlightRecorder::record(obs::FlightKind::kPhase, "gather",
                                shared_.total_steps);
    gather_final();
  }

  std::vector<Sample> samples;           // rank 0 only
  std::vector<Vec3> final_positions;     // rank 0 only
  std::vector<Vec3> final_velocities;    // rank 0 only

 private:
  int rank() const { return comm_.rank(); }
  int real_count() const { return shared_.config.real_processes; }
  int wn_count() const { return shared_.config.wn_processes; }

  double mass_of(const PRec& p) const {
    return shared_.species[p.type].mass;
  }

  /// Poll the fault injector at the top of each step: an injected rank
  /// failure throws (and poisons the fabric); an injected board failure
  /// degrades this rank's MDGRAPE-2 cluster onto its surviving boards.
  void apply_injected_faults(int step) {
    auto* injector = shared_.injector;
    if (!injector) return;
    maybe_fail_rank(shared_, rank(), step);
    const int board = injector->board_to_fail(rank(), step);
    if (board < 0) return;
    if (board >= mdgrape_.board_count() || mdgrape_.board_failed(board))
      return;
    MDM_LOG_WARN(
        "parallel: rank %d loses MDGRAPE-2 board %d at step %d; degrading "
        "to %d boards",
        rank(), board, step, mdgrape_.alive_board_count() - 1);
    mdgrape_.fail_board(board);
    static obs::Counter& failures =
        obs::Registry::global().counter("parallel.board_failures");
    failures.add(1);
  }

  void scatter_initial() {
    if (rank() == 0) {
      std::vector<std::vector<PRec>> buckets(real_count());
      for (const auto& p : shared_.initial)
        buckets[grid_.domain_of(p.pos)].push_back(p);
      my_ = std::move(buckets[0]);
      for (int r = 1; r < real_count(); ++r)
        comm_.send(r, kScatter, buckets[r]);
    } else {
      my_ = comm_.recv<PRec>(0, kScatter);
    }
    rebuild_id_index();
  }

  /// Rebuild the id -> my_ slot map; owned particle ids are a subset of the
  /// dense global 0..N-1 ids, so a flat vector beats a hash map. Must run
  /// after every ownership change (scatter, migration).
  void rebuild_id_index() {
    id_slot_.assign(shared_.n_particles, -1);
    for (std::size_t i = 0; i < my_.size(); ++i)
      id_slot_[my_[i].id] = static_cast<std::int32_t>(i);
  }

  /// Halo exchange: ship to each other real rank the particles within r_cut
  /// of that rank's domain cuboid; receive the same from everyone.
  std::vector<PRec> exchange_halos() {
    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.halo_exchange");
    const std::uint64_t t0 = obs::Trace::now_ns();
    const double r_cut = shared_.config.ewald.r_cut;
    for (int d = 0; d < real_count(); ++d) {
      if (d == rank()) continue;
      std::vector<PRec> out;
      for (const auto& p : my_)
        if (grid_.distance_to_domain(p.pos, d) < r_cut) out.push_back(p);
      comm_.send(d, kHalo, out);
    }
    std::vector<PRec> halo;
    for (int d = 0; d < real_count(); ++d) {
      if (d == rank()) continue;
      const auto part = comm_.recv<PRec>(d, kHalo);
      halo.insert(halo.end(), part.begin(), part.end());
    }
    halo_ms_ += ms_since(t0);
    return halo;
  }

  void compute_forces() {
    const auto halo = exchange_halos();
    const std::uint64_t t_force = obs::Trace::now_ns();

    if (native_kernel_) {
      compute_real_native(halo);
    } else {
      compute_real_emulated(halo);
    }

    mdgrape_ms_ += ms_since(t_force);

    // Wavenumber part: partition the owned particles over the 8 wavenumber
    // processes by particle id.
    const std::uint64_t t_wine = obs::Trace::now_ns();
    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.wine_exchange");
    std::vector<std::vector<WnRec>> to_wine(wn_count());
    if (use_pme_) {
      // PME routes by mesh geometry: the wavenumber rank owning the
      // particle's base spreading plane gets it (same floor(wrap(z)/L*K)
      // as the spline kernel, so routing and spreading cannot disagree).
      for (const auto& p : my_)
        to_wine[pme_layout_.route(p.pos.z, shared_.box)].push_back(
            {p.id, p.type, p.pos});
    } else {
      for (const auto& p : my_)
        to_wine[p.id % wn_count()].push_back({p.id, p.type, p.pos});
    }
    for (int w = 0; w < wn_count(); ++w)
      comm_.send(real_count() + w, kToWine, to_wine[w]);

    std::vector<IdForce> returned;
    for (int w = 0; w < wn_count(); ++w) {
      const auto part = comm_.recv<IdForce>(real_count() + w, kFromWine);
      returned.insert(returned.end(), part.begin(), part.end());
    }
    for (const auto& idf : returned) {
      const std::int32_t slot =
          idf.id < id_slot_.size() ? id_slot_[idf.id] : -1;
      if (slot < 0)
        throw std::runtime_error("parallel app: wavenumber force for a "
                                 "particle this rank does not own");
      my_[static_cast<std::size_t>(slot)].force += idf.force;
    }
    if (rank() == 0)
      wn_energy_ = comm_.recv_value<double>(real_count(), kWineEnergy);
    wine_ms_ += ms_since(t_wine);
  }

  /// Emulator real-space pass: owned + halo through the MDGRAPE-2 boards.
  void compute_real_emulated(const std::vector<PRec>& halo) {
    // Local particle image: owned first, then halo (MDGRAPE-2 j-set).
    ParticleSystem local(shared_.box);
    for (const auto& s : shared_.species) local.add_species(s);
    for (const auto& p : my_) local.add_particle(p.type, p.pos);
    for (const auto& p : halo) local.add_particle(p.type, p.pos);

    std::vector<Vec3> forces(local.size(), Vec3{});
    if (local.size() > 0) {
      mdgrape_.load_particles(local, shared_.config.ewald.r_cut);
      for (const auto& pass : force_passes_)
        mdgrape_.run_force_pass(pass, forces);
    }
    for (std::size_t i = 0; i < my_.size(); ++i) my_[i].force = forces[i];

    // Real-space + short-range potential of the owned particles (pair
    // energies are seen from both sides, hence the factor 1/2).
    local_potential_ = 0.0;
    if (local.size() > 0) {
      std::vector<double> pot(local.size(), 0.0);
      for (const auto& pass : potential_passes_)
        mdgrape_.run_potential_pass(pass, pot);
      for (std::size_t i = 0; i < my_.size(); ++i)
        local_potential_ += 0.5 * pot[i];
    }
  }

  /// Native real-space pass (DESIGN.md §11): one fused one-sided sweep over
  /// owned + halo gives forces AND potential; like the emulator potential
  /// pass it sees every owned pair from both sides, hence the factor 1/2.
  void compute_real_native(const std::vector<PRec>& halo) {
    pos_buf_.resize(my_.size() + halo.size());
    type_buf_.resize(my_.size() + halo.size());
    for (std::size_t i = 0; i < my_.size(); ++i) {
      pos_buf_[i] = my_[i].pos;
      type_buf_[i] = my_[i].type;
    }
    for (std::size_t i = 0; i < halo.size(); ++i) {
      pos_buf_[my_.size() + i] = halo[i].pos;
      type_buf_[my_.size() + i] = halo[i].type;
    }
    soa_.sync(shared_.box, pos_buf_, type_buf_, species_charge_);

    force_buf_.assign(soa_.size(), Vec3{});
    local_potential_ = 0.0;
    if (soa_.size() > 0) {
      const ForceResult result =
          native_kernel_->one_sided(soa_, my_.size(), force_buf_);
      local_potential_ = 0.5 * result.potential;
    }
    for (std::size_t i = 0; i < my_.size(); ++i)
      my_[i].force = force_buf_[i];
  }

  void half_kick() {
    const double dt = shared_.config.protocol.dt_fs;
    for (auto& p : my_) {
      const double c = 0.5 * dt * units::kAccelUnit / mass_of(p);
      p.vel += c * p.force;
    }
  }

  void drift() {
    const double dt = shared_.config.protocol.dt_fs;
    for (auto& p : my_) {
      p.pos += dt * p.vel;
      p.pos = wrap_position(p.pos, shared_.box);
    }
  }

  void migrate() {
    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.migrate");
    const std::uint64_t t0 = obs::Trace::now_ns();
    std::vector<std::vector<PRec>> buckets(real_count());
    for (const auto& p : my_) buckets[grid_.domain_of(p.pos)].push_back(p);
    my_ = std::move(buckets[rank()]);
    for (int d = 0; d < real_count(); ++d) {
      if (d == rank()) continue;
      comm_.send(d, kMigrate, buckets[d]);
    }
    for (int d = 0; d < real_count(); ++d) {
      if (d == rank()) continue;
      const auto part = comm_.recv<PRec>(d, kMigrate);
      my_.insert(my_.end(), part.begin(), part.end());
    }
    // Deterministic ownership order regardless of arrival order.
    std::sort(my_.begin(), my_.end(),
              [](const PRec& a, const PRec& b) { return a.id < b.id; });
    rebuild_id_index();
    migrate_ms_ += ms_since(t0);
  }

  /// Global kinetic energy (eV) via allreduce over the real group.
  double global_kinetic() {
    double twice_ke = 0.0;
    for (const auto& p : my_) twice_ke += mass_of(p) * norm2(p.vel);
    twice_ke = real_allreduce(twice_ke);
    return 0.5 * twice_ke / units::kAccelUnit;
  }

  double global_temperature() {
    const double dof =
        3.0 * static_cast<double>(shared_.n_particles) -
        (shared_.n_particles > 1 ? 3.0 : 0.0);
    return 2.0 * global_kinetic() / (dof * units::kBoltzmann);
  }

  void thermostat() {
    const double t = global_temperature();
    if (t <= 0.0) return;
    const double scale =
        std::sqrt(shared_.config.protocol.temperature_K / t);
    for (auto& p : my_) p.vel *= scale;
  }

  /// Sum-allreduce one double over the real-process group (point-to-point;
  /// tags distinct from the collective helpers).
  double real_allreduce(double v) {
    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    if (rank() == 0) {
      for (int r = 1; r < real_count(); ++r)
        v += comm_.recv_value<double>(r, 9001);
      for (int r = 1; r < real_count(); ++r) comm_.send_value(r, 9002, v);
      return v;
    }
    comm_.send_value(0, 9001, v);
    return comm_.recv_value<double>(0, 9002);
  }

  void record_sample(int step) {
    const double kinetic = global_kinetic();
    const double potential_rs = real_allreduce(local_potential_);
    if (rank() != 0) return;
    Sample s;
    s.step = step;
    s.time_ps = step * shared_.config.protocol.dt_fs * 1e-3;
    const double dof =
        3.0 * static_cast<double>(shared_.n_particles) -
        (shared_.n_particles > 1 ? 3.0 : 0.0);
    s.temperature_K = 2.0 * kinetic / (dof * units::kBoltzmann);
    s.kinetic_eV = kinetic;
    s.potential_eV = potential_rs + wn_energy_ + shared_.self_energy +
                     shared_.background_energy;
    s.total_eV = s.kinetic_eV + s.potential_eV;
    samples.push_back(s);
    // Global watchdog checks run on rank 0, which alone sees the reduced
    // quantities; a violation poisons the fabric like any rank failure and
    // surfaces from World::run as SimulationHealthError.
    health_.check_temperature(s.temperature_K, step);
    if (step >= shared_.config.protocol.nvt_steps)
      health_.observe_energy(s.total_eV, step);
  }

  /// Rank-local NaN/Inf scan of the owned particles (reported by global
  /// particle id).
  void check_health(int step) {
    if (!shared_.config.health.check_finite) return;
    for (const auto& p : my_) {
      health_.check_finite_one(p.pos, "position", step, p.id);
      health_.check_finite_one(p.vel, "velocity", step, p.id);
      health_.check_finite_one(p.force, "force", step, p.id);
    }
  }

  /// Every checkpoint_interval steps the real group funnels its particles
  /// to rank 0, which writes one rotating crash-consistent generation.
  void maybe_checkpoint(int step) {
    auto* mgr = shared_.checkpoint;
    if (!mgr || shared_.checkpoint_interval <= 0 ||
        step % shared_.checkpoint_interval != 0)
      return;
    obs::ScopedPhase comm_phase(obs::Phase::kComm);
    MDM_TRACE_SCOPE("parallel.checkpoint");
    // The ack makes the checkpoint an epoch barrier: no real rank enters
    // step+1 until the generation is durably on disk. Without it a rank
    // dying at step+1 can poison the fabric while rank 0 is still writing,
    // leaving nothing to recover from.
    if (rank() != 0) {
      comm_.send(0, kCkptGather, my_);
      comm_.recv_value<int>(0, kCkptAck);
      return;
    }
    std::vector<PRec> all = my_;
    for (int r = 1; r < real_count(); ++r) {
      const auto part = comm_.recv<PRec>(r, kCkptGather);
      all.insert(all.end(), part.begin(), part.end());
    }
    CheckpointState state;
    state.step = static_cast<std::uint64_t>(step);
    state.time_ps = step * shared_.config.protocol.dt_fs * 1e-3;
    state.box = shared_.box;
    state.species = shared_.species;
    state.types.assign(shared_.n_particles, 0);
    state.positions.assign(shared_.n_particles, Vec3{});
    state.velocities.assign(shared_.n_particles, Vec3{});
    for (const auto& p : all) {
      state.types[p.id] = p.type;
      state.positions[p.id] = p.pos;
      state.velocities[p.id] = p.vel;
    }
    mgr->write(state);
    for (int r = 1; r < real_count(); ++r) comm_.send_value(r, kCkptAck, step);
  }

  /// Publish this rank's accumulated phase timings as gauges so a run can
  /// inspect per-rank load balance (Table-1's "communication" row is the
  /// spread between these).
  void flush_rank_metrics() {
    auto& reg = obs::Registry::global();
    const std::string prefix = "parallel.rank" + std::to_string(rank()) + ".";
    reg.gauge(prefix + "halo_ms").set(halo_ms_);
    reg.gauge(prefix + "mdgrape_ms").set(mdgrape_ms_);
    reg.gauge(prefix + "wine_ms").set(wine_ms_);
    reg.gauge(prefix + "migrate_ms").set(migrate_ms_);
  }

  void gather_final() {
    flush_rank_metrics();
    // Gather over the real-process subgroup only (the wavenumber ranks have
    // already finished their rounds).
    std::vector<int> real_ranks(real_count());
    for (int r = 0; r < real_count(); ++r) real_ranks[r] = r;
    auto real_comm = comm_.subgroup(real_ranks);
    const auto all = real_comm.gather(my_, 0, kGatherFinal);
    if (rank() != 0) return;
    final_positions.assign(shared_.n_particles, Vec3{});
    final_velocities.assign(shared_.n_particles, Vec3{});
    for (const auto& p : all) {
      final_positions[p.id] = p.pos;
      final_velocities[p.id] = p.vel;
    }
  }

  const Shared& shared_;
  vmpi::Communicator& comm_;
  DomainGrid grid_;
  PmeSlabLayout pme_layout_{};  ///< kPme only: wavenumber routing map
  bool use_pme_ = false;
  mdgrape2::Mdgrape2System mdgrape_;
  std::vector<mdgrape2::ForcePass> force_passes_;
  std::vector<mdgrape2::ForcePass> potential_passes_;
  std::vector<double> species_charge_;
  // Native backend (DESIGN.md §11): fused one-sided kernel plus reusable
  // SoA mirror and scratch, so the steady state stays allocation-free.
  std::unique_ptr<native::NativeRealKernel> native_kernel_;
  native::SoaParticles soa_;
  std::vector<Vec3> pos_buf_;
  std::vector<int> type_buf_;
  std::vector<Vec3> force_buf_;
  std::vector<PRec> my_;
  HealthMonitor health_{shared_.config.health};
  std::vector<std::int32_t> id_slot_;  ///< id -> index in my_ (-1 not owned)
  double local_potential_ = 0.0;
  double wn_energy_ = 0.0;  // rank 0 only

  // Per-rank accumulated phase timings (flushed at the end of the run).
  double halo_ms_ = 0.0;
  double mdgrape_ms_ = 0.0;
  double wine_ms_ = 0.0;
  double migrate_ms_ = 0.0;
};

}  // namespace

PmeParameters resolved_pme(const ParallelAppConfig& config) {
  PmeParameters pme = config.pme;
  if (pme.alpha <= 0.0) pme.alpha = config.ewald.alpha;
  if (pme.r_cut <= 0.0) pme.r_cut = config.ewald.r_cut;
  return pme;
}

const char* to_string(KspaceSolver solver) {
  return solver == KspaceSolver::kPme ? "pme" : "structure-factor";
}

KspaceSolver kspace_solver_from_string(const std::string& name) {
  if (name == "sf" || name == "structure-factor" || name == "ewald")
    return KspaceSolver::kStructureFactor;
  if (name == "pme") return KspaceSolver::kPme;
  throw std::invalid_argument(
      "kspace_solver_from_string: unknown solver '" + name +
      "' (expected sf, structure-factor, ewald or pme)");
}

MdmParallelApp::MdmParallelApp(ParallelAppConfig config) : config_(config) {
  if (config_.real_processes < 1)
    throw std::invalid_argument(
        "MdmParallelApp: real_processes must be >= 1 (got " +
        std::to_string(config_.real_processes) + ")");
  if (config_.wn_processes < 1)
    throw std::invalid_argument(
        "MdmParallelApp: wn_processes must be >= 1 (got " +
        std::to_string(config_.wn_processes) + ")");
  if (config_.domain_nx != 0 || config_.domain_ny != 0 ||
      config_.domain_nz != 0) {
    const std::string grid_str = std::to_string(config_.domain_nx) + "x" +
                                 std::to_string(config_.domain_ny) + "x" +
                                 std::to_string(config_.domain_nz);
    if (config_.domain_nx < 1 || config_.domain_ny < 1 ||
        config_.domain_nz < 1)
      throw std::invalid_argument(
          "MdmParallelApp: explicit domain grid must be >= 1 in every axis "
          "(got " + grid_str + ")");
    const int domains =
        config_.domain_nx * config_.domain_ny * config_.domain_nz;
    if (domains != config_.real_processes)
      throw std::invalid_argument(
          "MdmParallelApp: domain grid " + grid_str + " = " +
          std::to_string(domains) + " domains does not match "
          "real_processes = " + std::to_string(config_.real_processes));
  }
  if (config_.kspace_solver == KspaceSolver::kPme) {
    // Box-independent mesh checks fail here, at configuration time; the
    // box-dependent ones (r_cut <= L/2) rerun in run() via validated_pme.
    const PmeParameters pme = resolved_pme(config_);
    if (!is_power_of_two(static_cast<std::size_t>(pme.grid)))
      throw std::invalid_argument(
          "MdmParallelApp: PME grid must be a power of two (got " +
          std::to_string(pme.grid) + ")");
    if (pme.order < 3 || pme.order > 10)
      throw std::invalid_argument(
          "MdmParallelApp: PME order must be in [3, 10] (got " +
          std::to_string(pme.order) + ")");
    if (pme.grid < 2 * pme.order)
      throw std::invalid_argument(
          "MdmParallelApp: PME grid " + std::to_string(pme.grid) +
          " too small for order " + std::to_string(pme.order));
    PmeSlabLayout::create(pme.grid, pme.order, config_.wn_processes);
  }
}

ParallelRunResult MdmParallelApp::run(const ParticleSystem& initial) {
  Shared shared;
  shared.config = config_;
  shared.box = initial.box();
  shared.n_particles = initial.size();
  for (int t = 0; t < initial.species_count(); ++t)
    shared.species.push_back(initial.species(t));
  shared.initial.resize(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    shared.initial[i] = {static_cast<std::uint32_t>(i),
                         initial.type(i), initial.positions()[i],
                         initial.velocities()[i], Vec3{}};
  }
  const double beta = config_.ewald.alpha / shared.box;
  shared.self_energy = -units::kCoulomb * beta /
                       std::sqrt(std::numbers::pi) *
                       initial.total_charge_squared();
  const double q = initial.total_charge();
  shared.background_energy =
      -units::kCoulomb * std::numbers::pi /
      (2.0 * beta * beta * shared.box * shared.box * shared.box) * q * q;
  shared.total_steps =
      config_.protocol.nvt_steps + config_.protocol.nve_steps;
  // Fail fast on box-dependent PME misconfiguration (r_cut vs L/2) before
  // any rank thread launches.
  if (config_.kspace_solver == KspaceSolver::kPme)
    validated_pme(resolved_pme(config_), shared.box);

  // Fault-tolerance wiring: explicit injector wins; otherwise the
  // MDM_FAULT_SPEC/MDM_FAULT_SEED environment knobs apply. Dropped
  // messages are retransmitted with bounded backoff so a transient fabric
  // fault costs latency, not the run.
  std::unique_ptr<vmpi::FaultInjector> env_injector;
  shared.injector = config_.fault_injector;
  if (!shared.injector) {
    env_injector = vmpi::FaultInjector::from_env();
    shared.injector = env_injector.get();
  }

  // Checkpoint/restart wiring (DESIGN.md §8): rank 0 writes a rotating
  // generation every checkpoint_interval steps; on a rank failure the app
  // restores the latest CRC-valid generation, rebuilds the domain
  // decomposition over the restored configuration and resumes.
  std::unique_ptr<CheckpointManager> ckpt_mgr;
  if (!config_.checkpoint_dir.empty())
    ckpt_mgr = std::make_unique<CheckpointManager>(config_.checkpoint_dir,
                                                   config_.checkpoint_keep);
  shared.checkpoint = ckpt_mgr.get();
  shared.checkpoint_interval = config_.checkpoint_interval;

  const auto apply_state = [&shared](const CheckpointState& state) {
    if (state.size() != shared.n_particles)
      throw CheckpointError(
          "checkpoint particle count mismatch: file holds " +
          std::to_string(state.size()) + ", run holds " +
          std::to_string(shared.n_particles));
    if (state.box != shared.box)
      throw CheckpointError("checkpoint box mismatch");
    shared.start_step = static_cast<int>(state.step);
    for (std::size_t i = 0; i < shared.n_particles; ++i) {
      auto& p = shared.initial[i];
      if (!state.types.empty()) p.type = state.types[i];
      p.pos = state.positions[i];
      p.vel = state.velocities[i];
      p.force = Vec3{};
    }
  };
  if (!config_.restore_path.empty())
    apply_state(read_checkpoint_file(config_.restore_path));

  ParallelRunResult result;
  vmpi::World world(config_.real_processes + config_.wn_processes);
  if (shared.injector) world.set_fault_injector(shared.injector);
  world.set_send_retry(
      config_.send_max_retries,
      std::chrono::microseconds(
          static_cast<long>(config_.send_backoff_us)));
  if (config_.recv_timeout_ms > 0)
    world.set_recv_timeout(std::chrono::milliseconds(
        static_cast<long>(config_.recv_timeout_ms)));
  std::mutex result_mutex;

  // One trace per run: adopt the caller's ambient context (a serve job's
  // trace) or mint a fresh one; every epoch — the initial attempt and each
  // auto-recovery — gets its own span under that trace, and vmpi propagates
  // the context into every rank thread.
  const obs::TraceContext run_ctx = obs::TraceContext::current_or_mint();
  obs::TraceContextScope run_scope(run_ctx);

  for (;;) {
    obs::TraceContextScope epoch_scope(
        obs::TraceContext{run_ctx.trace_id, obs::TraceContext::next_span_id()});
    obs::TraceSpan epoch_span("parallel.epoch");
    try {
      world.run([&](vmpi::Communicator& comm) {
        if (comm.rank() < config_.real_processes) {
          RealProcess proc(shared, comm);
          proc.main();
          if (comm.rank() == 0) {
            std::lock_guard lock(result_mutex);
            result.samples = std::move(proc.samples);
            result.positions = std::move(proc.final_positions);
            result.velocities = std::move(proc.final_velocities);
          }
        } else {
          wavenumber_main(shared, comm);
        }
      });
      return result;
    } catch (const ParallelCancelled&) {
      // A cancel is a request, not a failure: no recovery, no dump.
      throw;
    } catch (const SimulationHealthError& e) {
      dump_flight(config_, "health");
      // Deterministic numerical garbage: resuming would reproduce it, so
      // optionally roll the result back to the last good checkpoint and
      // halt cleanly instead of rethrowing.
      if (config_.rollback_on_health_error && shared.checkpoint) {
        if (auto state = shared.checkpoint->restore_latest()) {
          MDM_LOG_WARN(
              "parallel: health violation (%s); rolling back to checkpoint "
              "at step %llu and halting",
              e.what(), static_cast<unsigned long long>(state->step));
          result.halted_on_health = true;
          result.health_message = e.what();
          result.restored_from_step = state->step;
          result.samples.clear();
          result.positions = std::move(state->positions);
          result.velocities = std::move(state->velocities);
          return result;
        }
      }
      throw;
    } catch (const std::exception& e) {
      dump_flight(config_, "failure");
      if (!config_.auto_recover || !shared.checkpoint ||
          result.recoveries >= config_.max_recoveries)
        throw;
      const auto state = shared.checkpoint->restore_latest();
      if (!state) throw;  // nothing durable to resume from
      apply_state(*state);
      ++result.recoveries;
      result.restored_from_step = state->step;
      static obs::Counter& recoveries =
          obs::Registry::global().counter("parallel.recoveries");
      recoveries.add(1);
      MDM_LOG_WARN(
          "parallel: run failed (%s); recovered from checkpoint at step "
          "%llu, resuming (%d/%d)",
          e.what(), static_cast<unsigned long long>(state->step),
          result.recoveries, config_.max_recoveries);
    }
  }
}

}  // namespace mdm::host
