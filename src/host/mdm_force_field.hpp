#pragma once

/// \file mdm_force_field.hpp
/// The MDM as a force provider: the host-side orchestration of one time
/// step's force calculation (sec. 3.1). Positions are shipped to both
/// simulated backends; MDGRAPE-2 evaluates the real-space Coulomb and the
/// Tosi-Fumi short-range terms via g(x) table passes, WINE-2 evaluates the
/// wavenumber-space Coulomb part via DFT/IDFT, and the host adds the Ewald
/// self/background energies.
///
/// This is the *single-process* orchestration used by the Simulation driver
/// and the benches; the 16+8-process MPI application of sec. 4 lives in
/// parallel_app.hpp and produces the same forces.

#include <cstdint>
#include <memory>
#include <optional>

#include "core/force_field.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "mdgrape2/system.hpp"
#include "wine2/system.hpp"

namespace mdm::host {

struct MdmForceFieldConfig {
  EwaldParameters ewald;                 ///< paper-convention parameters
  bool include_tosi_fumi = true;         ///< NaCl short-range passes
  TosiFumiParameters tosi_fumi = TosiFumiParameters::nacl();
  mdgrape2::SystemConfig mdgrape{};      ///< real-space machine
  wine2::SystemConfig wine{};            ///< wavenumber machine
  /// Evaluate the potential-energy passes every k force evaluations
  /// (the paper samples the potential every 100 steps; 1 = every step).
  int potential_interval = 1;
};

/// Ewald parameters suitable for the MDM simulators: the cell-index board
/// needs box >= 3 r_cut, so alpha >= 3 s1 in addition to the software
/// balance.
EwaldParameters mdm_parameters(double n_particles, double box,
                               const EwaldAccuracy& accuracy = {});

class MdmForceField final : public ForceField {
 public:
  MdmForceField(MdmForceFieldConfig config, double box);

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "mdm-machine"; }

  /// The virial is not computed by the special-purpose hardware; pressure
  /// is unavailable on the MDM path (ForceResult.virial is 0).
  const MdmForceFieldConfig& config() const { return config_; }
  const KVectorTable& kvectors() const { return kvectors_; }

  /// Cumulative backend work counters (for the performance benches).
  std::uint64_t mdgrape_pair_operations() const;
  std::uint64_t wine_wave_particle_operations() const;

  /// Components of the most recent potential evaluation (eV).
  struct PotentialBreakdown {
    double real_space = 0.0;
    double wavenumber = 0.0;
    double self_energy = 0.0;
    double background = 0.0;
    double short_range = 0.0;
    double total() const {
      return real_space + wavenumber + self_energy + background + short_range;
    }
  };
  const PotentialBreakdown& last_potential() const { return potential_; }

  /// Forward a thread pool (nullptr = serial) to both simulated backends:
  /// MDGRAPE-2 fans out over boards and WINE-2 over chips/particles, all
  /// bit-identical to the serial passes at any pool size.
  void set_thread_pool(ThreadPool* pool) {
    mdgrape_.set_thread_pool(pool);
    wine_.set_thread_pool(pool);
  }

 private:
  void build_passes(const ParticleSystem& system);

  MdmForceFieldConfig config_;
  double box_;
  KVectorTable kvectors_;
  mdgrape2::Mdgrape2System mdgrape_;
  wine2::Wine2System wine_;

  bool passes_built_ = false;
  mdgrape2::ForcePass coulomb_force_pass_;
  mdgrape2::ForcePass coulomb_potential_pass_;
  std::vector<mdgrape2::ForcePass> tf_force_passes_;
  std::vector<mdgrape2::ForcePass> tf_potential_passes_;

  std::uint64_t evaluations_ = 0;
  PotentialBreakdown potential_;

  /// Per-step scratch, reused across steps (no steady-state allocations).
  std::vector<double> charges_scratch_;
  std::vector<double> per_particle_scratch_;
  std::vector<double> short_range_scratch_;
};

}  // namespace mdm::host
