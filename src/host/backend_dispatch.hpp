#pragma once

/// \file backend_dispatch.hpp
/// Backend selection (DESIGN.md §11): one factory turning a `Backend` plus
/// the MDM force-field configuration into the matching ForceField — the
/// emulated machine (MdmForceField) or the vectorized native kernels
/// (NativeForceField). Both evaluate the same physics from the same
/// EwaldParameters; the serve layer and the example CLIs go through here so
/// a run is switchable with a single `--backend` flag.

#include <memory>

#include "core/backend.hpp"
#include "core/force_field.hpp"
#include "host/mdm_force_field.hpp"
#include "util/thread_pool.hpp"

namespace mdm::host {

/// Build the force field for `backend` from the MDM configuration. The
/// native backend consumes the Ewald and Tosi-Fumi parts of the config (the
/// mdgrape/wine hardware shapes have no native counterpart) and keeps the
/// emulator's plain-truncation short-range convention, so the two backends
/// are directly comparable. `pool` is forwarded (may be nullptr).
std::unique_ptr<ForceField> make_backend_force_field(
    Backend backend, const MdmForceFieldConfig& config, double box,
    ThreadPool* pool = nullptr);

}  // namespace mdm::host
