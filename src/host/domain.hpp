#pragma once

/// \file domain.hpp
/// Spatial domain decomposition of the cubic box for the real-space
/// processes (sec. 4: "The simulation box is divided into 16 domains, and
/// one process for real-space part performs all the calculation in each
/// domain"). Provides the ownership map, cuboid bounds and the periodic
/// point-to-domain distance used to build halo exchanges.

#include "util/vec3.hpp"

namespace mdm::host {

class DomainGrid {
 public:
  /// Split `box` into nx x ny x nz cuboids.
  DomainGrid(int nx, int ny, int nz, double box);

  /// Near-cubic factorization of `processes` (e.g. 16 -> 4 x 2 x 2).
  static DomainGrid for_processes(int processes, double box);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int domain_count() const { return nx_ * ny_ * nz_; }
  double box() const { return box_; }

  /// Owning domain of a (possibly unwrapped) position.
  int domain_of(const Vec3& r) const;

  /// Cuboid [lo, hi) of domain d.
  void bounds(int d, Vec3& lo, Vec3& hi) const;

  /// Minimum-image distance from a point to the cuboid of domain d
  /// (0 when inside). Used to decide which particles a neighbouring process
  /// needs for its r_cut sphere.
  double distance_to_domain(const Vec3& r, int d) const;

 private:
  int nx_, ny_, nz_;
  double box_;
};

}  // namespace mdm::host
