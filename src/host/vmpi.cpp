#include "host/vmpi.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>

#include "host/fault_injector.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace mdm::vmpi {
namespace {

struct FabricCounters {
  obs::Counter& sent;
  obs::Counter& dropped;
  obs::Counter& retried;
  obs::Counter& lost;
  obs::Counter& duplicated;
  obs::Counter& duplicates_discarded;
  obs::Counter& delayed;
  obs::Counter& leaked;
  obs::Counter& rank_failures;
  obs::Counter& peer_wakeups;

  static FabricCounters& get() {
    auto& reg = obs::Registry::global();
    static FabricCounters counters{
        reg.counter("vmpi.messages_sent"),
        reg.counter("vmpi.messages_dropped"),
        reg.counter("vmpi.messages_retried"),
        reg.counter("vmpi.messages_lost"),
        reg.counter("vmpi.messages_duplicated"),
        reg.counter("vmpi.duplicates_discarded"),
        reg.counter("vmpi.messages_delayed"),
        reg.counter("vmpi.leaked_messages"),
        reg.counter("vmpi.rank_failures"),
        reg.counter("vmpi.peer_failure_wakeups"),
    };
    return counters;
  }
};

/// Salt shared by every member of a subgroup: a function of the member
/// list only, a nonzero multiple of 4 below 2^20 (see collective_tag).
int group_salt(const std::vector<int>& world_ranks) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const int r : world_ranks) {
    h ^= static_cast<std::uint64_t>(r) + 1;
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % 262139 + 1) * 4;
}

}  // namespace

World::World(int size) : size_(size) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  mailboxes_.reserve(size);
  wait_states_.reserve(size);
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    wait_states_.push_back(std::make_unique<WaitState>());
  }
  if (const char* t = std::getenv("MDM_VMPI_TIMEOUT_MS")) {
    const long ms = std::strtol(t, nullptr, 10);
    if (ms > 0) recv_timeout_ = std::chrono::milliseconds(ms);
  }
}

void World::mark_failed(int world_rank) {
  int expected = -1;
  if (failed_rank_.compare_exchange_strong(expected, world_rank,
                                           std::memory_order_acq_rel)) {
    FabricCounters::get().rank_failures.add(1);
    MDM_LOG_ERROR("vmpi: rank %d failed; poisoning %d mailboxes and the "
                  "world barrier",
                  world_rank, size_);
  }
  // Wake every blocked thread. Taking each lock before notifying ensures a
  // waiter either observes the flag in its predicate before sleeping or
  // receives this notification.
  for (auto& mb : mailboxes_) {
    { std::lock_guard lock(mb->mutex); }
    mb->cv.notify_all();
  }
  { std::lock_guard lock(barrier_mutex_); }
  barrier_cv_.notify_all();
}

std::string World::peer_failure_message(int waiting_rank) const {
  return "vmpi: peer rank " + std::to_string(failed_rank()) +
         " failed while rank " + std::to_string(waiting_rank) +
         " was blocked on the fabric";
}

std::string World::timeout_message(int waiting_rank, int source,
                                   int tag) const {
  std::string msg = "vmpi: recv timeout after " +
                    std::to_string(recv_timeout_.count()) + " ms: rank " +
                    std::to_string(waiting_rank) + " waits on (src=" +
                    std::to_string(source) + ", tag=" + std::to_string(tag) +
                    "); wait graph:";
  bool any = false;
  for (int r = 0; r < size_; ++r) {
    const auto& ws = *wait_states_[r];
    if (!ws.waiting.load(std::memory_order_acquire)) continue;
    any = true;
    const int src = ws.source.load(std::memory_order_relaxed);
    if (src == WaitState::kWaitBarrier) {
      msg += " rank " + std::to_string(r) + " <- barrier;";
    } else {
      msg += " rank " + std::to_string(r) + " <- (src=" +
             std::to_string(src) + ", tag=" +
             std::to_string(ws.tag.load(std::memory_order_relaxed)) + ");";
    }
  }
  if (!any) msg += " (no other rank is blocked)";
  return msg;
}

void World::drain_mailboxes(bool run_failed) {
  auto& counters = FabricCounters::get();
  for (int dest = 0; dest < size_; ++dest) {
    auto& mb = *mailboxes_[dest];
    for (const auto& [key, channel] : mb.channels) {
      for (const auto& msg : channel.queue) {
        counters.leaked.add(1);
        // After a rank failure undelivered traffic is expected; on a clean
        // run it marks a tag-mismatch or missing-recv bug.
        if (run_failed) {
          MDM_LOG_DEBUG(
              "vmpi: undelivered message after failure: dest=%d src=%d "
              "tag=%d (%zu bytes)",
              dest, key.first, key.second, msg.bytes.size());
        } else {
          MDM_LOG_WARN(
              "vmpi: leaked message: dest=%d src=%d tag=%d (%zu bytes) "
              "was never received",
              dest, key.first, key.second, msg.bytes.size());
        }
      }
    }
    mb.channels.clear();
  }
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(size_);
  // Peer-failure echoes are secondary: World::run rethrows the original.
  std::vector<char> secondary(size_, 0);
  threads.reserve(size_);
  // The launching thread's ambient TraceContext flows into every rank
  // thread, so one job's spans across all ranks share a trace id; rank
  // labels route each thread's spans/events to its "rank N" track.
  const obs::TraceContext trace_ctx = obs::TraceContext::current();
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &errors, &secondary,
                          trace_ctx] {
      obs::TraceContextScope trace_scope(trace_ctx);
      obs::Trace::set_thread_rank(r);
      obs::FlightRecorder::set_thread_rank(r);
      Communicator comm(this, r, size_);
      try {
        rank_main(comm);
      } catch (const PeerFailedError&) {
        errors[r] = std::current_exception();
        secondary[r] = 1;
        mark_failed(r);
      } catch (...) {
        errors[r] = std::current_exception();
        mark_failed(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  const bool run_failed = failed_rank() >= 0;
  // Reset collective and failure state and drain mailboxes so a World can
  // be reused.
  barrier_count_ = 0;
  drain_mailboxes(run_failed);
  failed_rank_.store(-1, std::memory_order_release);
  for (int r = 0; r < size_; ++r)
    if (errors[r] && !secondary[r]) std::rethrow_exception(errors[r]);
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

Communicator Communicator::subgroup(
    const std::vector<int>& world_ranks) const {
  int my_index = -1;
  for (std::size_t i = 0; i < world_ranks.size(); ++i) {
    const int wr = world_ranks[i];
    if (wr < 0 || wr >= static_cast<int>(world_->mailboxes_.size()))
      throw std::invalid_argument("vmpi: subgroup rank out of range");
    if (wr == world_rank_) my_index = static_cast<int>(i);
  }
  if (my_index < 0)
    throw std::invalid_argument("vmpi: calling rank not in subgroup");
  Communicator sub(world_, my_index, static_cast<int>(world_ranks.size()));
  sub.world_rank_ = world_rank_;
  sub.group_ = world_ranks;
  sub.collective_salt_ = group_salt(world_ranks);
  return sub;
}

void Communicator::send_bytes(int dest, int tag, const std::byte* data,
                              std::size_t size) {
  if (dest < 0 || dest >= size_) throw std::invalid_argument("vmpi: bad dest");
  const int dest_world = to_world(dest);
  auto& counters = FabricCounters::get();

  auto action = FaultInjector::MessageAction::kDeliver;
  if (auto* injector = world_->injector_) {
    action = injector->on_message(world_rank_, dest_world, tag);
    int attempt = 0;
    while (action == FaultInjector::MessageAction::kDrop) {
      counters.dropped.add(1);
      if (attempt >= world_->send_max_retries_) {
        counters.lost.add(1);
        MDM_LOG_WARN(
            "vmpi: message src=%d dest=%d tag=%d (%zu bytes) permanently "
            "lost after %d attempts",
            world_rank_, dest_world, tag, size, attempt + 1);
        return;
      }
      // Bounded exponential backoff before the retransmission.
      auto backoff = world_->send_backoff_ * (1 << std::min(attempt, 10));
      backoff = std::min(backoff,
                         std::chrono::microseconds(std::chrono::milliseconds(5)));
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      ++attempt;
      counters.retried.add(1);
      MDM_LOG_DEBUG("vmpi: retransmitting src=%d dest=%d tag=%d (attempt %d)",
                    world_rank_, dest_world, tag, attempt + 1);
      action = injector->on_message(world_rank_, dest_world, tag);
    }
    if (action == FaultInjector::MessageAction::kDelay) {
      counters.delayed.add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  auto& mb = *world_->mailboxes_[dest_world];
  const std::uint64_t trace_id = obs::TraceContext::current().trace_id;
  std::vector<std::byte> payload(data, data + size);
  {
    std::lock_guard lock(mb.mutex);
    // Messages are keyed by the sender's world rank; sequence numbers are
    // per channel so duplicated deliveries can be discarded on receive.
    auto& channel = mb.channels[{world_rank_, tag}];
    const std::uint64_t seq = channel.send_seq++;
    if (action == FaultInjector::MessageAction::kDuplicate) {
      counters.duplicated.add(1);
      channel.queue.push_back({seq, trace_id, payload});
    }
    channel.queue.push_back({seq, trace_id, std::move(payload)});
  }
  counters.sent.add(1);
  obs::FlightRecorder::record(obs::FlightKind::kSend, nullptr, dest_world,
                              tag);
  mb.cv.notify_all();
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag) {
  if (source < 0 || source >= size_)
    throw std::invalid_argument("vmpi: bad source");
  auto& mb = *world_->mailboxes_[world_rank_];
  const auto key = std::pair{to_world(source), tag};

  auto& ws = *world_->wait_states_[world_rank_];
  ws.source.store(key.first, std::memory_order_relaxed);
  ws.tag.store(tag, std::memory_order_relaxed);
  ws.waiting.store(true, std::memory_order_release);
  struct WaitGuard {
    World::WaitState& ws;
    ~WaitGuard() { ws.waiting.store(false, std::memory_order_release); }
  } guard{ws};

  const bool bounded = world_->recv_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        world_->recv_timeout_;
  std::unique_lock lock(mb.mutex);
  for (;;) {
    const auto ready = [&] {
      if (world_->failed_rank() >= 0) return true;
      const auto it = mb.channels.find(key);
      return it != mb.channels.end() && !it->second.queue.empty();
    };
    bool woke = true;
    if (bounded) {
      woke = mb.cv.wait_until(lock, deadline, ready);
    } else {
      mb.cv.wait(lock, ready);
    }
    if (!woke) {
      lock.unlock();
      throw RecvTimeoutError(
          world_->timeout_message(world_rank_, key.first, tag));
    }
    if (world_->failed_rank() >= 0) {
      lock.unlock();
      FabricCounters::get().peer_wakeups.add(1);
      throw PeerFailedError(world_->failed_rank(),
                            world_->peer_failure_message(world_rank_));
    }
    auto& channel = mb.channels[key];
    auto msg = std::move(channel.queue.front());
    channel.queue.pop_front();
    if (msg.seq < channel.recv_expected) {
      // Retransmitted/duplicated copy of a message already delivered.
      FabricCounters::get().duplicates_discarded.add(1);
      continue;
    }
    channel.recv_expected = msg.seq + 1;
    lock.unlock();
    // Attributed to the sender's trace id from the message header, which
    // stitches cross-rank causality into the flight timeline.
    obs::FlightRecorder::record_trace(obs::FlightKind::kRecv, msg.trace_id,
                                      nullptr, key.first, tag);
    return std::move(msg.bytes);
  }
}

void Communicator::barrier() {
  if (!group_.empty()) {
    // Token barrier over the subgroup: gather-to-0 then release. Built on
    // recv, so peer-failure poisoning and recv deadlines apply.
    const int t = collective_tag(kBarrierTag);
    if (rank_ == 0) {
      for (int r = 1; r < size_; ++r) recv_value<int>(r, t);
      for (int r = 1; r < size_; ++r) send_value<int>(r, t + 1, 0);
    } else {
      send_value<int>(0, t, 0);
      recv_value<int>(0, t + 1);
    }
    return;
  }
  auto& ws = *world_->wait_states_[world_rank_];
  ws.source.store(World::WaitState::kWaitBarrier, std::memory_order_relaxed);
  ws.tag.store(0, std::memory_order_relaxed);
  ws.waiting.store(true, std::memory_order_release);
  struct WaitGuard {
    World::WaitState& ws;
    ~WaitGuard() { ws.waiting.store(false, std::memory_order_release); }
  } guard{ws};

  std::unique_lock lock(world_->barrier_mutex_);
  const auto generation = world_->barrier_generation_;
  if (++world_->barrier_count_ == size_) {
    world_->barrier_count_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
  } else {
    world_->barrier_cv_.wait(lock, [&] {
      return world_->barrier_generation_ != generation ||
             world_->failed_rank() >= 0;
    });
    if (world_->barrier_generation_ == generation) {
      // Woken by failure poisoning, not by barrier completion.
      --world_->barrier_count_;
      lock.unlock();
      FabricCounters::get().peer_wakeups.add(1);
      throw PeerFailedError(world_->failed_rank(),
                            world_->peer_failure_message(world_rank_));
    }
  }
}

}  // namespace mdm::vmpi
