#include "host/vmpi.hpp"

#include <memory>
#include <thread>

namespace mdm::vmpi {

World::World(int size) : size_(size) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  mailboxes_.reserve(size);
  for (int i = 0; i < size; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(size_);
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &errors] {
      Communicator comm(this, r, size_);
      try {
        rank_main(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Reset collective state and drain mailboxes so a World can be reused.
  barrier_count_ = 0;
  for (auto& mb : mailboxes_) mb->queues.clear();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

Communicator Communicator::subgroup(
    const std::vector<int>& world_ranks) const {
  int my_index = -1;
  for (std::size_t i = 0; i < world_ranks.size(); ++i) {
    const int wr = world_ranks[i];
    if (wr < 0 || wr >= static_cast<int>(world_->mailboxes_.size()))
      throw std::invalid_argument("vmpi: subgroup rank out of range");
    if (wr == world_rank_) my_index = static_cast<int>(i);
  }
  if (my_index < 0)
    throw std::invalid_argument("vmpi: calling rank not in subgroup");
  Communicator sub(world_, my_index, static_cast<int>(world_ranks.size()));
  sub.world_rank_ = world_rank_;
  sub.group_ = world_ranks;
  return sub;
}

void Communicator::send_bytes(int dest, int tag, const std::byte* data,
                              std::size_t size) {
  if (dest < 0 || dest >= size_) throw std::invalid_argument("vmpi: bad dest");
  auto& mb = *world_->mailboxes_[to_world(dest)];
  std::vector<std::byte> payload(data, data + size);
  {
    std::lock_guard lock(mb.mutex);
    // Messages are keyed by the sender's world rank.
    mb.queues[{world_rank_, tag}].push_back(std::move(payload));
  }
  mb.cv.notify_all();
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag) {
  if (source < 0 || source >= size_)
    throw std::invalid_argument("vmpi: bad source");
  auto& mb = *world_->mailboxes_[world_rank_];
  std::unique_lock lock(mb.mutex);
  const auto key = std::pair{to_world(source), tag};
  mb.cv.wait(lock, [&] {
    const auto it = mb.queues.find(key);
    return it != mb.queues.end() && !it->second.empty();
  });
  auto& queue = mb.queues[key];
  auto payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Communicator::barrier() {
  if (!group_.empty()) {
    // Token barrier over the subgroup: gather-to-0 then release.
    if (rank_ == 0) {
      for (int r = 1; r < size_; ++r) recv_value<int>(r, kBarrierTag);
      for (int r = 1; r < size_; ++r) send_value<int>(r, kBarrierTag + 1, 0);
    } else {
      send_value<int>(0, kBarrierTag, 0);
      recv_value<int>(0, kBarrierTag + 1);
    }
    return;
  }
  std::unique_lock lock(world_->barrier_mutex_);
  const auto generation = world_->barrier_generation_;
  if (++world_->barrier_count_ == size_) {
    world_->barrier_count_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
  } else {
    world_->barrier_cv_.wait(lock, [&] {
      return world_->barrier_generation_ != generation;
    });
  }
}

}  // namespace mdm::vmpi
