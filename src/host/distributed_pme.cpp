#include "host/distributed_pme.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace mdm::host {
namespace {

constexpr double kPi = std::numbers::pi;

/// Point-to-point tags on the wavenumber subgroup. Must avoid the
/// parallel-app tags (100..701, 9001/9002), the WINE-2 library's 7001+
/// block and the native structure-factor tags 7101/7103.
enum PmeTag : int {
  kGhostSpread = 7301,
  kTransposeFwd = 7303,
  kTransposeBack = 7305,
  kGhostPhi = 7307,
  kPmeReduce = 7309,
};

}  // namespace

PmeSlabLayout PmeSlabLayout::create(int grid, int order, int ranks) {
  if (ranks < 1)
    throw std::invalid_argument(
        "distributed PME: need >= 1 wavenumber rank (got " +
        std::to_string(ranks) + ")");
  if (order < 2 || order > pme::kMaxOrder)
    throw std::invalid_argument("distributed PME: B-spline order " +
                                std::to_string(order) +
                                " outside [2, 10]");
  if (grid < 1 || grid % ranks != 0)
    throw std::invalid_argument(
        "distributed PME: mesh K=" + std::to_string(grid) +
        " is not divisible into z-slabs over W=" + std::to_string(ranks) +
        " wavenumber ranks (K % W must be 0)");
  PmeSlabLayout layout;
  layout.grid = grid;
  layout.order = order;
  layout.ranks = ranks;
  layout.planes = grid / ranks;
  return layout;
}

int PmeSlabLayout::base_plane(double z, double box) const {
  const double u = wrap_coordinate(z, box) / box * grid;
  int base = static_cast<int>(std::floor(u));
  // wrap_coordinate returns [0, box), so base is already in [0, K); the
  // modulo only guards the u == K rounding edge.
  return ((base % grid) + grid) % grid;
}

DistributedPmeRank::DistributedPmeRank(const PmeParameters& params,
                                       double box,
                                       const vmpi::Communicator& comm)
    : params_(params),
      box_(box),
      comm_(comm),
      layout_(PmeSlabLayout::create(params.grid, params.order, comm.size())),
      b2_(pme::axis_b2(params.grid, params.order)) {
  first_ = layout_.first_plane(comm_.rank());
  ghost_ = layout_.ghost_planes();
  const std::size_t k = static_cast<std::size_t>(layout_.grid);
  const std::size_t s = static_cast<std::size_t>(layout_.planes);
  // Influence function over this rank's y-slab, matching the transposed
  // buffer layout [(y_local*K + x)*K + z].
  theta_.resize(s * k * k);
  for (std::size_t yl = 0; yl < s; ++yl)
    for (std::size_t x = 0; x < k; ++x)
      for (std::size_t z = 0; z < k; ++z)
        theta_[(yl * k + x) * k + z] = pme::influence_theta(
            static_cast<int>(x), first_ + static_cast<int>(yl),
            static_cast<int>(z), layout_.grid, params_.alpha, b2_);
  accum_.resize((ghost_ + layout_.planes) * k * k);
  slab_.resize(s * k * k);
  t_.resize(s * k * k);
  phi_.resize((ghost_ + layout_.planes) * k * k);
  plane_buf_.resize(k * k);
  pack_buf_.resize(s * s * k);
}

void DistributedPmeRank::spread(const std::vector<Vec3>& positions,
                                const std::vector<double>& charges) {
  const int k = layout_.grid;
  const int p = params_.order;
  spline_.resize(positions.size());
  std::fill(accum_.begin(), accum_.end(), 0.0);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    pme::SplineWeights& s = spline_[i];
    pme::spline_weights(positions[i], box_, k, p, s);
    const double q = charges[i];
    for (int jz = 0; jz < p; ++jz) {
      const std::size_t l = static_cast<std::size_t>(
          window_offset(s.base[2], jz));
      double* plane = accum_.data() + l * k * k;
      for (int jy = 0; jy < p; ++jy) {
        const int gy = ((s.base[1] - jy) % k + k) % k;
        const double wyz = s.w[1][jy] * s.w[2][jz] * q;
        for (int jx = 0; jx < p; ++jx) {
          const int gx = ((s.base[0] - jx) % k + k) % k;
          plane[gy * k + gx] += wyz * s.w[0][jx];
        }
      }
    }
  }
}

void DistributedPmeRank::exchange_ghost_spread() {
  const int k = layout_.grid;
  const int w = comm_.rank();
  const std::size_t plane_size = static_cast<std::size_t>(k) * k;
  // Ship every ghost plane to its owner (never self: the ghost region lies
  // strictly below the owned slab whenever it is non-empty).
  for (int j = 1; j <= ghost_; ++j) {
    const int gz = ((first_ - j) % k + k) % k;
    const double* src = accum_.data() + (ghost_ - j) * plane_size;
    plane_buf_.assign(src, src + plane_size);
    comm_.send(layout_.owner_of_plane(gz), kGhostSpread, plane_buf_);
  }
  // Receive the matching contributions into the owned slab. Both sides
  // enumerate (source rank, j) from the layout alone, in the same order, so
  // the messages need no headers.
  for (int src = 0; src < layout_.ranks; ++src) {
    if (src == w) continue;
    const int src_first = layout_.first_plane(src);
    for (int j = 1; j <= ghost_; ++j) {
      const int gz = ((src_first - j) % k + k) % k;
      if (layout_.owner_of_plane(gz) != w) continue;
      const auto part = comm_.recv<double>(src, kGhostSpread);
      double* dst = accum_.data() +
                    (ghost_ + gz - first_) * plane_size;
      for (std::size_t i = 0; i < plane_size; ++i) dst[i] += part[i];
    }
  }
  // Owned slab (real charge) -> complex FFT buffer.
  const double* owned = accum_.data() + ghost_ * plane_size;
  for (std::size_t i = 0; i < slab_.size(); ++i)
    slab_[i] = Complex{owned[i], 0.0};
}

void DistributedPmeRank::transform_xy() {
  const std::size_t k = static_cast<std::size_t>(layout_.grid);
  for (int zl = 0; zl < layout_.planes; ++zl) {
    Complex* plane = slab_.data() + static_cast<std::size_t>(zl) * k * k;
    for (std::size_t y = 0; y < k; ++y)
      fft_strided(plane + y * k, k, 1, false);
    for (std::size_t x = 0; x < k; ++x)
      fft_strided(plane + x, k, k, false);
  }
}

void DistributedPmeRank::transpose_forward() {
  const std::size_t k = static_cast<std::size_t>(layout_.grid);
  const std::size_t s = static_cast<std::size_t>(layout_.planes);
  const int w = comm_.rank();
  for (int d = 0; d < layout_.ranks; ++d) {
    if (d == w) continue;
    std::size_t idx = 0;
    for (std::size_t yl = 0; yl < s; ++yl) {
      const std::size_t y = static_cast<std::size_t>(d) * s + yl;
      for (std::size_t x = 0; x < k; ++x)
        for (std::size_t zl = 0; zl < s; ++zl)
          pack_buf_[idx++] = slab_[(zl * k + y) * k + x];
    }
    comm_.send(d, kTransposeFwd, pack_buf_);
  }
  // Own block, no message.
  for (std::size_t yl = 0; yl < s; ++yl) {
    const std::size_t y = static_cast<std::size_t>(w) * s + yl;
    for (std::size_t x = 0; x < k; ++x)
      for (std::size_t zl = 0; zl < s; ++zl)
        t_[(yl * k + x) * k + static_cast<std::size_t>(w) * s + zl] =
            slab_[(zl * k + y) * k + x];
  }
  for (int src = 0; src < layout_.ranks; ++src) {
    if (src == w) continue;
    const auto part = comm_.recv<Complex>(src, kTransposeFwd);
    std::size_t idx = 0;
    for (std::size_t yl = 0; yl < s; ++yl)
      for (std::size_t x = 0; x < k; ++x)
        for (std::size_t zl = 0; zl < s; ++zl)
          t_[(yl * k + x) * k + static_cast<std::size_t>(src) * s + zl] =
              part[idx++];
  }
}

double DistributedPmeRank::convolve() {
  // Full z lines are contiguous in the transposed layout.
  const std::size_t k = static_cast<std::size_t>(layout_.grid);
  const std::size_t s = static_cast<std::size_t>(layout_.planes);
  for (std::size_t line = 0; line < s * k; ++line)
    fft_strided(t_.data() + line * k, k, 1, false);

  // A = F(Q); energy partial = sum theta |A|^2 over the owned y-slab and
  // G-hat = theta conj(A), exactly the serial solver's convolution.
  double energy = 0.0;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    const double theta = theta_[i];
    const Complex a = t_[i];
    energy += theta * std::norm(a);
    t_[i] = theta * std::conj(a);
  }

  // Second forward transform, z axis first (still contiguous here).
  for (std::size_t line = 0; line < s * k; ++line)
    fft_strided(t_.data() + line * k, k, 1, false);
  return energy;
}

void DistributedPmeRank::transpose_backward() {
  const std::size_t k = static_cast<std::size_t>(layout_.grid);
  const std::size_t s = static_cast<std::size_t>(layout_.planes);
  const int w = comm_.rank();
  for (int d = 0; d < layout_.ranks; ++d) {
    if (d == w) continue;
    std::size_t idx = 0;
    for (std::size_t zl = 0; zl < s; ++zl) {
      const std::size_t z = static_cast<std::size_t>(d) * s + zl;
      for (std::size_t yl = 0; yl < s; ++yl)
        for (std::size_t x = 0; x < k; ++x)
          pack_buf_[idx++] = t_[(yl * k + x) * k + z];
    }
    comm_.send(d, kTransposeBack, pack_buf_);
  }
  for (std::size_t zl = 0; zl < s; ++zl) {
    const std::size_t z = static_cast<std::size_t>(w) * s + zl;
    for (std::size_t yl = 0; yl < s; ++yl) {
      const std::size_t y = static_cast<std::size_t>(w) * s + yl;
      for (std::size_t x = 0; x < k; ++x)
        slab_[(zl * k + y) * k + x] = t_[(yl * k + x) * k + z];
    }
  }
  for (int src = 0; src < layout_.ranks; ++src) {
    if (src == w) continue;
    const auto part = comm_.recv<Complex>(src, kTransposeBack);
    std::size_t idx = 0;
    for (std::size_t zl = 0; zl < s; ++zl)
      for (std::size_t yl = 0; yl < s; ++yl) {
        const std::size_t y = static_cast<std::size_t>(src) * s + yl;
        for (std::size_t x = 0; x < k; ++x)
          slab_[(zl * k + y) * k + x] = part[idx++];
      }
  }
}

void DistributedPmeRank::exchange_ghost_phi() {
  const int k = layout_.grid;
  const int w = comm_.rank();
  const std::size_t plane_size = static_cast<std::size_t>(k) * k;
  // phi is real by symmetry (the serial solver reads .real() too); the
  // owned window planes come straight from the slab.
  for (int zl = 0; zl < layout_.planes; ++zl) {
    const Complex* src = slab_.data() + zl * plane_size;
    double* dst = phi_.data() + (ghost_ + zl) * plane_size;
    for (std::size_t i = 0; i < plane_size; ++i) dst[i] = src[i].real();
  }
  // Mirror of the spread exchange, reversed: the owner of each plane in
  // rank r's ghost window sends it to r. Same layout-determined order on
  // both sides.
  for (int dst = 0; dst < layout_.ranks; ++dst) {
    if (dst == w) continue;
    const int dst_first = layout_.first_plane(dst);
    for (int j = 1; j <= ghost_; ++j) {
      const int gz = ((dst_first - j) % k + k) % k;
      if (layout_.owner_of_plane(gz) != w) continue;
      const double* src = phi_.data() +
                          (ghost_ + gz - first_) * plane_size;
      plane_buf_.assign(src, src + plane_size);
      comm_.send(dst, kGhostPhi, plane_buf_);
    }
  }
  for (int j = 1; j <= ghost_; ++j) {
    const int gz = ((first_ - j) % k + k) % k;
    const auto part =
        comm_.recv<double>(layout_.owner_of_plane(gz), kGhostPhi);
    std::copy(part.begin(), part.end(),
              phi_.begin() + (ghost_ - j) * plane_size);
  }
}

double DistributedPmeRank::gather(const std::vector<Vec3>& positions,
                                  const std::vector<double>& charges,
                                  double energy_partial,
                                  std::vector<Vec3>& forces) {
  const int k = layout_.grid;
  const int p = params_.order;
  const std::size_t plane_size = static_cast<std::size_t>(k) * k;
  const double phi_pref = units::kCoulomb / (kPi * box_);
  const double scale = static_cast<double>(k) / box_;

  forces.assign(positions.size(), Vec3{});
  Vec3 net;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const pme::SplineWeights& s = spline_[i];
    Vec3 f;
    for (int jz = 0; jz < p; ++jz) {
      const double* plane =
          phi_.data() + window_offset(s.base[2], jz) * plane_size;
      for (int jy = 0; jy < p; ++jy) {
        const int gy = ((s.base[1] - jy) % k + k) % k;
        for (int jx = 0; jx < p; ++jx) {
          const int gx = ((s.base[0] - jx) % k + k) % k;
          const double phi = phi_pref * plane[gy * k + gx];
          f.x += s.dw[0][jx] * s.w[1][jy] * s.w[2][jz] * phi;
          f.y += s.w[0][jx] * s.dw[1][jy] * s.w[2][jz] * phi;
          f.z += s.w[0][jx] * s.w[1][jy] * s.dw[2][jz] * phi;
        }
      }
    }
    forces[i] = (-charges[i] * scale) * f;
    net += forces[i];
  }

  // One combined reduction: energy partial, net reciprocal force and the
  // particle count for the serial solver's mean-force momentum fix.
  std::vector<double> red{energy_partial, net.x, net.y, net.z,
                          static_cast<double>(positions.size())};
  comm_.allreduce_sum(red, kPmeReduce);
  const double energy = red[0] * units::kCoulomb / (2.0 * kPi * box_);
  if (red[4] > 0.0) {
    const Vec3 mean{red[1] / red[4], red[2] / red[4], red[3] / red[4]};
    for (auto& f : forces) f -= mean;
  }
  return energy;
}

double DistributedPmeRank::step(const std::vector<Vec3>& positions,
                                const std::vector<double>& charges,
                                std::vector<Vec3>& forces) {
  if (positions.size() != charges.size())
    throw std::invalid_argument("distributed PME: positions/charges mismatch");
  spread(positions, charges);
  exchange_ghost_spread();
  transform_xy();
  transpose_forward();
  const double energy_partial = convolve();
  transpose_backward();
  transform_xy();
  exchange_ghost_phi();
  return gather(positions, charges, energy_partial, forces);
}

}  // namespace mdm::host
