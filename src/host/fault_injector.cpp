#include "host/fault_injector.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mdm::vmpi {
namespace {

int parse_int(std::string_view v, std::string_view clause) {
  try {
    return std::stoi(std::string(v));
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad integer '" + std::string(v) +
                                "' in clause '" + std::string(clause) + "'");
  }
}

double parse_double(std::string_view v, std::string_view clause) {
  try {
    return std::stod(std::string(v));
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad number '" + std::string(v) +
                                "' in clause '" + std::string(clause) + "'");
  }
}

FaultRule::Kind parse_kind(std::string_view name, std::string_view clause) {
  if (name == "drop") return FaultRule::Kind::kDropMessage;
  if (name == "dup") return FaultRule::Kind::kDuplicateMessage;
  if (name == "delay") return FaultRule::Kind::kDelayMessage;
  if (name == "failrank") return FaultRule::Kind::kFailRank;
  if (name == "failboard") return FaultRule::Kind::kFailBoard;
  throw std::invalid_argument("fault spec: unknown kind '" +
                              std::string(name) + "' in clause '" +
                              std::string(clause) + "'");
}

}  // namespace

std::unique_ptr<FaultInjector> FaultInjector::from_env() {
  const char* spec = std::getenv("MDM_FAULT_SPEC");
  if (!spec || !*spec) return nullptr;
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("MDM_FAULT_SEED"))
    seed = std::strtoull(s, nullptr, 10);
  auto injector = std::make_unique<FaultInjector>(seed);
  injector->parse_spec(spec);
  return injector;
}

void FaultInjector::add_rule(const FaultRule& rule) {
  std::lock_guard lock(mutex_);
  rules_.push_back(rule);
  fired_.push_back(0);
}

void FaultInjector::parse_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const auto clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    const auto colon = clause.find(':');
    FaultRule rule;
    rule.kind = parse_kind(
        colon == std::string_view::npos ? clause : clause.substr(0, colon),
        clause);

    std::size_t kpos = colon == std::string_view::npos ? clause.size()
                                                       : colon + 1;
    while (kpos < clause.size()) {
      std::size_t kend = clause.find(',', kpos);
      if (kend == std::string_view::npos) kend = clause.size();
      const auto kv = clause.substr(kpos, kend - kpos);
      kpos = kend + 1;
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string_view::npos)
        throw std::invalid_argument("fault spec: expected key=value, got '" +
                                    std::string(kv) + "' in clause '" +
                                    std::string(clause) + "'");
      const auto key = kv.substr(0, eq);
      const auto value = kv.substr(eq + 1);
      if (key == "src") rule.src = parse_int(value, clause);
      else if (key == "dest") rule.dest = parse_int(value, clause);
      else if (key == "tag") rule.tag = parse_int(value, clause);
      else if (key == "count") rule.count = parse_int(value, clause);
      else if (key == "prob") rule.probability = parse_double(value, clause);
      else if (key == "rank") rule.rank = parse_int(value, clause);
      else if (key == "board") rule.board = parse_int(value, clause);
      else if (key == "step") rule.step = parse_int(value, clause);
      else
        throw std::invalid_argument("fault spec: unknown key '" +
                                    std::string(key) + "' in clause '" +
                                    std::string(clause) + "'");
    }
    add_rule(rule);
  }
}

bool FaultInjector::rule_fires(FaultRule& rule) {
  const auto index = static_cast<std::size_t>(&rule - rules_.data());
  if (rule.count >= 0 && fired_[index] >= rule.count) return false;
  if (rule.probability < 1.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) >= rule.probability) return false;
  }
  ++fired_[index];
  ++injected_;
  return true;
}

FaultInjector::MessageAction FaultInjector::on_message(int src, int dest,
                                                       int tag) {
  std::lock_guard lock(mutex_);
  for (auto& rule : rules_) {
    if (rule.kind != FaultRule::Kind::kDropMessage &&
        rule.kind != FaultRule::Kind::kDuplicateMessage &&
        rule.kind != FaultRule::Kind::kDelayMessage)
      continue;
    if (rule.src >= 0 && rule.src != src) continue;
    if (rule.dest >= 0 && rule.dest != dest) continue;
    if (rule.tag >= 0 && rule.tag != tag) continue;
    if (!rule_fires(rule)) continue;
    switch (rule.kind) {
      case FaultRule::Kind::kDropMessage: return MessageAction::kDrop;
      case FaultRule::Kind::kDuplicateMessage:
        return MessageAction::kDuplicate;
      default: return MessageAction::kDelay;
    }
  }
  return MessageAction::kDeliver;
}

bool FaultInjector::should_fail_rank(int rank, int step) {
  std::lock_guard lock(mutex_);
  for (auto& rule : rules_) {
    if (rule.kind != FaultRule::Kind::kFailRank) continue;
    if (rule.rank >= 0 && rule.rank != rank) continue;
    if (rule.step >= 0 && rule.step != step) continue;
    if (rule_fires(rule)) return true;
  }
  return false;
}

int FaultInjector::board_to_fail(int rank, int step) {
  std::lock_guard lock(mutex_);
  for (auto& rule : rules_) {
    if (rule.kind != FaultRule::Kind::kFailBoard) continue;
    if (rule.rank >= 0 && rule.rank != rank) continue;
    if (rule.step >= 0 && rule.step != step) continue;
    if (rule_fires(rule)) return rule.board;
  }
  return -1;
}

std::uint64_t FaultInjector::injected_faults() const {
  std::lock_guard lock(mutex_);
  return injected_;
}

}  // namespace mdm::vmpi
