#pragma once

/// \file distributed_pme.hpp
/// Distributed smooth particle-mesh Ewald over the wavenumber process group
/// (DESIGN.md §12): the K^3 charge mesh is slab-decomposed along z across
/// the W k-space ranks, spreading/gathering use a deterministic ghost-plane
/// exchange, and the two forward 3D FFTs of the serial solver become
/// per-plane 2D transforms bracketing an all-to-all transpose plus a
/// contiguous z transform.
///
/// The spline weights and influence function come from ewald/pme_kernels, so
/// this engine evaluates EXACTLY the same arithmetic as the serial SmoothPme
/// and cross-validation between the two measures only the decomposition.
/// The distributed transform applies axes in the order (x, y) | transpose |
/// z, where the serial Grid3D::transform runs x, y, z over the whole cube;
/// the results are mathematically identical and differ only in
/// floating-point summation order (~1e-13 relative), so parity against the
/// serial solver is asserted at an RMS tolerance, not bit equality.

#include <vector>

#include "ewald/pme.hpp"
#include "ewald/pme_kernels.hpp"
#include "host/vmpi.hpp"
#include "util/fft.hpp"
#include "util/vec3.hpp"

namespace mdm::host {

/// z-slab layout of a K^3 PME mesh over W wavenumber ranks. Rank w owns the
/// contiguous planes [w * planes, (w + 1) * planes). B-spline support of
/// order p spreads DOWNWARD from a particle's base plane (pme_kernels.hpp
/// conventions), so the ghost region of a rank is the (p - 1) planes below
/// its slab.
struct PmeSlabLayout {
  int grid = 0;    ///< K, mesh points per axis
  int order = 0;   ///< B-spline order p
  int ranks = 0;   ///< W, wavenumber ranks sharing the mesh
  int planes = 0;  ///< K / W, z-planes owned per rank

  /// Validate and build a layout; throws std::invalid_argument with a
  /// configuration-error message naming the offending numbers (grid not
  /// divisible by the rank count, non-positive rank count, ...).
  static PmeSlabLayout create(int grid, int order, int ranks);

  int first_plane(int w) const { return w * planes; }
  int owner_of_plane(int z) const { return z / planes; }

  /// Ghost planes below a slab: p - 1, clamped so the window never exceeds
  /// the grid (the clamp only binds at W == 1, where the window is the
  /// whole mesh and spreading wraps inside it).
  int ghost_planes() const {
    const int g = order - 1;
    return g < grid - planes ? g : grid - planes;
  }

  /// Base spreading plane of a z coordinate — the same floor(wrap(z)/L * K)
  /// the spline kernel computes, so routing and spreading can never
  /// disagree about ownership.
  int base_plane(double z, double box) const;

  /// Wavenumber rank that owns a particle (the owner of its base plane).
  int route(double z, double box) const {
    return owner_of_plane(base_plane(z, box));
  }
};

/// Per-rank distributed PME engine, one instance per wavenumber rank.
/// Every rank calls step() collectively once per force evaluation with the
/// particles routed to it (PmeSlabLayout::route); ranks with no particles
/// still participate (all exchanges have layout-determined sizes, so empty
/// ranks cannot stall the transform).
class DistributedPmeRank {
 public:
  /// `params` must already be validated (validated_pme); `comm` is the
  /// wavenumber subgroup communicator (copied; cheap).
  DistributedPmeRank(const PmeParameters& params, double box,
                     const vmpi::Communicator& comm);

  /// One reciprocal-space evaluation. Fills `forces` (resized to match
  /// `positions`) with the reciprocal forces of the routed particles,
  /// mean-force-corrected over the GLOBAL particle count exactly like the
  /// serial solver. Returns the total reciprocal energy (identical on
  /// every rank). Collective over the wavenumber group.
  double step(const std::vector<Vec3>& positions,
              const std::vector<double>& charges, std::vector<Vec3>& forces);

  const PmeSlabLayout& layout() const { return layout_; }

 private:
  /// Offset of global plane (base - jz) mod K inside the local window of
  /// ghost_ + planes planes (ghost region first, owned slab after).
  int window_offset(int base, int jz) const {
    int l = base - jz - first_ + ghost_;
    if (l < 0) l += layout_.grid;  // wraps only when the window is the mesh
    return l;
  }

  void spread(const std::vector<Vec3>& positions,
              const std::vector<double>& charges);
  void exchange_ghost_spread();
  /// Per-plane 2D FFT of the owned slab (x lines then y lines, mirroring
  /// Grid3D::transform's axis order within a plane). Forward transform.
  void transform_xy();
  void transpose_forward();   ///< z-slabs -> y-slabs (z contiguous)
  void transpose_backward();  ///< y-slabs -> z-slabs
  /// theta * conj() convolution in the transposed layout; returns this
  /// rank's partial of sum theta |A|^2.
  double convolve();
  void exchange_ghost_phi();
  double gather(const std::vector<Vec3>& positions,
                const std::vector<double>& charges, double energy_partial,
                std::vector<Vec3>& forces);

  PmeParameters params_;
  double box_;
  vmpi::Communicator comm_;
  PmeSlabLayout layout_;
  int first_ = 0;  ///< first owned plane
  int ghost_ = 0;  ///< ghost planes below the slab

  std::vector<double> b2_;     ///< per-axis |b(n)|^2 (pme::axis_b2)
  std::vector<double> theta_;  ///< influence over the owned y-slab, t_ layout

  // Step scratch, reused between calls (no steady-state allocations).
  std::vector<pme::SplineWeights> spline_;  ///< per routed particle
  std::vector<double> accum_;  ///< (ghost+planes) x K x K spread window
  std::vector<Complex> slab_;  ///< planes x K x K, [(z_local*K + y)*K + x]
  std::vector<Complex> t_;     ///< planes x K x K, [(y_local*K + x)*K + z]
  std::vector<double> phi_;    ///< (ghost+planes) x K x K potential window
  std::vector<double> plane_buf_;   ///< one K x K plane (exchange scratch)
  std::vector<Complex> pack_buf_;   ///< transpose packing scratch
};

}  // namespace mdm::host
