#pragma once

/// \file wine2_mpi.hpp
/// The MPI-parallel WINE-2 library of the paper's Table 2. Sec. 4: "For
/// wavenumber-space part, the library routine for force calculation is
/// already parallelized with MPI, and users do not care any communication
/// between processes. We used 8 processes ... so each of them has about N/8
/// particle positions. All the processes call WINE-2 library routines with
/// the same parameters except the force calculation routine."
///
/// Each rank runs its share of boards on its local particles; the library
/// internally allreduces the structure factors (the only cross-process
/// coupling of eqs. 9-11) before the IDFT.
///
/// Failure semantics: the library inherits the vmpi fabric's failure model
/// (DESIGN.md "Failure model of the virtual fabric") — if a peer rank dies
/// mid-allreduce the call raises vmpi::PeerFailedError rather than
/// deadlocking, and its collective tags are salted per subgroup so they
/// cannot collide with concurrent world traffic.

#include "ewald/kvectors.hpp"
#include "host/vmpi.hpp"
#include "wine2/system.hpp"

namespace mdm::host {

class Wine2MpiLibrary {
 public:
  /// Table 2: "set the MPI community for wavenumber-space part". The
  /// communicator must span exactly the wavenumber process group.
  void wine2_set_MPI_community(vmpi::Communicator* comm);
  void wine2_allocate_board(int n_boards);
  void wine2_initialize_board(
      wine2::WineFormats formats = wine2::WineFormats::paper());
  void wine2_set_nn(std::size_t n_local_particles);

  /// Collective: every rank passes its local particles and receives its
  /// local wavenumber-space forces plus the (global) reciprocal energy.
  double calculate_force_and_pot_wavepart_nooffset(
      std::span<const Vec3> positions, std::span<const double> charges,
      double box, const KVectorTable& kvectors, std::span<Vec3> forces);

  void wine2_free_board();

 private:
  vmpi::Communicator* comm_ = nullptr;
  int requested_boards_ = 7;
  std::size_t expected_particles_ = 0;
  std::unique_ptr<wine2::Wine2System> system_;
};

}  // namespace mdm::host
