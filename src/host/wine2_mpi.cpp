#include "host/wine2_mpi.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace mdm::host {

void Wine2MpiLibrary::wine2_set_MPI_community(vmpi::Communicator* comm) {
  if (!comm) throw std::invalid_argument("wine2_set_MPI_community: null");
  comm_ = comm;
}

void Wine2MpiLibrary::wine2_allocate_board(int n_boards) {
  if (n_boards < 1)
    throw std::invalid_argument("wine2_allocate_board: n < 1");
  requested_boards_ = n_boards;
}

void Wine2MpiLibrary::wine2_initialize_board(wine2::WineFormats formats) {
  if (!comm_)
    throw std::logic_error(
        "wine2_initialize_board: call wine2_set_MPI_community first");
  wine2::SystemConfig config;
  config.clusters = requested_boards_;
  config.boards_per_cluster = 1;
  config.formats = formats;
  system_ = std::make_unique<wine2::Wine2System>(config);
}

void Wine2MpiLibrary::wine2_set_nn(std::size_t n_local_particles) {
  expected_particles_ = n_local_particles;
}

double Wine2MpiLibrary::calculate_force_and_pot_wavepart_nooffset(
    std::span<const Vec3> positions, std::span<const double> charges,
    double box, const KVectorTable& kvectors, std::span<Vec3> forces) {
  if (!system_)
    throw std::logic_error("wine2 library: boards not initialized");
  if (expected_particles_ != 0 && positions.size() != expected_particles_)
    throw std::invalid_argument(
        "wine2 library: rank " + std::to_string(comm_->world_rank()) +
        " passed " + std::to_string(positions.size()) +
        " particles but wine2_set_nn announced " +
        std::to_string(expected_particles_));

  system_->load_waves(kvectors);

  StructureFactors sf;
  if (positions.empty()) {
    sf.s.assign(kvectors.size(), 0.0);
    sf.c.assign(kvectors.size(), 0.0);
  } else {
    system_->set_particles(positions, charges, box);
    sf = system_->run_dft();
  }

  // The only cross-process coupling: structure factors are linear in the
  // particles, so the global S/C are element-wise sums. The communicator
  // salts these tags with its subgroup id, so the 7001+ range cannot
  // collide with world point-to-point traffic (it used to be a comment-
  // level caveat only). A failed peer rank surfaces here as
  // vmpi::PeerFailedError instead of a hang.
  static obs::Counter& allreduces =
      obs::Registry::global().counter("wine2.mpi_allreduces");
  comm_->allreduce_sum(sf.s, /*tag=*/7001);
  comm_->allreduce_sum(sf.c, /*tag=*/7003);
  allreduces.add(2);

  double energy = 0.0;
  if (!positions.empty()) {
    system_->run_idft(sf, forces);
    energy = system_->reciprocal_energy(sf);
  } else {
    // Ranks without particles still know the global energy.
    wine2::Wine2System probe({.clusters = 1, .boards_per_cluster = 1,
                              .chips_per_board = 1});
    probe.load_waves(kvectors);
    // reciprocal_energy only needs the waves and the box.
    probe.set_particles(std::vector<Vec3>{Vec3{}},
                        std::vector<double>{0.0}, box);
    energy = probe.reciprocal_energy(sf);
  }
  return energy;
}

void Wine2MpiLibrary::wine2_free_board() { system_.reset(); }

}  // namespace mdm::host
