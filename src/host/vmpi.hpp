#pragma once

/// \file vmpi.hpp
/// Virtual MPI: an in-process message-passing layer with MPI semantics,
/// standing in for the Myrinet/MPI fabric of the MDM host (sec. 3.3, 4).
/// Ranks are threads; messages are typed copies through per-destination
/// mailboxes keyed by (source, tag). Collectives are built on point-to-point
/// exactly as a simple MPI implementation would.
///
/// The substitution preserves what matters for the reproduction: the MD
/// program is written against communicator semantics (send/recv/bcast/
/// allreduce/barrier over process groups), so the sec. 4 software runs
/// unchanged in spirit.
///
/// Failure model (see DESIGN.md "Failure model of the virtual fabric"):
///  * a rank whose function throws poisons every mailbox and the world
///    barrier — blocked peers wake and raise PeerFailedError naming the
///    failed rank instead of hanging, and World::run rethrows the original
///    error;
///  * recvs may carry a deadline (set_recv_timeout / MDM_VMPI_TIMEOUT_MS);
///    on expiry RecvTimeoutError carries a dump of who-waits-on-whom;
///  * a FaultInjector may drop/duplicate/delay messages on the fabric;
///    sends retransmit transient drops with bounded exponential backoff and
///    receivers discard duplicates by per-channel sequence number.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace mdm::vmpi {

class World;
class FaultInjector;

/// Raised on ranks blocked in recv/barrier when another rank has failed:
/// failure propagates through the fabric instead of deadlocking the world.
class PeerFailedError : public std::runtime_error {
 public:
  PeerFailedError(int failed_rank, const std::string& what)
      : std::runtime_error(what), failed_rank_(failed_rank) {}
  /// World rank whose function threw first.
  int failed_rank() const noexcept { return failed_rank_; }

 private:
  int failed_rank_;
};

/// Raised when a recv exceeds the world's deadline; what() includes a dump
/// of every rank's current wait (the who-waits-on-whom graph).
class RecvTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-rank communicator handle (analogous to MPI_COMM_WORLD viewed from
/// one rank). Cheap to copy within its rank's thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  /// Rank within the world (== rank() for a world communicator).
  int world_rank() const { return world_rank_; }

  /// Communicator over a subset of world ranks (like MPI_Comm_create).
  /// `world_ranks` must contain this rank's world rank; ranks in the
  /// subgroup are renumbered 0..n-1 in the given order. Collective tags are
  /// salted with a group id derived from the member list, so collectives on
  /// overlapping groups (or concurrent world point-to-point traffic reusing
  /// a collective tag) do not collide.
  Communicator subgroup(const std::vector<int>& world_ranks) const;

  /// Blocking typed send/recv of trivially copyable element arrays.
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               reinterpret_cast<const std::byte*>(data.data()),
               data.size() * sizeof(T));
  }
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag);
    if (bytes.size() % sizeof(T) != 0)
      throw std::runtime_error("vmpi: message size not a multiple of T");
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Scalar convenience forms.
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::vector<T>{v});
  }
  template <typename T>
  T recv_value(int source, int tag) {
    const auto v = recv<T>(source, tag);
    if (v.size() != 1) throw std::runtime_error("vmpi: expected one value");
    return v[0];
  }

  /// Barrier over this communicator's ranks (token ring for subgroups).
  void barrier();

  /// Broadcast from root (in place).
  template <typename T>
  void broadcast(std::vector<T>& data, int root, int tag = kBcastTag) {
    const int t = collective_tag(tag);
    if (rank_ == root) {
      for (int r = 0; r < size_; ++r)
        if (r != root) send(r, t, data);
    } else {
      data = recv<T>(root, t);
    }
  }

  /// Element-wise sum-allreduce (in place, same length on every rank).
  template <typename T>
  void allreduce_sum(std::vector<T>& data, int tag = kReduceTag) {
    const int t = collective_tag(tag);
    if (rank_ == 0) {
      for (int r = 1; r < size_; ++r) {
        const auto other = recv<T>(r, t);
        if (other.size() != data.size())
          throw std::runtime_error("vmpi: allreduce length mismatch");
        for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
      }
    } else {
      send(0, t, data);
    }
    // broadcast salts (tag + 1) itself; salting is additive so the channel
    // is collective_tag(tag) + 1 on every member.
    broadcast(data, 0, tag + 1);
  }

  template <typename T>
  T allreduce_sum_value(T v, int tag = kReduceTag) {
    std::vector<T> data{v};
    allreduce_sum(data, tag);
    return data[0];
  }

  /// Gather variable-length arrays to root; root receives them concatenated
  /// in rank order (including its own contribution).
  template <typename T>
  std::vector<T> gather(const std::vector<T>& local, int root,
                        int tag = kGatherTag) {
    const int t = collective_tag(tag);
    if (rank_ != root) {
      send(root, t, local);
      return {};
    }
    std::vector<T> all;
    for (int r = 0; r < size_; ++r) {
      if (r == root) {
        all.insert(all.end(), local.begin(), local.end());
      } else {
        const auto part = recv<T>(r, t);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }

 private:
  friend class World;
  static constexpr int kBcastTag = 1 << 20;
  static constexpr int kReduceTag = 1 << 21;
  static constexpr int kGatherTag = 1 << 22;

  Communicator(World* world, int rank, int size)
      : world_(world), rank_(rank), world_rank_(rank), size_(size) {}

  static constexpr int kBarrierTag = 1 << 23;

  /// Translate a communicator-relative rank to a world rank.
  int to_world(int r) const { return group_.empty() ? r : group_[r]; }

  /// Collective tags are offset by the group salt (0 for the world). The
  /// salt is a multiple of 4 below 2^20, so distinct collective bases (2^20
  /// apart) never cross and the tag/tag+1 pairs of different groups stay
  /// disjoint.
  int collective_tag(int tag) const { return tag + collective_salt_; }

  void send_bytes(int dest, int tag, const std::byte* data,
                  std::size_t size);
  std::vector<std::byte> recv_bytes(int source, int tag);

  World* world_;
  int rank_;        ///< rank within this communicator
  int world_rank_;  ///< rank within the world
  int size_;
  int collective_salt_ = 0;
  std::vector<int> group_;  ///< world ranks (empty = world communicator)
};

/// The process group. `run` launches one thread per rank and blocks until
/// all rank functions return; the first original exception from any rank
/// propagates (secondary PeerFailedErrors are suppressed in its favour).
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Fabric fault hook (not owned; may be nullptr). Consulted on every
  /// send, including retransmission attempts.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Deadline for every recv; zero waits forever. Defaults to
  /// MDM_VMPI_TIMEOUT_MS when that environment variable is set.
  void set_recv_timeout(std::chrono::milliseconds timeout) {
    recv_timeout_ = timeout;
  }

  /// Retransmission policy for messages the (injected) fabric drops:
  /// up to `max_retries` further attempts, exponential backoff starting at
  /// `backoff` and capped at 5 ms per attempt.
  void set_send_retry(int max_retries, std::chrono::microseconds backoff) {
    send_max_retries_ = max_retries < 0 ? 0 : max_retries;
    send_backoff_ = backoff;
  }

  /// World rank that failed first in the current/last run (-1 = none).
  int failed_rank() const {
    return failed_rank_.load(std::memory_order_acquire);
  }

  void run(const std::function<void(Communicator&)>& rank_main);

 private:
  friend class Communicator;

  struct Message {
    std::uint64_t seq = 0;
    /// Sender's ambient trace id (DESIGN.md §10): stamped on send so the
    /// receiver's flight-recorder event joins the sender's trace even
    /// across rank threads that never shared a TraceContext directly.
    std::uint64_t trace_id = 0;
    std::vector<std::byte> bytes;
  };
  /// One (source world rank, tag) stream. Sequence numbers are assigned
  /// under the destination mailbox lock and let the receiver discard
  /// duplicated deliveries (fault injection) without seeing them.
  struct Channel {
    std::uint64_t send_seq = 0;
    std::uint64_t recv_expected = 0;
    std::deque<Message> queue;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, int>, Channel> channels;
  };
  /// What a rank currently blocks on, for the timeout diagnostic.
  /// source == kWaitBarrier marks a barrier wait.
  struct WaitState {
    static constexpr int kWaitBarrier = -2;
    std::atomic<bool> waiting{false};
    std::atomic<int> source{-1};
    std::atomic<int> tag{0};
  };

  /// Record the first failed rank and wake every blocked thread.
  void mark_failed(int world_rank);
  std::string peer_failure_message(int waiting_rank) const;
  std::string timeout_message(int waiting_rank, int source, int tag) const;
  /// Warn about (clean runs) and count undelivered messages, then clear
  /// the mailboxes for reuse.
  void drain_mailboxes(bool run_failed);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<WaitState>> wait_states_;

  FaultInjector* injector_ = nullptr;
  std::chrono::milliseconds recv_timeout_{0};
  int send_max_retries_ = 3;
  std::chrono::microseconds send_backoff_{50};

  std::atomic<int> failed_rank_{-1};

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::size_t barrier_generation_ = 0;
};

}  // namespace mdm::vmpi
