#pragma once

/// \file vmpi.hpp
/// Virtual MPI: an in-process message-passing layer with MPI semantics,
/// standing in for the Myrinet/MPI fabric of the MDM host (sec. 3.3, 4).
/// Ranks are threads; messages are typed copies through per-destination
/// mailboxes keyed by (source, tag). Collectives are built on point-to-point
/// exactly as a simple MPI implementation would.
///
/// The substitution preserves what matters for the reproduction: the MD
/// program is written against communicator semantics (send/recv/bcast/
/// allreduce/barrier over process groups), so the sec. 4 software runs
/// unchanged in spirit.

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace mdm::vmpi {

class World;

/// Per-rank communicator handle (analogous to MPI_COMM_WORLD viewed from
/// one rank). Cheap to copy within its rank's thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  /// Rank within the world (== rank() for a world communicator).
  int world_rank() const { return world_rank_; }

  /// Communicator over a subset of world ranks (like MPI_Comm_create).
  /// `world_ranks` must contain this rank's world rank; ranks in the
  /// subgroup are renumbered 0..n-1 in the given order. Collectives on the
  /// subgroup use the same mailboxes, so tags must not collide with
  /// concurrent world traffic.
  Communicator subgroup(const std::vector<int>& world_ranks) const;

  /// Blocking typed send/recv of trivially copyable element arrays.
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               reinterpret_cast<const std::byte*>(data.data()),
               data.size() * sizeof(T));
  }
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag);
    if (bytes.size() % sizeof(T) != 0)
      throw std::runtime_error("vmpi: message size not a multiple of T");
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Scalar convenience forms.
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::vector<T>{v});
  }
  template <typename T>
  T recv_value(int source, int tag) {
    const auto v = recv<T>(source, tag);
    if (v.size() != 1) throw std::runtime_error("vmpi: expected one value");
    return v[0];
  }

  /// Barrier over this communicator's ranks (token ring for subgroups).
  void barrier();

  /// Broadcast from root (in place).
  template <typename T>
  void broadcast(std::vector<T>& data, int root, int tag = kBcastTag) {
    if (rank_ == root) {
      for (int r = 0; r < size_; ++r)
        if (r != root) send(r, tag, data);
    } else {
      data = recv<T>(root, tag);
    }
  }

  /// Element-wise sum-allreduce (in place, same length on every rank).
  template <typename T>
  void allreduce_sum(std::vector<T>& data, int tag = kReduceTag) {
    if (rank_ == 0) {
      for (int r = 1; r < size_; ++r) {
        const auto other = recv<T>(r, tag);
        if (other.size() != data.size())
          throw std::runtime_error("vmpi: allreduce length mismatch");
        for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
      }
    } else {
      send(0, tag, data);
    }
    broadcast(data, 0, tag + 1);
  }

  template <typename T>
  T allreduce_sum_value(T v, int tag = kReduceTag) {
    std::vector<T> data{v};
    allreduce_sum(data, tag);
    return data[0];
  }

  /// Gather variable-length arrays to root; root receives them concatenated
  /// in rank order (including its own contribution).
  template <typename T>
  std::vector<T> gather(const std::vector<T>& local, int root,
                        int tag = kGatherTag) {
    if (rank_ != root) {
      send(root, tag, local);
      return {};
    }
    std::vector<T> all;
    for (int r = 0; r < size_; ++r) {
      if (r == root) {
        all.insert(all.end(), local.begin(), local.end());
      } else {
        const auto part = recv<T>(r, tag);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }

 private:
  friend class World;
  static constexpr int kBcastTag = 1 << 20;
  static constexpr int kReduceTag = 1 << 21;
  static constexpr int kGatherTag = 1 << 22;

  Communicator(World* world, int rank, int size)
      : world_(world), rank_(rank), world_rank_(rank), size_(size) {}

  static constexpr int kBarrierTag = 1 << 23;

  /// Translate a communicator-relative rank to a world rank.
  int to_world(int r) const { return group_.empty() ? r : group_[r]; }

  void send_bytes(int dest, int tag, const std::byte* data,
                  std::size_t size);
  std::vector<std::byte> recv_bytes(int source, int tag);

  World* world_;
  int rank_;        ///< rank within this communicator
  int world_rank_;  ///< rank within the world
  int size_;
  std::vector<int> group_;  ///< world ranks (empty = world communicator)
};

/// The process group. `run` launches one thread per rank and blocks until
/// all rank functions return; exceptions from any rank propagate.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  void run(const std::function<void(Communicator&)>& rank_main);

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> queues;
  };

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::size_t barrier_generation_ = 0;
};

}  // namespace mdm::vmpi
