#pragma once

/// \file fault_injector.hpp
/// Deterministic fault injection for the virtual MDM machine. The paper's
/// host ran 24 MPI processes over Myrinet for thousands of steps; at that
/// scale a wedged link or a dead MDGRAPE-2 board is an operational fact,
/// not an exception (the GRAPE line explicitly engineered around partially
/// failed pipeline chips). The injector lets tests and soak runs provoke
/// those faults on demand:
///
///  * message faults — drop, duplicate or delay a matching message on the
///    vmpi fabric (`World::set_fault_injector`);
///  * rank faults — a chosen rank throws at a chosen step;
///  * board faults — a chosen MDGRAPE-2 board fails permanently at a
///    chosen step and the host degrades onto the survivors.
///
/// Rules are evaluated in insertion order; the first rule that fires wins.
/// Count-limited rules are fully deterministic; probabilistic rules draw
/// from a seeded generator, so a fixed seed plus a deterministic call
/// sequence reproduces the same fault pattern.
///
/// Environment knobs (see `FaultInjector::from_env`):
///   MDM_FAULT_SEED  unsigned seed for probabilistic rules (default 0)
///   MDM_FAULT_SPEC  rule list, e.g.
///     "drop:tag=200,count=1;failboard:rank=1,board=0,step=3"

#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string_view>
#include <vector>

namespace mdm::vmpi {

/// One fault rule. Fields at -1 are wildcards where noted.
struct FaultRule {
  enum class Kind {
    kDropMessage,       ///< message vanishes on the fabric
    kDuplicateMessage,  ///< message is delivered twice (same sequence no.)
    kDelayMessage,      ///< message is delivered late
    kFailRank,          ///< rank throws at the matching step
    kFailBoard,         ///< MDGRAPE-2 board fails permanently at the step
  };
  Kind kind = Kind::kDropMessage;

  // Message matching (kDropMessage/kDuplicateMessage/kDelayMessage).
  int src = -1;   ///< sender world rank (-1 = any)
  int dest = -1;  ///< receiver world rank (-1 = any)
  int tag = -1;   ///< message tag (-1 = any)

  /// Fire on at most `count` matching events (-1 = unlimited), each with
  /// probability `probability`.
  int count = 1;
  double probability = 1.0;

  // Process/board faults (kFailRank/kFailBoard).
  int rank = -1;  ///< world rank the fault applies to (-1 = any)
  int board = 0;  ///< board index within the rank's cluster (kFailBoard)
  int step = -1;  ///< step at which the fault manifests (-1 = any)
};

class FaultInjector {
 public:
  enum class MessageAction { kDeliver, kDrop, kDuplicate, kDelay };

  FaultInjector() : FaultInjector(0) {}
  explicit FaultInjector(std::uint64_t seed)
      : rng_(seed ^ 0x9e3779b97f4a7c15ull) {}

  /// Injector described by MDM_FAULT_SPEC / MDM_FAULT_SEED, or nullptr when
  /// MDM_FAULT_SPEC is unset/empty. Throws on a malformed spec.
  static std::unique_ptr<FaultInjector> from_env();

  void add_rule(const FaultRule& rule);

  /// Parse a spec string: clauses separated by ';', each
  ///   kind ':' key '=' value [',' key '=' value]...
  /// kinds: drop | dup | delay | failrank | failboard
  /// keys:  src, dest, tag, count, prob, rank, board, step
  /// Throws std::invalid_argument on malformed input.
  void parse_spec(std::string_view spec);

  /// Fabric hook: fate of a message about to be enqueued (called again for
  /// every retransmission attempt, so a count-limited drop is transient).
  MessageAction on_message(int src, int dest, int tag);

  /// Host hooks, polled once per (rank, step).
  bool should_fail_rank(int rank, int step);
  /// Board within `rank`'s cluster that permanently fails at `step`;
  /// -1 when none.
  int board_to_fail(int rank, int step);

  /// Total faults fired so far (all kinds).
  std::uint64_t injected_faults() const;

 private:
  bool rule_fires(FaultRule& rule);

  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::vector<FaultRule> rules_;
  std::vector<int> fired_;  ///< times rules_[i] has fired
  std::uint64_t injected_ = 0;
};

}  // namespace mdm::vmpi
