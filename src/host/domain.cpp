#include "host/domain.hpp"

#include <cmath>
#include <stdexcept>

namespace mdm::host {

DomainGrid::DomainGrid(int nx, int ny, int nz, double box)
    : nx_(nx), ny_(ny), nz_(nz), box_(box) {
  if (nx < 1 || ny < 1 || nz < 1 || !(box > 0.0))
    throw std::invalid_argument("DomainGrid: bad arguments");
}

DomainGrid DomainGrid::for_processes(int processes, double box) {
  if (processes < 1)
    throw std::invalid_argument("DomainGrid: processes must be >= 1");
  // Minimize the surface-to-volume ratio: prefer the factor triple with the
  // smallest spread.
  int best[3] = {processes, 1, 1};
  long best_score = -1;
  for (int a = 1; a <= processes; ++a) {
    if (processes % a) continue;
    const int rest = processes / a;
    for (int b = 1; b <= rest; ++b) {
      if (rest % b) continue;
      const int c = rest / b;
      const long score = long(a) * a + long(b) * b + long(c) * c;
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best[0] = a;
        best[1] = b;
        best[2] = c;
      }
    }
  }
  // Largest count along x (arbitrary but fixed convention).
  if (best[0] < best[1]) std::swap(best[0], best[1]);
  if (best[0] < best[2]) std::swap(best[0], best[2]);
  if (best[1] < best[2]) std::swap(best[1], best[2]);
  return DomainGrid(best[0], best[1], best[2], box);
}

int DomainGrid::domain_of(const Vec3& r) const {
  auto coord = [this](double v, int n) {
    int c = static_cast<int>(std::floor(wrap_coordinate(v, box_) / box_ * n));
    return std::min(c, n - 1);
  };
  return (coord(r.z, nz_) * ny_ + coord(r.y, ny_)) * nx_ + coord(r.x, nx_);
}

void DomainGrid::bounds(int d, Vec3& lo, Vec3& hi) const {
  const int ix = d % nx_;
  const int iy = (d / nx_) % ny_;
  const int iz = d / (nx_ * ny_);
  lo = {ix * box_ / nx_, iy * box_ / ny_, iz * box_ / nz_};
  hi = {(ix + 1) * box_ / nx_, (iy + 1) * box_ / ny_, (iz + 1) * box_ / nz_};
}

double DomainGrid::distance_to_domain(const Vec3& r, int d) const {
  Vec3 lo, hi;
  bounds(d, lo, hi);
  // Per-axis periodic distance to the interval [lo, hi).
  auto axis_dist = [this](double v, double a, double b) {
    v = wrap_coordinate(v, box_);
    double best = 1e300;
    for (const double shift : {-box_, 0.0, box_}) {
      const double u = v + shift;
      if (u >= a && u <= b)
        best = 0.0;
      else
        best = std::min(best, std::min(std::fabs(u - a), std::fabs(u - b)));
    }
    return best;
  };
  const double dx = axis_dist(r.x, lo.x, hi.x);
  const double dy = axis_dist(r.y, lo.y, hi.y);
  const double dz = axis_dist(r.z, lo.z, hi.z);
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace mdm::host
