/// \file shardd_main.cpp
/// `mdm_shardd`: the fleet shard worker binary. Never run by hand — the
/// Router fork+execs it with the IPC socketpair end on a known fd
/// (DESIGN.md §13). A dedicated binary (instead of re-entering the parent
/// via /proc/self/exe) keeps the fork window exec-only, which is safe from
/// a threaded router and clean under TSan.

#include <cstdio>

#include "serve/fleet/shard.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  mdm::CommandLine cli(argc, argv);
  mdm::apply_observability_cli(cli);
  if (cli.has("help")) {
    std::printf(
        "mdm_shardd — fleet shard worker (spawned by the fleet router)\n"
        "  --ipc-fd N           router socketpair fd (default 3)\n"
        "  --workers N          concurrent jobs on this shard\n"
        "  --threads-per-job N  engine threads per job\n"
        "  --queue-cap N        admission queue depth cap\n"
        "  --shard-index N      rank label for logs/metrics\n");
    return 0;
  }
  mdm::serve::fleet::ShardConfig config;
  config.ipc_fd = static_cast<int>(cli.get_int("ipc-fd", 3));
  config.workers = static_cast<int>(cli.get_int("workers", 2));
  config.threads_per_job =
      static_cast<unsigned>(cli.get_int("threads-per-job", 1));
  config.queue_cap = static_cast<std::size_t>(cli.get_int("queue-cap", 64));
  config.shard_index = static_cast<int>(cli.get_int("shard-index", 0));
  return mdm::serve::fleet::shard_main(config);
}
