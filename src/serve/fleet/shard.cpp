#include "serve/fleet/shard.hpp"

#include <poll.h>

#include <csignal>
#include <map>

#include "obs/logger.hpp"
#include "serve/fleet/wire.hpp"
#include "serve/service.hpp"

namespace mdm::serve::fleet {
namespace {

volatile std::sig_atomic_t g_drain = 0;

void on_sigterm(int) { g_drain = 1; }

struct InFlight {
  JobHandle handle;
  std::size_t cursor = 0;  ///< stream position already sent as chunks
};

}  // namespace

int shard_main(const ShardConfig& config) {
  std::signal(SIGTERM, on_sigterm);
  std::signal(SIGPIPE, SIG_IGN);
  const int fd = config.ipc_fd;

  ServiceConfig sc;
  sc.workers = config.workers;
  sc.threads_per_job = config.threads_per_job;
  sc.admission.max_queue_depth = config.queue_cap;
  sc.stream_samples = true;       // every fleet job is pollable mid-run
  sc.checkpoint_on_cancel = true; // drain persists the exact cancel step
  SimService service(sc);
  service.start();

  send_frame(fd, MsgType::kHello, encode_id(kWireVersion));

  std::map<std::uint64_t, InFlight> inflight;
  std::uint64_t completed = 0;
  bool draining = false;

  // Flush progress: stream new samples as chunks, terminal jobs as done.
  auto pump = [&] {
    for (auto it = inflight.begin(); it != inflight.end();) {
      auto& rec = it->second;
      auto chunk = rec.handle.poll_samples(rec.cursor);
      if (!chunk.empty())
        send_frame(fd, MsgType::kChunk, encode_chunk(it->first, chunk));
      if (rec.handle.done()) {
        send_frame(fd, MsgType::kDone,
                   encode_done(it->first, rec.handle.wait()));
        ++completed;
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (;;) {
    if (g_drain && !draining) {
      draining = true;
      MDM_LOG_INFO("fleet shard %d: draining (%zu in-flight)",
                   config.shard_index, inflight.size());
      send_frame(fd, MsgType::kDraining, {});
      // Cooperative cancel; checkpoint_on_cancel writes each job's
      // (checkpoint, manifest) pair at its exact current step, so the
      // router resumes them elsewhere with zero recomputation.
      for (auto& [id, rec] : inflight) rec.handle.cancel();
    }
    if (draining && inflight.empty()) {
      send_frame(fd, MsgType::kDrained, encode_id(completed));
      service.stop();
      return 0;
    }

    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 20);
    if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      auto frame = recv_frame(fd);
      if (!frame) {
        // Router died: nothing to report results to; stop and exit.
        service.stop();
        return 0;
      }
      switch (frame->type) {
        case MsgType::kSubmit: {
          std::uint64_t id = 0;
          JobSpec spec;
          decode_submit(*frame, id, spec);
          if (draining) {
            send_frame(fd, MsgType::kRejected,
                       encode_reject(id, "Overloaded: shard draining"));
            break;
          }
          JobHandle handle = service.submit(spec);
          if (handle.done() && handle.state() == JobState::kRejected) {
            send_frame(fd, MsgType::kRejected,
                       encode_reject(id, handle.wait().error));
            break;
          }
          send_frame(fd, MsgType::kAccepted, encode_id(id));
          inflight.emplace(id, InFlight{handle, 0});
          break;
        }
        case MsgType::kCancel: {
          const auto it = inflight.find(decode_id(*frame));
          if (it != inflight.end()) it->second.handle.cancel();
          break;
        }
        case MsgType::kPing: {
          ShardStats stats;
          stats.seq = decode_id(*frame);
          stats.running = service.running_jobs();
          stats.queued = static_cast<std::int32_t>(service.queue_depth());
          stats.completed = completed;
          send_frame(fd, MsgType::kPong, encode_pong(stats));
          break;
        }
        case MsgType::kDrain:
          g_drain = 1;
          break;
        case MsgType::kShutdown:
          service.stop();
          pump();  // flush the cancelled results before going away
          return 0;
        default:
          MDM_LOG_WARN("fleet shard %d: unexpected frame '%s'",
                       config.shard_index, to_string(frame->type));
          break;
      }
    }
    pump();
  }
}

}  // namespace mdm::serve::fleet
