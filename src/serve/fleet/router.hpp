#pragma once

/// \file router.hpp
/// The sharded serving fleet (DESIGN.md §13): a Router in the client
/// process supervises N `mdm_shardd` worker processes (fork+exec, one
/// SOCK_STREAM socketpair each), hashes jobs to shards by their canonical
/// spec hash, health-checks them (heartbeat + process reaping), and on
/// shard death restarts the process and migrates its in-flight jobs to
/// surviving shards — each resuming from its latest (checkpoint, manifest)
/// pair, so zero jobs are lost and resumed results stay bit-identical to a
/// standalone run.
///
/// Layered on top:
///  * a deterministic result cache keyed by canonical_job_key, with
///    in-flight coalescing (an identical spec submitted while the primary
///    runs attaches as a follower and shares its result);
///  * client retry with exponential backoff + jitter and a bounded attempt
///    budget for Overloaded rejections (fleet.retries / fleet.failovers
///    counters);
///  * streamed chunked result polling: shards push trajectory chunks as
///    they are produced, so JobHandle::poll_samples sees samples long
///    before the job completes;
///  * graceful drain: SIGTERM (or Router::drain_shard) checkpoints a
///    shard's in-flight jobs at their exact current step, rejects new work
///    with Overloaded and exits 0; the router reroutes the drained jobs.
///
/// Process model: fork is immediately followed by exec of the dedicated
/// `mdm_shardd` binary — never a fork-only child — so spawning is safe from
/// this threaded process and clean under TSan. Binary resolution:
/// FleetConfig::shard_binary, else $MDM_FLEET_SHARDD, else the compiled-in
/// MDM_SHARDD_PATH the build sets on fleet consumers.

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/fleet/result_cache.hpp"
#include "serve/fleet/wire.hpp"
#include "serve/job.hpp"
#include "util/random.hpp"

namespace mdm::serve::fleet {

struct FleetConfig {
  int shards = 2;
  int workers_per_shard = 2;
  unsigned threads_per_job = 1;  ///< fixed fleet-wide: determinism contract
  std::size_t shard_queue_cap = 64;
  /// Fleet root directory: per-job checkpoint/manifest dirs and flight
  /// recorder dumps live here. Empty = no checkpoint placement, no dumps.
  std::string root;
  /// Shard worker binary; empty = $MDM_FLEET_SHARDD, else MDM_SHARDD_PATH.
  std::string shard_binary;
  double heartbeat_ms = 50.0;          ///< ping cadence per shard
  double heartbeat_timeout_ms = 2000.0;  ///< silent longer than this = dead
  int max_restarts_per_shard = 3;
  // ---- client retry (Overloaded rejections only; migration is free) ----
  int retry_max_attempts = 4;
  double retry_base_ms = 5.0;
  double retry_max_ms = 200.0;
  std::uint64_t retry_seed = 0x51eedULL;  ///< jitter stream seed
  /// Re-dispatch delay when no shard is currently available.
  double repark_ms = 20.0;
  // ---- deterministic result cache ----
  bool cache_enabled = true;
  std::size_t cache_capacity = 128;
};

/// Client facade of the fleet. Thread-safe; returns the same JobHandle the
/// single-process SimService does, so callers (and tests) are agnostic to
/// whether a job ran in-process or on a shard.
class Router {
 public:
  explicit Router(FleetConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Spawn the shard processes and the maintenance thread. Idempotent.
  void start();
  /// Shut every shard down (flushing cancelled jobs), reap, finalize
  /// whatever is left. Called by the destructor.
  void stop();

  /// Route a job to a shard (or answer it from the result cache / coalesce
  /// it onto an identical in-flight submission). The handle is live
  /// immediately: poll_samples streams chunks as the shard produces them.
  JobHandle submit(const JobSpec& spec);

  /// Block until every submitted job is terminal.
  void drain();
  /// drain() with a deadline; throws JobWaitTimeout naming the stuck jobs.
  void drain_for(double timeout_ms);

  const FleetConfig& config() const { return config_; }
  int alive_shards() const;
  std::size_t pending_jobs() const;

  // ---- operational / test hooks ----
  pid_t shard_pid(int index) const;
  /// kill(pid, sig); SIGKILL = chaos test, SIGTERM = graceful drain.
  bool signal_shard(int index, int sig);
  /// Ask a shard to drain over the wire (same path as SIGTERM).
  void drain_shard(int index);
  /// Exit code of the most recently reaped process of this shard slot
  /// (128+signal when killed by a signal); nullopt until one was reaped.
  std::optional<int> shard_exit_status(int index) const;

 private:
  struct PendingJob {
    std::shared_ptr<Job> job;  ///< client-side record (stream + finalize)
    JobSpec spec;              ///< effective spec sent to shards
    std::uint64_t hash = 0;    ///< canonical hash: shard placement
    std::string cache_key;
    int shard = -1;            ///< current shard, -1 = parked
    int attempts = 0;          ///< Overloaded retries consumed
    bool waiting_retry = false;
    bool cancel_sent = false;
    int last_streamed_step = -1;  ///< chunk dedup across migration
    Job::Clock::time_point retry_at{};
    std::vector<std::shared_ptr<Job>> followers;  ///< coalesced duplicates
  };

  struct Shard {
    int index = 0;
    std::uint64_t generation = 0;  ///< bumped per spawn; stales old readers
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool draining = false;
    int restarts = 0;
    std::uint64_t ping_seq = 0;
    Job::Clock::time_point last_ping{};
    Job::Clock::time_point last_pong{};
    ShardStats stats{};
    std::thread reader;
    std::mutex send_mutex;  ///< serializes frames onto fd (after mutex_)
  };

  bool spawn_shard_locked(int index);
  void reader_main(int index, std::uint64_t generation, int fd);
  void maintenance_main();
  /// First observer of a death wins: migrate the shard's jobs, dump the
  /// flight recorder, respawn (bounded). `generation` guards staleness.
  void handle_shard_down_locked(int index, std::uint64_t generation,
                                const char* reason);
  int pick_shard_locked(std::uint64_t hash, int exclude) const;
  void dispatch_locked(std::uint64_t id, PendingJob& rec, int exclude = -1);
  /// Stream the tail, settle cache + followers, finalize, erase.
  void finalize_locked(std::uint64_t id, JobResult result);
  bool send_to_shard(Shard& shard, MsgType type,
                     const std::vector<char>& payload);
  double backoff_ms_locked(int attempt);

  FleetConfig config_;
  std::string shard_binary_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;   ///< drain(): pending_ empty
  std::condition_variable maint_cv_;  ///< maintenance wakeup / stop
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint64_t, PendingJob> pending_;
  std::map<std::string, std::uint64_t> inflight_by_key_;  ///< coalescing
  std::map<int, int> exit_status_;  ///< shard index -> last reaped code
  std::vector<std::pair<pid_t, int>> zombies_;  ///< awaiting reap (pid, idx)
  std::vector<std::thread> graveyard_;  ///< finished reader threads
  std::thread maintenance_;
  ResultCache cache_;
  Random retry_rng_;
  std::uint64_t next_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace mdm::serve::fleet
