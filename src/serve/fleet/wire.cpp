#include "serve/fleet/wire.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "core/checkpoint_io.hpp"

namespace mdm::serve::fleet {
namespace {

using ckptio::ByteReader;
using ckptio::ByteWriter;

/// Hard cap on a frame payload: a chunk of the largest admissible job is
/// far below this; anything bigger is a torn stream, not data.
constexpr std::uint32_t kMaxPayload = 256u << 20;

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame: peer died
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void put_string(ByteWriter& w, const std::string& s) {
  w.put(static_cast<std::uint32_t>(s.size()));
  w.put_bytes(s.data(), s.size());
}

std::string get_string(ByteReader& r, const char* what) {
  const auto n = r.get<std::uint32_t>(what);
  std::string s(n, '\0');
  if (n > 0) r.get_bytes(s.data(), n, what);
  return s;
}

void put_sample(ByteWriter& w, const Sample& s) {
  w.put(static_cast<std::int32_t>(s.step));
  w.put(s.time_ps);
  w.put(s.temperature_K);
  w.put(s.kinetic_eV);
  w.put(s.potential_eV);
  w.put(s.total_eV);
  w.put(s.pressure_GPa);
}

Sample get_sample(ByteReader& r) {
  Sample s;
  s.step = r.get<std::int32_t>("sample step");
  s.time_ps = r.get<double>("sample time");
  s.temperature_K = r.get<double>("sample temperature");
  s.kinetic_eV = r.get<double>("sample kinetic");
  s.potential_eV = r.get<double>("sample potential");
  s.total_eV = r.get<double>("sample total");
  s.pressure_GPa = r.get<double>("sample pressure");
  return s;
}

void put_samples(ByteWriter& w, const std::vector<Sample>& samples) {
  w.put(static_cast<std::uint64_t>(samples.size()));
  for (const auto& s : samples) put_sample(w, s);
}

std::vector<Sample> get_samples(ByteReader& r) {
  const auto n = r.get<std::uint64_t>("sample count");
  std::vector<Sample> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_sample(r));
  return out;
}

void put_vecs(ByteWriter& w, const std::vector<Vec3>& v) {
  w.put(static_cast<std::uint64_t>(v.size()));
  for (const auto& p : v) {
    w.put(p.x);
    w.put(p.y);
    w.put(p.z);
  }
}

std::vector<Vec3> get_vecs(ByteReader& r, const char* what) {
  const auto n = r.get<std::uint64_t>(what);
  std::vector<Vec3> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Vec3 p;
    p.x = r.get<double>(what);
    p.y = r.get<double>(what);
    p.z = r.get<double>(what);
    out.push_back(p);
  }
  return out;
}

ByteReader reader_for(const Frame& frame) {
  return ByteReader(frame.payload, frame.payload.size(),
                    std::string("frame ") + to_string(frame.type));
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kSubmit: return "submit";
    case MsgType::kCancel: return "cancel";
    case MsgType::kPing: return "ping";
    case MsgType::kDrain: return "drain";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHello: return "hello";
    case MsgType::kAccepted: return "accepted";
    case MsgType::kRejected: return "rejected";
    case MsgType::kChunk: return "chunk";
    case MsgType::kDone: return "done";
    case MsgType::kPong: return "pong";
    case MsgType::kDraining: return "draining";
    case MsgType::kDrained: return "drained";
  }
  return "unknown";
}

bool send_frame(int fd, MsgType type, const std::vector<char>& payload) {
  // One buffered send per frame so a concurrent writer (serialized by the
  // caller's mutex) can never interleave header and payload.
  std::vector<char> buf;
  buf.reserve(6 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  const auto ty = static_cast<std::uint16_t>(type);
  buf.insert(buf.end(), reinterpret_cast<const char*>(&len),
             reinterpret_cast<const char*>(&len) + sizeof len);
  buf.insert(buf.end(), reinterpret_cast<const char*>(&ty),
             reinterpret_cast<const char*>(&ty) + sizeof ty);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return send_all(fd, buf.data(), buf.size());
}

std::optional<Frame> recv_frame(int fd) {
  char header[6];
  if (!recv_all(fd, header, sizeof header)) return std::nullopt;
  std::uint32_t len = 0;
  std::uint16_t ty = 0;
  std::memcpy(&len, header, sizeof len);
  std::memcpy(&ty, header + sizeof len, sizeof ty);
  if (len > kMaxPayload)
    throw CheckpointError("fleet wire: frame length " + std::to_string(len) +
                          " exceeds the " + std::to_string(kMaxPayload) +
                          " byte cap (torn stream?)");
  Frame frame;
  frame.type = static_cast<MsgType>(ty);
  frame.payload.resize(len);
  if (len > 0 && !recv_all(fd, frame.payload.data(), len))
    return std::nullopt;
  return frame;
}

std::vector<char> encode_id(std::uint64_t id) {
  ByteWriter w;
  w.put(id);
  return std::move(w.bytes());
}

std::uint64_t decode_id(const Frame& frame) {
  auto r = reader_for(frame);
  return r.get<std::uint64_t>("id");
}

std::vector<char> encode_submit(std::uint64_t job_id, const JobSpec& spec) {
  ByteWriter w;
  w.put(job_id);
  put_string(w, spec.tenant);
  w.put(static_cast<std::int32_t>(spec.job_class));
  w.put(spec.deadline_ms);
  w.put(static_cast<std::int32_t>(spec.cells));
  w.put(static_cast<std::int32_t>(spec.nvt_steps));
  w.put(static_cast<std::int32_t>(spec.nve_steps));
  w.put(spec.temperature_K);
  w.put(spec.dt_fs);
  w.put(spec.seed);
  w.put(static_cast<std::int32_t>(spec.parallel_real));
  w.put(static_cast<std::int32_t>(spec.parallel_wn));
  put_string(w, spec.solver);
  w.put(spec.accuracy_target);
  w.put(static_cast<std::int32_t>(spec.pme_grid));
  w.put(static_cast<std::int32_t>(spec.pme_order));
  w.put(static_cast<std::int32_t>(spec.backend));
  w.put(static_cast<std::int32_t>(spec.checkpoint_interval));
  put_string(w, spec.checkpoint_dir);
  w.put(static_cast<std::uint8_t>(spec.resume_manifest ? 1 : 0));
  put_string(w, spec.scenario);
  put_string(w, spec.analysis_dir);
  return std::move(w.bytes());
}

void decode_submit(const Frame& frame, std::uint64_t& job_id, JobSpec& spec) {
  auto r = reader_for(frame);
  job_id = r.get<std::uint64_t>("job id");
  spec.tenant = get_string(r, "tenant");
  spec.job_class = static_cast<JobClass>(r.get<std::int32_t>("class"));
  spec.deadline_ms = r.get<double>("deadline");
  spec.cells = r.get<std::int32_t>("cells");
  spec.nvt_steps = r.get<std::int32_t>("nvt steps");
  spec.nve_steps = r.get<std::int32_t>("nve steps");
  spec.temperature_K = r.get<double>("temperature");
  spec.dt_fs = r.get<double>("dt");
  spec.seed = r.get<std::uint64_t>("seed");
  spec.parallel_real = r.get<std::int32_t>("parallel real");
  spec.parallel_wn = r.get<std::int32_t>("parallel wn");
  spec.solver = get_string(r, "solver");
  spec.accuracy_target = r.get<double>("accuracy");
  spec.pme_grid = r.get<std::int32_t>("pme grid");
  spec.pme_order = r.get<std::int32_t>("pme order");
  spec.backend = static_cast<Backend>(r.get<std::int32_t>("backend"));
  spec.checkpoint_interval = r.get<std::int32_t>("checkpoint interval");
  spec.checkpoint_dir = get_string(r, "checkpoint dir");
  spec.resume_manifest = r.get<std::uint8_t>("resume manifest") != 0;
  spec.scenario = get_string(r, "scenario");
  spec.analysis_dir = get_string(r, "analysis dir");
}

std::vector<char> encode_reject(std::uint64_t job_id,
                                const std::string& error) {
  ByteWriter w;
  w.put(job_id);
  put_string(w, error);
  return std::move(w.bytes());
}

void decode_reject(const Frame& frame, std::uint64_t& job_id,
                   std::string& error) {
  auto r = reader_for(frame);
  job_id = r.get<std::uint64_t>("job id");
  error = get_string(r, "error");
}

std::vector<char> encode_chunk(std::uint64_t job_id,
                               const std::vector<Sample>& samples) {
  ByteWriter w;
  w.put(job_id);
  put_samples(w, samples);
  return std::move(w.bytes());
}

void decode_chunk(const Frame& frame, std::uint64_t& job_id,
                  std::vector<Sample>& samples) {
  auto r = reader_for(frame);
  job_id = r.get<std::uint64_t>("job id");
  samples = get_samples(r);
}

std::vector<char> encode_done(std::uint64_t job_id, const JobResult& result) {
  ByteWriter w;
  w.put(job_id);
  w.put(static_cast<std::int32_t>(result.state));
  put_string(w, result.error);
  put_samples(w, result.samples);
  put_vecs(w, result.positions);
  put_vecs(w, result.velocities);
  w.put(static_cast<std::int32_t>(result.completed_steps));
  w.put(result.resumed_from_step);
  w.put(result.wait_ms);
  w.put(result.run_ms);
  w.put(result.trace_id);
  return std::move(w.bytes());
}

void decode_done(const Frame& frame, std::uint64_t& job_id,
                 JobResult& result) {
  auto r = reader_for(frame);
  job_id = r.get<std::uint64_t>("job id");
  result.state = static_cast<JobState>(r.get<std::int32_t>("state"));
  result.error = get_string(r, "error");
  result.samples = get_samples(r);
  result.positions = get_vecs(r, "positions");
  result.velocities = get_vecs(r, "velocities");
  result.completed_steps = r.get<std::int32_t>("completed steps");
  result.resumed_from_step = r.get<std::uint64_t>("resumed from");
  result.wait_ms = r.get<double>("wait ms");
  result.run_ms = r.get<double>("run ms");
  result.trace_id = r.get<std::uint64_t>("trace id");
}

std::vector<char> encode_pong(const ShardStats& stats) {
  ByteWriter w;
  w.put(stats.seq);
  w.put(stats.running);
  w.put(stats.queued);
  w.put(stats.completed);
  return std::move(w.bytes());
}

ShardStats decode_pong(const Frame& frame) {
  auto r = reader_for(frame);
  ShardStats s;
  s.seq = r.get<std::uint64_t>("pong seq");
  s.running = r.get<std::int32_t>("pong running");
  s.queued = r.get<std::int32_t>("pong queued");
  s.completed = r.get<std::uint64_t>("pong completed");
  return s;
}

}  // namespace mdm::serve::fleet
