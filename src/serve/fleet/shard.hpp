#pragma once

/// \file shard.hpp
/// One fleet shard: a full SimService wrapped in a single-threaded IPC loop
/// talking to the Router over the socketpair fd it inherited across exec
/// (DESIGN.md §13). The loop polls the socket with a short timeout, pumps
/// live trajectory chunks and terminal results back, and answers
/// heartbeats; SIGTERM (or a kDrain frame) starts a graceful drain:
/// in-flight jobs are cooperatively cancelled with checkpoint_on_cancel —
/// persisting a (checkpoint, manifest) pair at each job's exact current
/// step — new submits are rejected with "Overloaded: shard draining", and
/// the process exits 0 once every job has been flushed.
///
/// Jobs always run with stream_samples + checkpoint_on_cancel on, so every
/// fleet job is pollable mid-run and migratable at any boundary.

#include <cstddef>

namespace mdm::serve::fleet {

struct ShardConfig {
  int ipc_fd = 3;  ///< router socketpair end, dup'ed here before exec
  int workers = 2;
  unsigned threads_per_job = 1;
  std::size_t queue_cap = 64;
  int shard_index = 0;  ///< rank label for logs/metrics/flight events
};

/// Run the shard loop until shutdown, drain completion or router EOF.
/// Returns the process exit code (0 on every graceful path).
int shard_main(const ShardConfig& config);

}  // namespace mdm::serve::fleet
