#include "serve/fleet/result_cache.hpp"

#include "obs/metrics.hpp"

namespace mdm::serve::fleet {
namespace {

obs::Counter& hits() {
  static obs::Counter& c = obs::Registry::global().counter("fleet.cache.hits");
  return c;
}
obs::Counter& misses() {
  static obs::Counter& c =
      obs::Registry::global().counter("fleet.cache.misses");
  return c;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

std::optional<JobResult> ResultCache::lookup(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses().add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump recency
  hits().add(1);
  return it->second->second;
}

void ResultCache::insert(const std::string& key, const JobResult& result) {
  if (result.state != JobState::kCompleted) return;
  std::lock_guard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

}  // namespace mdm::serve::fleet
