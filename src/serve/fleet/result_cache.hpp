#pragma once

/// \file result_cache.hpp
/// Deterministic result cache of the fleet router (DESIGN.md §13). Served
/// trajectories are bit-identical functions of the canonical JobSpec
/// (serve::canonical_job_key — physics fields only, placement excluded), so
/// two identical submissions — common under heavy traffic — cost one
/// simulation: the second is answered from this cache, or coalesced onto
/// the in-flight primary by the router. Only kCompleted results are cached;
/// eviction is LRU by canonical key.
///
/// Telemetry: `fleet.cache.hits` / `fleet.cache.misses` counters (the
/// router adds `fleet.cache.coalesced` for in-flight attach).

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/job.hpp"

namespace mdm::serve::fleet {

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity);

  /// Cached result for a canonical key; bumps hits/misses and recency.
  std::optional<JobResult> lookup(const std::string& key);

  /// Insert/overwrite; evicts the least recently used entry past capacity.
  /// Non-completed results are ignored (failures are not deterministic).
  void insert(const std::string& key, const JobResult& result);

  std::size_t size() const;

 private:
  using Lru = std::list<std::pair<std::string, JobResult>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_;
};

}  // namespace mdm::serve::fleet
