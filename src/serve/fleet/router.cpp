#include "serve/fleet/router.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"

namespace mdm::serve::fleet {
namespace {

namespace fs = std::filesystem;
using Clock = Job::Clock;

/// The shard's end of the socketpair is dup'ed onto this fd before exec.
constexpr int kShardFd = 3;

obs::Registry& reg() { return obs::Registry::global(); }

double ms_since(Clock::time_point tp, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - tp).count();
}

Clock::time_point after_ms(Clock::time_point tp, double ms) {
  return tp + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
}

bool is_overloaded(const std::string& error) {
  return error.rfind("Overloaded", 0) == 0;
}

int decode_wait_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

std::string resolve_shard_binary(const FleetConfig& config) {
  if (!config.shard_binary.empty()) return config.shard_binary;
  if (const char* env = std::getenv("MDM_FLEET_SHARDD");
      env != nullptr && env[0] != '\0')
    return env;
#ifdef MDM_SHARDD_PATH
  return MDM_SHARDD_PATH;
#else
  throw std::runtime_error(
      "fleet: no shard binary — set FleetConfig::shard_binary or "
      "$MDM_FLEET_SHARDD (this binary was built without MDM_SHARDD_PATH)");
#endif
}

}  // namespace

Router::Router(FleetConfig config)
    : config_(std::move(config)),
      shard_binary_(resolve_shard_binary(config_)),
      cache_(config_.cache_capacity),
      retry_rng_(config_.retry_seed) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.workers_per_shard < 1) config_.workers_per_shard = 1;
  if (config_.threads_per_job < 1) config_.threads_per_job = 1;
  if (config_.retry_max_attempts < 0) config_.retry_max_attempts = 0;
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
  }
  reg().gauge("fleet.shards").set(config_.shards);
}

Router::~Router() { stop(); }

void Router::start() {
  std::lock_guard lock(mutex_);
  if (started_ || stopping_) return;
  started_ = true;
  if (!config_.root.empty()) {
    std::error_code ec;
    fs::create_directories(config_.root, ec);
  }
  for (int i = 0; i < config_.shards; ++i) {
    if (!spawn_shard_locked(i))
      throw std::runtime_error("fleet: failed to spawn shard " +
                               std::to_string(i));
  }
  maintenance_ = std::thread([this] { maintenance_main(); });
}

bool Router::spawn_shard_locked(int index) {
  Shard& sh = *shards_[index];
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    return false;

  // argv assembled before fork: the child window is exec-only.
  const std::vector<std::string> args = {
      shard_binary_,
      "--ipc-fd", std::to_string(kShardFd),
      "--workers", std::to_string(config_.workers_per_shard),
      "--threads-per-job", std::to_string(config_.threads_per_job),
      "--queue-cap", std::to_string(config_.shard_queue_cap),
      "--shard-index", std::to_string(index),
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only, straight into exec. Every other
    // inherited fd (other shards' sockets) is CLOEXEC and vanishes here.
    if (sv[1] == kShardFd) {
      const int flags = ::fcntl(sv[1], F_GETFD);
      ::fcntl(sv[1], F_SETFD, flags & ~FD_CLOEXEC);
    } else {
      ::dup2(sv[1], kShardFd);  // dup2 clears CLOEXEC on the new fd
    }
    ::execv(shard_binary_.c_str(), argv.data());
    ::_exit(127);
  }

  ::close(sv[1]);
  sh.pid = pid;
  sh.fd = sv[0];
  sh.alive = true;
  sh.draining = false;
  ++sh.generation;
  sh.last_ping = sh.last_pong = Clock::now();
  if (sh.reader.joinable()) graveyard_.push_back(std::move(sh.reader));
  sh.reader = std::thread(
      [this, index, gen = sh.generation, fd = sv[0]] {
        reader_main(index, gen, fd);
      });
  int alive = 0;
  for (const auto& s : shards_) alive += s->alive ? 1 : 0;
  reg().gauge("fleet.shards.alive").set(alive);
  MDM_LOG_INFO("fleet: shard %d up (pid %d, generation %llu)", index,
               static_cast<int>(pid),
               static_cast<unsigned long long>(sh.generation));
  return true;
}

bool Router::send_to_shard(Shard& shard, MsgType type,
                           const std::vector<char>& payload) {
  std::lock_guard lock(shard.send_mutex);
  return send_frame(shard.fd, type, payload);
}

int Router::pick_shard_locked(std::uint64_t hash, int exclude) const {
  const int n = static_cast<int>(shards_.size());
  for (int probe = 0; probe < n; ++probe) {
    const int idx = static_cast<int>((hash + static_cast<std::uint64_t>(
                                                 probe)) %
                                     static_cast<std::uint64_t>(n));
    if (idx == exclude) continue;
    if (shards_[idx]->alive && !shards_[idx]->draining) return idx;
  }
  return -1;
}

double Router::backoff_ms_locked(int attempt) {
  double base = config_.retry_base_ms;
  for (int i = 1; i < attempt; ++i) base *= 2.0;
  base = std::min(base, config_.retry_max_ms);
  return base * retry_rng_.uniform(0.5, 1.5);  // full jitter band
}

void Router::dispatch_locked(std::uint64_t id, PendingJob& rec,
                             int exclude) {
  const int idx = pick_shard_locked(rec.hash, exclude);
  if (idx < 0) {
    // Nothing routable right now (all dead or draining): park and let the
    // maintenance thread re-dispatch once a shard comes back.
    rec.shard = -1;
    rec.waiting_retry = true;
    rec.retry_at = after_ms(Clock::now(), config_.repark_ms);
    return;
  }
  rec.shard = idx;
  rec.waiting_retry = false;
  rec.cancel_sent = false;
  send_to_shard(*shards_[idx], MsgType::kSubmit,
                encode_submit(id, rec.spec));
  // A failed send means the shard just died; its reader will observe the
  // EOF and migrate this job with the rest.
}

JobHandle Router::submit(const JobSpec& spec) {
  reg().counter("fleet.submitted").add(1);
  std::lock_guard lock(mutex_);
  auto job = std::make_shared<Job>(next_id_++, spec);
  if (stopping_) {
    JobResult r;
    r.state = JobState::kRejected;
    r.error = "Overloaded: fleet stopped";
    job->finalize(std::move(r));
    reg().counter("fleet.rejected").add(1);
    return JobHandle(job);
  }

  PendingJob rec;
  rec.job = job;
  rec.spec = spec;
  rec.hash = canonical_job_hash(spec);
  rec.cache_key = canonical_job_key(spec);
  if (rec.spec.checkpoint_interval > 0) {
    if (rec.spec.checkpoint_dir.empty() && !config_.root.empty())
      rec.spec.checkpoint_dir =
          config_.root + "/job-" + std::to_string(job->id());
    // Manifests on: a fleet job must carry its trajectory prefix to be
    // migratable with a complete, bit-identical result.
    if (!rec.spec.checkpoint_dir.empty()) rec.spec.resume_manifest = true;
  }

  if (config_.cache_enabled) {
    if (auto cached = cache_.lookup(rec.cache_key)) {
      JobResult r = std::move(*cached);
      r.wait_ms = 0.0;
      r.run_ms = 0.0;
      r.trace_id = job->trace_id();
      job->push_stream_samples(r.samples);
      job->finalize(std::move(r));
      reg().counter("fleet.completed").add(1);
      return JobHandle(job);
    }
    if (const auto key_it = inflight_by_key_.find(rec.cache_key);
        key_it != inflight_by_key_.end()) {
      if (const auto pit = pending_.find(key_it->second);
          pit != pending_.end()) {
        // Coalesce: ride the identical in-flight primary. Catch up on the
        // chunks it already streamed, then share every later one.
        job->push_stream_samples(pit->second.job->stream_since(0));
        pit->second.followers.push_back(job);
        reg().counter("fleet.cache.coalesced").add(1);
        return JobHandle(job);
      }
    }
    inflight_by_key_[rec.cache_key] = job->id();
  }

  const std::uint64_t id = job->id();
  auto [pit, inserted] = pending_.emplace(id, std::move(rec));
  (void)inserted;
  dispatch_locked(id, pit->second);
  return JobHandle(job);
}

void Router::finalize_locked(std::uint64_t id, JobResult result) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingJob& rec = it->second;

  // Stream the tail pollers haven't seen (kDone carries the full
  // trajectory; chunks only cover what was flushed before completion).
  std::vector<Sample> tail;
  for (const auto& s : result.samples)
    if (s.step > rec.last_streamed_step) tail.push_back(s);
  if (!tail.empty()) {
    rec.job->push_stream_samples(tail);
    for (const auto& f : rec.followers) f->push_stream_samples(tail);
  }

  if (config_.cache_enabled) {
    cache_.insert(rec.cache_key, result);
    if (const auto key_it = inflight_by_key_.find(rec.cache_key);
        key_it != inflight_by_key_.end() && key_it->second == id)
      inflight_by_key_.erase(key_it);
  }

  const char* counter = nullptr;
  switch (result.state) {
    case JobState::kCompleted: counter = "fleet.completed"; break;
    case JobState::kFailed: counter = "fleet.failed"; break;
    case JobState::kCancelled: counter = "fleet.cancelled"; break;
    case JobState::kRejected: counter = "fleet.rejected"; break;
    case JobState::kDeadlineExceeded: counter = "fleet.shed.deadline"; break;
    default: break;
  }
  const auto bump = [&] { if (counter) reg().counter(counter).add(1); };
  for (const auto& f : rec.followers) {
    JobResult fr = result;
    fr.trace_id = f->trace_id();
    f->finalize(std::move(fr));
    bump();
  }
  result.trace_id = rec.job->trace_id();
  rec.job->finalize(std::move(result));
  bump();

  pending_.erase(it);
  if (pending_.empty()) idle_cv_.notify_all();
}

void Router::reader_main(int index, std::uint64_t generation, int fd) {
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = recv_frame(fd);
    } catch (const std::exception& e) {
      MDM_LOG_WARN("fleet: shard %d stream corrupt: %s", index, e.what());
      frame = std::nullopt;
    }
    if (!frame) break;

    std::lock_guard lock(mutex_);
    Shard& sh = *shards_[index];
    if (sh.generation != generation) break;  // stale reader: a respawn won

    switch (frame->type) {
      case MsgType::kHello:
        sh.last_pong = Clock::now();
        break;
      case MsgType::kAccepted: {
        const auto it = pending_.find(decode_id(*frame));
        if (it != pending_.end() && it->second.shard == index)
          it->second.job->mark_running();
        break;
      }
      case MsgType::kRejected: {
        std::uint64_t id = 0;
        std::string error;
        decode_reject(*frame, id, error);
        const auto it = pending_.find(id);
        if (it == pending_.end() || it->second.shard != index) break;
        PendingJob& rec = it->second;
        if (is_overloaded(error) &&
            rec.attempts < config_.retry_max_attempts && !stopping_) {
          // Bounded retry with exponential backoff + jitter; the
          // maintenance thread re-dispatches at retry_at.
          ++rec.attempts;
          reg().counter("fleet.retries").add(1);
          rec.shard = -1;
          rec.waiting_retry = true;
          rec.retry_at =
              after_ms(Clock::now(), backoff_ms_locked(rec.attempts));
        } else {
          JobResult r;
          r.state = JobState::kRejected;
          r.error = std::move(error);
          finalize_locked(id, std::move(r));
        }
        break;
      }
      case MsgType::kChunk: {
        std::uint64_t id = 0;
        std::vector<Sample> samples;
        decode_chunk(*frame, id, samples);
        const auto it = pending_.find(id);
        if (it == pending_.end() || it->second.shard != index) break;
        PendingJob& rec = it->second;
        // Dedup across migration: a resumed shard re-streams its manifest
        // prefix; only forward steps the client hasn't seen.
        std::vector<Sample> fresh;
        for (const auto& s : samples)
          if (s.step > rec.last_streamed_step) fresh.push_back(s);
        if (fresh.empty()) break;
        rec.last_streamed_step = fresh.back().step;
        rec.job->push_stream_samples(fresh);
        for (const auto& f : rec.followers) f->push_stream_samples(fresh);
        reg().counter("fleet.chunks").add(1);
        break;
      }
      case MsgType::kDone: {
        std::uint64_t id = 0;
        JobResult result;
        decode_done(*frame, id, result);
        const auto it = pending_.find(id);
        if (it == pending_.end() || it->second.shard != index) break;
        PendingJob& rec = it->second;
        if (result.state == JobState::kCancelled &&
            !rec.job->cancel_requested() && !stopping_) {
          // The shard drained (SIGTERM) under this job, not the client:
          // its (checkpoint, manifest) pair is on disk, so reroute — the
          // next shard resumes at the persisted step.
          reg().counter("fleet.migrated").add(1);
          dispatch_locked(id, rec, /*exclude=*/index);
          break;
        }
        finalize_locked(id, std::move(result));
        break;
      }
      case MsgType::kPong: {
        const ShardStats stats = decode_pong(*frame);
        sh.last_pong = Clock::now();
        sh.stats = stats;
        const std::string prefix =
            "fleet.shard." + std::to_string(index) + ".";
        reg().gauge(prefix + "running").set(stats.running);
        reg().gauge(prefix + "queued").set(stats.queued);
        reg().gauge(prefix + "completed").set(double(stats.completed));
        break;
      }
      case MsgType::kDraining:
        sh.draining = true;
        MDM_LOG_INFO("fleet: shard %d draining", index);
        break;
      case MsgType::kDrained:
        MDM_LOG_INFO("fleet: shard %d drained cleanly", index);
        break;
      default:
        MDM_LOG_WARN("fleet: unexpected frame '%s' from shard %d",
                     to_string(frame->type), index);
        break;
    }
  }

  {
    std::lock_guard lock(mutex_);
    handle_shard_down_locked(index, generation, "socket closed");
  }
  ::close(fd);
}

void Router::handle_shard_down_locked(int index, std::uint64_t generation,
                                      const char* reason) {
  Shard& sh = *shards_[index];
  if (sh.generation != generation || !sh.alive) return;  // already handled
  sh.alive = false;
  sh.draining = false;
  if (sh.pid > 0) {
    zombies_.emplace_back(sh.pid, index);
    sh.pid = -1;
  }

  int alive = 0;
  for (const auto& s : shards_) alive += s->alive ? 1 : 0;
  reg().gauge("fleet.shards.alive").set(alive);
  // During stop() the reader observing the socket close is the orderly
  // shutdown handshake, not a failover — don't alarm or count it.
  if (!stopping_) {
    reg().counter("fleet.failovers").add(1);
    MDM_LOG_WARN("fleet: shard %d down (%s)", index, reason);
    obs::FlightRecorder::record(obs::FlightKind::kNote, "fleet.shard_down",
                                index, static_cast<std::int64_t>(generation));
    if (!config_.root.empty())
      obs::FlightRecorder::write_json_file(config_.root + "/fleet-shard-" +
                                           std::to_string(index) +
                                           "-down.json");
  }

  // Migrate every in-flight job of the dead shard. Collect ids first:
  // finalize_locked mutates pending_.
  std::vector<std::uint64_t> victims;
  for (const auto& [id, rec] : pending_)
    if (rec.shard == index) victims.push_back(id);
  for (const std::uint64_t id : victims) {
    PendingJob& rec = pending_.at(id);
    if (rec.job->cancel_requested() || stopping_) {
      JobResult r;
      r.state = JobState::kCancelled;
      r.error = stopping_ ? "fleet stopped" : "cancelled";
      finalize_locked(id, std::move(r));
      continue;
    }
    reg().counter("fleet.migrated").add(1);
    dispatch_locked(id, rec, /*exclude=*/index);
  }

  if (!stopping_ && sh.restarts < config_.max_restarts_per_shard) {
    ++sh.restarts;
    reg().counter("fleet.shard.restarts").add(1);
    if (!spawn_shard_locked(index))
      MDM_LOG_ERROR("fleet: failed to respawn shard %d", index);
  }
}

void Router::maintenance_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (maint_cv_.wait_for(lock, std::chrono::milliseconds(10),
                           [&] { return stopping_; }))
      return;
    const auto now = Clock::now();

    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (!sh.alive) continue;
      if (ms_since(sh.last_ping, now) >= config_.heartbeat_ms) {
        sh.last_ping = now;
        send_to_shard(sh, MsgType::kPing, encode_id(++sh.ping_seq));
      }
      if (ms_since(sh.last_pong, now) > config_.heartbeat_timeout_ms) {
        // Deadline missed: declare it dead and make it so, then migrate.
        if (sh.pid > 0) ::kill(sh.pid, SIGKILL);
        handle_shard_down_locked(sh.index, sh.generation,
                                 "heartbeat timeout");
      }
    }

    // Reap exited children: live shards that died silently, and zombies
    // left behind by earlier failovers.
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (!sh.alive || sh.pid <= 0) continue;
      int status = 0;
      if (::waitpid(sh.pid, &status, WNOHANG) == sh.pid) {
        exit_status_[sh.index] = decode_wait_status(status);
        sh.pid = -1;
        handle_shard_down_locked(sh.index, sh.generation, "process exited");
      }
    }
    for (auto it = zombies_.begin(); it != zombies_.end();) {
      int status = 0;
      if (::waitpid(it->first, &status, WNOHANG) == it->first) {
        exit_status_[it->second] = decode_wait_status(status);
        it = zombies_.erase(it);
      } else {
        ++it;
      }
    }

    // Re-dispatch parked jobs whose backoff expired; propagate cancels.
    for (auto& [id, rec] : pending_) {
      if (rec.waiting_retry && now >= rec.retry_at) {
        if (rec.job->cancel_requested()) {
          JobResult r;
          r.state = JobState::kCancelled;
          r.error = "cancelled while queued";
          finalize_locked(id, std::move(r));
          break;  // finalize_locked invalidated the iterator
        }
        dispatch_locked(id, rec);
      } else if (rec.shard >= 0 && !rec.cancel_sent &&
                 rec.job->cancel_requested()) {
        rec.cancel_sent = true;
        send_to_shard(*shards_[rec.shard], MsgType::kCancel,
                      encode_id(id));
      }
    }
  }
}

void Router::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return pending_.empty(); });
}

void Router::drain_for(double timeout_ms) {
  std::unique_lock lock(mutex_);
  const auto timeout = std::chrono::duration<double, std::milli>(timeout_ms);
  if (idle_cv_.wait_for(lock, timeout, [&] { return pending_.empty(); }))
    return;
  std::string who;
  int named = 0;
  for (const auto& [id, rec] : pending_) {
    if (!who.empty()) who += "; ";
    who += rec.job->describe();
    if (rec.shard >= 0) who += " on shard " + std::to_string(rec.shard);
    ++named;
  }
  throw JobWaitTimeout("fleet drain timed out after " +
                       std::to_string(timeout_ms) + " ms waiting on " +
                       std::to_string(named) + " job(s): " + who);
}

int Router::alive_shards() const {
  std::lock_guard lock(mutex_);
  int alive = 0;
  for (const auto& s : shards_) alive += s->alive ? 1 : 0;
  return alive;
}

std::size_t Router::pending_jobs() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

pid_t Router::shard_pid(int index) const {
  std::lock_guard lock(mutex_);
  return shards_[static_cast<std::size_t>(index)]->pid;
}

bool Router::signal_shard(int index, int sig) {
  std::lock_guard lock(mutex_);
  const pid_t pid = shards_[static_cast<std::size_t>(index)]->pid;
  return pid > 0 && ::kill(pid, sig) == 0;
}

void Router::drain_shard(int index) {
  std::lock_guard lock(mutex_);
  Shard& sh = *shards_[static_cast<std::size_t>(index)];
  if (sh.alive) send_to_shard(sh, MsgType::kDrain, {});
}

std::optional<int> Router::shard_exit_status(int index) const {
  std::lock_guard lock(mutex_);
  const auto it = exit_status_.find(index);
  if (it == exit_status_.end()) return std::nullopt;
  return it->second;
}

void Router::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& shp : shards_)
      if (shp->alive) send_to_shard(*shp, MsgType::kShutdown, {});
  }
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();

  // Give every child a grace window to flush + exit, then make sure.
  const auto deadline = after_ms(Clock::now(), 5000.0);
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    pid_t pid;
    {
      std::lock_guard lock(mutex_);
      pid = sh.pid;
      sh.pid = -1;
    }
    if (pid <= 0) continue;
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || r < 0) break;
      if (Clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      ::usleep(2000);
    }
    std::lock_guard lock(mutex_);
    exit_status_[sh.index] = decode_wait_status(status);
  }
  {
    std::lock_guard lock(mutex_);
    for (auto& [pid, index] : zombies_) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      exit_status_[index] = decode_wait_status(status);
    }
    zombies_.clear();
  }

  // Children are gone, so every reader has hit EOF and returned.
  for (auto& shp : shards_)
    if (shp->reader.joinable()) shp->reader.join();
  for (auto& t : graveyard_)
    if (t.joinable()) t.join();
  graveyard_.clear();

  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> leftovers;
  for (const auto& [id, rec] : pending_) leftovers.push_back(id);
  for (const std::uint64_t id : leftovers) {
    JobResult r;
    r.state = JobState::kCancelled;
    r.error = "fleet stopped";
    finalize_locked(id, std::move(r));
  }
  reg().gauge("fleet.shards.alive").set(0);
}

}  // namespace mdm::serve::fleet
