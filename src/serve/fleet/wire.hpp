#pragma once

/// \file wire.hpp
/// IPC wire protocol between the fleet Router and its shard processes
/// (DESIGN.md §13). One SOCK_STREAM socketpair per shard carries
/// length-prefixed frames:
///
///   u32 payload_len | u16 type | payload
///
/// Payloads are serialized with the same bounds-checked byte cursors as the
/// checkpoint formats (core/checkpoint_io), so a torn or malicious frame
/// fails loudly with offsets instead of reading garbage. All sends use
/// MSG_NOSIGNAL — a dead peer surfaces as a failed send / EOF on recv,
/// never SIGPIPE.
///
/// Framing discipline: a frame is written with one buffered send per call,
/// so concurrent writers need external serialization (the router keeps a
/// per-shard send mutex; the shard's loop is single-threaded).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace mdm::serve::fleet {

inline constexpr std::uint32_t kWireVersion = 1;

enum class MsgType : std::uint16_t {
  // router -> shard
  kSubmit = 1,    ///< u64 job id + JobSpec
  kCancel = 2,    ///< u64 job id
  kPing = 3,      ///< u64 seq
  kDrain = 4,     ///< graceful drain (same path as SIGTERM)
  kShutdown = 5,  ///< stop service, exit 0
  // shard -> router
  kHello = 100,     ///< u64 wire version (first frame after exec)
  kAccepted = 101,  ///< u64 job id admitted on the shard
  kRejected = 102,  ///< u64 job id + reason (admission said Overloaded)
  kChunk = 103,     ///< u64 job id + streamed trajectory samples
  kDone = 104,      ///< u64 job id + terminal JobResult
  kPong = 105,      ///< ShardStats (echoes the ping seq)
  kDraining = 106,  ///< drain started; route no new work here
  kDrained = 107,   ///< every in-flight job flushed; exiting 0
};

const char* to_string(MsgType type);

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<char> payload;
};

/// Liveness numbers piggybacked on every pong.
struct ShardStats {
  std::uint64_t seq = 0;  ///< ping seq being answered
  std::int32_t running = 0;
  std::int32_t queued = 0;
  std::uint64_t completed = 0;  ///< jobs finalized on this shard, ever
};

/// Write one frame; false when the peer is gone (EPIPE/ECONNRESET). The
/// caller must serialize concurrent sends on one fd.
bool send_frame(int fd, MsgType type, const std::vector<char>& payload);
/// Read one frame, blocking; nullopt on EOF or error (peer died). Throws
/// CheckpointError on a structurally invalid frame (oversized length).
std::optional<Frame> recv_frame(int fd);

// ---- payload codecs (decode_* throw CheckpointError on malformed data) ----
std::vector<char> encode_id(std::uint64_t id);
std::uint64_t decode_id(const Frame& frame);

std::vector<char> encode_submit(std::uint64_t job_id, const JobSpec& spec);
void decode_submit(const Frame& frame, std::uint64_t& job_id, JobSpec& spec);

std::vector<char> encode_reject(std::uint64_t job_id,
                                const std::string& error);
void decode_reject(const Frame& frame, std::uint64_t& job_id,
                   std::string& error);

std::vector<char> encode_chunk(std::uint64_t job_id,
                               const std::vector<Sample>& samples);
void decode_chunk(const Frame& frame, std::uint64_t& job_id,
                  std::vector<Sample>& samples);

std::vector<char> encode_done(std::uint64_t job_id, const JobResult& result);
void decode_done(const Frame& frame, std::uint64_t& job_id,
                 JobResult& result);

std::vector<char> encode_pong(const ShardStats& stats);
ShardStats decode_pong(const Frame& frame);

}  // namespace mdm::serve::fleet
