#include "serve/service.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/runner.hpp"
#include "util/thread_pool.hpp"

namespace mdm::serve {
namespace {

obs::Registry& reg() { return obs::Registry::global(); }

double ms_between(Job::Clock::time_point a, Job::Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Per-tenant SLO counter: tenant ids are caller-controlled strings; the
/// registry JSON dump escapes them (obs/metrics.cpp).
void bump_tenant(const std::string& tenant, const char* what) {
  reg().counter("serve.tenant." + tenant + "." + what).add(1);
}

}  // namespace

SimService::SimService(ServiceConfig config)
    : config_(std::move(config)), admission_(config_.admission) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.threads_per_job < 1) config_.threads_per_job = 1;
  reg().gauge("serve.workers").set(config_.workers);
}

SimService::~SimService() { stop(); }

void SimService::start() {
  std::lock_guard lock(mutex_);
  if (started_ || stop_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

void SimService::stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
    workers.swap(workers_);
    // Running jobs stop cooperatively at their next step boundary.
    for (const auto& job : active_) job->request_cancel();
  }
  cv_.notify_all();
  for (auto& w : workers) w.join();
  // Finalize whatever is still queued (start() was never called, or jobs
  // outnumbered what the workers drained before stopping).
  std::lock_guard lock(mutex_);
  while (auto job = queue_.pop()) {
    JobResult r;
    r.state = JobState::kCancelled;
    r.error = "service stopped";
    r.wait_ms = ms_between(job->submit_time(), Job::Clock::now());
    finalize_locked(*job, std::move(r), /*was_running=*/false);
  }
  reg().gauge("serve.queue.depth").set(0);
}

JobHandle SimService::submit(const JobSpec& spec) {
  reg().counter("serve.submitted").add(1);
  bump_tenant(spec.tenant, "submitted");
  std::lock_guard lock(mutex_);
  auto job = std::make_shared<Job>(next_id_++, spec);
  // The job's trace starts here: the admission decision is its first span.
  obs::TraceContextScope trace_scope(job->trace_context());
  obs::TraceSpan admission_span("serve.admission");
  obs::FlightRecorder::record(obs::FlightKind::kNote, "serve.submit",
                              static_cast<std::int64_t>(job->id()));
  if (stop_) {
    JobResult r;
    r.state = JobState::kRejected;
    // "Overloaded" prefix: a draining service looks exactly like an
    // overloaded one to clients, so the fleet router's retry policy treats
    // both the same (back off and try another shard).
    r.error = "Overloaded: service stopped";
    job->finalize(std::move(r));
    reg().counter("serve.rejected.stopped").add(1);
    return JobHandle(job);
  }
  const auto decision = admission_.decide(spec, queue_.size());
  if (decision != AdmissionController::Decision::kAdmit) {
    JobResult r;
    r.state = JobState::kRejected;
    r.error = AdmissionController::reason(decision);
    job->finalize(std::move(r));
    reg().counter(decision == AdmissionController::Decision::kQueueFull
                      ? "serve.rejected.queue_depth"
                      : "serve.rejected.memory")
        .add(1);
    bump_tenant(spec.tenant, "rejected");
    MDM_LOG_DEBUG("serve: job %llu rejected: %s",
                  static_cast<unsigned long long>(job->id()),
                  job->snapshot().error.c_str());
    return JobHandle(job);
  }
  admission_.acquire(spec);
  queue_.push(job);
  ++unfinished_;
  reg().counter("serve.admitted").add(1);
  reg().gauge("serve.queue.depth").set(double(queue_.size()));
  reg().gauge("serve.inflight_bytes").set(double(admission_.inflight_bytes()));
  cv_.notify_one();
  return JobHandle(job);
}

void SimService::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return unfinished_ == 0; });
}

void SimService::drain_for(double timeout_ms) {
  std::unique_lock lock(mutex_);
  const auto timeout = std::chrono::duration<double, std::milli>(timeout_ms);
  if (idle_cv_.wait_for(lock, timeout, [&] { return unfinished_ == 0; }))
    return;
  // Name exactly who the drain is stuck on (running first, then queued) —
  // the serve analogue of the vmpi who-waits-on-whom deadlock dump.
  std::string who;
  int named = 0;
  for (const auto& job : active_) {
    if (!who.empty()) who += "; ";
    who += job->describe();
    ++named;
  }
  for (const auto& job : queue_.snapshot()) {
    if (!who.empty()) who += "; ";
    who += job->describe();
    ++named;
  }
  char head[96];
  std::snprintf(head, sizeof head,
                "drain timed out after %.1f ms waiting on %d job(s): ",
                timeout_ms, named);
  throw JobWaitTimeout(head + who);
}

std::size_t SimService::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

int SimService::running_jobs() const {
  std::lock_guard lock(mutex_);
  return running_;
}

void SimService::finalize_locked(Job& job, JobResult result,
                                 bool was_running) {
  const std::string& tenant = job.spec().tenant;
  if (was_running) {
    --running_;
    queue_.note_finished(tenant);
    reg().gauge("serve.running").set(running_);
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->get() == &job) {
        active_.erase(it);
        break;
      }
    }
  }
  admission_.release(job.spec());
  reg().gauge("serve.inflight_bytes").set(double(admission_.inflight_bytes()));

  switch (result.state) {
    case JobState::kCompleted:
      reg().counter("serve.completed").add(1);
      bump_tenant(tenant, "completed");
      if (result.resumed_from_step > 0) reg().counter("serve.resumed").add(1);
      break;
    case JobState::kCancelled:
      reg().counter("serve.cancelled").add(1);
      bump_tenant(tenant, "cancelled");
      break;
    case JobState::kFailed:
      reg().counter("serve.failed").add(1);
      bump_tenant(tenant, "failed");
      MDM_LOG_WARN("serve: job %llu failed: %s",
                   static_cast<unsigned long long>(job.id()),
                   result.error.c_str());
      break;
    case JobState::kDeadlineExceeded:
      reg().counter("serve.shed.deadline").add(1);
      bump_tenant(tenant, "shed");
      break;
    default:
      break;
  }
  reg().histogram("serve.wait_ms").observe(result.wait_ms);
  if (was_running) {
    reg().histogram("serve.run_ms").observe(result.run_ms);
    reg().histogram("serve.total_ms")
        .observe(result.wait_ms + result.run_ms);
  }
  result.trace_id = job.trace_id();
  // Per-job span summary (DESIGN.md §10): with tracing on, aggregate this
  // job's trace by span name — queue wait, run time, checkpoint overhead,
  // per-rank phases — into serve.span.* histograms (milliseconds).
  if (obs::Trace::enabled()) {
    for (const auto& stat : obs::Trace::summarize(job.trace_id()))
      reg().histogram("serve.span." + stat.name)
          .observe(static_cast<double>(stat.total_ns) * 1e-6);
  }
  job.finalize(std::move(result));
  if (--unfinished_ == 0) idle_cv_.notify_all();
}

void SimService::worker_main() {
  // Each worker owns its job-sized slice; K workers x threads_per_job is
  // the hard ceiling on engine threads (the worker thread itself runs
  // chunk 0 of every fan-out, so a slice of size T uses T OS threads).
  ThreadPool slice(config_.threads_per_job);
  for (;;) {
    std::shared_ptr<Job> job;
    Job::Clock::time_point popped_tp;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      job = queue_.pop();
      reg().gauge("serve.queue.depth").set(double(queue_.size()));
      popped_tp = Job::Clock::now();
      const double wait_ms = ms_between(job->submit_time(), popped_tp);

      if (stop_ || job->cancel_requested()) {
        JobResult r;
        r.state = JobState::kCancelled;
        r.error = stop_ ? "service stopped" : "cancelled while queued";
        r.wait_ms = wait_ms;
        finalize_locked(*job, std::move(r), /*was_running=*/false);
        continue;
      }
      if (job->has_deadline() && popped_tp > job->deadline()) {
        JobResult r;
        r.state = JobState::kDeadlineExceeded;
        r.error = "DeadlineExceeded: waited " + std::to_string(wait_ms) +
                  " ms, deadline " +
                  std::to_string(job->spec().deadline_ms) + " ms";
        r.wait_ms = wait_ms;
        finalize_locked(*job, std::move(r), /*was_running=*/false);
        continue;
      }

      job->mark_running();
      queue_.note_started(job->spec().tenant);
      ++running_;
      active_.push_back(job);
      reg().gauge("serve.running").set(running_);
    }

    // ---- run outside the lock, inside the job's trace ----
    obs::TraceContextScope trace_scope(job->trace_context());
    // The queue span covers submit -> pop on the trace clock, completing
    // the admission/queue/run/complete decomposition of the job's life.
    obs::Trace::record_complete("serve.queue", job->submit_trace_ns(),
                                obs::Trace::now_ns());
    RunOptions options;
    options.pool = &slice;
    options.cancel = job->cancel_flag();
    options.checkpoint_on_cancel = config_.checkpoint_on_cancel;
    if (config_.stream_samples)
      options.on_sample = [&job](const Sample& s) {
        job->push_stream_sample(s);
      };
    JobResult result;
    const JobSpec& spec = job->spec();
    if (spec.checkpoint_interval > 0) {
      if (!spec.checkpoint_dir.empty())
        options.checkpoint_dir = spec.checkpoint_dir;
      else if (!config_.checkpoint_root.empty())
        options.checkpoint_dir = config_.checkpoint_root + "/job-" +
                                 std::to_string(job->id());
    }
    try {
      obs::TraceSpan run_span("serve.run");
      result = run_job(spec, options);
    } catch (const std::exception& e) {
      result.state = JobState::kFailed;
      result.error = e.what();
    } catch (...) {
      result.state = JobState::kFailed;
      result.error = "unknown error";
    }
    const auto finished_tp = Job::Clock::now();
    result.wait_ms = ms_between(job->submit_time(), popped_tp);
    result.run_ms = ms_between(popped_tp, finished_tp);
    {
      const std::uint64_t done_ns = obs::Trace::now_ns();
      obs::Trace::record_complete("serve.complete", done_ns, done_ns);
    }

    {
      std::lock_guard lock(mutex_);
      finalize_locked(*job, std::move(result), /*was_running=*/true);
    }
  }
}

}  // namespace mdm::serve
