#pragma once

/// \file runner.hpp
/// Executes one JobSpec: builds the NaCl system and the software force
/// field (Ewald Coulomb + Tosi-Fumi short range, exactly the
/// examples/nacl_melt.cpp reference path), runs the NVT+NVE protocol on the
/// caller-provided thread-pool slice, and returns the trajectory.
///
/// This free function is the determinism anchor of the service: the
/// scheduler workers and the serial reference runs in tests/benches call the
/// *same* code, so a served job is bit-identical to a standalone run with
/// the same pool size (the real-space sweep is bit-identical at any pool
/// size; the wavenumber DFT reduces per-chunk partials in chunk order and is
/// bit-identical for a fixed pool size — see ewald/ewald.hpp).
///
/// Cancellation is cooperative: `options.cancel` is checked after every
/// completed step; a cancelled run returns kCancelled with the bit-exact
/// trajectory prefix and (with checkpointing on) a valid latest checkpoint
/// generation on disk.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/job.hpp"
#include "util/thread_pool.hpp"

namespace mdm::serve {

struct RunOptions {
  /// Per-job thread slice driving the force loops; nullptr = serial.
  ThreadPool* pool = nullptr;
  /// Cooperative cancel flag, checked at every step boundary. May be null.
  const std::atomic<bool>* cancel = nullptr;
  /// Rotating checkpoint directory; with spec.checkpoint_interval > 0 the
  /// run writes generations there and — if the directory already holds a
  /// valid generation for the same particle count — resumes from it
  /// (PR 4's restore path). Empty disables checkpointing.
  std::string checkpoint_dir;
  int keep_generations = 3;
  /// Live trajectory streaming: called with every recorded sample, in step
  /// order, from the running thread (single-process path only; the parallel
  /// path delivers all samples at completion). Feeds Job::push_stream_sample
  /// for chunked result polling.
  std::function<void(const Sample&)> on_sample;
  /// With checkpointing on: a cooperative cancel writes a checkpoint (and,
  /// in manifest mode, a manifest) at the exact cancel step before
  /// unwinding, so a drained shard's jobs resume with zero recomputation.
  bool checkpoint_on_cancel = false;
  /// Manifest job key override (spec.resume_manifest path). 0 = computed
  /// from canonical_job_hash(spec).
  std::uint64_t manifest_key = 0;
};

/// Run `spec` to completion (kCompleted) or to the first observed cancel
/// (kCancelled). Exceptions from the engine (numerical health, checkpoint
/// I/O) propagate to the caller, which maps them to kFailed.
JobResult run_job(const JobSpec& spec, const RunOptions& options = {});

}  // namespace mdm::serve
