#include "serve/job_queue.hpp"

#include <algorithm>

namespace mdm::serve {

void JobQueue::push(std::shared_ptr<Job> job) {
  const int cls = static_cast<int>(job->spec().job_class);
  auto& bucket = buckets_[cls][job->spec().tenant];
  bucket.push_back(Entry{std::move(job), next_seq_++});
  ++size_;
}

std::shared_ptr<Job> JobQueue::pop() {
  for (auto& tenants : buckets_) {
    if (tenants.empty()) continue;
    // Fair share: tenant with the fewest running jobs, then least served,
    // then smallest name (deterministic tiebreak).
    TenantBuckets::iterator best = tenants.end();
    for (auto it = tenants.begin(); it != tenants.end(); ++it) {
      if (it->second.empty()) continue;
      if (best == tenants.end()) {
        best = it;
        continue;
      }
      const auto& a = shares_[it->first];
      const auto& b = shares_[best->first];
      if (a.running != b.running ? a.running < b.running
                                 : a.served < b.served)
        best = it;
    }
    if (best == tenants.end()) continue;

    // Deadline-aware: earliest deadline first; deadline-free jobs after all
    // deadlined ones, FIFO by sequence.
    auto& entries = best->second;
    auto chosen = std::min_element(
        entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
          const bool xd = x.job->has_deadline();
          const bool yd = y.job->has_deadline();
          if (xd != yd) return xd;  // deadlined first
          if (xd && x.job->deadline() != y.job->deadline())
            return x.job->deadline() < y.job->deadline();
          return x.seq < y.seq;
        });
    std::shared_ptr<Job> job = std::move(chosen->job);
    entries.erase(chosen);
    if (entries.empty()) tenants.erase(best);
    --size_;
    return job;
  }
  return nullptr;
}

void JobQueue::note_started(const std::string& tenant) {
  auto& share = shares_[tenant];
  ++share.running;
  ++share.served;
}

void JobQueue::note_finished(const std::string& tenant) {
  auto& share = shares_[tenant];
  if (share.running > 0) --share.running;
}

int JobQueue::running(const std::string& tenant) const {
  const auto it = shares_.find(tenant);
  return it == shares_.end() ? 0 : it->second.running;
}

std::uint64_t JobQueue::served(const std::string& tenant) const {
  const auto it = shares_.find(tenant);
  return it == shares_.end() ? 0 : it->second.served;
}

std::vector<std::shared_ptr<Job>> JobQueue::snapshot() const {
  std::vector<std::shared_ptr<Job>> out;
  out.reserve(size_);
  for (const auto& tenants : buckets_)
    for (const auto& [tenant, entries] : tenants)
      for (const auto& entry : entries) out.push_back(entry.job);
  return out;
}

}  // namespace mdm::serve
