#include "serve/admission.hpp"

namespace mdm::serve {

std::size_t AdmissionController::estimate_bytes(const JobSpec& spec) {
  // Per particle: positions/velocities/forces + integrator and checkpoint
  // copies + cell-list slots + per-chunk scratch — call it 1 KiB, a
  // deliberate over-estimate. Plus a fixed 4 MiB per job for the k-vector
  // table, phase scratch and sample storage.
  const auto n = static_cast<std::size_t>(spec.particle_count());
  return n * 1024 + (std::size_t(4) << 20);
}

AdmissionController::Decision AdmissionController::decide(
    const JobSpec& spec, std::size_t queue_depth) const {
  if (queue_depth >= config_.max_queue_depth) return Decision::kQueueFull;
  if (inflight_bytes_ + estimate_bytes(spec) > config_.max_inflight_bytes)
    return Decision::kMemoryBudget;
  return Decision::kAdmit;
}

void AdmissionController::acquire(const JobSpec& spec) {
  inflight_bytes_ += estimate_bytes(spec);
}

void AdmissionController::release(const JobSpec& spec) {
  const std::size_t bytes = estimate_bytes(spec);
  inflight_bytes_ = inflight_bytes_ >= bytes ? inflight_bytes_ - bytes : 0;
}

std::string AdmissionController::reason(Decision decision) {
  switch (decision) {
    case Decision::kAdmit: return "admitted";
    case Decision::kQueueFull: return "Overloaded: queue depth cap reached";
    case Decision::kMemoryBudget:
      return "Overloaded: in-flight memory budget exceeded";
  }
  return "unknown";
}

}  // namespace mdm::serve
