#include "serve/job.hpp"

#include "obs/trace.hpp"

namespace mdm::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
    case JobState::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

const char* to_string(JobClass job_class) {
  switch (job_class) {
    case JobClass::kInteractive: return "interactive";
    case JobClass::kBatch: return "batch";
    case JobClass::kBestEffort: return "best-effort";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

Job::Job(std::uint64_t id, JobSpec spec)
    : id_(id),
      spec_(std::move(spec)),
      trace_ctx_(obs::TraceContext::mint()),
      submit_trace_ns_(obs::Trace::now_ns()),
      submit_tp_(Clock::now()),
      deadline_tp_(spec_.deadline_ms > 0.0
                       ? submit_tp_ + std::chrono::duration_cast<
                                          Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 spec_.deadline_ms))
                       : Clock::time_point::max()) {}

JobState Job::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

bool Job::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

JobResult Job::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

JobResult Job::snapshot() const {
  std::lock_guard lock(mutex_);
  if (done_) return result_;
  JobResult r;
  r.state = state_;
  return r;
}

void Job::mark_running() {
  std::lock_guard lock(mutex_);
  if (!done_) state_ = JobState::kRunning;
}

bool Job::finalize(JobResult result) {
  {
    std::lock_guard lock(mutex_);
    if (done_) return false;  // exactly-once: a job can never complete twice
    state_ = result.state;
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
  return true;
}

}  // namespace mdm::serve
