#include "serve/job.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/trace.hpp"
#include "scenario/parser.hpp"

namespace mdm::serve {
namespace {

void append_kv(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += ';';
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string canonical_job_key(const JobSpec& spec) {
  // Physics-relevant fields only, in a fixed order with fixed formatting.
  // Tenant / class / deadline / checkpoint placement deliberately excluded:
  // they never change the computed trajectory.
  std::string key;
  key.reserve(256);
  append_kv(key, "cells", std::to_string(spec.cells));
  append_kv(key, "nvt", std::to_string(spec.nvt_steps));
  append_kv(key, "nve", std::to_string(spec.nve_steps));
  append_kv(key, "T", format_double(spec.temperature_K));
  append_kv(key, "dt", format_double(spec.dt_fs));
  append_kv(key, "seed", std::to_string(spec.seed));
  append_kv(key, "preal", std::to_string(spec.parallel_real));
  append_kv(key, "pwn", std::to_string(spec.parallel_wn));
  append_kv(key, "solver", spec.solver);
  append_kv(key, "acc", format_double(spec.accuracy_target));
  append_kv(key, "pmegrid", std::to_string(spec.pme_grid));
  append_kv(key, "pmeorder", std::to_string(spec.pme_order));
  append_kv(key, "backend", std::to_string(static_cast<int>(spec.backend)));
  if (!spec.scenario.empty()) {
    // The *full canonical* scenario text, so two scenarios differing in any
    // physics field — even one the flat fields above cannot express — can
    // never share a key (and thus never collide in the fleet result cache).
    // Canonicalising first (fixed section/key order, %.17g doubles) makes
    // the key independent of comment/whitespace/ordering differences; an
    // unparsable text falls back to the raw string, which still separates
    // distinct inputs. analysis_dir stays excluded: it changes where the
    // analysis files land, never the trajectory.
    std::string canonical;
    try {
      canonical = scenario::parse_scenario(spec.scenario).canonical_text();
    } catch (const scenario::ScenarioError&) {
      canonical = spec.scenario;
    }
    append_kv(key, "scenario", canonical);
  }
  return key;
}

std::uint64_t canonical_job_hash(const JobSpec& spec) {
  const std::string key = canonical_job_key(spec);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  if (h == 0) h = 1;  // 0 means "not enforced" in the manifest contract
  return h;
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
    case JobState::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

const char* to_string(JobClass job_class) {
  switch (job_class) {
    case JobClass::kInteractive: return "interactive";
    case JobClass::kBatch: return "batch";
    case JobClass::kBestEffort: return "best-effort";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

Job::Job(std::uint64_t id, JobSpec spec)
    : id_(id),
      spec_(std::move(spec)),
      trace_ctx_(obs::TraceContext::mint()),
      submit_trace_ns_(obs::Trace::now_ns()),
      submit_tp_(Clock::now()),
      deadline_tp_(spec_.deadline_ms > 0.0
                       ? submit_tp_ + std::chrono::duration_cast<
                                          Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 spec_.deadline_ms))
                       : Clock::time_point::max()) {}

JobState Job::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

bool Job::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

JobResult Job::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

JobResult Job::wait_for(double timeout_ms) const {
  std::unique_lock lock(mutex_);
  const auto timeout =
      std::chrono::duration<double, std::milli>(timeout_ms);
  if (cv_.wait_for(lock, timeout, [&] { return done_; })) return result_;
  // Name who the caller is stuck on, vmpi who-waits-on-whom style.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", timeout_ms);
  throw JobWaitTimeout("wait_for timed out after " + std::string(buf) +
                       " ms waiting on " + describe_locked());
}

std::string Job::describe() const {
  std::lock_guard lock(mutex_);
  return describe_locked();
}

std::string Job::describe_locked() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "job %" PRIu64 " (tenant '%s', class %s, %s)", id_,
                spec_.tenant.c_str(), to_string(spec_.job_class),
                to_string(state_));
  return buf;
}

void Job::push_stream_sample(const Sample& sample) {
  std::lock_guard lock(mutex_);
  stream_.push_back(sample);
}

void Job::push_stream_samples(const std::vector<Sample>& samples) {
  std::lock_guard lock(mutex_);
  stream_.insert(stream_.end(), samples.begin(), samples.end());
}

std::size_t Job::stream_size() const {
  std::lock_guard lock(mutex_);
  return stream_.size();
}

std::vector<Sample> Job::stream_since(std::size_t cursor) const {
  std::lock_guard lock(mutex_);
  if (cursor >= stream_.size()) return {};
  return std::vector<Sample>(stream_.begin() + static_cast<long>(cursor),
                             stream_.end());
}

JobResult Job::snapshot() const {
  std::lock_guard lock(mutex_);
  if (done_) return result_;
  JobResult r;
  r.state = state_;
  return r;
}

void Job::mark_running() {
  std::lock_guard lock(mutex_);
  if (!done_) state_ = JobState::kRunning;
}

bool Job::finalize(JobResult result) {
  {
    std::lock_guard lock(mutex_);
    if (done_) return false;  // exactly-once: a job can never complete twice
    state_ = result.state;
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
  return true;
}

}  // namespace mdm::serve
