#pragma once

/// \file job_queue.hpp
/// Scheduling-policy queue of the simulation service (DESIGN.md §9).
/// `pop()` picks the next job by, in order:
///
///  1. **Priority class** — interactive before batch before best-effort.
///  2. **Per-tenant fair share** — among tenants with work queued in that
///     class, the tenant with the fewest running jobs wins; ties go to the
///     tenant that has been *served* least, then to the lexicographically
///     smallest name (a deterministic tiebreak, not a policy statement).
///  3. **Deadline-aware ordering** — within the chosen tenant+class bucket,
///     earliest deadline first; jobs without a deadline come after all
///     deadlined ones, FIFO by submission sequence.
///
/// The queue is NOT thread-safe: SimService serializes every access under
/// its own mutex (the queue is pure policy, the service is the concurrency
/// boundary). This keeps the ordering logic directly unit-testable.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace mdm::serve {

class JobQueue {
 public:
  void push(std::shared_ptr<Job> job);

  /// Next job per the policy above; nullptr when empty. The job is removed
  /// from the queue; the caller decides whether it runs, is shed, or is
  /// finalized as cancelled.
  std::shared_ptr<Job> pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Fair-share accounting, driven by the service around each run.
  void note_started(const std::string& tenant);
  void note_finished(const std::string& tenant);

  /// Running/served counts for a tenant (tests + fairness introspection).
  int running(const std::string& tenant) const;
  std::uint64_t served(const std::string& tenant) const;

  /// Every queued job, in no particular order (drain-timeout dumps).
  std::vector<std::shared_ptr<Job>> snapshot() const;

 private:
  struct TenantShare {
    int running = 0;          ///< jobs of this tenant currently executing
    std::uint64_t served = 0; ///< jobs of this tenant ever started
  };
  struct Entry {
    std::shared_ptr<Job> job;
    std::uint64_t seq = 0;  ///< FIFO tiebreak within tenant+class
  };
  /// bucket[class][tenant] -> entries (unsorted; pop scans for the min —
  /// queues are admission-bounded, so the scan is short).
  using TenantBuckets = std::map<std::string, std::vector<Entry>>;

  static constexpr int kClasses = 3;
  TenantBuckets buckets_[kClasses];
  std::map<std::string, TenantShare> shares_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mdm::serve
