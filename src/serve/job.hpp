#pragma once

/// \file job.hpp
/// Job model of the simulation service (DESIGN.md §9). The MDM machine was
/// operated as a shared facility — many users submitting MD problems to one
/// special-purpose resource — and this module is the unit of that sharing: a
/// `JobSpec` describes one NaCl-melt simulation request (tenant, priority
/// class, deadline, workload), a `Job` is the service-side record with its
/// full lifecycle, and a `JobHandle` is the client-side view (poll / wait /
/// cancel).
///
/// Lifecycle:
///
///   submit -> kQueued -> kRunning -> kCompleted | kFailed | kCancelled
///          \-> kRejected          (admission: queue depth / memory budget)
///          \-> kDeadlineExceeded  (shed: deadline passed before start)
///
/// Cancellation is cooperative: `cancel()` sets a flag that the runner
/// checks at every step boundary, so a cancelled job stops with a valid
/// partial trajectory (and, with checkpointing on, a valid latest
/// checkpoint generation to resume from).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/lattice.hpp"
#include "core/simulation.hpp"
#include "obs/trace_context.hpp"
#include "util/vec3.hpp"

namespace mdm::serve {

/// Priority class, highest first. Within a class jobs are FIFO (modulated
/// by per-tenant fair share and deadlines, see JobQueue).
enum class JobClass : int {
  kInteractive = 0,  ///< short exploratory runs; always scheduled first
  kBatch = 1,        ///< the default production class
  kBestEffort = 2,   ///< background sweeps; run when nothing else waits
};

enum class JobState : int {
  kQueued = 0,
  kRunning,
  kCompleted,
  kFailed,             ///< runner threw (numerical health, I/O, ...)
  kCancelled,          ///< cancelled while queued or cooperatively mid-run
  kRejected,           ///< admission said Overloaded at submit
  kDeadlineExceeded,   ///< deadline passed before the job could start
};

const char* to_string(JobState state);
const char* to_string(JobClass job_class);
bool is_terminal(JobState state);

/// One simulation request: the paper's melt protocol at a caller-chosen
/// scale (examples/nacl_melt.cpp run through the service).
struct JobSpec {
  std::string tenant = "default";          ///< fair-share accounting key
  JobClass job_class = JobClass::kBatch;
  /// Max milliseconds the job may wait in the queue before *starting*;
  /// popped later than this it is shed with kDeadlineExceeded. 0 = none.
  double deadline_ms = 0.0;

  // ---- workload ----
  /// Declarative scenario text (src/scenario spec grammar). Non-empty runs
  /// the job through the scenario engine — config-driven species, ensemble
  /// (incl. NPT) and analysis — instead of the fixed NaCl-melt fields
  /// below, which are then ignored. The canonical job key incorporates the
  /// *canonicalised* scenario text, so two different scenarios can never
  /// collide in the fleet result cache.
  std::string scenario;
  /// Scenario path only: directory for analysis outputs (RDF/MSD/energy
  /// CSVs, XYZ trajectory). Empty skips file outputs. Excluded from the
  /// canonical key — it changes where results land, never what is computed.
  std::string analysis_dir;

  int cells = 1;                  ///< n^3 NaCl supercell (8 n^3 ions)
  int nvt_steps = 4;
  int nve_steps = 4;
  double temperature_K = 1200.0;  ///< paper: 1200 K
  double dt_fs = 2.0;             ///< paper: 2 fs
  std::uint64_t seed = 1;         ///< Maxwell velocity seed

  // ---- backend ----
  /// > 0 runs the job on the full MDM parallel application (MdmParallelApp:
  /// this many real-space ranks plus parallel_wn wavenumber ranks on the
  /// virtual MPI world) instead of the single-process software path. The
  /// job's trace context flows into every rank thread, so one served job is
  /// one trace across submit, queue, per-rank run phases and checkpoints.
  int parallel_real = 0;
  int parallel_wn = 2;
  /// K-space solver of the parallel path: "sf" (exact structure-factor
  /// sum), "pme" (slab-decomposed particle-mesh, DESIGN.md §12) or "auto"
  /// (the perf model picks the cheaper admissible one at `accuracy_target`
  /// RMS force error). Ignored on the single-process path.
  std::string solver = "sf";
  double accuracy_target = 5e-4;
  /// PME mesh (solver "pme"/"auto"): points per axis (0 = size from the
  /// Ewald wave cutoff) and B-spline order. grid % parallel_wn must be 0.
  int pme_grid = 0;
  int pme_order = 6;
  /// Force-evaluation backend (DESIGN.md §11): kEmulator runs the software
  /// reference / simulated-hardware paths; kNative runs the vectorized host
  /// kernels. Applies to both the single-process and the parallel path.
  Backend backend = Backend::kEmulator;

  // ---- checkpoint / resume (core/checkpoint, DESIGN.md §8) ----
  /// Steps between rotating checkpoint generations; 0 disables.
  int checkpoint_interval = 0;
  /// Explicit per-job checkpoint directory. Empty = `<service
  /// checkpoint_root>/job-<id>`. A resubmitted job pointing at the same
  /// directory resumes from the latest valid generation.
  std::string checkpoint_dir;
  /// Write a portable job-resume manifest (core/manifest, DESIGN.md §13)
  /// beside every checkpoint generation, and resume through
  /// `find_resume_point` instead of `restore_latest`. A migrated job then
  /// returns its *complete* trajectory (the manifest carries the sample
  /// prefix), bit-identical to an uninterrupted run. The fleet path sets
  /// this; it requires checkpoint_interval > 0 and is ignored on the
  /// parallel (parallel_real > 0) path, which has its own checkpointing.
  bool resume_manifest = false;

  long long particle_count() const { return nacl_ion_count(cells); }
  int total_steps() const { return nvt_steps + nve_steps; }
};

/// Canonical form of the *physics-relevant* JobSpec fields: two specs with
/// the same canonical key produce bit-identical trajectories (given the same
/// per-job thread count, which the service/fleet fixes globally). Excludes
/// tenant, class, deadline and checkpoint placement — those change *where
/// and when* a job runs, never *what it computes* — so the fleet result
/// cache can serve a tenant's job from another tenant's identical run.
std::string canonical_job_key(const JobSpec& spec);
/// FNV-1a 64-bit hash of canonical_job_key (shard routing, manifest job_key).
std::uint64_t canonical_job_hash(const JobSpec& spec);

/// Thrown by the wait-with-deadline paths (Job::wait_for,
/// SimService::drain_for). The message names *which* job(s) the waiter was
/// blocked on — id, tenant, class, state — mirroring the vmpi
/// who-waits-on-whom deadlock dump, so a stuck drain reads as "waiting on
/// job 12 (tenant 'alice', class batch, running)" instead of a bare timeout.
class JobWaitTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Terminal outcome of a job. For kCompleted the trajectory is bit-identical
/// to the same spec run standalone with the same per-job thread count; for
/// kCancelled it is the bit-identical prefix of that run.
struct JobResult {
  JobState state = JobState::kQueued;
  std::string error;  ///< reject/shed reason or runner exception text
  std::vector<Sample> samples;
  std::vector<Vec3> positions;   ///< final configuration
  std::vector<Vec3> velocities;
  int completed_steps = 0;
  std::uint64_t resumed_from_step = 0;  ///< nonzero when restored from ckpt
  double wait_ms = 0.0;  ///< submit -> start (or terminal decision)
  double run_ms = 0.0;   ///< start -> finish
  /// The job's trace id (DESIGN.md §10): every span of this job — admission,
  /// queue wait, run, per-rank phases, checkpoints — carries it.
  std::uint64_t trace_id = 0;
};

/// Service-side job record. Shared (via shared_ptr) between the queue, the
/// scheduler workers and every JobHandle; all mutable state is behind the
/// internal mutex except the lock-free cancel flag.
class Job {
 public:
  using Clock = std::chrono::steady_clock;

  Job(std::uint64_t id, JobSpec spec);

  std::uint64_t id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  /// Trace context minted at submit; installed by the scheduler around
  /// every stage of the job so one job is one trace (DESIGN.md §10).
  const obs::TraceContext& trace_context() const { return trace_ctx_; }
  std::uint64_t trace_id() const { return trace_ctx_.trace_id; }
  /// Trace-clock timestamp of submit (start of the serve.queue span).
  std::uint64_t submit_trace_ns() const { return submit_trace_ns_; }
  Clock::time_point submit_time() const { return submit_tp_; }
  bool has_deadline() const { return spec_.deadline_ms > 0.0; }
  Clock::time_point deadline() const { return deadline_tp_; }

  /// Cooperative cancellation: checked by the queue at pop time and by the
  /// runner at every step boundary.
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// The raw flag, handed to RunOptions::cancel by the scheduler.
  const std::atomic<bool>* cancel_flag() const { return &cancel_; }

  JobState state() const;
  bool done() const;
  /// Block until terminal and return the result (copies; results outlive
  /// the service).
  JobResult wait() const;
  /// wait() with a deadline: throws JobWaitTimeout naming this job (id,
  /// tenant, class, current state, milliseconds waited) if it is not
  /// terminal within `timeout_ms`.
  JobResult wait_for(double timeout_ms) const;
  /// Result if terminal, empty result with current state otherwise.
  JobResult snapshot() const;
  /// "job <id> (tenant '<t>', class <c>, <state>)" — for timeout dumps.
  std::string describe() const;

  // ---- streamed results (fleet chunked polling) ----
  /// Append a live trajectory sample; pollers see it immediately, long
  /// before the job is terminal. Fed by RunOptions::on_sample.
  void push_stream_sample(const Sample& sample);
  void push_stream_samples(const std::vector<Sample>& samples);
  std::size_t stream_size() const;
  /// Samples at index >= cursor (empty when caught up).
  std::vector<Sample> stream_since(std::size_t cursor) const;

  // ---- scheduler side ----
  void mark_running();
  /// Set the terminal result exactly once and wake waiters. Later calls
  /// are ignored (returns false) so a job can never complete twice.
  bool finalize(JobResult result);

 private:
  const std::uint64_t id_;
  const JobSpec spec_;
  const obs::TraceContext trace_ctx_;
  const std::uint64_t submit_trace_ns_;
  const Clock::time_point submit_tp_;
  const Clock::time_point deadline_tp_;

  std::string describe_locked() const;

  std::atomic<bool> cancel_{false};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobState state_ = JobState::kQueued;
  JobResult result_;
  bool done_ = false;
  std::vector<Sample> stream_;  ///< live samples, oldest first
};

/// Client-side view of a submitted job.
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<Job> job) : job_(std::move(job)) {}

  bool valid() const { return job_ != nullptr; }
  std::uint64_t id() const { return job_->id(); }
  std::uint64_t trace_id() const { return job_->trace_id(); }
  const JobSpec& spec() const { return job_->spec(); }

  JobState state() const { return job_->state(); }
  bool done() const { return job_->done(); }
  JobResult wait() const { return job_->wait(); }
  /// wait() with a deadline; throws JobWaitTimeout naming the job.
  JobResult wait_for(double timeout_ms) const {
    return job_->wait_for(timeout_ms);
  }
  void cancel() const { job_->request_cancel(); }

  /// Streamed chunked polling: returns the samples produced since `cursor`
  /// and advances it. Chunks arrive while the job is still running; after
  /// completion the stream holds the full trajectory seen so far.
  std::vector<Sample> poll_samples(std::size_t& cursor) const {
    auto chunk = job_->stream_since(cursor);
    cursor += chunk.size();
    return chunk;
  }

  /// Service internals (tests reach through this for checkpoint paths).
  const std::shared_ptr<Job>& record() const { return job_; }

 private:
  std::shared_ptr<Job> job_;
};

}  // namespace mdm::serve
