#include "serve/runner.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/manifest.hpp"
#include "core/force_field.hpp"
#include "core/lattice.hpp"
#include "core/simulation.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "host/mdm_force_field.hpp"
#include "host/parallel_app.hpp"
#include "native/native_force_field.hpp"
#include "perf/solver_select.hpp"
#include "scenario/engine.hpp"
#include "scenario/parser.hpp"

namespace mdm::serve {
namespace {

/// Thrown from the per-step observer to unwind a cancelled run; never
/// escapes run_job.
struct CancelledSignal {};

/// The MDM parallel backend (spec.parallel_real > 0): the same workload on
/// the full sec. 4 application — real-space + wavenumber ranks over the
/// virtual MPI fabric, MDGRAPE-2/WINE-2 simulators underneath. The caller's
/// ambient trace context (the job's) flows into every rank thread, so the
/// served job stays one trace across all ranks.
JobResult run_parallel_job(const JobSpec& spec, const RunOptions& options) {
  auto system = make_nacl_crystal(spec.cells);
  assign_maxwell_velocities(system, spec.temperature_K, spec.seed);

  host::ParallelAppConfig config;
  config.real_processes = spec.parallel_real;
  config.wn_processes = spec.parallel_wn > 0 ? spec.parallel_wn : 1;
  config.protocol.dt_fs = spec.dt_fs;
  config.protocol.temperature_K = spec.temperature_K;
  config.protocol.nvt_steps = spec.nvt_steps;
  config.protocol.nve_steps = spec.nve_steps;
  // The machine preset, not software_parameters: its higher alpha keeps
  // r_cut <= L/3, which the MDGRAPE cell-index scan requires even for the
  // smallest served jobs (software_parameters only guarantees L/2).
  config.ewald = host::mdm_parameters(double(system.size()), system.box());
  config.backend = spec.backend;
  config.cancel = options.cancel;

  // K-space solver selection (DESIGN.md §12): explicit sf/pme, or the perf
  // model's pick at the job's accuracy target.
  config.pme.order = spec.pme_order;
  config.pme.grid = spec.pme_grid > 0
                        ? spec.pme_grid
                        : perf::recommended_pme_mesh(config.ewald,
                                                     config.pme.order);
  if (spec.solver == "auto") {
    config.kspace_solver =
        perf::recommended_app_solver(
            perf::SolverCostModel{}, double(system.size()), system.box(),
            config.ewald, host::resolved_pme(config),
            spec.accuracy_target) == perf::KspaceMethod::kPme
            ? host::KspaceSolver::kPme
            : host::KspaceSolver::kStructureFactor;
  } else {
    config.kspace_solver = host::kspace_solver_from_string(spec.solver);
  }
  if (spec.checkpoint_interval > 0 && !options.checkpoint_dir.empty()) {
    config.checkpoint_dir = options.checkpoint_dir;
    config.checkpoint_interval = spec.checkpoint_interval;
    config.checkpoint_keep = options.keep_generations;
  }

  host::MdmParallelApp app(config);
  JobResult out;
  try {
    auto run = app.run(system);
    out.samples = std::move(run.samples);
    out.positions = std::move(run.positions);
    out.velocities = std::move(run.velocities);
    out.resumed_from_step = run.restored_from_step;
    out.completed_steps = spec.total_steps();
    out.state = JobState::kCompleted;
    // The parallel app has no per-step observer hook; stream the whole
    // trajectory at completion so pollers still converge to the full set.
    if (options.on_sample)
      for (const auto& s : out.samples) options.on_sample(s);
  } catch (const host::ParallelCancelled&) {
    out.state = JobState::kCancelled;
  }
  return out;
}

/// The declarative path (spec.scenario non-empty): parse the scenario text
/// and hand the whole run — system construction, ensemble (incl. NPT),
/// analysis cadences — to the scenario engine. The job's pool slice, cancel
/// flag, checkpoint placement and sample stream plug straight into
/// ScenarioOptions, so a served scenario keeps the same cooperative-cancel
/// and resume semantics as the fixed NaCl path.
JobResult run_scenario_job(const JobSpec& spec, const RunOptions& options) {
  const scenario::ScenarioSpec sc =
      scenario::parse_scenario(spec.scenario, "job scenario");

  scenario::ScenarioOptions so;
  so.pool = options.pool;
  so.cancel = options.cancel;
  so.output_dir = spec.analysis_dir;
  so.on_sample = options.on_sample;
  if (spec.checkpoint_interval > 0 && !options.checkpoint_dir.empty()) {
    so.checkpoint_dir = options.checkpoint_dir;
    so.checkpoint_interval = spec.checkpoint_interval;
    so.keep_generations = options.keep_generations;
    so.resume = true;
  }

  scenario::ScenarioResult run = scenario::run_scenario(sc, so);
  JobResult out;
  out.samples = std::move(run.samples);
  out.positions = std::move(run.positions);
  out.velocities = std::move(run.velocities);
  out.resumed_from_step = run.resumed_from_step;
  out.completed_steps =
      out.samples.empty() ? 0 : out.samples.back().step;
  out.state = run.cancelled ? JobState::kCancelled : JobState::kCompleted;
  return out;
}

}  // namespace

JobResult run_job(const JobSpec& spec, const RunOptions& options) {
  if (!spec.scenario.empty()) return run_scenario_job(spec, options);
  if (spec.parallel_real > 0) return run_parallel_job(spec, options);
  auto system = make_nacl_crystal(spec.cells);
  assign_maxwell_velocities(system, spec.temperature_K, spec.seed);

  // The nacl_melt software path: Ewald Coulomb + Tosi-Fumi short range,
  // both on the job's own pool slice. With the native backend the same
  // physics (same parameters, shifted short range) runs through the fused
  // vectorized kernels instead (DESIGN.md §11).
  const EwaldParameters params =
      software_parameters(double(system.size()), system.box());
  std::unique_ptr<ForceField> field;
  if (spec.backend == Backend::kNative) {
    native::NativeForceFieldConfig nc;
    nc.ewald = params;
    nc.tf_shift_energy = true;
    auto nat = std::make_unique<native::NativeForceField>(nc, system.box());
    nat->set_thread_pool(options.pool);
    field = std::move(nat);
  } else {
    auto coulomb = std::make_unique<EwaldCoulomb>(params, system.box());
    coulomb->set_thread_pool(options.pool);
    auto short_range = std::make_unique<TosiFumiShortRange>(
        TosiFumiParameters::nacl(), params.r_cut, /*shift_energy=*/true);
    short_range->set_thread_pool(options.pool);
    auto composite = std::make_unique<CompositeForceField>();
    composite->add(std::move(coulomb));
    composite->add(std::move(short_range));
    field = std::move(composite);
  }

  SimulationConfig protocol;
  protocol.dt_fs = spec.dt_fs;
  protocol.temperature_K = spec.temperature_K;
  protocol.nvt_steps = spec.nvt_steps;
  protocol.nve_steps = spec.nve_steps;
  Simulation sim(system, *field, protocol);

  JobResult out;
  std::optional<CheckpointManager> checkpoints;
  std::optional<ManifestStore> manifests;
  std::vector<Sample> prefix;  // manifest mode: samples through the resume
  const bool checkpointing =
      spec.checkpoint_interval > 0 && !options.checkpoint_dir.empty();
  const bool manifest_mode = checkpointing && spec.resume_manifest;
  const std::uint64_t manifest_key =
      manifest_mode ? (options.manifest_key != 0 ? options.manifest_key
                                                 : canonical_job_hash(spec))
                    : 0;
  if (checkpointing) {
    checkpoints.emplace(options.checkpoint_dir, options.keep_generations);
    if (manifest_mode) {
      manifests.emplace(options.checkpoint_dir, options.keep_generations);
      // Resume from the newest (manifest, checkpoint) pair that validates
      // and carries this job's canonical key; the manifest's sample prefix
      // makes the resumed result the complete trajectory.
      if (auto rp = find_resume_point(options.checkpoint_dir, manifest_key,
                                      system.size());
          rp && rp->state.step > 0) {
        sim.restore(rp->state);
        out.resumed_from_step = rp->state.step;
        prefix = std::move(rp->manifest.samples);
        while (!prefix.empty() &&
               prefix.back().step > static_cast<int>(rp->state.step))
          prefix.pop_back();
      }
      // No sim-internal checkpointing: the observer below writes the
      // checkpoint first, then the manifest, so the newest manifest always
      // points at an on-disk generation.
    } else {
      if (auto latest = checkpoints->restore_latest();
          latest && latest->size() == system.size() && latest->step > 0) {
        sim.restore(*latest);
        out.resumed_from_step = latest->step;
      }
      sim.enable_checkpointing(&*checkpoints, spec.checkpoint_interval);
    }
  }
  if (options.on_sample)
    for (const auto& s : prefix) options.on_sample(s);

  const int total = spec.total_steps();
  std::uint64_t last_ckpt_step = out.resumed_from_step;
  // Checkpoint + manifest at one step, composed from the observer's sample:
  // Simulation::checkpoint_state() is stale (previous step) at observer
  // time, so capture the system directly and stamp the sample's step/time.
  auto write_pair = [&](const Sample& s) {
    CheckpointState state = CheckpointState::capture(
        system, static_cast<std::uint64_t>(s.step), s.time_ps);
    state.thermostat = sim.thermostat().state();
    checkpoints->write(state);
    JobResumeManifest m;
    m.job_key = manifest_key;
    m.step = static_cast<std::uint64_t>(s.step);
    m.total_steps = static_cast<std::uint32_t>(total);
    m.samples = prefix;
    const auto& recorded = sim.samples();
    m.samples.insert(m.samples.end(), recorded.begin(), recorded.end());
    manifests->write(m);
    last_ckpt_step = m.step;
  };

  try {
    sim.run([&](const Sample& s) {
      out.completed_steps = s.step;
      // Step boundary: the sample for step s is recorded, so a cancel here
      // leaves a bit-exact trajectory prefix through s. The final step
      // completes the job regardless.
      if (options.on_sample) options.on_sample(s);
      if (manifest_mode && s.step % spec.checkpoint_interval == 0 &&
          static_cast<std::uint64_t>(s.step) > out.resumed_from_step)
        write_pair(s);
      if (options.cancel && s.step < total &&
          options.cancel->load(std::memory_order_relaxed)) {
        if (options.checkpoint_on_cancel && checkpointing &&
            static_cast<std::uint64_t>(s.step) > last_ckpt_step) {
          // Drain: persist the exact cancel step so the migrated job
          // resumes with zero recomputation. (The sim-internal interval
          // hook never fires for a throwing step.)
          if (manifest_mode) {
            write_pair(s);
          } else {
            CheckpointState state = CheckpointState::capture(
                system, static_cast<std::uint64_t>(s.step), s.time_ps);
            state.thermostat = sim.thermostat().state();
            checkpoints->write(state);
          }
        }
        throw CancelledSignal{};
      }
    });
    out.completed_steps = total;
    out.state = JobState::kCompleted;
  } catch (const CancelledSignal&) {
    out.state = JobState::kCancelled;
  }

  out.samples = prefix;
  out.samples.insert(out.samples.end(), sim.samples().begin(),
                     sim.samples().end());
  out.positions.assign(system.positions().begin(), system.positions().end());
  out.velocities.assign(system.velocities().begin(),
                        system.velocities().end());
  return out;
}

}  // namespace mdm::serve
