#pragma once

/// \file service.hpp
/// The multi-tenant simulation job service (DESIGN.md §9): glues the
/// admission controller, the policy queue and a pool of K scheduler workers
/// into one submit/poll/wait/cancel facade.
///
///   SimService service({.workers = 4, .threads_per_job = 2});
///   service.start();
///   auto h = service.submit({.tenant = "alice", .cells = 2});
///   JobResult r = h.wait();
///
/// Concurrency model: each worker thread owns a private `ThreadPool` of
/// `threads_per_job` threads and drives one job at a time through
/// serve::run_job, so the process never oversubscribes beyond
/// workers x threads_per_job engine threads regardless of how many jobs are
/// queued (the global pool is untouched). Every queue/admission/scheduler
/// decision is reported to obs::Registry::global() — serve.* counters,
/// gauges and wait/run latency histograms plus per-tenant counters — so the
/// registry dump doubles as the SLO dashboard.
///
/// Shutdown: stop() requests cancel on everything, drains the queue
/// (finalizing still-queued jobs as kCancelled), and joins the workers;
/// running jobs stop cooperatively at their next step boundary. The
/// destructor calls stop().

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"

namespace mdm::serve {

struct ServiceConfig {
  int workers = 2;              ///< K concurrently running jobs
  unsigned threads_per_job = 1; ///< pool slice each job's force loops use
  AdmissionConfig admission{};
  /// Root for per-job checkpoint directories (`<root>/job-<id>`), used when
  /// a spec asks for checkpointing without naming its own directory. Empty
  /// = only specs with an explicit checkpoint_dir write checkpoints.
  std::string checkpoint_root;
  /// Stream every recorded sample into the job's live buffer
  /// (JobHandle::poll_samples); the fleet shard turns this on to feed
  /// chunked result polling.
  bool stream_samples = false;
  /// Graceful drain: a cooperative cancel persists a checkpoint (and, for
  /// resume_manifest jobs, a manifest) at the exact cancel step, so
  /// SIGTERM-drained jobs migrate with zero recomputation.
  bool checkpoint_on_cancel = false;
};

class SimService {
 public:
  explicit SimService(ServiceConfig config);
  ~SimService();

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Spawn the worker threads. Idempotent. Jobs may be submitted before
  /// start(); they queue up (tests use this for deterministic ordering).
  void start();

  /// Cancel queued + running jobs, join workers, finalize everything.
  void stop();

  /// Admission-checked submit. The returned handle is always valid; a
  /// rejected job is already terminal with kRejected and the Overloaded
  /// reason in `error`.
  JobHandle submit(const JobSpec& spec);

  /// Block until every submitted job has reached a terminal state. The
  /// service must be started.
  void drain();
  /// drain() with a deadline: throws JobWaitTimeout whose message names
  /// every still-outstanding job (id, tenant, class, state) — the serve
  /// analogue of the vmpi who-waits-on-whom deadlock dump.
  void drain_for(double timeout_ms);

  const ServiceConfig& config() const { return config_; }
  std::size_t queue_depth() const;
  int running_jobs() const;

 private:
  void worker_main();
  /// Terminal bookkeeping shared by every exit path: fair-share + admission
  /// release, SLO metrics, per-tenant counters, handle wakeup.
  void finalize_locked(Job& job, JobResult result, bool was_running);

  ServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;   ///< workers: work available / stop
  std::condition_variable idle_cv_;  ///< drain(): all work finished
  JobQueue queue_;
  AdmissionController admission_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Job>> active_;  ///< currently running jobs
  std::uint64_t next_id_ = 1;
  int running_ = 0;
  int unfinished_ = 0;  ///< admitted jobs not yet terminal
  bool started_ = false;
  bool stop_ = false;
};

}  // namespace mdm::serve
