#pragma once

/// \file admission.hpp
/// Admission control for the simulation service (DESIGN.md §9). A shared
/// facility must fail loudly instead of growing without bound: every submit
/// is checked against a queue-depth cap and an in-flight memory budget
/// (queued + running jobs), and over-budget submissions are rejected with an
/// explicit Overloaded result instead of queueing forever.
///
/// The memory model is a deliberate over-estimate of a job's working set
/// (particle arrays, integrator copies, cell list, per-chunk force slots and
/// phase tables, k-vector table): admission is about protecting the box, not
/// about accounting bytes precisely.
///
/// Like JobQueue, this class is not thread-safe: SimService serializes all
/// calls under its mutex.

#include <cstddef>
#include <string>

#include "serve/job.hpp"

namespace mdm::serve {

struct AdmissionConfig {
  std::size_t max_queue_depth = 64;
  /// Budget for the estimated bytes of all queued + running jobs.
  std::size_t max_inflight_bytes = std::size_t(256) << 20;  // 256 MiB
};

class AdmissionController {
 public:
  enum class Decision {
    kAdmit = 0,
    kQueueFull,      ///< Overloaded: queue depth cap reached
    kMemoryBudget,   ///< Overloaded: in-flight memory budget exceeded
  };

  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  const AdmissionConfig& config() const { return config_; }

  /// Working-set estimate for a spec (see file comment). Monotone in the
  /// particle count; deterministic so tests can reason about budgets.
  static std::size_t estimate_bytes(const JobSpec& spec);

  /// Decide on a submit given the current queue depth. Does NOT reserve.
  Decision decide(const JobSpec& spec, std::size_t queue_depth) const;

  /// Reserve / release the estimated bytes of an admitted job. Release is
  /// called once the job reaches a terminal state (completed, failed,
  /// cancelled or shed).
  void acquire(const JobSpec& spec);
  void release(const JobSpec& spec);

  std::size_t inflight_bytes() const { return inflight_bytes_; }

  static std::string reason(Decision decision);

 private:
  AdmissionConfig config_;
  std::size_t inflight_bytes_ = 0;
};

}  // namespace mdm::serve
