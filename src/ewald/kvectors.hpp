#pragma once

/// \file kvectors.hpp
/// Enumeration of the wavenumber vectors of the Ewald reciprocal sum in the
/// paper's conventions: k = n / L with integer n, phases 2*pi*k.r, Gaussian
/// damping a_n = exp(-pi^2 L^2 k^2 / alpha^2) / k^2 (eq. 12), and a
/// *half-space* enumeration (one of each +-n pair, eq. 13) whose count is
/// N_wv ~ (2 pi / 3) (L k_cut)^3. These same vectors are loaded into the
/// WINE-2 pipelines before a DFT/IDFT run.

#include <vector>

#include "util/vec3.hpp"

namespace mdm {

/// One reciprocal vector of the half-space set.
struct KVector {
  Vec3 k;        ///< k = n / L, in 1/A
  Vec3 n;        ///< the integer triple as doubles (for exact phase math)
  double k2;     ///< |k|^2
  double a;      ///< a_n = exp(-pi^2 L^2 k^2 / alpha^2) / k^2
};

/// Half-space convention: keep n with (nz > 0) || (nz == 0 && ny > 0) ||
/// (nz == 0 && ny == 0 && nx > 0). Factor-2 symmetry is folded into the
/// energy/force prefactors by the consumers.
bool in_half_space(int nx, int ny, int nz);

class KVectorTable {
 public:
  /// Enumerate all half-space vectors with |n| <= L * k_cut for a cubic box
  /// of side `box`, computing a_n for the given paper-convention alpha
  /// (beta = alpha / box).
  KVectorTable(double box, double alpha, double lk_cut);

  const std::vector<KVector>& vectors() const { return vectors_; }
  std::size_t size() const { return vectors_.size(); }

  double box() const { return box_; }
  double alpha() const { return alpha_; }
  double lk_cut() const { return lk_cut_; }
  /// Largest |n| component over the set (table size for phase recurrences).
  int n_max() const { return n_max_; }

 private:
  double box_;
  double alpha_;
  double lk_cut_;
  int n_max_ = 0;
  std::vector<KVector> vectors_;
};

}  // namespace mdm
