#include "ewald/direct_sum.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mdm {

ForceResult DirectCoulombMinimumImage::add_forces(
    const ParticleSystem& system, std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("force array size mismatch");
  const double box = system.box();
  const double r_cut = r_cut_ > 0.0 ? r_cut_ : 0.5 * box;
  if (r_cut > 0.5 * box + 1e-12)
    throw std::invalid_argument("r_cut must be <= L/2");
  const double r_cut2 = r_cut * r_cut;
  const auto positions = system.positions();

  ForceResult result;
  for (std::size_t i = 0; i < system.size(); ++i) {
    for (std::size_t j = i + 1; j < system.size(); ++j) {
      const Vec3 d = minimum_image(positions[i], positions[j], box);
      const double r2 = norm2(d);
      if (r2 >= r_cut2) continue;
      const double r = std::sqrt(r2);
      const double qq =
          units::kCoulomb * system.charge(i) * system.charge(j);
      const double s = qq / (r2 * r);
      const Vec3 f = s * d;
      forces[i] += f;
      forces[j] -= f;
      result.potential += qq / r;
      result.virial += s * r2;
    }
  }
  return result;
}

ForceResult LatticeSumCoulomb::add_forces(const ParticleSystem& system,
                                          std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("force array size mismatch");
  const double box = system.box();
  const auto positions = system.positions();
  const std::size_t n = system.size();

  ForceResult result;
  for (int cx = -shells_; cx <= shells_; ++cx) {
    for (int cy = -shells_; cy <= shells_; ++cy) {
      for (int cz = -shells_; cz <= shells_; ++cz) {
        const Vec3 shift{cx * box, cy * box, cz * box};
        const bool home = cx == 0 && cy == 0 && cz == 0;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            if (home && i == j) continue;
            // Image of particle j in the replica cell.
            const Vec3 d = positions[i] - (positions[j] + shift);
            const double r2 = norm2(d);
            const double r = std::sqrt(r2);
            const double qq =
                units::kCoulomb * system.charge(i) * system.charge(j);
            const double s = qq / (r2 * r);
            forces[i] += s * d;
            // Count each interaction once for energy/virial (i<j within the
            // home cell; for replicas every ordered pair is half a periodic
            // pair, so weight by 1/2 including i==j self-images).
            const double w = home ? (i < j ? 1.0 : 0.0) : 0.5;
            result.potential += w * qq / r;
            result.virial += w * s * r2;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace mdm
