#pragma once

/// \file phase_table.hpp
/// Per-axis complex phase tables e^{i 2 pi n u / L} for n = 0..n_max, built
/// by recurrence (the "addition formula" of sec. 2.3). One table is built
/// per particle and queried once per k-vector; the DFT/IDFT loops keep one
/// table per worker chunk as reusable scratch so the steady-state step loop
/// performs no allocations.

#include <cmath>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "util/vec3.hpp"

namespace mdm::detail {

struct PhaseTable {
  std::vector<double> cos_t;  ///< [axis * (n_max+1) + n]
  std::vector<double> sin_t;
  int stride = 0;

  /// Rebuild for one particle; reuses storage when n_max is unchanged.
  void build(const Vec3& r, double box, int n_max) {
    stride = n_max + 1;
    cos_t.resize(3 * static_cast<std::size_t>(stride));
    sin_t.resize(3 * static_cast<std::size_t>(stride));
    const double u[3] = {r.x, r.y, r.z};
    for (int axis = 0; axis < 3; ++axis) {
      const double theta = 2.0 * std::numbers::pi * u[axis] / box;
      const double c1 = std::cos(theta);
      const double s1 = std::sin(theta);
      double c = 1.0;
      double s = 0.0;
      for (int n = 0; n <= n_max; ++n) {
        cos_t[axis * stride + n] = c;
        sin_t[axis * stride + n] = s;
        const double cn = c * c1 - s * s1;
        s = c * s1 + s * c1;
        c = cn;
      }
    }
  }

  /// cos/sin of 2 pi (nx x + ny y + nz z) / L for possibly negative n.
  void phase(int nx, int ny, int nz, double& c, double& s) const {
    auto axis_cs = [this](int axis, int n, double& ca, double& sa) {
      const int a = std::abs(n);
      ca = cos_t[axis * stride + a];
      sa = n >= 0 ? sin_t[axis * stride + a] : -sin_t[axis * stride + a];
    };
    double cx, sx, cy, sy, cz, sz;
    axis_cs(0, nx, cx, sx);
    axis_cs(1, ny, cy, sy);
    axis_cs(2, nz, cz, sz);
    const double cxy = cx * cy - sx * sy;
    const double sxy = sx * cy + cx * sy;
    c = cxy * cz - sxy * sz;
    s = sxy * cz + cxy * sz;
  }
};

}  // namespace mdm::detail
