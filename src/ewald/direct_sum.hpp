#pragma once

/// \file direct_sum.hpp
/// Brute-force Coulomb baselines. The paper's cost comparison (sec. 1) is
/// against the "native method's O(N^2)"; these classes provide that method
/// in two flavours:
///
/// * DirectCoulombMinimumImage - O(N^2) over nearest periodic images only
///   (the classic truncated direct sum; cheap but ignores the long-range
///   tail the Ewald method keeps).
/// * LatticeSumCoulomb - O(N^2 * shells^3) direct sum over explicit
///   periodic replicas; converges to the Ewald (tin-foil) result for
///   neutral, dipole-free cells and serves as the independent ground truth
///   in the accuracy tests.

#include "core/force_field.hpp"

namespace mdm {

class DirectCoulombMinimumImage final : public ForceField {
 public:
  /// `r_cut` <= L/2; pass 0 to default to L/2 at evaluation time.
  explicit DirectCoulombMinimumImage(double r_cut = 0.0) : r_cut_(r_cut) {}

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "direct-coulomb-minimum-image"; }

 private:
  double r_cut_;
};

class LatticeSumCoulomb final : public ForceField {
 public:
  /// Sum over all replica cells with image indices in [-shells, shells]^3.
  explicit LatticeSumCoulomb(int shells) : shells_(shells) {}

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "lattice-sum-coulomb"; }

 private:
  int shells_;
};

/// Madelung constant of the rock-salt structure (dimensionless, referred to
/// the nearest-neighbour distance). The Coulomb lattice energy of a perfect
/// NaCl crystal is -M * k_e * q^2 / d per ion pair; the Ewald tests check
/// our solver against this value.
inline constexpr double kMadelungNaCl = 1.747564594633;

}  // namespace mdm
