#include "ewald/pme_kernels.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace mdm::pme {

double bspline(int p, double x) {
  if (p < 2) throw std::invalid_argument("bspline: order must be >= 2");
  if (x <= 0.0 || x >= p) return 0.0;
  if (p == 2) return 1.0 - std::fabs(x - 1.0);
  return x / (p - 1) * bspline(p - 1, x) +
         (p - x) / (p - 1) * bspline(p - 1, x - 1.0);
}

void spline_weights(const Vec3& pos, double box, int grid, int order,
                    SplineWeights& s) {
  const double coord[3] = {pos.x, pos.y, pos.z};
  for (int d = 0; d < 3; ++d) {
    const double u = wrap_coordinate(coord[d], box) / box * grid;
    s.base[d] = static_cast<int>(std::floor(u));
    const double t = u - s.base[d];
    for (int j = 0; j < order; ++j) {
      s.w[d][j] = bspline(order, t + j);
      // d/du M_p(u - k) = M_{p-1}(u - k) - M_{p-1}(u - k - 1).
      s.dw[d][j] = bspline(order - 1, t + j) - bspline(order - 1, t + j - 1);
    }
  }
}

std::vector<double> axis_b2(int grid, int order) {
  // |b(n)|^2 per axis: b(n) = e^{2 pi i (p-1) n / K} /
  //   sum_{j=0}^{p-2} M_p(j+1) e^{2 pi i n j / K}  (Essmann eq. 4.4).
  std::vector<double> b2(grid);
  for (int n = 0; n < grid; ++n) {
    std::complex<double> denom{};
    for (int j = 0; j <= order - 2; ++j) {
      const double angle = 2.0 * std::numbers::pi * n * j / grid;
      denom += bspline(order, j + 1.0) *
               std::complex<double>{std::cos(angle), std::sin(angle)};
    }
    const double d2 = std::norm(denom);
    // Keep a zero (instead of a blow-up) where the spline sum vanishes;
    // those modes carry no PME weight.
    b2[n] = d2 > 1e-20 ? 1.0 / d2 : 0.0;
  }
  return b2;
}

double influence_theta(int nx, int ny, int nz, int grid, double alpha,
                       const std::vector<double>& b2) {
  if (nx == 0 && ny == 0 && nz == 0) return 0.0;
  // Signed alias of a grid frequency index: n in [0,K) -> [-K/2, K/2).
  const auto signed_index = [grid](int n) {
    return n <= grid / 2 ? n : n - grid;
  };
  const double sx = signed_index(nx);
  const double sy = signed_index(ny);
  const double sz = signed_index(nz);
  const double n2 = sx * sx + sy * sy + sz * sz;
  const double damp =
      (std::numbers::pi / alpha) * (std::numbers::pi / alpha);
  return std::exp(-damp * n2) / n2 * b2[nx] * b2[ny] * b2[nz];
}

}  // namespace mdm::pme
