#include "ewald/ewald.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/cell_list.hpp"
#include "ewald/flops.hpp"
#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm {
namespace {

constexpr double kPi = std::numbers::pi;
const double kTwoOverSqrtPi = 2.0 / std::sqrt(kPi);

/// Per-axis complex phase tables e^{i 2 pi n u / L} for n = 0..n_max,
/// built by recurrence (the "addition formula" of sec. 2.3).
struct PhaseTable {
  std::vector<double> cos_t;  ///< [axis * (n_max+1) + n]
  std::vector<double> sin_t;
  int stride = 0;

  void build(const Vec3& r, double box, int n_max) {
    stride = n_max + 1;
    cos_t.resize(3 * stride);
    sin_t.resize(3 * stride);
    const double u[3] = {r.x, r.y, r.z};
    for (int axis = 0; axis < 3; ++axis) {
      const double theta = 2.0 * kPi * u[axis] / box;
      const double c1 = std::cos(theta);
      const double s1 = std::sin(theta);
      double c = 1.0;
      double s = 0.0;
      for (int n = 0; n <= n_max; ++n) {
        cos_t[axis * stride + n] = c;
        sin_t[axis * stride + n] = s;
        const double cn = c * c1 - s * s1;
        s = c * s1 + s * c1;
        c = cn;
      }
    }
  }

  /// cos/sin of 2 pi (nx x + ny y + nz z) / L for possibly negative n.
  void phase(int nx, int ny, int nz, double& c, double& s) const {
    auto axis_cs = [this](int axis, int n, double& ca, double& sa) {
      const int a = std::abs(n);
      ca = cos_t[axis * stride + a];
      sa = n >= 0 ? sin_t[axis * stride + a] : -sin_t[axis * stride + a];
    };
    double cx, sx, cy, sy, cz, sz;
    axis_cs(0, nx, cx, sx);
    axis_cs(1, ny, cy, sy);
    axis_cs(2, nz, cz, sz);
    const double cxy = cx * cy - sx * sy;
    const double sxy = sx * cy + cx * sy;
    c = cxy * cz - sxy * sz;
    s = sxy * cz + cxy * sz;
  }
};

}  // namespace

EwaldCoulomb::EwaldCoulomb(EwaldParameters params, double box)
    : params_(params),
      box_(box),
      beta_(params.alpha / box),
      kvectors_(box, params.alpha, params.lk_cut) {
  if (!(params.alpha > 0.0) || !(params.r_cut > 0.0))
    throw std::invalid_argument("EwaldCoulomb: bad parameters");
  if (params.r_cut > 0.5 * box + 1e-12)
    throw std::invalid_argument("EwaldCoulomb: r_cut must be <= L/2");
}

ForceResult EwaldCoulomb::add_real_space(const ParticleSystem& system,
                                         std::span<Vec3> forces) const {
  obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
  MDM_TRACE_SCOPE("ewald.real_space");
  const auto positions = system.positions();
  CellList cells(box_, params_.r_cut);
  cells.build(positions);

  ForceResult result;
  std::uint64_t pairs = 0;
  cells.for_each_pair_within(
      positions, params_.r_cut,
      [&](std::uint32_t i, std::uint32_t j, const Vec3& d, double r2) {
        ++pairs;
        const double r = std::sqrt(r2);
        const double qq = units::kCoulomb * system.charge(i) * system.charge(j);
        const double erfc_term = std::erfc(beta_ * r);
        const double gauss =
            kTwoOverSqrtPi * beta_ * r * std::exp(-beta_ * beta_ * r2);
        // F_i = k_e q_i q_j [erfc(br)/r + (2b/sqrt(pi)) r exp(-b^2 r^2)] d/r^3
        const double s = qq * (erfc_term + gauss) / (r2 * r);
        const Vec3 f = s * d;
        forces[i] += f;
        forces[j] -= f;
        result.potential += qq * erfc_term / r;
        result.virial += s * r2;
      });
  {
    auto& reg = obs::Registry::global();
    static obs::Counter& pair_counter = reg.counter("ewald.real_pairs");
    static obs::Counter& flops = reg.counter("ewald.flops.real");
    pair_counter.add(pairs);
    flops.add(static_cast<std::uint64_t>(OperationCounts::kRealPair) * pairs);
  }
  return result;
}

StructureFactors EwaldCoulomb::structure_factors(
    std::span<const Vec3> positions, std::span<const double> charges) const {
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  MDM_TRACE_SCOPE("ewald.kspace.dft");
  const auto& kvecs = kvectors_.vectors();
  {
    auto& reg = obs::Registry::global();
    static obs::Gauge& kvector_gauge = reg.gauge("ewald.kvectors");
    static obs::Counter& flops = reg.counter("ewald.flops.dft");
    kvector_gauge.set(static_cast<double>(kvecs.size()));
    flops.add(static_cast<std::uint64_t>(OperationCounts::kDftPerWave) *
              positions.size() * kvecs.size());
  }
  StructureFactors sf;
  sf.s.assign(kvecs.size(), 0.0);
  sf.c.assign(kvecs.size(), 0.0);

  auto accumulate = [&](std::size_t begin, std::size_t end,
                        std::vector<double>& s_out,
                        std::vector<double>& c_out) {
    PhaseTable table;
    for (std::size_t p = begin; p < end; ++p) {
      table.build(positions[p], box_, kvectors_.n_max());
      const double q = charges[p];
      for (std::size_t m = 0; m < kvecs.size(); ++m) {
        double c, s;
        table.phase(static_cast<int>(kvecs[m].n.x),
                    static_cast<int>(kvecs[m].n.y),
                    static_cast<int>(kvecs[m].n.z), c, s);
        c_out[m] += q * c;
        s_out[m] += q * s;
      }
    }
  };

  if (pool_ && positions.size() > 1) {
    // Per-chunk partials, reduced in chunk order (deterministic for a
    // fixed pool size).
    std::vector<std::vector<double>> s_part(pool_->size()),
        c_part(pool_->size());
    pool_->parallel_for(positions.size(), [&](unsigned chunk,
                                              std::size_t begin,
                                              std::size_t end) {
      s_part[chunk].assign(kvecs.size(), 0.0);
      c_part[chunk].assign(kvecs.size(), 0.0);
      accumulate(begin, end, s_part[chunk], c_part[chunk]);
    });
    for (unsigned chunk = 0; chunk < pool_->size(); ++chunk) {
      if (s_part[chunk].empty()) continue;
      for (std::size_t m = 0; m < kvecs.size(); ++m) {
        sf.s[m] += s_part[chunk][m];
        sf.c[m] += c_part[chunk][m];
      }
    }
  } else {
    accumulate(0, positions.size(), sf.s, sf.c);
  }
  return sf;
}

ForceResult EwaldCoulomb::idft_forces(std::span<const Vec3> positions,
                                      std::span<const double> charges,
                                      const StructureFactors& sf,
                                      std::span<Vec3> forces) const {
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  MDM_TRACE_SCOPE("ewald.kspace.idft");
  const auto& kvecs = kvectors_.vectors();
  if (sf.s.size() != kvecs.size() || forces.size() != positions.size())
    throw std::invalid_argument("idft_forces: size mismatch");
  {
    static obs::Counter& flops =
        obs::Registry::global().counter("ewald.flops.idft");
    flops.add(static_cast<std::uint64_t>(OperationCounts::kIdftPerWave) *
              positions.size() * kvecs.size());
  }

  const double l3 = box_ * box_ * box_;
  // F_i = (4 k_e q_i / L^4) sum_half a_n n_vec [C_n sin_i - S_n cos_i].
  const double force_pref = 4.0 * units::kCoulomb / (l3 * box_);

  auto idft_range = [&](std::size_t begin, std::size_t end) {
    PhaseTable table;
    for (std::size_t p = begin; p < end; ++p) {
      table.build(positions[p], box_, kvectors_.n_max());
      Vec3 acc;
      for (std::size_t m = 0; m < kvecs.size(); ++m) {
        double c, s;
        table.phase(static_cast<int>(kvecs[m].n.x),
                    static_cast<int>(kvecs[m].n.y),
                    static_cast<int>(kvecs[m].n.z), c, s);
        const double w = kvecs[m].a * (sf.c[m] * s - sf.s[m] * c);
        acc += w * kvecs[m].n;
      }
      forces[p] += (force_pref * charges[p]) * acc;
    }
  };
  if (pool_ && positions.size() > 1) {
    // Independent per-particle work: bit-identical to the serial loop.
    pool_->parallel_for(positions.size(),
                        [&](unsigned, std::size_t begin, std::size_t end) {
                          idft_range(begin, end);
                        });
  } else {
    idft_range(0, positions.size());
  }

  // Reciprocal energy E = (k_e / (pi L^3)) sum_half a_n (C^2 + S^2) and its
  // virial trace W = sum_k E_k (1 - k_phys^2 / (2 beta^2)), with
  // k_phys^2 / (2 beta^2) = 2 pi^2 n^2 / alpha^2.
  ForceResult result;
  const double energy_pref = units::kCoulomb / (kPi * l3);
  for (std::size_t m = 0; m < kvecs.size(); ++m) {
    const double ek =
        energy_pref * kvecs[m].a * (sf.c[m] * sf.c[m] + sf.s[m] * sf.s[m]);
    const double n2 = dot(kvecs[m].n, kvecs[m].n);
    result.potential += ek;
    result.virial += ek * (1.0 - 2.0 * kPi * kPi * n2 /
                                     (params_.alpha * params_.alpha));
  }
  return result;
}

ForceResult EwaldCoulomb::add_wavenumber_space(const ParticleSystem& system,
                                               std::span<Vec3> forces) const {
  std::vector<double> charges(system.size());
  for (std::size_t i = 0; i < system.size(); ++i)
    charges[i] = system.charge(i);
  const auto sf = structure_factors(system.positions(), charges);
  return idft_forces(system.positions(), charges, sf, forces);
}

double EwaldCoulomb::self_energy(const ParticleSystem& system) const {
  return -units::kCoulomb * beta_ / std::sqrt(kPi) *
         system.total_charge_squared();
}

double EwaldCoulomb::background_energy(const ParticleSystem& system) const {
  const double q = system.total_charge();
  const double l3 = box_ * box_ * box_;
  return -units::kCoulomb * kPi / (2.0 * beta_ * beta_ * l3) * q * q;
}

ForceResult EwaldCoulomb::add_forces(const ParticleSystem& system,
                                     std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("force array size mismatch");
  ForceResult result = add_real_space(system, forces);
  result += add_wavenumber_space(system, forces);
  result.potential += self_energy(system);
  result.potential += background_energy(system);
  return result;
}

}  // namespace mdm
