#include "ewald/ewald.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/fastmath.hpp"
#include "ewald/flops.hpp"
#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm {
namespace {

constexpr double kPi = std::numbers::pi;
const double kTwoOverSqrtPi = 2.0 / std::sqrt(kPi);

EwaldParameters checked(EwaldParameters params, double box) {
  if (!(params.alpha > 0.0) || !(params.r_cut > 0.0))
    throw std::invalid_argument("EwaldCoulomb: bad parameters");
  if (params.r_cut > 0.5 * box + 1e-12)
    throw std::invalid_argument("EwaldCoulomb: r_cut must be <= L/2");
  return params;
}

}  // namespace

EwaldCoulomb::EwaldCoulomb(EwaldParameters params, double box)
    : params_(checked(params, box)),
      box_(box),
      beta_(params.alpha / box),
      r_cut_per_box_(params.r_cut / box),
      construction_box_(box),
      construction_r_cut_(params.r_cut),
      kvectors_(box, params.alpha, params.lk_cut),
      real_cells_(box, params.r_cut) {}

void EwaldCoulomb::set_box(double box) {
  // The Ewald accuracy parameters are dimensionless in L: alpha = beta L,
  // s1 = alpha r_cut / L, s2 from L k_cut. Scaling r_cut with the box
  // keeps s1 (the real-space error) exactly constant under barostat moves —
  // and keeps an r_cut clamped to L/2 at L/2 instead of tripping the
  // validity check on the first volume contraction. r_cut is a pure
  // function of the box — the fixed ratio times L, with the construction
  // box mapping to the construction r_cut exactly ((r/L)*L can be 1 ulp
  // off) — so restoring any previous box after a rejected volume move
  // reproduces that box's r_cut bit for bit.
  params_.r_cut = box == construction_box_ ? construction_r_cut_
                                           : r_cut_per_box_ * box;
  checked(params_, box);
  box_ = box;
  beta_ = params_.alpha / box;
  kvectors_ = KVectorTable(box, params_.alpha, params_.lk_cut);
  real_cells_ = CellList(box, params_.r_cut);
}

ForceResult EwaldCoulomb::add_real_space(const ParticleSystem& system,
                                         std::span<Vec3> forces) const {
  obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
  MDM_TRACE_SCOPE("ewald.real_space");
  const auto positions = system.positions();
  real_cells_.build(positions);

  const double beta = beta_;
  const PairTally tally = real_cells_.parallel_for_each_pair(
      pool_, real_scratch_, positions, params_.r_cut, forces,
      [&system, beta](std::uint32_t i, std::uint32_t j, const Vec3& d,
                      double r2, Vec3& f, PairTally& t) {
        const double r = std::sqrt(r2);
        const double qq = units::kCoulomb * system.charge(i) * system.charge(j);
        // Shared rational erfc (core/fastmath.hpp) fed a libm-accurate
        // Gaussian; agrees with std::erfc to ~2e-15 absolute.
        const double expmx2 = std::exp(-beta * beta * r2);
        const double erfc_term = fastmath::erfc_from_exp(beta * r, expmx2);
        const double gauss = kTwoOverSqrtPi * beta * r * expmx2;
        // F_i = k_e q_i q_j [erfc(br)/r + (2b/sqrt(pi)) r exp(-b^2 r^2)] d/r^3
        const double s = qq * (erfc_term + gauss) / (r2 * r);
        f = s * d;
        t.potential += qq * erfc_term / r;
        t.virial += s * r2;
      });
  {
    auto& reg = obs::Registry::global();
    static obs::Counter& pair_counter = reg.counter("ewald.real_pairs");
    static obs::Counter& flops = reg.counter("ewald.flops.real");
    pair_counter.add(tally.pairs);
    flops.add(static_cast<std::uint64_t>(OperationCounts::kRealPair) *
              tally.pairs);
  }
  ForceResult result;
  result.potential = tally.potential;
  result.virial = tally.virial;
  return result;
}

void EwaldCoulomb::structure_factors(std::span<const Vec3> positions,
                                     std::span<const double> charges,
                                     StructureFactors& out) const {
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  MDM_TRACE_SCOPE("ewald.kspace.dft");
  const auto& kvecs = kvectors_.vectors();
  {
    auto& reg = obs::Registry::global();
    static obs::Gauge& kvector_gauge = reg.gauge("ewald.kvectors");
    static obs::Counter& flops = reg.counter("ewald.flops.dft");
    kvector_gauge.set(static_cast<double>(kvecs.size()));
    flops.add(static_cast<std::uint64_t>(OperationCounts::kDftPerWave) *
              positions.size() * kvecs.size());
  }
  out.s.assign(kvecs.size(), 0.0);
  out.c.assign(kvecs.size(), 0.0);

  auto accumulate = [&](unsigned chunk, std::size_t begin, std::size_t end,
                        std::vector<double>& s_out,
                        std::vector<double>& c_out) {
    detail::PhaseTable& table = phase_tables_[chunk];
    for (std::size_t p = begin; p < end; ++p) {
      table.build(positions[p], box_, kvectors_.n_max());
      const double q = charges[p];
      for (std::size_t m = 0; m < kvecs.size(); ++m) {
        double c, s;
        table.phase(static_cast<int>(kvecs[m].n.x),
                    static_cast<int>(kvecs[m].n.y),
                    static_cast<int>(kvecs[m].n.z), c, s);
        c_out[m] += q * c;
        s_out[m] += q * s;
      }
    }
  };

  if (pool_ && positions.size() > 1) {
    // Per-chunk partials, reduced in chunk order (deterministic for a
    // fixed pool size). Partial buffers and phase tables are member scratch
    // reused across steps; every chunk is zeroed before dispatch because a
    // short range may run inline and touch chunk 0 only.
    const unsigned nw = pool_->size();
    if (s_part_.size() < nw) s_part_.resize(nw);
    if (c_part_.size() < nw) c_part_.resize(nw);
    if (phase_tables_.size() < nw) phase_tables_.resize(nw);
    for (unsigned chunk = 0; chunk < nw; ++chunk) {
      s_part_[chunk].assign(kvecs.size(), 0.0);
      c_part_[chunk].assign(kvecs.size(), 0.0);
    }
    pool_for(*pool_, positions.size(),
             [&](unsigned chunk, std::size_t begin, std::size_t end) {
               accumulate(chunk, begin, end, s_part_[chunk], c_part_[chunk]);
             });
    for (unsigned chunk = 0; chunk < nw; ++chunk) {
      for (std::size_t m = 0; m < kvecs.size(); ++m) {
        out.s[m] += s_part_[chunk][m];
        out.c[m] += c_part_[chunk][m];
      }
    }
  } else {
    if (phase_tables_.empty()) phase_tables_.resize(1);
    accumulate(0, 0, positions.size(), out.s, out.c);
  }
}

StructureFactors EwaldCoulomb::structure_factors(
    std::span<const Vec3> positions, std::span<const double> charges) const {
  StructureFactors sf;
  structure_factors(positions, charges, sf);
  return sf;
}

ForceResult EwaldCoulomb::idft_forces(std::span<const Vec3> positions,
                                      std::span<const double> charges,
                                      const StructureFactors& sf,
                                      std::span<Vec3> forces) const {
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  MDM_TRACE_SCOPE("ewald.kspace.idft");
  const auto& kvecs = kvectors_.vectors();
  if (sf.s.size() != kvecs.size() || forces.size() != positions.size())
    throw std::invalid_argument("idft_forces: size mismatch");
  {
    static obs::Counter& flops =
        obs::Registry::global().counter("ewald.flops.idft");
    flops.add(static_cast<std::uint64_t>(OperationCounts::kIdftPerWave) *
              positions.size() * kvecs.size());
  }

  const double l3 = box_ * box_ * box_;
  // F_i = (4 k_e q_i / L^4) sum_half a_n n_vec [C_n sin_i - S_n cos_i].
  const double force_pref = 4.0 * units::kCoulomb / (l3 * box_);

  auto idft_range = [&](unsigned chunk, std::size_t begin, std::size_t end) {
    detail::PhaseTable& table = phase_tables_[chunk];
    for (std::size_t p = begin; p < end; ++p) {
      table.build(positions[p], box_, kvectors_.n_max());
      Vec3 acc;
      for (std::size_t m = 0; m < kvecs.size(); ++m) {
        double c, s;
        table.phase(static_cast<int>(kvecs[m].n.x),
                    static_cast<int>(kvecs[m].n.y),
                    static_cast<int>(kvecs[m].n.z), c, s);
        const double w = kvecs[m].a * (sf.c[m] * s - sf.s[m] * c);
        acc += w * kvecs[m].n;
      }
      forces[p] += (force_pref * charges[p]) * acc;
    }
  };
  if (pool_ && positions.size() > 1) {
    // Independent per-particle work: bit-identical to the serial loop.
    if (phase_tables_.size() < pool_->size())
      phase_tables_.resize(pool_->size());
    pool_for(*pool_, positions.size(),
             [&](unsigned chunk, std::size_t begin, std::size_t end) {
               idft_range(chunk, begin, end);
             });
  } else {
    if (phase_tables_.empty()) phase_tables_.resize(1);
    idft_range(0, 0, positions.size());
  }

  // Reciprocal energy E = (k_e / (pi L^3)) sum_half a_n (C^2 + S^2) and its
  // virial trace W = sum_k E_k (1 - k_phys^2 / (2 beta^2)), with
  // k_phys^2 / (2 beta^2) = 2 pi^2 n^2 / alpha^2.
  ForceResult result;
  const double energy_pref = units::kCoulomb / (kPi * l3);
  for (std::size_t m = 0; m < kvecs.size(); ++m) {
    const double ek =
        energy_pref * kvecs[m].a * (sf.c[m] * sf.c[m] + sf.s[m] * sf.s[m]);
    const double n2 = dot(kvecs[m].n, kvecs[m].n);
    result.potential += ek;
    result.virial += ek * (1.0 - 2.0 * kPi * kPi * n2 /
                                     (params_.alpha * params_.alpha));
  }
  return result;
}

ForceResult EwaldCoulomb::add_wavenumber_space(const ParticleSystem& system,
                                               std::span<Vec3> forces) const {
  charges_scratch_.resize(system.size());
  for (std::size_t i = 0; i < system.size(); ++i)
    charges_scratch_[i] = system.charge(i);
  structure_factors(system.positions(), charges_scratch_, sf_scratch_);
  return idft_forces(system.positions(), charges_scratch_, sf_scratch_, forces);
}

double EwaldCoulomb::self_energy(const ParticleSystem& system) const {
  return -units::kCoulomb * beta_ / std::sqrt(kPi) *
         system.total_charge_squared();
}

double EwaldCoulomb::background_energy(const ParticleSystem& system) const {
  const double q = system.total_charge();
  const double l3 = box_ * box_ * box_;
  return -units::kCoulomb * kPi / (2.0 * beta_ * beta_ * l3) * q * q;
}

ForceResult EwaldCoulomb::add_forces(const ParticleSystem& system,
                                     std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("force array size mismatch");
  ForceResult result = add_real_space(system, forces);
  result += add_wavenumber_space(system, forces);
  result.potential += self_energy(system);
  result.potential += background_energy(system);
  return result;
}

}  // namespace mdm
