#include "ewald/parameters.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "ewald/flops.hpp"

namespace mdm {

namespace {
constexpr double kPi = std::numbers::pi;
}

double EwaldAccuracy::real_space_error() const { return std::erfc(s1); }

double EwaldAccuracy::wavenumber_error() const {
  return std::exp(-s2 * s2);
}

EwaldParameters parameters_from_alpha(double alpha, double box,
                                      const EwaldAccuracy& accuracy) {
  if (!(alpha > 0.0)) throw std::invalid_argument("alpha must be positive");
  EwaldParameters p;
  p.alpha = alpha;
  p.r_cut = accuracy.s1 * box / alpha;
  p.lk_cut = accuracy.s2 * alpha / kPi;
  return p;
}

EwaldParameters clamp_to_box(EwaldParameters params, double box) {
  params.r_cut = std::min(params.r_cut, 0.5 * box);
  return params;
}

double balanced_alpha(double n_particles, const EwaldAccuracy& accuracy) {
  // 59 N N_int = 64 N N_wv with N_int = (2pi/3) N (s1/alpha)^3 and
  // N_wv = (2pi/3)(s2 alpha / pi)^3  =>  alpha^6 = (59/64) N (s1 pi/s2)^3.
  const double ratio = accuracy.s1 * kPi / accuracy.s2;
  const double alpha6 = OperationCounts::kRealPair /
                        OperationCounts::kWavePair * n_particles * ratio *
                        ratio * ratio;
  return std::pow(alpha6, 1.0 / 6.0);
}

double machine_optimal_alpha(double n_particles, double speed_real,
                             double speed_wavenumber,
                             const EwaldAccuracy& accuracy,
                             bool grape_counting) {
  if (!(speed_real > 0.0) || !(speed_wavenumber > 0.0))
    throw std::invalid_argument("speeds must be positive");
  // t(alpha) = A / (alpha^3 S_re) + B alpha^3 / S_wn with
  // A = 59 N^2 s1^3 * (27 or 2pi/3), B = 64 N (2pi/3)(s2/pi)^3;
  // minimum at alpha^6 = (A / B) * (S_wn / S_re).
  const double geom = grape_counting ? 27.0 : 2.0 * kPi / 3.0;
  const double s1_3 = std::pow(accuracy.s1, 3);
  const double a = OperationCounts::kRealPair * n_particles * n_particles *
                   geom * s1_3;
  const double b = OperationCounts::kWavePair * n_particles *
                   (2.0 * kPi / 3.0) * std::pow(accuracy.s2 / kPi, 3);
  const double alpha6 = a / b * speed_wavenumber / speed_real;
  return std::pow(alpha6, 1.0 / 6.0);
}

EwaldParameters software_parameters(double n_particles, double box,
                                    const EwaldAccuracy& accuracy) {
  // Balanced alpha may demand r_cut > L/2 for small systems; raising alpha
  // to at least 2*s1 keeps r_cut = s1 L / alpha <= L/2 so the clamp never
  // degrades the real-space accuracy.
  const double alpha =
      std::max(balanced_alpha(n_particles, accuracy), 2.0 * accuracy.s1);
  return clamp_to_box(parameters_from_alpha(alpha, box, accuracy), box);
}

}  // namespace mdm
