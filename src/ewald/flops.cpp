#include "ewald/flops.hpp"

#include <cmath>
#include <numbers>

namespace mdm {

namespace {
constexpr double kTwoPiOver3 = 2.0 * std::numbers::pi / 3.0;
}

double n_int(double n_particles, double box, double r_cut) {
  const double density = n_particles / (box * box * box);
  return kTwoPiOver3 * r_cut * r_cut * r_cut * density;
}

double n_int_g(double n_particles, double box, double r_cut) {
  const double density = n_particles / (box * box * box);
  return 27.0 * r_cut * r_cut * r_cut * density;
}

double n_wv(double lk_cut) {
  return kTwoPiOver3 * lk_cut * lk_cut * lk_cut;
}

EwaldStepFlops ewald_step_flops(double n_particles, double box,
                                const EwaldParameters& params) {
  EwaldStepFlops f;
  f.n_int = n_int(n_particles, box, params.r_cut);
  f.n_int_g = n_int_g(n_particles, box, params.r_cut);
  f.n_wv = n_wv(params.lk_cut);
  f.real_host = OperationCounts::kRealPair * n_particles * f.n_int;
  f.real_grape = OperationCounts::kRealPair * n_particles * f.n_int_g;
  f.wavenumber = OperationCounts::kWavePair * n_particles * f.n_wv;
  return f;
}

}  // namespace mdm
