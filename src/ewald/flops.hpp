#pragma once

/// \file flops.hpp
/// The paper's floating-point operation accounting (sec. 2). All of Table 4
/// is derived from these formulas plus one measured wall-clock, so the model
/// is a first-class library citizen:
///
///   real-space pair    : 59 flops (erfc, exp, sqrt, div = 10 each)
///   DFT per (j, n)     : 29 flops (sin, cos = 10 each)
///   IDFT per (i, n)    : 35 flops
///   N_int   = (2 pi / 3) r_cut^3 N / L^3      (eq. 5, Newton's 3rd law)
///   N_int_g = 27 r_cut^3 N / L^3              (eq. 6, MDGRAPE-2: ~13x more)
///   N_wv    = (2 pi / 3) (L k_cut)^3          (eq. 13, half space)

#include "ewald/ewald.hpp"

namespace mdm {

/// Paper flop-count conventions.
struct OperationCounts {
  static constexpr double kTranscendental = 10.0;  ///< erfc/exp/sqrt/div/sin/cos
  static constexpr double kRealPair = 59.0;        ///< eq. 2 per pair
  static constexpr double kDftPerWave = 29.0;      ///< eqs. 9-10 per (j, n)
  static constexpr double kIdftPerWave = 35.0;     ///< eq. 11 per (i, n)
  static constexpr double kWavePair = kDftPerWave + kIdftPerWave;  ///< 64
};

/// Average interacting partners per particle with Newton's third law (half
/// the particles inside r_cut), eq. 5.
double n_int(double n_particles, double box, double r_cut);

/// Partners per particle on MDGRAPE-2: full 27-cell scan, no third law, no
/// cutoff skip (cell side == r_cut), eq. 6. About 13x n_int.
double n_int_g(double n_particles, double box, double r_cut);

/// Half-space wavevector count, eq. 13 (independent of N).
double n_wv(double lk_cut);

/// Per-time-step flop counts for one Ewald configuration.
struct EwaldStepFlops {
  double n_int = 0.0;
  double n_int_g = 0.0;
  double n_wv = 0.0;
  double real_host = 0.0;   ///< 59 N N_int     (conventional computer)
  double real_grape = 0.0;  ///< 59 N N_int_g   (MDGRAPE-2)
  double wavenumber = 0.0;  ///< 64 N N_wv      (WINE-2 or host)

  double total_host() const { return real_host + wavenumber; }
  double total_grape() const { return real_grape + wavenumber; }
};

EwaldStepFlops ewald_step_flops(double n_particles, double box,
                                const EwaldParameters& params);

}  // namespace mdm
