#pragma once

/// \file ewald.hpp
/// Reference double-precision Ewald summation in the paper's conventions
/// (sec. 2): splitting parameter alpha is dimensionless (beta = alpha / L),
/// the real-space force is eq. 2 with complementary error function damping,
/// and the wavenumber-space force is the DFT/IDFT pair of eqs. 9-11.
///
/// This solver is the numerical ground truth for the WINE-2 and MDGRAPE-2
/// simulators and the engine behind the software-only benchmarks. The
/// structure factors use per-axis phase recurrences (the "addition formula"
/// of sec. 2.3 - affordable at our particle counts, whereas the paper
/// rejects it at N = 1.9e7 for needing > 20 GB).

#include <span>
#include <vector>

#include "core/cell_list.hpp"
#include "core/force_field.hpp"
#include "ewald/kvectors.hpp"
#include "ewald/phase_table.hpp"
#include "util/thread_pool.hpp"

namespace mdm {

/// Ewald parameters in paper conventions.
struct EwaldParameters {
  double alpha = 0.0;   ///< dimensionless splitting parameter (beta = alpha/L)
  double r_cut = 0.0;   ///< real-space cutoff, A
  double lk_cut = 0.0;  ///< dimensionless wavenumber cutoff L * k_cut
};

/// Structure factors of one k-vector set: S_n = sum q sin(2 pi k.r),
/// C_n = sum q cos(2 pi k.r) (eqs. 9-10).
struct StructureFactors {
  std::vector<double> s;
  std::vector<double> c;
};

class EwaldCoulomb final : public ForceField {
 public:
  EwaldCoulomb(EwaldParameters params, double box);

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "ewald-coulomb"; }

  /// Barostat coupling: alpha and L*k_cut are dimensionless in the paper's
  /// conventions, so a volume change keeps the integer n set but rescales
  /// beta = alpha/L, the dimensional k vectors, r_cut (the dimensionless
  /// real-space accuracy s1 = alpha r_cut / L stays exactly constant; the
  /// stored r_cut/L ratio makes a reject-and-restore volume move reproduce
  /// the original r_cut bit for bit) and the real-space cell geometry.
  /// Rebuilds are deterministic, so rejected moves stay bit-exact.
  void set_box(double box) override;

  const EwaldParameters& parameters() const { return params_; }
  const KVectorTable& kvectors() const { return kvectors_; }

  /// Run the force loops on a thread pool (nullptr = serial). The real-space
  /// pair sweep uses fixed logical chunks (bit-identical to serial at any
  /// pool size); the IDFT is embarrassingly parallel over particles
  /// (bit-identical to serial); the DFT reduces per-chunk partial structure
  /// factors in chunk order, so it is deterministic for a fixed pool size.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Individual pieces, exposed for tests and for validating the hardware
  /// simulators against this reference. Each *adds* into `forces`.
  ForceResult add_real_space(const ParticleSystem& system,
                             std::span<Vec3> forces) const;
  ForceResult add_wavenumber_space(const ParticleSystem& system,
                                   std::span<Vec3> forces) const;
  /// Point-self-interaction correction, -k_e * beta / sqrt(pi) * sum q^2.
  double self_energy(const ParticleSystem& system) const;
  /// Neutralizing-background term; zero for a neutral system.
  double background_energy(const ParticleSystem& system) const;

  /// DFT step (eqs. 9-10) over the given positions/charges.
  StructureFactors structure_factors(std::span<const Vec3> positions,
                                     std::span<const double> charges) const;

  /// Allocation-free DFT: fills `out` in place (storage is reused across
  /// steps once sized). The step loop uses this form via
  /// `add_wavenumber_space`; the returning overload above delegates here.
  void structure_factors(std::span<const Vec3> positions,
                         std::span<const double> charges,
                         StructureFactors& out) const;

  /// IDFT step (eq. 11): forces and reciprocal energy from precomputed
  /// structure factors. Exposed so the host module can split DFT/IDFT
  /// between "processes" exactly like the WINE-2 library does.
  ForceResult idft_forces(std::span<const Vec3> positions,
                          std::span<const double> charges,
                          const StructureFactors& sf,
                          std::span<Vec3> forces) const;

 private:
  EwaldParameters params_;
  double box_;
  double beta_;           ///< alpha / L, 1/A
  double r_cut_per_box_;  ///< r_cut / L, fixed: set_box keeps s1 constant
  double construction_box_;    ///< set_box maps this box back to the exact
  double construction_r_cut_;  ///< construction r_cut ((r/L)*L rounds)
  KVectorTable kvectors_;
  ThreadPool* pool_ = nullptr;

  // Reusable scratch, sized on first use and reused across steps so the
  // steady-state step loop performs no allocations. Mutable because the
  // force evaluators are logically const; a single EwaldCoulomb must not be
  // driven from several threads at once (the pool fan-out happens inside).
  mutable CellList real_cells_;
  mutable PairScratch real_scratch_;
  mutable std::vector<std::vector<double>> s_part_;  ///< per-chunk DFT S_n
  mutable std::vector<std::vector<double>> c_part_;  ///< per-chunk DFT C_n
  mutable std::vector<detail::PhaseTable> phase_tables_;  ///< per chunk
  mutable StructureFactors sf_scratch_;
  mutable std::vector<double> charges_scratch_;
};

}  // namespace mdm
