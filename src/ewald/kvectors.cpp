#include "ewald/kvectors.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdm {

bool in_half_space(int nx, int ny, int nz) {
  if (nz != 0) return nz > 0;
  if (ny != 0) return ny > 0;
  return nx > 0;
}

KVectorTable::KVectorTable(double box, double alpha, double lk_cut)
    : box_(box), alpha_(alpha), lk_cut_(lk_cut) {
  if (!(box > 0.0) || !(alpha > 0.0) || !(lk_cut > 0.0))
    throw std::invalid_argument("KVectorTable: parameters must be positive");

  const int limit = static_cast<int>(std::floor(lk_cut));
  const double lk_cut2 = lk_cut * lk_cut;
  const double pi = std::numbers::pi;
  // exp(-pi^2 L^2 k^2 / alpha^2) with k = n/L: exponent = -(pi |n| / alpha)^2.
  const double damp = (pi / alpha) * (pi / alpha);

  for (int nz = 0; nz <= limit; ++nz) {
    for (int ny = (nz == 0 ? 0 : -limit); ny <= limit; ++ny) {
      for (int nx = (nz == 0 && ny == 0 ? 1 : -limit); nx <= limit; ++nx) {
        if (!in_half_space(nx, ny, nz)) continue;
        const double n2 =
            double(nx) * nx + double(ny) * ny + double(nz) * nz;
        if (n2 > lk_cut2) continue;
        KVector kv;
        kv.n = {double(nx), double(ny), double(nz)};
        kv.k = kv.n / box_;
        kv.k2 = n2 / (box_ * box_);
        kv.a = std::exp(-damp * n2) / kv.k2;
        vectors_.push_back(kv);
        n_max_ = std::max({n_max_, std::abs(nx), std::abs(ny), std::abs(nz)});
      }
    }
  }
  if (vectors_.empty())
    throw std::invalid_argument("KVectorTable: L*k_cut < 1 yields no vectors");
}

}  // namespace mdm
