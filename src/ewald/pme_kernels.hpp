#pragma once

/// \file pme_kernels.hpp
/// Shared building blocks of smooth particle-mesh Ewald (Essmann et al.
/// 1995), factored out of the serial SmoothPme solver so the distributed
/// slab engine (host/distributed_pme) evaluates EXACTLY the same spline
/// weights and influence function — cross-validation between the two then
/// measures only the decomposition, not a second implementation.
///
/// Conventions (identical to pme.hpp): dimensionless alpha (beta =
/// alpha / L), integer wavevectors n, grid of K points per axis, B-spline
/// order p with support spreading DOWNWARD from base = floor(u):
/// grid point (base - j) mod K carries weight M_p(t + j), j = 0..p-1.

#include <vector>

#include "util/vec3.hpp"

namespace mdm::pme {

/// Hard upper bound on the B-spline order (pme.hpp validates order <= 10).
inline constexpr int kMaxOrder = 10;

/// Cardinal B-spline M_p(x) on [0, p] (zero outside); p >= 2.
double bspline(int p, double x);

/// Per-particle spline state for one position: the base grid index and the
/// order-p weight/derivative rows per axis.
struct SplineWeights {
  int base[3];               ///< floor(u) per axis, u = wrap(x)/L * K
  double w[3][kMaxOrder];    ///< M_p(t + j), grid point (base - j) mod K
  double dw[3][kMaxOrder];   ///< dM_p/du at the same points
};

/// Fill `s` for a position in a cubic box of side `box` on a K-point grid
/// with order-p splines.
void spline_weights(const Vec3& pos, double box, int grid, int order,
                    SplineWeights& s);

/// |b(n)|^-2 ... precisely: the per-axis Euler factor |b(n)|^2 of the
/// influence function (Essmann eq. 4.4), with modes where the spline sum
/// vanishes set to 0 instead of blowing up. Length `grid`.
std::vector<double> axis_b2(int grid, int order);

/// Influence function theta(n) = exp(-pi^2 n^2 / alpha^2) / n^2
/// * b2[nx] b2[ny] b2[nz] for one mode (indices in [0, K)); 0 at n = 0.
double influence_theta(int nx, int ny, int nz, int grid, double alpha,
                       const std::vector<double>& b2);

}  // namespace mdm::pme
