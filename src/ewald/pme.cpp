#include "ewald/pme.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/cell_list.hpp"
#include "core/fastmath.hpp"
#include "util/units.hpp"

namespace mdm {
namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

PmeParameters validated_pme(PmeParameters params, double box) {
  if (!(params.alpha > 0.0) || !(params.r_cut > 0.0))
    throw std::invalid_argument("SmoothPme: bad parameters");
  if (params.r_cut > 0.5 * box + 1e-12)
    throw std::invalid_argument("SmoothPme: r_cut must be <= L/2");
  if (params.order < 3 || params.order > pme::kMaxOrder)
    throw std::invalid_argument("SmoothPme: order must be in [3, 10]");
  if (!is_power_of_two(static_cast<std::size_t>(params.grid)))
    throw std::invalid_argument("SmoothPme: grid must be a power of two");
  if (params.grid < 2 * params.order)
    throw std::invalid_argument("SmoothPme: grid too small for the order");
  return params;
}

double bspline(int p, double x) { return pme::bspline(p, x); }

SmoothPme::SmoothPme(PmeParameters params, double box)
    : params_(validated_pme(params, box)),
      box_(box),
      beta_(params.alpha / box),
      grid_(static_cast<std::size_t>(params.grid)),
      real_cells_(box, params.r_cut) {
  build_influence();
}

void SmoothPme::build_influence() {
  const int k = params_.grid;
  const std::vector<double> b2 = pme::axis_b2(k, params_.order);
  influence_.assign(static_cast<std::size_t>(k) * k * k, 0.0);
  for (int nz = 0; nz < k; ++nz)
    for (int ny = 0; ny < k; ++ny)
      for (int nx = 0; nx < k; ++nx)
        influence_[(std::size_t(nz) * k + ny) * k + nx] =
            pme::influence_theta(nx, ny, nz, k, params_.alpha, b2);
}

double SmoothPme::add_reciprocal(const ParticleSystem& system,
                                 std::span<Vec3> forces) {
  const int k = params_.grid;
  const int p = params_.order;
  const auto positions = system.positions();
  const std::size_t n = system.size();

  spread_.resize(n);
  auto& spread = spread_;

  grid_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double q = system.charge(i);
    pme::SplineWeights& s = spread[i];
    pme::spline_weights(positions[i], box_, k, p, s);
    for (int jz = 0; jz < p; ++jz) {
      const int gz = ((s.base[2] - jz) % k + k) % k;
      for (int jy = 0; jy < p; ++jy) {
        const int gy = ((s.base[1] - jy) % k + k) % k;
        const double wyz = s.w[1][jy] * s.w[2][jz] * q;
        for (int jx = 0; jx < p; ++jx) {
          const int gx = ((s.base[0] - jx) % k + k) % k;
          grid_.at(gx, gy, gz) += wyz * s.w[0][jx];
        }
      }
    }
  }

  // A(n) = F^-(Q)(n) = conj(F^+(Q)(n)) for real Q.
  grid_.transform(false);

  // Energy E = (k_e / (2 pi L)) sum_n theta(n) |F^+(Q)(n)|^2 and the
  // convolution G-hat(n) = theta(n) F^+(Q)(n) = theta(n) conj(A(n)).
  double energy = 0.0;
  for (std::size_t idx = 0; idx < grid_.size(); ++idx) {
    const double theta = influence_[idx];
    const Complex a = grid_.data()[idx];
    energy += theta * std::norm(a);
    grid_.data()[idx] = theta * std::conj(a);
  }
  energy *= units::kCoulomb / (2.0 * kPi * box_);

  // phi(k_grid) = (k_e / (pi L)) F^-(G-hat)(k_grid)  (real by symmetry).
  grid_.transform(false);

  // Gather forces: F_i = -q_i sum_grid grad(w_i) phi, du/dx = K / L.
  // Analytic-differentiation SPME does not conserve momentum exactly (the
  // spline interpolation breaks Newton's third law at the mesh-error
  // level); the customary fix, applied below, subtracts the mean force.
  const double phi_pref = units::kCoulomb / (kPi * box_);
  const double scale = static_cast<double>(k) / box_;
  recip_.assign(n, Vec3{});
  auto& recip = recip_;
  for (std::size_t i = 0; i < n; ++i) {
    const double q = system.charge(i);
    const pme::SplineWeights& s = spread[i];
    Vec3 f;
    for (int jz = 0; jz < p; ++jz) {
      const int gz = ((s.base[2] - jz) % k + k) % k;
      for (int jy = 0; jy < p; ++jy) {
        const int gy = ((s.base[1] - jy) % k + k) % k;
        for (int jx = 0; jx < p; ++jx) {
          const int gx = ((s.base[0] - jx) % k + k) % k;
          const double phi = phi_pref * grid_.at(gx, gy, gz).real();
          f.x += s.dw[0][jx] * s.w[1][jy] * s.w[2][jz] * phi;
          f.y += s.w[0][jx] * s.dw[1][jy] * s.w[2][jz] * phi;
          f.z += s.w[0][jx] * s.w[1][jy] * s.dw[2][jz] * phi;
        }
      }
    }
    recip[i] = (-q * scale) * f;
  }
  Vec3 net;
  for (const auto& f : recip) net += f;
  net /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) forces[i] += recip[i] - net;
  return energy;
}

ForceResult SmoothPme::add_forces(const ParticleSystem& system,
                                  std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("SmoothPme: force array size mismatch");

  ForceResult result;
  // Real-space erfc part (same sum as the exact Ewald solver).
  {
    const auto positions = system.positions();
    real_cells_.build(positions);
    const double two_over_sqrt_pi = 2.0 / std::sqrt(kPi);
    const double beta = beta_;
    const PairTally tally = real_cells_.parallel_for_each_pair(
        pool_, real_scratch_, positions, params_.r_cut, forces,
        [&system, beta, two_over_sqrt_pi](std::uint32_t i, std::uint32_t j,
                                          const Vec3& d, double r2, Vec3& f,
                                          PairTally& t) {
          const double r = std::sqrt(r2);
          const double qq =
              units::kCoulomb * system.charge(i) * system.charge(j);
          // Shared rational erfc, same evaluation as EwaldCoulomb's kernel.
          const double expmx2 = std::exp(-beta * beta * r2);
          const double erfc_term = fastmath::erfc_from_exp(beta * r, expmx2);
          const double gauss = two_over_sqrt_pi * beta * r * expmx2;
          const double s = qq * (erfc_term + gauss) / (r2 * r);
          f = s * d;
          t.potential += qq * erfc_term / r;
          t.virial += s * r2;
        });
    result.potential = tally.potential;
    result.virial = tally.virial;
  }

  result.potential += add_reciprocal(system, forces);

  // Self and background corrections (as in the exact solver).
  result.potential += -units::kCoulomb * beta_ / std::sqrt(kPi) *
                      system.total_charge_squared();
  const double q_total = system.total_charge();
  result.potential += -units::kCoulomb * kPi /
                      (2.0 * beta_ * beta_ * box_ * box_ * box_) * q_total *
                      q_total;
  return result;
}

double SmoothPme::reciprocal_flops(double n_particles) const {
  const double k3 = std::pow(double(params_.grid), 3);
  const double p3 = std::pow(double(params_.order), 3);
  return 2.0 * n_particles * p3 * 10.0 +
         2.0 * 5.0 * k3 * std::log2(k3);
}

}  // namespace mdm
