#pragma once

/// \file parameters.hpp
/// Ewald parameter selection. The paper fixes the *accuracy* of the sum via
/// two dimensionless factors that are constant across its three machine
/// columns (recovered from Table 4):
///
///   s1 = alpha * r_cut / L   ~ 2.636   (real-space truncation level)
///   s2 = pi * L * k_cut / alpha ~ 2.366 (wavenumber truncation level)
///
/// Given s1/s2, one free parameter alpha trades real-space work
/// (proportional to alpha^-3) against wavenumber work (alpha^3):
///  * a conventional computer balances the two flop counts (alpha = 30.1),
///  * the MDM picks a much larger alpha (85.0) because WINE-2 evaluates the
///    wavenumber part ~50x faster than MDGRAPE-2 evaluates the real part.

#include "ewald/ewald.hpp"

namespace mdm {

/// Truncation levels; both map to a relative error of roughly 1e-3..1e-4 in
/// the respective sums (erfc(s1) ~ 2e-4, exp(-s2^2) ~ 4e-3).
struct EwaldAccuracy {
  double s1 = 2.636;
  double s2 = 2.366;

  /// The paper's accuracy (default).
  static EwaldAccuracy paper() { return {}; }
  /// Reduced accuracy for large demonstration runs (about 2.5x cheaper).
  static EwaldAccuracy fast() { return {2.0, 1.9}; }

  /// Estimated relative truncation error of the real-space sum, erfc(s1).
  double real_space_error() const;
  /// Estimated relative truncation error of the wavenumber sum, exp(-s2^2).
  double wavenumber_error() const;
};

/// Derive (r_cut, L k_cut) from alpha at fixed accuracy:
/// r_cut = s1 L / alpha, L k_cut = s2 alpha / pi.
EwaldParameters parameters_from_alpha(double alpha, double box,
                                      const EwaldAccuracy& accuracy = {});

/// Clamp r_cut to L/2 (required for minimum-image evaluation at small N)
/// while keeping the wavenumber cutoff consistent with `alpha`.
EwaldParameters clamp_to_box(EwaldParameters params, double box);

/// Alpha that balances the conventional flop counts
/// 59 N N_int = 64 N N_wv: alpha^6 = (59/64) N (s1 pi / s2)^3.
/// Reproduces the paper's alpha = 30.1 at N = 18,821,096.
double balanced_alpha(double n_particles, const EwaldAccuracy& accuracy = {});

/// Alpha minimizing t = F_real/speed_real + F_wn/speed_wn for a machine
/// whose real-space unit counts like MDGRAPE-2 (59 N N_int_g) when
/// `grape_counting` is true, or like a conventional computer (59 N N_int)
/// otherwise. Speeds in flop/s. Reproduces the paper's alpha = 85 (current
/// MDM) and ~50 (future MDM) choices.
double machine_optimal_alpha(double n_particles, double speed_real,
                             double speed_wavenumber,
                             const EwaldAccuracy& accuracy = {},
                             bool grape_counting = true);

/// Convenience: fully-specified Ewald parameters for a software run on this
/// host - balanced alpha, clamped to the box.
EwaldParameters software_parameters(double n_particles, double box,
                                    const EwaldAccuracy& accuracy = {});

}  // namespace mdm
