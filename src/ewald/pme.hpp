#pragma once

/// \file pme.hpp
/// Smooth particle-mesh Ewald (Essmann et al. 1995 - the paper's ref. [4]),
/// the O(N log N) alternative whose accuracy the paper says "has not been
/// well discussed ... on the actual system with large number of particles"
/// (sec. 1) and proposes to compare against (sec. 6.3). This implementation
/// provides exactly that comparison baseline:
///
///  * real-space part: identical erfc sum to the exact Ewald solver;
///  * reciprocal part: cardinal-B-spline charge spreading onto a K^3 grid,
///    3D FFT, the Essmann influence function
///    theta(n) = exp(-pi^2 n^2/alpha^2)/n^2 * |b1 b2 b3|^2,
///    and analytic B-spline-derivative interpolation of the forces.
///
/// Conventions match ewald.hpp: paper-style dimensionless alpha
/// (beta = alpha/L), integer wavevectors n, phases 2 pi n.r / L.

#include "core/cell_list.hpp"
#include "core/force_field.hpp"
#include "ewald/pme_kernels.hpp"
#include "util/fft.hpp"
#include "util/thread_pool.hpp"

namespace mdm {

struct PmeParameters {
  double alpha = 0.0;  ///< dimensionless splitting (beta = alpha / L)
  double r_cut = 0.0;  ///< real-space cutoff, A
  int grid = 32;       ///< mesh points per axis (power of two)
  int order = 4;       ///< B-spline order (>= 3)
};

class SmoothPme final : public ForceField {
 public:
  SmoothPme(PmeParameters params, double box);

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "smooth-pme"; }

  const PmeParameters& parameters() const { return params_; }

  /// Run the real-space pair sweep on a thread pool (nullptr = serial);
  /// forces are bit-identical to serial at any pool size. The mesh part
  /// stays serial (the FFT dominates and is not parallelised here).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Reciprocal-space piece alone (spread + FFT + convolution + gather);
  /// exposed for the accuracy comparison against the exact Ewald
  /// wavenumber part. Returns the reciprocal energy; the virial is not
  /// computed for the mesh (ForceResult.virial = 0).
  double add_reciprocal(const ParticleSystem& system,
                        std::span<Vec3> forces);

  /// Approximate reciprocal-space flops per step for the cost model:
  /// spreading/gathering ~ 2 * N * order^3 * 10 plus the FFT's
  /// ~ 2 * 5 K^3 log2(K^3).
  double reciprocal_flops(double n_particles) const;

 private:
  void build_influence();

  PmeParameters params_;
  double box_;
  double beta_;
  Grid3D grid_;
  std::vector<double> influence_;  ///< theta-hat per grid point (n = 0 -> 0)
  ThreadPool* pool_ = nullptr;
  // Reusable step scratch (no steady-state allocations).
  CellList real_cells_;
  PairScratch real_scratch_;
  /// Per-particle spline weights, reusable scratch between the spread and
  /// gather passes (shared definition with the distributed slab engine).
  std::vector<pme::SplineWeights> spread_;
  std::vector<Vec3> recip_;
};

/// Cardinal B-spline M_p(x) on [0, p] (zero outside); p >= 2. Forwarder to
/// the shared pme::bspline kernel.
double bspline(int p, double x);

/// Validate PME parameters against a box (throws std::invalid_argument with
/// a configuration-error message). Exposed so callers that only carry the
/// parameters (the parallel app, the serve layer) can fail fast at config
/// time rather than deep inside a rank thread.
PmeParameters validated_pme(PmeParameters params, double box);

}  // namespace mdm
