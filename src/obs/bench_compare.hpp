#pragma once

/// \file bench_compare.hpp
/// Perf-regression telemetry (DESIGN.md §10): diff the BENCH_*.json files a
/// bench run just produced against a committed baseline, with per-metric
/// tolerance bands, so perf drifts fail CI instead of accumulating silently.
///
/// Tolerances come from a JSON rules file (bench/baselines/tolerances.json):
///
///   {"default":      {"rel_tol": 0.25},
///    "units":        {"ms": {"informational": true}, ...},
///    "metrics":      {"hot_paths/cells": {"rel_tol": 0.0},
///                     "energy_drift": {"abs_tol": 1e-6}}}
///
/// Lookup overlays default <- unit rule <- "metric" <- "bench/metric", each
/// layer overriding only the fields it sets. A metric is in-band when
/// |current - baseline| <= rel_tol * |baseline| + abs_tol. Informational
/// metrics (typically anything measured in wall time — CI machines differ)
/// are reported but never fail the comparison; deterministic counts and
/// accuracy metrics get strict bands. A metric present in the baseline but
/// missing from the current run fails; a new metric is reported as such —
/// unless an explicit "metrics" rule names it, in which case its absence
/// from the baseline also fails (a tolerance was written for it, so a
/// vacuous pass would hide a stale baseline). Likewise a "metrics" rule
/// that matches nothing on either side fails the directory comparison with
/// the rule key named (kUnmatchedRule), so renaming a metric without
/// updating tolerances.json cannot silently disarm its band.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace mdm::obs {

/// One tolerance rule; unset fields inherit from the layer below.
struct ToleranceRule {
  std::optional<double> rel_tol;
  std::optional<double> abs_tol;
  std::optional<bool> informational;
};

class ToleranceRules {
 public:
  /// Built-in defaults: rel_tol 0.25, abs_tol 1e-12, strict.
  ToleranceRules() = default;

  /// Parse a rules file (see file comment); throws JsonError.
  static ToleranceRules load(const std::string& path);

  /// Resolved band for one metric.
  struct Resolved {
    double rel_tol = 0.25;
    double abs_tol = 1e-12;
    bool informational = false;
  };
  Resolved lookup(const std::string& bench, const std::string& metric,
                  const std::string& unit) const;

  /// True when an explicit "metrics" rule names this metric, either bare
  /// ("step_time") or bench-qualified ("hot/step_time"). Unit and default
  /// rules don't count — only a rule written for this specific metric.
  bool has_metric_rule(const std::string& bench,
                       const std::string& metric) const;

  /// The explicit "metrics" rule keys, in file order (bare or qualified).
  std::vector<std::string> metric_rule_keys() const;

 private:
  static void overlay(Resolved& r, const ToleranceRule& rule);
  ToleranceRule default_;
  std::vector<std::pair<std::string, ToleranceRule>> by_unit_;
  std::vector<std::pair<std::string, ToleranceRule>> by_metric_;
};

enum class DeltaStatus {
  kOk,             ///< within band
  kRegressed,      ///< out of band — fails the comparison
  kMissing,        ///< in baseline (or explicitly ruled), absent from the
                   ///< other side — fails
  kNew,            ///< in current only, no explicit rule — does not fail
  kInformational,  ///< out of band but the metric is informational
  kUnmatchedRule,  ///< explicit tolerance rule matched no metric — fails
};

const char* to_string(DeltaStatus status) noexcept;

struct MetricDelta {
  std::string bench;
  std::string metric;
  std::string unit;
  double baseline = 0.0;
  double current = 0.0;
  double rel_tol = 0.0;
  DeltaStatus status = DeltaStatus::kOk;
};

struct CompareReport {
  std::vector<MetricDelta> deltas;
  int benches_compared = 0;

  bool ok() const noexcept;
  /// kRegressed + kMissing + kUnmatchedRule count.
  int failures() const noexcept;
};

/// Compare one baseline BENCH_*.json against its current counterpart.
/// Throws JsonError on unreadable/malformed input.
CompareReport compare_bench_files(const std::string& baseline_path,
                                  const std::string& current_path,
                                  const ToleranceRules& rules);

/// Compare every BENCH_*.json in `baseline_dir` against the same-named file
/// in `current_dir`. A baseline file with no current counterpart yields one
/// kMissing delta for the whole bench; extra current files are ignored
/// (benches not yet baselined must not fail CI).
CompareReport compare_bench_dirs(const std::string& baseline_dir,
                                 const std::string& current_dir,
                                 const ToleranceRules& rules);

/// Append a kUnmatchedRule failure for every explicit "metrics" rule key
/// that matched no delta in `report` — a rule that gates nothing is a stale
/// tolerances.json (metric renamed or dropped) and must fail loudly with
/// the key named. When `only_bench` is non-empty (single-file mode), only
/// rules qualified with that bench are checked; bare rule keys cannot be
/// attributed to one bench and are skipped. compare_bench_dirs applies this
/// itself; the single-file comparison leaves it to the caller.
void append_unmatched_rule_failures(const ToleranceRules& rules,
                                    CompareReport& report,
                                    const std::string& only_bench = {});

/// Human-readable table of the comparison, one line per delta plus a
/// verdict line ("bench_compare: OK ..." / "bench_compare: FAIL ...").
void write_text(const CompareReport& report, std::ostream& os);

}  // namespace mdm::obs
