#include "obs/trace_context.hpp"

#include <atomic>
#include <chrono>

namespace mdm::obs {
namespace {

thread_local TraceContext t_current{};

std::atomic<std::uint64_t>& trace_counter() {
  static std::atomic<std::uint64_t>* c = new std::atomic<std::uint64_t>(0);
  return *c;
}

std::atomic<std::uint64_t>& span_counter() {
  static std::atomic<std::uint64_t>* c = new std::atomic<std::uint64_t>(1);
  return *c;
}

/// Per-process salt for the high half of trace ids, taken once from the
/// system clock so traces merged from different processes keep distinct ids.
std::uint64_t process_salt() {
  static const std::uint64_t salt = [] {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now).count();
    return static_cast<std::uint64_t>(us) << 20;
  }();
  return salt;
}

}  // namespace

TraceContext TraceContext::mint() noexcept {
  const std::uint64_t n =
      trace_counter().fetch_add(1, std::memory_order_relaxed) + 1;
  TraceContext ctx;
  // Counter in the low bits keeps ids unique within the process even if two
  // processes mint within the same microsecond.
  ctx.trace_id = process_salt() | (n & ((std::uint64_t{1} << 20) - 1));
  ctx.span_id = next_span_id();
  return ctx;
}

std::uint64_t TraceContext::next_span_id() noexcept {
  return span_counter().fetch_add(1, std::memory_order_relaxed);
}

TraceContext TraceContext::current() noexcept { return t_current; }

TraceContext TraceContext::current_or_mint() noexcept {
  return t_current.valid() ? t_current : mint();
}

void TraceContext::set_current(TraceContext ctx) noexcept { t_current = ctx; }

}  // namespace mdm::obs
