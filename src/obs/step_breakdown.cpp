#include "obs/step_breakdown.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdm::obs {
namespace {

const char* const kPhaseNames[kPhaseCount] = {"real_space", "wavenumber",
                                              "host", "comm"};
const char* const kPhaseCounterNames[kPhaseCount] = {
    "phase.real_space_ns", "phase.wavenumber_ns", "phase.host_ns",
    "phase.comm_ns"};

Counter& phase_counter(Phase p) noexcept {
  static Counter* counters[kPhaseCount] = {
      &Registry::global().counter(kPhaseCounterNames[0]),
      &Registry::global().counter(kPhaseCounterNames[1]),
      &Registry::global().counter(kPhaseCounterNames[2]),
      &Registry::global().counter(kPhaseCounterNames[3]),
  };
  return *counters[static_cast<int>(p)];
}

}  // namespace

const char* phase_name(Phase p) noexcept {
  return kPhaseNames[static_cast<int>(p)];
}

void add_phase_ns(Phase p, std::uint64_t ns) noexcept {
  phase_counter(p).add(ns);
}

ScopedPhase::ScopedPhase(Phase p) noexcept
    : phase_(p), start_ns_(Trace::now_ns()) {}

ScopedPhase::~ScopedPhase() {
  const std::uint64_t end = Trace::now_ns();
  if (end > start_ns_) phase_counter(phase_).add(end - start_ns_);
}

void record_step(double wall_ms) noexcept {
  static Counter& steps = Registry::global().counter("sim.steps");
  static Histogram& step_ms = Registry::global().histogram("sim.step_ms");
  steps.add(1);
  step_ms.observe(wall_ms);
}

double StepBreakdown::component_sum_ms() const noexcept {
  double sum = 0.0;
  for (const double ms : phase_ms) sum += ms;
  return sum;
}

double StepBreakdown::coverage() const noexcept {
  return wall_mean_ms > 0.0 ? component_sum_ms() / wall_mean_ms : 0.0;
}

StepBreakdown StepBreakdown::collect() {
  auto& reg = Registry::global();
  StepBreakdown b;
  b.steps = reg.counter_value("sim.steps");
  if (b.steps == 0) return b;
  for (int p = 0; p < kPhaseCount; ++p) {
    const auto ns = reg.counter_value(kPhaseCounterNames[p]);
    b.phase_ms[p] =
        static_cast<double>(ns) * 1e-6 / static_cast<double>(b.steps);
  }
  if (const Histogram* h = reg.find_histogram("sim.step_ms")) {
    b.wall_mean_ms = h->mean();
    b.wall_p50_ms = h->percentile(50.0);
    b.wall_p95_ms = h->percentile(95.0);
    b.wall_max_ms = h->max();
  }
  return b;
}

std::string StepBreakdown::format() const {
  char line[160];
  std::string out;
  out += "Per-step time breakdown (Table-1 style)\n";
  std::snprintf(line, sizeof line, "  steps measured      %12llu\n",
                static_cast<unsigned long long>(steps));
  out += line;
  const double wall = wall_mean_ms;
  for (int p = 0; p < kPhaseCount; ++p) {
    const double pct = wall > 0.0 ? 100.0 * phase_ms[p] / wall : 0.0;
    std::snprintf(line, sizeof line, "  %-18s %12.3f ms/step  (%5.1f%%)\n",
                  kPhaseNames[p], phase_ms[p], pct);
    out += line;
  }
  std::snprintf(line, sizeof line, "  %-18s %12.3f ms/step  (%5.1f%%)\n",
                "component sum", component_sum_ms(), 100.0 * coverage());
  out += line;
  std::snprintf(line, sizeof line,
                "  %-18s %12.3f ms/step  (p50 %.3f, p95 %.3f, max %.3f)\n",
                "wall", wall_mean_ms, wall_p50_ms, wall_p95_ms, wall_max_ms);
  out += line;
  return out;
}

}  // namespace mdm::obs
