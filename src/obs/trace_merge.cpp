#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/trace.hpp"

namespace mdm::obs {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      os << buf;
    } else
      os << c;
  }
}

/// Serialize one JsonValue. Integral numbers print as integers; the rest as
/// fixed 3-decimal values, matching how the tracer emits microsecond
/// timestamps (so a merge round-trips them exactly).
void write_value(std::ostream& os, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; return;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false"); return;
    case JsonValue::Kind::kNumber: {
      const double d = v.as_number();
      if (d == std::floor(d) && std::abs(d) < 9.0e15) {
        os << static_cast<long long>(d);
      } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.3f", d);
        os << buf;
      }
      return;
    }
    case JsonValue::Kind::kString:
      os << '"';
      write_escaped(os, v.as_string());
      os << '"';
      return;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& item : v.as_array()) {
        if (!first) os << ',';
        first = false;
        write_value(os, item);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, item] : v.as_object()) {
        if (!first) os << ',';
        first = false;
        os << '"';
        write_escaped(os, key);
        os << "\":";
        write_value(os, item);
      }
      os << '}';
      return;
    }
  }
}

long long int_member(const JsonValue& obj, const std::string& key,
                     long long fallback) {
  const JsonValue* v = obj.find(key);
  if (!v || !v->is_number()) return fallback;
  return static_cast<long long>(v->as_number());
}

}  // namespace

void merge_chrome_traces(const std::vector<TraceMergeInput>& inputs,
                         std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::set<int> ranks_named;
  // Offset each input's tids into a distinct band so thread 3 of file A and
  // thread 3 of file B stay separate tracks.
  long long tid_base = 0;
  for (const auto& input : inputs) {
    const JsonValue doc = parse_json_file(input.path);
    const auto& events = doc.at("traceEvents").as_array();
    const int host_pid =
        input.rank >= 0 ? Trace::kRankPidBase + input.rank : 1;
    if (input.rank >= 0 && ranks_named.insert(input.rank).second) {
      os << (first ? "" : ",")
         << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << host_pid
         << ",\"tid\":0,\"args\":{\"name\":\"rank " << input.rank << "\"}}";
      first = false;
    }
    long long max_tid = 0;
    for (const auto& ev : events) {
      const auto& obj = ev.as_object();
      const JsonValue* ph = ev.find("ph");
      const long long pid = int_member(ev, "pid", 1);
      const long long tid = int_member(ev, "tid", 0) + tid_base;
      max_tid = std::max(max_tid, tid - tid_base);
      const bool on_rank_track = pid >= Trace::kRankPidBase;
      if (ph && ph->is_string() && ph->as_string() == "M") {
        // Keep rank-track metadata from in-process worlds; the host
        // process_name (if any) is replaced by the rank name above.
        if (!on_rank_track) continue;
        if (const JsonValue* args = ev.find("args")) {
          if (const JsonValue* name = args->find("name")) {
            if (name->is_string()) {
              const int rank = static_cast<int>(pid) - Trace::kRankPidBase;
              if (!ranks_named.insert(rank).second) continue;
            }
          }
        }
      }
      os << (first ? "" : ",") << "\n{";
      first = false;
      bool first_member = true;
      for (const auto& [key, value] : obj) {
        if (!first_member) os << ',';
        first_member = false;
        os << '"';
        write_escaped(os, key);
        os << "\":";
        if (key == "pid")
          os << (on_rank_track ? pid : host_pid);
        else if (key == "tid")
          os << tid;
        else
          write_value(os, value);
      }
      os << '}';
    }
    tid_base += max_tid + 1;
  }
  os << "\n]}\n";
}

std::string merge_chrome_traces(const std::vector<TraceMergeInput>& inputs) {
  std::ostringstream os;
  merge_chrome_traces(inputs, os);
  return os.str();
}

bool merge_chrome_trace_files(const std::vector<TraceMergeInput>& inputs,
                              const std::string& out_path) {
  std::ofstream os(out_path);
  if (!os) return false;
  merge_chrome_traces(inputs, os);
  return static_cast<bool>(os);
}

std::vector<std::string> distinct_trace_ids(const JsonValue& doc) {
  std::set<std::string> ids;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    const JsonValue* args = ev.find("args");
    if (!args) continue;
    const JsonValue* trace = args->find("trace");
    if (trace && trace->is_string()) ids.insert(trace->as_string());
  }
  return {ids.begin(), ids.end()};
}

}  // namespace mdm::obs
