#pragma once

/// \file trace_context.hpp
/// Request-scoped trace identity (DESIGN.md §10). A `TraceContext` is a
/// (trace id, span id) pair minted once per serve job and once per
/// `MdmParallelApp` epoch; every span recorded while a context is installed
/// on the calling thread carries its trace id, and vmpi stamps the current
/// trace id into every message header, so one job's life — admission,
/// queueing, per-rank force phases, checkpoint writes, completion — is a
/// single correlated trace no matter how many threads and ranks it crosses.
///
/// The context is thread-local. Install it with the RAII scope:
///
///   obs::TraceContextScope scope(job_ctx);
///   ... every TraceSpan and FlightRecorder event here is tagged ...
///
/// Thread-pool fan-outs forward the dispatching thread's context into the
/// worker chunks (util/thread_pool.cpp), and the parallel app installs the
/// epoch context on every rank thread, so the propagation rules are:
/// ambient context follows the work, not the OS thread.

#include <cstdint>

namespace mdm::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no context (untagged spans)
  std::uint64_t span_id = 0;   ///< id of the current (parent) span

  bool valid() const noexcept { return trace_id != 0; }

  /// Mint a fresh context: a process-unique nonzero trace id (an epoch
  /// timestamp salt in the high bits plus a monotone counter, so ids from
  /// separate processes merge without colliding) and span id 1 (the root).
  static TraceContext mint() noexcept;

  /// Fresh span id within this trace (monotone per process).
  static std::uint64_t next_span_id() noexcept;

  /// The calling thread's installed context ({0, 0} when none).
  static TraceContext current() noexcept;
  /// current() when valid, otherwise mint(). The parallel app uses this to
  /// join an enclosing serve-job trace or start its own epoch trace.
  static TraceContext current_or_mint() noexcept;

  /// Install/remove directly (prefer TraceContextScope).
  static void set_current(TraceContext ctx) noexcept;
};

/// RAII installer: replaces the calling thread's context for the scope's
/// lifetime and restores the previous one on exit.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx) noexcept
      : previous_(TraceContext::current()) {
    TraceContext::set_current(ctx);
  }
  ~TraceContextScope() { TraceContext::set_current(previous_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace mdm::obs
