#pragma once

/// \file json.hpp
/// Minimal JSON reader for the observability tool chain: bench_compare
/// parses BENCH_*.json and tolerance files, the trace merger re-reads
/// chrome-trace output, and tests assert on merged traces, flight-recorder
/// dumps and registry dumps structurally instead of by substring.
///
/// Scope: full RFC 8259 input, DOM-style value tree, no writer (the
/// emitters in this layer stream their own JSON). Parse errors throw
/// JsonError with a byte offset.

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mdm::obs {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  /// Key order preserved by map; duplicate keys keep the last value.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed access; throws JsonError(offset 0) on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// find() that throws when the member is missing.
  const JsonValue& at(const std::string& key) const;

  // Construction (used by the parser; handy in tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse one JSON document (leading/trailing whitespace allowed; anything
/// else after the value is an error).
JsonValue parse_json(std::string_view text);

/// Parse the file at `path`; throws JsonError (unreadable file => offset 0).
JsonValue parse_json_file(const std::string& path);

}  // namespace mdm::obs
