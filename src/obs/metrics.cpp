#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace mdm::obs {
namespace {

void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

// Emit `s` as a valid JSON string. Instrument names include tenant/job ids
// from the serve layer, which are caller-controlled and may contain quotes,
// backslashes or control characters — escape all of them (RFC 8259) so a
// hostile name cannot break the dump.
void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

int Histogram::bucket_of(double v) noexcept {
  if (!(v > kMinValue)) return 0;
  const int b =
      static_cast<int>(std::log2(v / kMinValue) * kBucketsPerOctave);
  return b < 0 ? 0 : (b >= kBuckets ? kBuckets - 1 : b);
}

double Histogram::bucket_mid(int b) noexcept {
  // Geometric midpoint of bucket b's bounds.
  return kMinValue *
         std::exp2((static_cast<double>(b) + 0.5) / kBucketsPerOctave);
}

void Histogram::observe(double v) noexcept {
  if (!(v >= 0.0)) return;  // ignore negative / NaN
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  if (n == 0) {
    // First sample seeds min/max; racing observers fix it up below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  const double target = p / 100.0 * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (static_cast<double>(cum) >= target) {
      const double v = bucket_mid(b);
      // Clamp into the exact observed range so p0/p100 stay sane.
      return v < min() ? min() : (v > max() ? max() : v);
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Leaked on purpose: worker threads may update instruments during static
  // destruction (the global ThreadPool outlives most statics).
  static Registry* r = new Registry;
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << c->value();
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": ";
    json_number(os, g->value());
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"count\": " << h->count() << ", \"sum\": ";
    json_number(os, h->sum());
    os << ", \"min\": ";
    json_number(os, h->min());
    os << ", \"max\": ";
    json_number(os, h->max());
    os << ", \"mean\": ";
    json_number(os, h->mean());
    os << ", \"p50\": ";
    json_number(os, h->percentile(50.0));
    os << ", \"p95\": ";
    json_number(os, h->percentile(95.0));
    os << '}';
  }
  os << "\n  }\n}\n";
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

void Registry::write_csv(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "kind,name,count,value,min,max,p50,p95\n";
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  };
  // RFC 4180: names holding a comma, quote, CR or LF must be quoted, with
  // embedded quotes doubled (the JSON dump got this in its own way; the CSV
  // path used to write names raw and corrupt the column layout).
  const auto field = [&os](const std::string& s) -> std::ostream& {
    if (s.find_first_of(",\"\r\n") == std::string::npos) return os << s;
    os << '"';
    for (const char c : s) {
      if (c == '"') os << '"';
      os << c;
    }
    return os << '"';
  };
  for (const auto& [name, c] : counters_) {
    os << "counter,";
    field(name) << ",," << c->value() << ",,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge,";
    field(name) << ",," << num(g->value()) << ",,,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram,";
    field(name) << ',' << h->count() << ',' << num(h->sum());
    os << ',' << num(h->min());
    os << ',' << num(h->max());
    os << ',' << num(h->percentile(50.0));
    os << ',' << num(h->percentile(95.0)) << '\n';
  }
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace mdm::obs
