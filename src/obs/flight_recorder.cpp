#include "obs/flight_recorder.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace mdm::obs {
namespace {

/// One ring slot. Every field is a relaxed atomic: recording stays
/// lock-free and wait-free, concurrent dump reads are race-free (TSan
/// -clean), and the head re-check in snapshot() discards slots that were
/// overwritten mid-read.
struct Slot {
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
  std::atomic<const char*> label{nullptr};
  std::atomic<std::int32_t> rank{-1};
  std::atomic<std::uint8_t> kind{0};
};

struct Ring {
  /// Monotone write position; slot i lives at i % kRingCapacity. Single
  /// writer (the owning thread), many readers.
  std::atomic<std::uint64_t> head{0};
  Slot slots[FlightRecorder::kRingCapacity];
};

constexpr std::size_t kMaxRings = 1024;

/// Lock-free ring registry: a fixed array of pointers published with a
/// release store, so the fatal-signal handler can walk it without taking
/// any lock. Rings are leaked on purpose (threads may record during static
/// destruction).
struct Registry {
  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::size_t> count{0};
  std::atomic<Ring*> rings[kMaxRings] = {};

  Registry() {
    const char* env = std::getenv("MDM_FLIGHT");
    if (env && env[0] == '0' && env[1] == '\0')
      enabled.store(false, std::memory_order_relaxed);
  }
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

thread_local Ring* t_ring = nullptr;
thread_local int t_rank = -1;

Ring* local_ring() {
  if (!t_ring) {
    auto& reg = registry();
    const std::size_t idx =
        reg.count.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxRings) return nullptr;  // beyond the cap: drop events
    auto* ring = new Ring;
    reg.rings[idx].store(ring, std::memory_order_release);
    t_ring = ring;
  }
  return t_ring;
}

// ---- async-signal-safe formatting helpers -------------------------------

std::size_t fmt_u64(char* buf, std::uint64_t v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t fmt_i64(char* buf, std::int64_t v) {
  if (v >= 0) return fmt_u64(buf, static_cast<std::uint64_t>(v));
  buf[0] = '-';
  return 1 + fmt_u64(buf + 1, static_cast<std::uint64_t>(-(v + 1)) + 1);
}

std::size_t fmt_hex(char* buf, std::uint64_t v) {
  char tmp[16];
  std::size_t n = 0;
  do {
    const int d = static_cast<int>(v & 0xF);
    tmp[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + d - 10);
    v >>= 4;
  } while (v);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

/// Buffered async-signal-safe writer (raw write(2), no stdio, no heap).
struct RawWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;

  explicit RawWriter(int fd_in) : fd(fd_in) {}
  ~RawWriter() { flush(); }

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (len == sizeof buf) flush();
      buf[len++] = s[i];
    }
  }
  void str(const char* s) { put(s, std::strlen(s)); }
  void u64(std::uint64_t v) {
    char tmp[24];
    put(tmp, fmt_u64(tmp, v));
  }
  void i64(std::int64_t v) {
    char tmp[24];
    put(tmp, fmt_i64(tmp, v));
  }
  void hex(std::uint64_t v) {
    char tmp[16];
    put(tmp, fmt_hex(tmp, v));
  }
};

/// Emit one event; shared by the stream dump and the signal handler.
void write_event(RawWriter& w, const FlightEventView& e, bool first) {
  w.str(first ? "\n  {" : ",\n  {");
  w.str("\"ts_ns\":");
  w.u64(e.ts_ns);
  w.str(",\"kind\":\"");
  w.str(to_string(e.kind));
  w.str("\",\"rank\":");
  w.i64(e.rank);
  if (e.trace_id != 0) {
    w.str(",\"trace\":\"");
    w.hex(e.trace_id);
    w.str("\"");
  }
  if (e.label) {
    // Labels are string literals from our own call sites; escape the two
    // characters that could still break the JSON.
    w.str(",\"label\":\"");
    for (const char* s = e.label; *s; ++s) {
      if (*s == '"' || *s == '\\') w.put("\\", 1);
      w.put(s, 1);
    }
    w.str("\"");
  }
  w.str(",\"a\":");
  w.i64(e.a);
  w.str(",\"b\":");
  w.i64(e.b);
  w.str("}");
}

/// Read the last events of one ring into `out` (unsorted). Safe against a
/// concurrently recording owner: slots the writer lapped are discarded.
void collect_ring(const Ring& ring, std::vector<FlightEventView>& out) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t n =
      std::min<std::uint64_t>(head, FlightRecorder::kRingCapacity);
  for (std::uint64_t i = head - n; i < head; ++i) {
    const Slot& s = ring.slots[i % FlightRecorder::kRingCapacity];
    FlightEventView e;
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.label = s.label.load(std::memory_order_relaxed);
    e.rank = s.rank.load(std::memory_order_relaxed);
    e.kind = static_cast<FlightKind>(s.kind.load(std::memory_order_relaxed));
    // The writer may have wrapped onto this slot while we read it.
    if (ring.head.load(std::memory_order_acquire) >
        i + FlightRecorder::kRingCapacity)
      continue;
    out.push_back(e);
  }
}

// ---- fatal-signal handler ----------------------------------------------

char g_crash_path[512] = {0};
const int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
struct sigaction g_previous[sizeof kCrashSignals / sizeof kCrashSignals[0]];

void crash_handler(int sig) {
  // Everything here is async-signal-safe: open/write on pre-formatted
  // bytes, lock-free ring walks, no heap, no stdio. Events are dumped
  // per-ring unsorted (sorting is the reader's job).
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    RawWriter w(fd);
    w.str("{\"signal\":");
    w.i64(sig);
    w.str(",\"flight\":[");
    auto& reg = registry();
    const std::size_t count =
        std::min(reg.count.load(std::memory_order_relaxed), kMaxRings);
    bool first = true;
    for (std::size_t r = 0; r < count; ++r) {
      const Ring* ring = reg.rings[r].load(std::memory_order_acquire);
      if (!ring) continue;
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t n =
          std::min<std::uint64_t>(head, FlightRecorder::kRingCapacity);
      for (std::uint64_t i = head - n; i < head; ++i) {
        const Slot& s = ring->slots[i % FlightRecorder::kRingCapacity];
        FlightEventView e;
        e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
        e.trace_id = s.trace_id.load(std::memory_order_relaxed);
        e.a = s.a.load(std::memory_order_relaxed);
        e.b = s.b.load(std::memory_order_relaxed);
        e.label = s.label.load(std::memory_order_relaxed);
        e.rank = s.rank.load(std::memory_order_relaxed);
        e.kind =
            static_cast<FlightKind>(s.kind.load(std::memory_order_relaxed));
        write_event(w, e, first);
        first = false;
      }
    }
    w.str("\n]}\n");
    w.flush();
    ::close(fd);
  }
  // Restore the previous disposition and re-raise so the process still
  // dies with the original signal (and any chained handler still runs).
  for (std::size_t i = 0; i < sizeof kCrashSignals / sizeof kCrashSignals[0];
       ++i) {
    if (kCrashSignals[i] == sig) {
      ::sigaction(sig, &g_previous[i], nullptr);
      break;
    }
  }
  ::raise(sig);
}

}  // namespace

const char* to_string(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kPhase: return "phase";
    case FlightKind::kStep: return "step";
    case FlightKind::kSend: return "send";
    case FlightKind::kRecv: return "recv";
    case FlightKind::kHealth: return "health";
    case FlightKind::kCheckpoint: return "checkpoint";
    case FlightKind::kRankFail: return "rank_fail";
    case FlightKind::kNote: return "note";
  }
  return "?";
}

bool FlightRecorder::enabled() noexcept {
  return registry().enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::set_enabled(bool on) noexcept {
  registry().enabled.store(on, std::memory_order_relaxed);
}

void FlightRecorder::record(FlightKind kind, const char* label,
                            std::int64_t a, std::int64_t b) noexcept {
  record_trace(kind, TraceContext::current().trace_id, label, a, b);
}

void FlightRecorder::record_trace(FlightKind kind, std::uint64_t trace_id,
                                  const char* label, std::int64_t a,
                                  std::int64_t b) noexcept {
  auto& reg = registry();
  if (!reg.enabled.load(std::memory_order_relaxed)) return;
  Ring* ring = local_ring();
  if (!ring) return;
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& s = ring->slots[head % kRingCapacity];
  s.ts_ns.store(Trace::now_ns(), std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.label.store(label, std::memory_order_relaxed);
  s.rank.store(t_rank, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
  reg.recorded.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::set_thread_rank(int rank) noexcept { t_rank = rank; }

std::uint64_t FlightRecorder::recorded_count() noexcept {
  return registry().recorded.load(std::memory_order_relaxed);
}

std::size_t FlightRecorder::snapshot(std::vector<FlightEventView>& out) {
  out.clear();
  auto& reg = registry();
  const std::size_t count =
      std::min(reg.count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = reg.rings[r].load(std::memory_order_acquire);
    if (ring) collect_ring(*ring, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEventView& x, const FlightEventView& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  return out.size();
}

void FlightRecorder::write_json(std::ostream& os) {
  std::vector<FlightEventView> events;
  snapshot(events);
  std::ostringstream body;
  // Reuse the signal-safe formatter through an in-memory fd-less path:
  // format into a RawWriter over a pipe would be overkill; emit directly.
  os << "{\"flight\":[";
  bool first = true;
  for (const auto& e : events) {
    os << (first ? "\n  {" : ",\n  {");
    first = false;
    os << "\"ts_ns\":" << e.ts_ns << ",\"kind\":\"" << to_string(e.kind)
       << "\",\"rank\":" << e.rank;
    if (e.trace_id != 0) {
      char hex[17];
      hex[fmt_hex(hex, e.trace_id)] = '\0';
      os << ",\"trace\":\"" << hex << "\"";
    }
    if (e.label) {
      os << ",\"label\":\"";
      for (const char* s = e.label; *s; ++s) {
        if (*s == '"' || *s == '\\') os << '\\';
        os << *s;
      }
      os << "\"";
    }
    os << ",\"a\":" << e.a << ",\"b\":" << e.b << '}';
  }
  os << "\n]}\n";
}

bool FlightRecorder::write_json_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

void FlightRecorder::clear() {
  auto& reg = registry();
  const std::size_t count =
      std::min(reg.count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t r = 0; r < count; ++r) {
    Ring* ring = reg.rings[r].load(std::memory_order_acquire);
    if (ring) ring->head.store(0, std::memory_order_release);
  }
  reg.recorded.store(0, std::memory_order_relaxed);
}

void FlightRecorder::install_crash_handler(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), sizeof g_crash_path - 1);
  g_crash_path[sizeof g_crash_path - 1] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  for (std::size_t i = 0; i < sizeof kCrashSignals / sizeof kCrashSignals[0];
       ++i)
    ::sigaction(kCrashSignals[i], &sa, &g_previous[i]);
}

}  // namespace mdm::obs
