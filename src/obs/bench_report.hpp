#pragma once

/// \file bench_report.hpp
/// Machine-readable benchmark output. Each bench program builds one
/// BenchReport and writes `BENCH_<name>.json` next to its human-readable
/// stdout, so the perf trajectory can be tracked across PRs:
///
///   {"bench": "table1_components", "results": [
///     {"name": "wavenumber_ms", "value": 12.5, "unit": "ms"}, ...]}

#include <string>
#include <vector>

namespace mdm::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add(std::string metric, double value, std::string unit);

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return results_.size(); }

  std::string json() const;

  /// Write BENCH_<name>.json into `dir`; returns false on I/O failure.
  bool write(const std::string& dir = ".") const;

 private:
  struct Result {
    std::string name;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Result> results_;
};

}  // namespace mdm::obs
