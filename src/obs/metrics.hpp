#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: monotone counters, gauges and latency
/// histograms with percentile queries, dumped as JSON or CSV. This is the
/// quantitative side of the observability layer — the paper's Tables 1/4/5
/// are exactly this kind of data (operation counts and per-phase seconds),
/// so every subsystem reports its work here at runtime.
///
/// Hot paths hold a reference once and update lock-free:
///
///   static auto& pairs = obs::Registry::global().counter("mdgrape2.pair_ops");
///   pairs.add(stats.pair_operations);
///
/// Instruments are never destroyed (the registry leaks on exit by design),
/// so references stay valid even from detached worker threads.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mdm::obs {

/// Monotonically increasing event count (resettable for tests/benches).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. current cell occupancy, worker count).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free histogram over positive values (latencies, sizes) with
/// geometric buckets: 8 per octave covering [1e-9, ~1e6), i.e. a relative
/// resolution of about 4.5% — ample for p50/p95 reporting. min/max/sum are
/// tracked exactly.
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kBuckets = 400;  // 50 octaves from kMinValue
  static constexpr double kMinValue = 1e-9;

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const auto n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  /// Smallest / largest observed value (0 when empty).
  double min() const noexcept;
  double max() const noexcept;
  /// Approximate percentile, p in [0, 100]; exact at the extremes.
  double percentile(double p) const noexcept;
  void reset() noexcept;

 private:
  static int bucket_of(double v) noexcept;
  static double bucket_mid(int b) noexcept;

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid once count_ > 0
  std::atomic<double> max_{0.0};
};

/// Named instrument registry. Lookup takes a mutex (do it once per call
/// site); the instruments themselves are lock-free.
class Registry {
 public:
  /// The process-wide registry (leaked on exit; see file comment).
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value lookups without creating the instrument; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  /// nullptr when absent.
  const Histogram* find_histogram(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, mean, p50, p95}}}
  void write_json(std::ostream& os) const;
  std::string json() const;
  bool write_json_file(const std::string& path) const;
  /// One row per instrument: kind,name,count,sum/value,min,max,p50,p95.
  void write_csv(std::ostream& os) const;

  /// Zero every instrument (registrations and references stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mdm::obs
