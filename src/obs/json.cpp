#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace mdm::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: --pos_; fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("bad \\u escape");
      }
    }
    return v;
  }

  /// UTF-8 encode one BMP code point (surrogate pairs are passed through as
  /// two 3-byte sequences — fine for the tool chain's own output).
  static void append_codepoint(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw JsonError(std::string("JSON value is not ") + wanted, 0);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_mismatch("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_mismatch("a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_mismatch("a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_mismatch("an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_mismatch("an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw JsonError("missing JSON member '" + key + "'", 0);
  return *v;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<Array>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<Object>(std::move(o));
  return v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw JsonError("cannot open " + path, 0);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_json(buf.str());
}

}  // namespace mdm::obs
