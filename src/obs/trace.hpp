#pragma once

/// \file trace.hpp
/// Thread-safe scoped-span tracing with a chrome://tracing-compatible JSON
/// exporter. Spans are recorded into per-thread buffers (one uncontended
/// mutex each) and merged at export time, so instrumenting the MD step loop
/// costs two clock reads and one push_back per span while enabled and a
/// single relaxed atomic load while disabled.
///
/// Two gates control the cost:
///  * compile time — `MDM_ENABLE_TRACING` (CMake option) sets
///    `MDM_TRACING_ENABLED`; when 0 the `MDM_TRACE_SCOPE` macro expands to
///    nothing so fine-grained spans vanish from Release hot paths. The
///    runtime API below always exists, so coarse per-step spans and the
///    exporters keep working in every build.
///  * run time — `Trace::set_enabled` (or the MDM_TRACE=1 environment
///    variable, or `--trace` via `apply_observability_cli`).
///
/// Distributed tracing (DESIGN.md §10): every span records the calling
/// thread's ambient TraceContext, so spans across serve workers, pool
/// workers and vmpi rank threads correlate by trace id. Rank threads label
/// themselves with `set_thread_rank`; the chrome export then groups their
/// spans as one process per rank ("rank N" tracks in Perfetto), which is
/// the in-process form of the per-rank trace merge (see trace_merge.hpp for
/// the cross-file merger). `summarize` aggregates one trace's spans by name
/// — queue wait, run time, checkpoint overhead per job.
///
/// Open the exported file in chrome://tracing or https://ui.perfetto.dev.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_context.hpp"

#ifndef MDM_TRACING_ENABLED
#define MDM_TRACING_ENABLED 1
#endif

namespace mdm::obs {

/// Aggregate of one trace's spans sharing a name (see Trace::summarize).
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

class Trace {
 public:
  /// Runtime switch; off by default unless the MDM_TRACE environment
  /// variable is set to a non-empty value other than "0".
  static bool enabled() noexcept;
  static void set_enabled(bool on) noexcept;

  /// Nanoseconds since the recorder's epoch (process start, steady clock).
  static std::uint64_t now_ns() noexcept;

  /// Record one complete span on the calling thread, tagged with the
  /// thread's ambient TraceContext. `name` must outlive the recorder (the
  /// macros pass string literals). No-op while disabled.
  static void record_complete(const char* name, std::uint64_t start_ns,
                              std::uint64_t end_ns);

  /// Label the calling thread as vmpi rank `rank` (>= 0) for the chrome
  /// export: its spans move to a "rank N" process track. -1 resets to the
  /// anonymous host process. The label sticks to the thread, so rank
  /// threads set it at the top of rank_main.
  static void set_thread_rank(int rank);

  /// Total recorded events across all thread buffers.
  static std::size_t event_count();
  /// Number of per-thread buffers ever registered (a disabled-mode span must
  /// not register one — see the zero-allocation test).
  static std::size_t thread_buffer_count();
  /// Events discarded because a thread buffer hit its cap.
  static std::uint64_t dropped_events();
  /// Drop all recorded events (buffers stay registered).
  static void clear();

  /// Aggregate spans by name: all spans tagged `trace_id`, or every span
  /// when trace_id == 0. Sorted by name.
  static std::vector<SpanStat> summarize(std::uint64_t trace_id);

  /// Chrome trace-event JSON ({"traceEvents": [...]}, "X" phase events,
  /// timestamps in microseconds). Rank-labelled threads export as
  /// pid = kRankPidBase + rank with "process_name" metadata; spans carry
  /// their trace id in args.trace.
  static void write_chrome_json(std::ostream& os);
  static std::string chrome_json();
  /// Returns false if the file could not be opened.
  static bool write_chrome_json_file(const std::string& path);

  /// pid of rank 0 in the chrome export (rank r => kRankPidBase + r; the
  /// anonymous host process is pid 1).
  static constexpr int kRankPidBase = 100;
};

/// RAII span: records [construction, destruction) under `name` (a string
/// literal). Near-zero cost when tracing is disabled at runtime.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(name), active_(Trace::enabled()) {
    if (active_) start_ns_ = Trace::now_ns();
  }
  ~TraceSpan() {
    if (active_) Trace::record_complete(name_, start_ns_, Trace::now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

#if MDM_TRACING_ENABLED
#define MDM_TRACE_CONCAT2(a, b) a##b
#define MDM_TRACE_CONCAT(a, b) MDM_TRACE_CONCAT2(a, b)
#define MDM_TRACE_SCOPE(name) \
  ::mdm::obs::TraceSpan MDM_TRACE_CONCAT(mdm_trace_scope_, __LINE__)(name)
#else
#define MDM_TRACE_SCOPE(name) static_cast<void>(0)
#endif

}  // namespace mdm::obs
