#pragma once

/// \file trace.hpp
/// Thread-safe scoped-span tracing with a chrome://tracing-compatible JSON
/// exporter. Spans are recorded into per-thread buffers (one uncontended
/// mutex each) and merged at export time, so instrumenting the MD step loop
/// costs two clock reads and one push_back per span while enabled and a
/// single relaxed atomic load while disabled.
///
/// Two gates control the cost:
///  * compile time — `MDM_ENABLE_TRACING` (CMake option) sets
///    `MDM_TRACING_ENABLED`; when 0 the `MDM_TRACE_SCOPE` macro expands to
///    nothing so fine-grained spans vanish from Release hot paths. The
///    runtime API below always exists, so coarse per-step spans and the
///    exporters keep working in every build.
///  * run time — `Trace::set_enabled` (or the MDM_TRACE=1 environment
///    variable, or `--trace` via `apply_observability_cli`).
///
/// Open the exported file in chrome://tracing or https://ui.perfetto.dev.

#include <cstdint>
#include <iosfwd>
#include <string>

#ifndef MDM_TRACING_ENABLED
#define MDM_TRACING_ENABLED 1
#endif

namespace mdm::obs {

class Trace {
 public:
  /// Runtime switch; off by default unless the MDM_TRACE environment
  /// variable is set to a non-empty value other than "0".
  static bool enabled() noexcept;
  static void set_enabled(bool on) noexcept;

  /// Nanoseconds since the recorder's epoch (process start, steady clock).
  static std::uint64_t now_ns() noexcept;

  /// Record one complete span on the calling thread. `name` must outlive
  /// the recorder (the macros pass string literals). No-op while disabled.
  static void record_complete(const char* name, std::uint64_t start_ns,
                              std::uint64_t end_ns);

  /// Total recorded events across all thread buffers.
  static std::size_t event_count();
  /// Number of per-thread buffers ever registered (a disabled-mode span must
  /// not register one — see the zero-allocation test).
  static std::size_t thread_buffer_count();
  /// Events discarded because a thread buffer hit its cap.
  static std::uint64_t dropped_events();
  /// Drop all recorded events (buffers stay registered).
  static void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}, "X" phase events,
  /// timestamps in microseconds).
  static void write_chrome_json(std::ostream& os);
  static std::string chrome_json();
  /// Returns false if the file could not be opened.
  static bool write_chrome_json_file(const std::string& path);
};

/// RAII span: records [construction, destruction) under `name` (a string
/// literal). Near-zero cost when tracing is disabled at runtime.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(name), active_(Trace::enabled()) {
    if (active_) start_ns_ = Trace::now_ns();
  }
  ~TraceSpan() {
    if (active_) Trace::record_complete(name_, start_ns_, Trace::now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

#if MDM_TRACING_ENABLED
#define MDM_TRACE_CONCAT2(a, b) a##b
#define MDM_TRACE_CONCAT(a, b) MDM_TRACE_CONCAT2(a, b)
#define MDM_TRACE_SCOPE(name) \
  ::mdm::obs::TraceSpan MDM_TRACE_CONCAT(mdm_trace_scope_, __LINE__)(name)
#else
#define MDM_TRACE_SCOPE(name) static_cast<void>(0)
#endif

}  // namespace mdm::obs
