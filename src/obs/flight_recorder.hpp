#pragma once

/// \file flight_recorder.hpp
/// Crash flight recorder (DESIGN.md §10): a lock-free per-thread ring
/// buffer of recent structured events — phase transitions, vmpi sends and
/// recvs, health samples, checkpoint generations — that failure paths dump
/// as JSON, turning "rank died at step 48k" into a replayable postmortem.
///
/// Recording is a handful of relaxed atomic stores into a fixed-size ring
/// (no allocation, no locks, TSan-clean), cheap enough to leave on in
/// production; `MDM_FLIGHT=0` disables it. Each thread keeps the last
/// `kRingCapacity` events; a dump collects every ring, sorts by timestamp
/// and writes JSON with the event kind, rank, trace id and two
/// kind-specific operands (step, peer, tag, generation, ...).
///
/// Dumps are triggered by:
///  * the parallel app, next to the latest checkpoint, when a run dies on
///    SimulationHealthError / PeerFailedError / any rank failure;
///  * `install_crash_handler`, a fatal-signal handler that writes the dump
///    with async-signal-safe code before re-raising (SIGSEGV, SIGABRT,
///    SIGBUS, SIGFPE, SIGILL);
///  * tests and tools via `write_json_file`.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mdm::obs {

enum class FlightKind : std::uint8_t {
  kPhase = 0,   ///< phase transition: label = phase, a = step
  kStep,        ///< step boundary: a = step
  kSend,        ///< vmpi send: a = dest world rank, b = tag
  kRecv,        ///< vmpi recv: a = source world rank, b = tag
  kHealth,      ///< health violation: label = kind, a = step, b = particle
  kCheckpoint,  ///< generation written/restored: label, a = step
  kRankFail,    ///< rank failure observed: a = step (-1 unknown), b = rank
  kNote,        ///< free-form marker: label, a/b caller-defined
};

const char* to_string(FlightKind kind) noexcept;

/// One recorded event as returned by `snapshot` (decoded from the ring).
struct FlightEventView {
  std::uint64_t ts_ns = 0;
  std::uint64_t trace_id = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  const char* label = nullptr;  ///< static string or nullptr
  FlightKind kind = FlightKind::kNote;
  int rank = -1;  ///< recording thread's rank label (-1 = host)
};

class FlightRecorder {
 public:
  /// Events kept per thread; older ones are overwritten.
  static constexpr std::size_t kRingCapacity = 512;

  /// Runtime switch; on by default, off when MDM_FLIGHT=0.
  static bool enabled() noexcept;
  static void set_enabled(bool on) noexcept;

  /// Record one event on the calling thread's ring. `label` must be a
  /// string literal (or otherwise outlive the process). Tagged with the
  /// thread's ambient TraceContext and rank label.
  static void record(FlightKind kind, const char* label = nullptr,
                     std::int64_t a = 0, std::int64_t b = 0) noexcept;

  /// As `record`, but tagged with an explicit trace id instead of the
  /// ambient one — used by vmpi recv to attribute the event to the trace
  /// carried in the message header.
  static void record_trace(FlightKind kind, std::uint64_t trace_id,
                           const char* label = nullptr, std::int64_t a = 0,
                           std::int64_t b = 0) noexcept;

  /// Label the calling thread as vmpi rank `rank` for subsequent events
  /// (-1 resets). Unlike Trace::set_thread_rank this works while disabled,
  /// so a recorder re-enabled mid-run keeps correct rank attribution.
  static void set_thread_rank(int rank) noexcept;

  /// Total events ever recorded (monotone; survives ring wrap).
  static std::uint64_t recorded_count() noexcept;

  /// Copy out every ring, sorted by timestamp (oldest first). Events being
  /// overwritten concurrently may be dropped, never torn.
  static std::size_t snapshot(std::vector<FlightEventView>& out);

  /// JSON dump: {"flight": [{"ts_ns":..., "kind":"recv", "rank":..,
  /// "trace":"..", "label":"..", "a":.., "b":..}, ...]}.
  static void write_json(std::ostream& os);
  static bool write_json_file(const std::string& path);

  /// Drop all recorded events (rings stay registered).
  static void clear();

  /// Install a fatal-signal handler (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL)
  /// that writes the dump to `path` with async-signal-safe code, then
  /// restores the previous disposition and re-raises. The path is copied;
  /// later calls replace it.
  static void install_crash_handler(const std::string& path);
};

}  // namespace mdm::obs
