#include "obs/logger.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mdm::obs {
namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("MDM_LOG_LEVEL")) {
    LogLevel parsed;
    if (Logger::parse_level(env, parsed)) return parsed;
  }
  return LogLevel::kWarn;
}

std::atomic<int>& level_slot() {
  static std::atomic<int>* slot =
      new std::atomic<int>(static_cast<int>(initial_level()));
  return *slot;
}

std::atomic<std::uint64_t>& emitted_slot() {
  static std::atomic<std::uint64_t>* slot = new std::atomic<std::uint64_t>(0);
  return *slot;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
    if (ca != b[i]) return false;
  }
  return true;
}

}  // namespace

LogLevel Logger::level() noexcept {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel level) noexcept {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool Logger::parse_level(std::string_view name, LogLevel& out) noexcept {
  if (iequals(name, "debug"))
    out = LogLevel::kDebug;
  else if (iequals(name, "info"))
    out = LogLevel::kInfo;
  else if (iequals(name, "warn") || iequals(name, "warning"))
    out = LogLevel::kWarn;
  else if (iequals(name, "error"))
    out = LogLevel::kError;
  else if (iequals(name, "off") || iequals(name, "none"))
    out = LogLevel::kOff;
  else
    return false;
  return true;
}

const char* Logger::level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

std::uint64_t Logger::messages_emitted() noexcept {
  return emitted_slot().load(std::memory_order_relaxed);
}

void Logger::log(LogLevel lvl, const char* fmt, ...) noexcept {
  if (lvl < level() || lvl == LogLevel::kOff) return;
  char line[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[mdm:%s] %s\n", level_name(lvl), line);
  emitted_slot().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mdm::obs
