#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <ostream>

#include "obs/json.hpp"

namespace mdm::obs {
namespace {

ToleranceRule parse_rule(const JsonValue& v) {
  ToleranceRule rule;
  if (const JsonValue* rel = v.find("rel_tol")) rule.rel_tol = rel->as_number();
  if (const JsonValue* abs = v.find("abs_tol")) rule.abs_tol = abs->as_number();
  if (const JsonValue* info = v.find("informational"))
    rule.informational = info->as_bool();
  return rule;
}

struct BenchResults {
  std::string bench;
  /// (metric, value, unit) in file order.
  std::vector<std::tuple<std::string, double, std::string>> results;
};

BenchResults load_bench(const std::string& path) {
  const JsonValue doc = parse_json_file(path);
  BenchResults out;
  out.bench = doc.at("bench").as_string();
  for (const auto& r : doc.at("results").as_array()) {
    const JsonValue* unit = r.find("unit");
    out.results.emplace_back(r.at("name").as_string(),
                             r.at("value").as_number(),
                             unit && unit->is_string() ? unit->as_string()
                                                      : std::string());
  }
  return out;
}

}  // namespace

ToleranceRules ToleranceRules::load(const std::string& path) {
  const JsonValue doc = parse_json_file(path);
  ToleranceRules rules;
  if (const JsonValue* def = doc.find("default"))
    rules.default_ = parse_rule(*def);
  if (const JsonValue* units = doc.find("units"))
    for (const auto& [unit, rule] : units->as_object())
      rules.by_unit_.emplace_back(unit, parse_rule(rule));
  if (const JsonValue* metrics = doc.find("metrics"))
    for (const auto& [metric, rule] : metrics->as_object())
      rules.by_metric_.emplace_back(metric, parse_rule(rule));
  return rules;
}

void ToleranceRules::overlay(Resolved& r, const ToleranceRule& rule) {
  if (rule.rel_tol) r.rel_tol = *rule.rel_tol;
  if (rule.abs_tol) r.abs_tol = *rule.abs_tol;
  if (rule.informational) r.informational = *rule.informational;
}

ToleranceRules::Resolved ToleranceRules::lookup(const std::string& bench,
                                                const std::string& metric,
                                                const std::string& unit) const {
  Resolved r;
  overlay(r, default_);
  for (const auto& [u, rule] : by_unit_)
    if (u == unit) overlay(r, rule);
  for (const auto& [m, rule] : by_metric_)
    if (m == metric) overlay(r, rule);
  const std::string qualified = bench + "/" + metric;
  for (const auto& [m, rule] : by_metric_)
    if (m == qualified) overlay(r, rule);
  return r;
}

bool ToleranceRules::has_metric_rule(const std::string& bench,
                                     const std::string& metric) const {
  const std::string qualified = bench + "/" + metric;
  for (const auto& [m, rule] : by_metric_)
    if (m == metric || m == qualified) return true;
  return false;
}

std::vector<std::string> ToleranceRules::metric_rule_keys() const {
  std::vector<std::string> keys;
  keys.reserve(by_metric_.size());
  for (const auto& [m, rule] : by_metric_) keys.push_back(m);
  return keys;
}

const char* to_string(DeltaStatus status) noexcept {
  switch (status) {
    case DeltaStatus::kOk: return "ok";
    case DeltaStatus::kRegressed: return "REGRESSED";
    case DeltaStatus::kMissing: return "MISSING";
    case DeltaStatus::kNew: return "new";
    case DeltaStatus::kInformational: return "info";
    case DeltaStatus::kUnmatchedRule: return "NO-METRIC";
  }
  return "?";
}

bool CompareReport::ok() const noexcept { return failures() == 0; }

int CompareReport::failures() const noexcept {
  int n = 0;
  for (const auto& d : deltas)
    if (d.status == DeltaStatus::kRegressed ||
        d.status == DeltaStatus::kMissing ||
        d.status == DeltaStatus::kUnmatchedRule)
      ++n;
  return n;
}

CompareReport compare_bench_files(const std::string& baseline_path,
                                  const std::string& current_path,
                                  const ToleranceRules& rules) {
  const BenchResults base = load_bench(baseline_path);
  const BenchResults cur = load_bench(current_path);
  CompareReport report;
  report.benches_compared = 1;
  for (const auto& [metric, value, unit] : base.results) {
    MetricDelta d;
    d.bench = base.bench;
    d.metric = metric;
    d.unit = unit;
    d.baseline = value;
    const auto it =
        std::find_if(cur.results.begin(), cur.results.end(),
                     [&](const auto& r) { return std::get<0>(r) == metric; });
    const auto band = rules.lookup(base.bench, metric, unit);
    d.rel_tol = band.rel_tol;
    if (it == cur.results.end()) {
      d.status = DeltaStatus::kMissing;
    } else {
      d.current = std::get<1>(*it);
      const bool in_band = std::abs(d.current - d.baseline) <=
                           band.rel_tol * std::abs(d.baseline) + band.abs_tol;
      d.status = in_band ? DeltaStatus::kOk
                 : band.informational ? DeltaStatus::kInformational
                                      : DeltaStatus::kRegressed;
    }
    report.deltas.push_back(std::move(d));
  }
  for (const auto& [metric, value, unit] : cur.results) {
    const bool known =
        std::any_of(base.results.begin(), base.results.end(),
                    [&](const auto& r) { return std::get<0>(r) == metric; });
    if (known) continue;
    MetricDelta d;
    d.bench = cur.bench;
    d.metric = metric;
    d.unit = unit;
    d.current = value;
    // An explicitly ruled metric that the baseline lacks is a stale
    // baseline, not a benign new metric — fail with the key named.
    d.status = rules.has_metric_rule(cur.bench, metric)
                   ? DeltaStatus::kMissing
                   : DeltaStatus::kNew;
    report.deltas.push_back(std::move(d));
  }
  return report;
}

CompareReport compare_bench_dirs(const std::string& baseline_dir,
                                 const std::string& current_dir,
                                 const ToleranceRules& rules) {
  namespace fs = std::filesystem;
  CompareReport report;
  std::vector<fs::path> baselines;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json")
      baselines.push_back(entry.path());
  }
  std::sort(baselines.begin(), baselines.end());
  for (const auto& baseline : baselines) {
    const fs::path current = fs::path(current_dir) / baseline.filename();
    if (!fs::exists(current)) {
      MetricDelta d;
      d.bench = baseline.filename().string();
      d.metric = "*";
      d.status = DeltaStatus::kMissing;
      report.deltas.push_back(std::move(d));
      continue;
    }
    CompareReport one =
        compare_bench_files(baseline.string(), current.string(), rules);
    report.benches_compared += one.benches_compared;
    for (auto& d : one.deltas) report.deltas.push_back(std::move(d));
  }
  append_unmatched_rule_failures(rules, report);
  return report;
}

void append_unmatched_rule_failures(const ToleranceRules& rules,
                                    CompareReport& report,
                                    const std::string& only_bench) {
  for (const auto& key : rules.metric_rule_keys()) {
    std::string bench, metric = key;
    if (const auto slash = key.find('/'); slash != std::string::npos) {
      bench = key.substr(0, slash);
      metric = key.substr(slash + 1);
    }
    if (!only_bench.empty() && bench != only_bench) continue;
    const bool matched = std::any_of(
        report.deltas.begin(), report.deltas.end(), [&](const MetricDelta& d) {
          return d.status != DeltaStatus::kUnmatchedRule &&
                 d.metric == metric && (bench.empty() || d.bench == bench);
        });
    if (matched) continue;
    MetricDelta d;
    d.bench = bench.empty() ? "*" : bench;
    d.metric = metric;
    d.status = DeltaStatus::kUnmatchedRule;
    report.deltas.push_back(std::move(d));
  }
}

void write_text(const CompareReport& report, std::ostream& os) {
  char buf[160];
  for (const auto& d : report.deltas) {
    const double denom = std::abs(d.baseline);
    const double rel =
        denom > 0.0 ? (d.current - d.baseline) / denom * 100.0 : 0.0;
    std::snprintf(buf, sizeof buf,
                  "  %-12s %-28s %-42s base=%-14.6g cur=%-14.6g %+7.2f%% "
                  "(tol %.0f%%)",
                  to_string(d.status), d.bench.c_str(), d.metric.c_str(),
                  d.baseline, d.current, rel, d.rel_tol * 100.0);
    os << buf << '\n';
  }
  os << "bench_compare: " << (report.ok() ? "OK" : "FAIL") << " — "
     << report.benches_compared << " bench(es), " << report.deltas.size()
     << " metric(s), " << report.failures() << " failure(s)\n";
}

}  // namespace mdm::obs
