#pragma once

/// \file step_breakdown.hpp
/// Live reproduction of the paper's Table 1: per-step wall time decomposed
/// into wavenumber-space (WINE-2), real-space (MDGRAPE-2 / Ewald real sum),
/// host and communication phases. Subsystems attribute their *leaf-level*
/// work to a phase with a `ScopedPhase` (metrics-only RAII, always compiled
/// in); the step loop calls `record_step()` once per step; `StepBreakdown::
/// collect()` then divides the accumulated phase time by the step count.
///
/// Attribution rule: only leaf kernels open a ScopedPhase — wrappers that
/// merely dispatch (e.g. `add_wavenumber_space`) must not, or time would be
/// counted twice and coverage would exceed 100%.

#include <cstdint>
#include <string>

namespace mdm::obs {

enum class Phase : int {
  kRealSpace = 0,   // pairwise kernels: MDGRAPE-2 passes, Ewald real sum
  kWavenumber = 1,  // DFT/IDFT kernels: WINE-2, software k-space sums
  kHost = 2,        // integration, bookkeeping, load/store to boards
  kComm = 3,        // halo exchange, allreduce, board I/O marshalling
};
inline constexpr int kPhaseCount = 4;

const char* phase_name(Phase p) noexcept;

/// Add `ns` to the phase accumulator (counter "phase.<name>_ns").
void add_phase_ns(Phase p, std::uint64_t ns) noexcept;

/// RAII phase attribution for a leaf kernel. Unlike TraceSpan this is
/// always on — it feeds the Table-1 breakdown, not the trace file.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) noexcept;
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  std::uint64_t start_ns_;
};

/// Count one completed simulation step of `wall_ms` milliseconds
/// (counter "sim.steps", histogram "sim.step_ms").
void record_step(double wall_ms) noexcept;

/// Snapshot of the decomposition, averaged over recorded steps.
struct StepBreakdown {
  std::uint64_t steps = 0;
  double phase_ms[kPhaseCount] = {};  // mean ms/step per phase
  double wall_mean_ms = 0.0;
  double wall_p50_ms = 0.0;
  double wall_p95_ms = 0.0;
  double wall_max_ms = 0.0;

  double component_sum_ms() const noexcept;
  /// component_sum / wall_mean; 1.0 means the phases explain all wall time.
  double coverage() const noexcept;

  /// Read the current accumulators from Registry::global().
  static StepBreakdown collect();

  /// Table-1-style text report.
  std::string format() const;
};

}  // namespace mdm::obs
