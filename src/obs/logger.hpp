#pragma once

/// \file logger.hpp
/// Leveled logging for the simulator. Messages go to stderr with a
/// level tag; the threshold is switchable at runtime (`Logger::set_level`,
/// the MDM_LOG_LEVEL environment variable, or `--log-level` via
/// `apply_observability_cli` in util/cli). The macros skip argument
/// evaluation entirely when the level is filtered out, so debug logging in
/// hot paths costs one relaxed atomic load.
///
///   MDM_LOG_WARN("cell list rebuilt %d times in one step", n);

#include <cstdint>
#include <string_view>

namespace mdm::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

class Logger {
 public:
  /// Current threshold; messages below it are dropped. Defaults to kWarn,
  /// or to MDM_LOG_LEVEL (debug|info|warn|error|off) when set.
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Case-insensitive name -> level; returns false on unknown names.
  static bool parse_level(std::string_view name, LogLevel& out) noexcept;
  static const char* level_name(LogLevel level) noexcept;

  /// Messages actually written (after filtering) since process start.
  static std::uint64_t messages_emitted() noexcept;

  /// printf-style sink; prefer the MDM_LOG_* macros.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  static void
  log(LogLevel level, const char* fmt, ...) noexcept;
};

#define MDM_LOG_AT(lvl, ...)                        \
  do {                                              \
    if (::mdm::obs::Logger::level() <= (lvl))       \
      ::mdm::obs::Logger::log((lvl), __VA_ARGS__);  \
  } while (0)

#define MDM_LOG_DEBUG(...) MDM_LOG_AT(::mdm::obs::LogLevel::kDebug, __VA_ARGS__)
#define MDM_LOG_INFO(...) MDM_LOG_AT(::mdm::obs::LogLevel::kInfo, __VA_ARGS__)
#define MDM_LOG_WARN(...) MDM_LOG_AT(::mdm::obs::LogLevel::kWarn, __VA_ARGS__)
#define MDM_LOG_ERROR(...) MDM_LOG_AT(::mdm::obs::LogLevel::kError, __VA_ARGS__)

}  // namespace mdm::obs
