#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

namespace mdm::obs {
namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  std::uint64_t trace_id;
  std::uint64_t span_id;  ///< parent span from the ambient context
};

/// Cap per thread (~56 MB worst case) so a runaway loop with tracing left on
/// cannot exhaust memory; overflow is counted, not silently ignored.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct ThreadBuffer {
  std::mutex mutex;  // uncontended except during export/clear
  std::vector<Event> events;
  int tid = 0;
  std::atomic<int> rank{-1};  ///< vmpi rank label; -1 = host process
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dropped{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  Recorder() {
    const char* env = std::getenv("MDM_TRACE");
    if (env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
      enabled.store(true, std::memory_order_relaxed);
  }
};

/// Leaked on purpose: worker threads (e.g. the global ThreadPool) may still
/// record during static destruction.
Recorder& recorder() {
  static Recorder* r = new Recorder;
  return *r;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (!t_buffer) {
    auto& rec = recorder();
    auto owned = std::make_unique<ThreadBuffer>();
    t_buffer = owned.get();
    std::lock_guard lock(rec.registry_mutex);
    owned->tid = static_cast<int>(rec.buffers.size()) + 1;
    rec.buffers.push_back(std::move(owned));
  }
  return *t_buffer;
}

void escape_into(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
}

}  // namespace

bool Trace::enabled() noexcept {
  return recorder().enabled.load(std::memory_order_relaxed);
}

void Trace::set_enabled(bool on) noexcept {
  recorder().enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Trace::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - recorder().epoch)
          .count());
}

void Trace::record_complete(const char* name, std::uint64_t start_ns,
                            std::uint64_t end_ns) {
  if (!enabled()) return;
  const TraceContext ctx = TraceContext::current();
  auto& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    recorder().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back({name, start_ns, end_ns, ctx.trace_id, ctx.span_id});
}

void Trace::set_thread_rank(int rank) {
  // Registering a buffer just for the label would break the disabled-mode
  // zero-allocation guarantee; rank threads call this unconditionally.
  if (!enabled()) return;
  local_buffer().rank.store(rank, std::memory_order_relaxed);
}

std::size_t Trace::event_count() {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  std::size_t n = 0;
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::size_t Trace::thread_buffer_count() {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  return rec.buffers.size();
}

std::uint64_t Trace::dropped_events() {
  return recorder().dropped.load(std::memory_order_relaxed);
}

void Trace::clear() {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    buf->events.clear();
  }
  rec.dropped.store(0, std::memory_order_relaxed);
}

std::vector<SpanStat> Trace::summarize(std::uint64_t trace_id) {
  // Aggregate by name pointer first (names are string literals, so the
  // same span site is the same pointer), then merge by string value in
  // case two sites share a name.
  std::map<std::string, SpanStat> by_name;
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    for (const auto& e : buf->events) {
      if (trace_id != 0 && e.trace_id != trace_id) continue;
      auto& stat = by_name[e.name];
      if (stat.count == 0) stat.name = e.name;
      ++stat.count;
      stat.total_ns += e.end_ns >= e.start_ns ? e.end_ns - e.start_ns : 0;
    }
  }
  std::vector<SpanStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  return out;
}

void Trace::write_chrome_json(std::ostream& os) {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char num[64];
  // Name the per-rank process tracks so the merged timeline reads as
  // "rank 0", "rank 1", ... in the viewer.
  std::vector<int> ranks_seen;
  for (const auto& buf : rec.buffers) {
    const int rank = buf->rank.load(std::memory_order_relaxed);
    if (rank < 0) continue;
    if (std::find(ranks_seen.begin(), ranks_seen.end(), rank) !=
        ranks_seen.end())
      continue;
    ranks_seen.push_back(rank);
    os << (first ? "" : ",")
       << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << kRankPidBase + rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << rank << "\"}}";
    first = false;
  }
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    const int rank = buf->rank.load(std::memory_order_relaxed);
    const int pid = rank >= 0 ? kRankPidBase + rank : 1;
    for (const auto& e : buf->events) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"";
      escape_into(os, e.name);
      os << "\",\"cat\":\"mdm\",\"ph\":\"X\",\"pid\":" << pid
         << ",\"tid\":" << buf->tid;
      // Timestamps/durations in microseconds with ns resolution.
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(e.start_ns) * 1e-3);
      os << ",\"ts\":" << num;
      const std::uint64_t dur =
          e.end_ns >= e.start_ns ? e.end_ns - e.start_ns : 0;
      std::snprintf(num, sizeof num, "%.3f", static_cast<double>(dur) * 1e-3);
      os << ",\"dur\":" << num;
      if (e.trace_id != 0) {
        // Hex keeps the 64-bit id exact (JSON numbers are doubles).
        std::snprintf(num, sizeof num, "%llx",
                      static_cast<unsigned long long>(e.trace_id));
        os << ",\"args\":{\"trace\":\"" << num << "\"";
        if (e.span_id != 0) {
          std::snprintf(num, sizeof num, "%llx",
                        static_cast<unsigned long long>(e.span_id));
          os << ",\"parent\":\"" << num << "\"";
        }
        os << '}';
      }
      os << '}';
    }
  }
  os << "\n]}\n";
}

std::string Trace::chrome_json() {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

bool Trace::write_chrome_json_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_json(os);
  return static_cast<bool>(os);
}

}  // namespace mdm::obs
