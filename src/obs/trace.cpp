#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

namespace mdm::obs {
namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
};

/// Cap per thread (~24 MB worst case) so a runaway loop with tracing left on
/// cannot exhaust memory; overflow is counted, not silently ignored.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct ThreadBuffer {
  std::mutex mutex;  // uncontended except during export/clear
  std::vector<Event> events;
  int tid = 0;
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dropped{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  Recorder() {
    const char* env = std::getenv("MDM_TRACE");
    if (env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
      enabled.store(true, std::memory_order_relaxed);
  }
};

/// Leaked on purpose: worker threads (e.g. the global ThreadPool) may still
/// record during static destruction.
Recorder& recorder() {
  static Recorder* r = new Recorder;
  return *r;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (!t_buffer) {
    auto& rec = recorder();
    auto owned = std::make_unique<ThreadBuffer>();
    t_buffer = owned.get();
    std::lock_guard lock(rec.registry_mutex);
    owned->tid = static_cast<int>(rec.buffers.size()) + 1;
    rec.buffers.push_back(std::move(owned));
  }
  return *t_buffer;
}

void escape_into(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
}

}  // namespace

bool Trace::enabled() noexcept {
  return recorder().enabled.load(std::memory_order_relaxed);
}

void Trace::set_enabled(bool on) noexcept {
  recorder().enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Trace::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - recorder().epoch)
          .count());
}

void Trace::record_complete(const char* name, std::uint64_t start_ns,
                            std::uint64_t end_ns) {
  if (!enabled()) return;
  auto& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    recorder().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back({name, start_ns, end_ns});
}

std::size_t Trace::event_count() {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  std::size_t n = 0;
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::size_t Trace::thread_buffer_count() {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  return rec.buffers.size();
}

std::uint64_t Trace::dropped_events() {
  return recorder().dropped.load(std::memory_order_relaxed);
}

void Trace::clear() {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    buf->events.clear();
  }
  rec.dropped.store(0, std::memory_order_relaxed);
}

void Trace::write_chrome_json(std::ostream& os) {
  auto& rec = recorder();
  std::lock_guard lock(rec.registry_mutex);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const auto& buf : rec.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    for (const auto& e : buf->events) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"";
      escape_into(os, e.name);
      os << "\",\"cat\":\"mdm\",\"ph\":\"X\",\"pid\":1,\"tid\":" << buf->tid;
      // Timestamps/durations in microseconds with ns resolution.
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(e.start_ns) * 1e-3);
      os << ",\"ts\":" << num;
      const std::uint64_t dur =
          e.end_ns >= e.start_ns ? e.end_ns - e.start_ns : 0;
      std::snprintf(num, sizeof num, "%.3f", static_cast<double>(dur) * 1e-3);
      os << ",\"dur\":" << num << '}';
    }
  }
  os << "\n]}\n";
}

std::string Trace::chrome_json() {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

bool Trace::write_chrome_json_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_json(os);
  return static_cast<bool>(os);
}

}  // namespace mdm::obs
