#include "obs/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mdm::obs {
namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
  os << '"';
}

}  // namespace

void BenchReport::add(std::string metric, double value, std::string unit) {
  results_.push_back({std::move(metric), value, std::move(unit)});
}

std::string BenchReport::json() const {
  std::ostringstream os;
  os << "{\"bench\": ";
  json_string(os, name_);
  os << ", \"results\": [";
  char buf[64];
  bool first = true;
  for (const auto& r : results_) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    os << "{\"name\": ";
    json_string(os, r.name);
    os << ", \"value\": ";
    if (std::isfinite(r.value)) {
      std::snprintf(buf, sizeof buf, "%.17g", r.value);
      os << buf;
    } else {
      os << 0;
    }
    os << ", \"unit\": ";
    json_string(os, r.unit);
    os << '}';
  }
  os << "\n]}\n";
  return os.str();
}

bool BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream os(path);
  if (!os) return false;
  os << json();
  return static_cast<bool>(os);
}

}  // namespace mdm::obs
