#pragma once

/// \file trace_merge.hpp
/// Cross-rank trace merger (DESIGN.md §10). Each run — or, in a real
/// multi-node deployment, each rank process — exports its own chrome-trace
/// JSON; the merger combines several such files into one timeline keyed by
/// rank, so the whole job reads as a single trace in Perfetto:
///
///   * every event from input file i moves to the process track
///     pid = Trace::kRankPidBase + rank_i, with a "process_name" metadata
///     record naming it "rank N";
///   * events already on a rank track (pid >= kRankPidBase, emitted by
///     rank-labelled threads of an in-process world) keep their pid, so
///     merging a host file with per-rank files never double-shifts;
///   * tids are offset per input so two files' thread 3 stay distinct.
///
/// The merger also answers the correlation question directly:
/// `distinct_trace_ids` lists the trace ids present in a merged (or single)
/// document — one served job is healthy exactly when its spans across every
/// rank share one id.

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace mdm::obs {

/// One input to the merger: a chrome-trace JSON file and the rank its
/// anonymous (host, pid < kRankPidBase) events belong to. rank < 0 keeps
/// those events on the shared host track.
struct TraceMergeInput {
  std::string path;
  int rank = -1;
};

/// Merge the inputs into one chrome-trace document written to `os`.
/// Throws JsonError on unreadable or malformed input.
void merge_chrome_traces(const std::vector<TraceMergeInput>& inputs,
                         std::ostream& os);

/// As above, into a string.
std::string merge_chrome_traces(const std::vector<TraceMergeInput>& inputs);

/// As above, into a file; returns false if the output cannot be written
/// (input errors still throw).
bool merge_chrome_trace_files(const std::vector<TraceMergeInput>& inputs,
                              const std::string& out_path);

/// Distinct values of args.trace across a parsed chrome-trace document,
/// sorted. Metadata records never carry one.
std::vector<std::string> distinct_trace_ids(const JsonValue& doc);

}  // namespace mdm::obs
