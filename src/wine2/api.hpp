#pragma once

/// \file api.hpp
/// The WINE-2 library interface of the paper's Table 2 (single-process
/// flavour; the MPI-parallelized wrapper with wine2_set_MPI_community lives
/// in the host module):
///
///   wine2_allocate_board    set the number of WINE-2 boards to acquire
///   wine2_initialize_board  acquire WINE-2 boards
///   wine2_set_nn            set the number of particles for each process
///   calculate_force_and_pot_wavepart_nooffset
///                           calculate the wavenumber-space part of force
///   wine2_free_board        release WINE-2 boards

#include <memory>

#include "wine2/system.hpp"

namespace mdm::wine2 {

class Wine2Library {
 public:
  void wine2_allocate_board(int n_boards);
  void wine2_initialize_board(WineFormats formats = WineFormats::paper());
  void wine2_set_nn(std::size_t n_particles);

  /// DFT + IDFT + reciprocal energy in one call. `forces` is accumulated
  /// into; returns the reciprocal-space potential energy.
  double calculate_force_and_pot_wavepart_nooffset(
      std::span<const Vec3> positions, std::span<const double> charges,
      double box, const KVectorTable& kvectors, std::span<Vec3> forces);

  void wine2_free_board();

  bool initialized() const { return system_ != nullptr; }
  Wine2System* system() { return system_.get(); }

 private:
  int requested_boards_ = 7;  ///< one cluster by default
  std::size_t expected_particles_ = 0;
  std::unique_ptr<Wine2System> system_;
};

}  // namespace mdm::wine2
