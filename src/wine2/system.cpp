#include "wine2/system.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/fixed_point.hpp"
#include "util/units.hpp"

namespace mdm::wine2 {
namespace {

/// Smallest power of two >= v (v > 0), the driver's block exponent.
double power_of_two_scale(double v) {
  if (!(v > 0.0)) return 1.0;
  return std::ldexp(1.0, std::ilogb(v) + 1);
}

/// Quantize a value to `bits` mantissa bits within its own binade (the
/// per-wave block exponent used for the a_n coefficients, which span many
/// orders of magnitude across the k-table).
double quantize_mantissa(double v, int bits) {
  if (v == 0.0) return 0.0;
  const int e = std::ilogb(v);
  const double scale = std::ldexp(1.0, bits - e);
  return std::nearbyint(v * scale) / scale;
}

}  // namespace

Chip::Chip(const WineFormats& formats, const TrigUnit& trig) {
  pipelines_.reserve(kPipelines);
  for (int p = 0; p < kPipelines; ++p) pipelines_.emplace_back(formats, trig);
}

void Chip::load_waves(std::span<const WaveSlot> waves) {
  std::vector<std::vector<WaveSlot>> per_pipeline(kPipelines);
  for (std::size_t j = 0; j < waves.size(); ++j)
    per_pipeline[j % kPipelines].push_back(waves[j]);
  for (int p = 0; p < kPipelines; ++p)
    pipelines_[p].load_waves(std::move(per_pipeline[p]));
}

std::size_t Chip::wave_count() const {
  std::size_t n = 0;
  for (const auto& p : pipelines_) n += p.wave_count();
  return n;
}

void Chip::run_dft_into(std::span<const WineParticle> particles,
                        std::span<DftAccumulator> out) {
  if (out.size() != wave_count())
    throw std::invalid_argument("Chip: DFT output size mismatch");
  std::size_t offset = 0;
  for (auto& p : pipelines_) {
    p.run_dft_into(particles, out.subspan(offset, p.wave_count()));
    offset += p.wave_count();
  }
}

Vec3 Chip::run_idft_particle(const WineParticle& particle) {
  Vec3 f;
  for (auto& p : pipelines_)
    if (p.wave_count() > 0) f += p.run_idft_particle(particle);
  return f;
}

std::uint64_t Chip::wave_particle_ops() const {
  std::uint64_t n = 0;
  for (const auto& p : pipelines_) n += p.wave_particle_ops();
  return n;
}

std::uint64_t Chip::saturation_count() const {
  std::uint64_t n = 0;
  for (const auto& p : pipelines_) n += p.saturation_count();
  return n;
}

void Chip::reset_counters() {
  for (auto& p : pipelines_) p.reset_counter();
}

Wine2System::Wine2System(SystemConfig config) : config_(config) {
  if (config_.clusters < 1 || config_.boards_per_cluster < 1 ||
      config_.chips_per_board < 1)
    throw std::invalid_argument("Wine2System: bad topology");
  if (!config_.formats.valid())
    throw std::invalid_argument("Wine2System: bad formats");
  trig_ = std::make_unique<TrigUnit>(config_.formats);
  const int n_chips = config_.clusters * config_.boards_per_cluster *
                      config_.chips_per_board;
  chips_.reserve(n_chips);
  for (int c = 0; c < n_chips; ++c)
    chips_.emplace_back(config_.formats, *trig_);
}

void Wine2System::load_waves(const KVectorTable& table) {
  kvectors_ = &table;
  // Normalize a_n into (0, 1] with one block exponent.
  double a_max = 0.0;
  for (const auto& kv : table.vectors()) a_max = std::max(a_max, kv.a);
  a_scale_ = power_of_two_scale(a_max);

  // Deal table indices round-robin over chips; remember the order each chip
  // will report its accumulators in (pipeline-major).
  const std::size_t n_chips = chips_.size();
  wave_order_.clear();
  std::vector<std::vector<std::size_t>> chip_input(n_chips);
  for (std::size_t m = 0; m < table.size(); ++m)
    chip_input[m % n_chips].push_back(m);
  for (std::size_t c = 0; c < n_chips; ++c) {
    // Chip deals its slots round-robin over 8 pipelines; the output order is
    // pipeline 0's slots, then pipeline 1's, ...
    for (int p = 0; p < Chip::kPipelines; ++p)
      for (std::size_t j = p; j < chip_input[c].size();
           j += Chip::kPipelines)
        wave_order_.push_back(chip_input[c][j]);
  }

  // Load DFT-mode slots (integer waves only).
  for (std::size_t c = 0; c < n_chips; ++c) {
    std::vector<WaveSlot> slots;
    slots.reserve(chip_input[c].size());
    for (const auto m : chip_input[c]) {
      const auto& kv = table.vectors()[m];
      WaveSlot slot;
      slot.n[0] = static_cast<int>(kv.n.x);
      slot.n[1] = static_cast<int>(kv.n.y);
      slot.n[2] = static_cast<int>(kv.n.z);
      slot.a_norm = quantize_mantissa(kv.a / a_scale_,
                                      config_.formats.coeff_frac_bits);
      slots.push_back(slot);
    }
    chips_[c].load_waves(slots);
  }
}

void Wine2System::set_particles(std::span<const Vec3> positions,
                                std::span<const double> charges, double box) {
  if (positions.size() != charges.size())
    throw std::invalid_argument("Wine2System: position/charge size mismatch");
  obs::ScopedPhase host_phase(obs::Phase::kHost);
  MDM_TRACE_SCOPE("wine2.set_particles");
  const std::size_t boards = static_cast<std::size_t>(config_.clusters) *
                             config_.boards_per_cluster;
  (void)boards;
  if (positions.size() > kBoardParticleCapacity)
    throw std::length_error(
        "Wine2System: particle memory capacity exceeded (16 MB SDRAM/board)");
  box_ = box;
  double q_max = 0.0;
  for (const double q : charges) q_max = std::max(q_max, std::fabs(q));
  charge_scale_ = power_of_two_scale(q_max);
  particles_.resize(positions.size());
  charges_.assign(charges.begin(), charges.end());
  for (std::size_t i = 0; i < positions.size(); ++i)
    particles_[i] = make_wine_particle(positions[i], box, charges[i],
                                       charge_scale_, config_.formats);
}

StructureFactors Wine2System::run_dft() {
  if (!kvectors_) throw std::logic_error("Wine2System: waves not loaded");
  if (particles_.empty())
    throw std::logic_error("Wine2System: particles not loaded");
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  MDM_TRACE_SCOPE("wine2.dft");
  const std::uint64_t ops_before = wave_particle_ops();
  const std::uint64_t sat_before = saturation_count();

  // Each chip owns a disjoint range of the shared accumulator array, so
  // chips run concurrently and the result is bit-identical to the serial
  // scan. The array and offsets are member scratch reused across steps.
  const std::size_t n_chips = chips_.size();
  chip_offsets_.resize(n_chips + 1);
  chip_offsets_[0] = 0;
  for (std::size_t c = 0; c < n_chips; ++c)
    chip_offsets_[c + 1] = chip_offsets_[c] + chips_[c].wave_count();
  dft_acc_.resize(chip_offsets_[n_chips]);
  auto run_chips = [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c)
      chips_[c].run_dft_into(
          particles_, std::span(dft_acc_)
                          .subspan(chip_offsets_[c], chips_[c].wave_count()));
  };
  if (pool_ && pool_->size() > 1) {
    pool_for(
        *pool_, n_chips,
        [&](unsigned, std::size_t begin, std::size_t end) {
          run_chips(begin, end);
        },
        /*min_parallel=*/0);
  } else {
    run_chips(0, n_chips);
  }
  const auto& acc = dft_acc_;

  StructureFactors sf;
  sf.s.assign(kvectors_->size(), 0.0);
  sf.c.assign(kvectors_->size(), 0.0);
  for (std::size_t slot = 0; slot < wave_order_.size(); ++slot) {
    const std::size_t m = wave_order_[slot];
    // Host reconstructs S and C from S+C and S-C (sec. 3.4.4).
    sf.s[m] = 0.5 * (acc[slot].s_plus_c + acc[slot].s_minus_c) *
              charge_scale_;
    sf.c[m] = 0.5 * (acc[slot].s_plus_c - acc[slot].s_minus_c) *
              charge_scale_;
  }
  auto& reg = obs::Registry::global();
  static obs::Counter& dft_ops = reg.counter("wine2.dft_ops");
  static obs::Counter& saturations = reg.counter("wine2.saturations");
  dft_ops.add(wave_particle_ops() - ops_before);
  saturations.add(saturation_count() - sat_before);
  return sf;
}

void Wine2System::run_idft(const StructureFactors& sf,
                           std::span<Vec3> forces) {
  if (!kvectors_) throw std::logic_error("Wine2System: waves not loaded");
  if (forces.size() != particles_.size())
    throw std::invalid_argument("Wine2System: force array size mismatch");
  if (sf.s.size() != kvectors_->size())
    throw std::invalid_argument("Wine2System: structure factor mismatch");
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  MDM_TRACE_SCOPE("wine2.idft");
  const std::uint64_t ops_before = wave_particle_ops();
  const std::uint64_t sat_before = saturation_count();

  // Block-normalize the structure factors and reload the slots in IDFT mode.
  double sc_max = 0.0;
  for (std::size_t m = 0; m < sf.s.size(); ++m)
    sc_max = std::max({sc_max, std::fabs(sf.s[m]), std::fabs(sf.c[m])});
  const double sc_scale = power_of_two_scale(sc_max);

  const QFormat coeff{.int_bits = 2,
                      .frac_bits = config_.formats.coeff_frac_bits};
  const std::size_t n_chips = chips_.size();
  chip_slots_.resize(n_chips);
  for (auto& slots : chip_slots_) slots.clear();  // keeps capacity
  auto& chip_slots = chip_slots_;
  for (std::size_t m = 0; m < kvectors_->size(); ++m) {
    const auto& kv = kvectors_->vectors()[m];
    WaveSlot slot;
    slot.n[0] = static_cast<int>(kv.n.x);
    slot.n[1] = static_cast<int>(kv.n.y);
    slot.n[2] = static_cast<int>(kv.n.z);
    slot.a_norm = quantize_mantissa(kv.a / a_scale_,
                                    config_.formats.coeff_frac_bits);
    slot.s_norm = quantize(sf.s[m] / sc_scale, coeff);
    slot.c_norm = quantize(sf.c[m] / sc_scale, coeff);
    chip_slots[m % n_chips].push_back(slot);
  }
  for (std::size_t c = 0; c < n_chips; ++c)
    chips_[c].load_waves(chip_slots[c]);

  // F_i = (4 k_e q_i / L^4) * a_scale * sc_scale * sum over the machine.
  // Particles own disjoint force slots, so the loop fans out over the pool
  // bit-identically to the serial scan (the chips' op counters are relaxed
  // atomics; their totals are interleaving-independent).
  const double pref =
      4.0 * units::kCoulomb / (box_ * box_ * box_ * box_) * a_scale_ *
      sc_scale;
  auto idft_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Vec3 partial;
      for (auto& chip : chips_)
        partial += chip.run_idft_particle(particles_[i]);
      forces[i] += (pref * charges_[i]) * partial;
    }
  };
  if (pool_ && pool_->size() > 1) {
    pool_for(*pool_, particles_.size(),
             [&](unsigned, std::size_t begin, std::size_t end) {
               idft_range(begin, end);
             });
  } else {
    idft_range(0, particles_.size());
  }

  // Restore DFT-mode slots so a subsequent run_dft works unchanged.
  load_waves(*kvectors_);

  auto& reg = obs::Registry::global();
  static obs::Counter& idft_ops = reg.counter("wine2.idft_ops");
  static obs::Counter& saturations = reg.counter("wine2.saturations");
  idft_ops.add(wave_particle_ops() - ops_before);
  saturations.add(saturation_count() - sat_before);
}

double Wine2System::reciprocal_energy(const StructureFactors& sf) const {
  if (!kvectors_) throw std::logic_error("Wine2System: waves not loaded");
  double e = 0.0;
  for (std::size_t m = 0; m < kvectors_->size(); ++m) {
    e += kvectors_->vectors()[m].a *
         (sf.s[m] * sf.s[m] + sf.c[m] * sf.c[m]);
  }
  return units::kCoulomb / (std::numbers::pi * box_ * box_ * box_) * e;
}

std::uint64_t Wine2System::wave_particle_ops() const {
  std::uint64_t n = 0;
  for (const auto& chip : chips_) n += chip.wave_particle_ops();
  return n;
}

std::uint64_t Wine2System::saturation_count() const {
  std::uint64_t n = 0;
  for (const auto& chip : chips_) n += chip.saturation_count();
  return n;
}

void Wine2System::reset_counters() {
  for (auto& chip : chips_) chip.reset_counters();
}

}  // namespace mdm::wine2
