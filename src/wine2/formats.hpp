#pragma once

/// \file formats.hpp
/// Fixed-point word widths of the WINE-2 pipeline ("Fixed-point two's
/// complement format is used in all the arithmetic calculations in a
/// pipeline", sec. 3.4.4). The defaults are tuned so the emulated pipeline
/// reproduces the paper's stated relative accuracy of the wavenumber-space
/// force, about 10^-4.5; the widths are configurable for the word-width
/// ablation bench.

namespace mdm::wine2 {

struct WineFormats {
  /// Phase as a fraction of a full turn (cyclic; the k.r inner product is
  /// computed modulo 1 so the periodic wrap is free, like the coordinates).
  int phase_bits = 26;
  /// sin/cos lookup table: 2^table_bits entries per turn, linearly
  /// interpolated. The interpolation error ~ (2 pi / 2^table_bits)^2 / 8 is
  /// the dominant noise source at the default width.
  int table_bits = 12;
  /// Fraction bits of the sin/cos outputs (Q2.trig format).
  int trig_frac_bits = 22;
  /// Fraction bits of normalized coefficients (q_j, S_n, C_n are
  /// block-normalized into [-1, 1] by the driver before upload; a_n keeps a
  /// per-wave block exponent, i.e. coeff_frac_bits of mantissa).
  int coeff_frac_bits = 24;
  /// Fraction bits of intermediate products.
  int product_frac_bits = 24;
  /// Fraction bits of the S/C and force accumulators (wide integer part).
  int accum_frac_bits = 28;

  /// The production configuration of the shipped chip.
  static WineFormats paper() { return {}; }

  bool valid() const {
    return phase_bits >= 4 && table_bits >= 2 && table_bits <= phase_bits &&
           trig_frac_bits >= 2 && coeff_frac_bits >= 2 &&
           product_frac_bits >= 2 && accum_frac_bits >= 2 &&
           phase_bits <= 40 && accum_frac_bits <= 40;
  }
};

}  // namespace mdm::wine2
