#pragma once

/// \file pipeline.hpp
/// WINE-2 pipeline model (sec. 3.4.4, figs. 6-7). A pipeline owns a set of
/// wavenumber vectors ("wavenumber vectors are loaded into a pipeline before
/// starting the calculation") and runs in one of two modes:
///
///  * DFT mode: for each streamed particle j it computes the inner product
///    theta = 2 pi k_n . r_j in cyclic fixed point, its sine/cosine, scales
///    by q_j and accumulates S_n + C_n and S_n - C_n (the host reconstructs
///    S_n and C_n, eq. 9-10).
///  * IDFT mode: for each streamed particle i it evaluates
///    sum_n a_n [C_n sin(theta) - S_n cos(theta)] k_n  (eq. 11).
///
/// Coefficients (q_j, a_n, S_n, C_n) are block-normalized into [-1, 1] by
/// the driver before upload; the denormalization scales are carried
/// alongside and applied by the host library after download. All pipeline
/// registers are quantized to the configured Q-formats.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "util/fixed_point.hpp"
#include "util/vec3.hpp"
#include "wine2/trig_unit.hpp"

namespace mdm::wine2 {

/// A particle as streamed to the pipelines: per-axis coordinate phases and
/// the normalized charge.
struct WineParticle {
  std::uint64_t phase[3] = {0, 0, 0};
  double charge_norm = 0.0;  ///< q / q_scale, on the coefficient grid
};

/// One wavenumber slot resident in a pipeline.
struct WaveSlot {
  int n[3] = {0, 0, 0};   ///< integer wave triple (k = n / L)
  double a_norm = 0.0;    ///< a_n / a_scale (IDFT)
  double s_norm = 0.0;    ///< S_n / sc_scale (IDFT)
  double c_norm = 0.0;    ///< C_n / sc_scale (IDFT)
};

/// DFT accumulator pair of one wave slot (normalized by q_scale).
struct DftAccumulator {
  double s_plus_c = 0.0;
  double s_minus_c = 0.0;
};

class Pipeline {
 public:
  /// `trig` is the shared sin/cos unit (one per system; pipelines hold a
  /// reference so a 2,240-chip machine does not replicate the table).
  Pipeline(const WineFormats& formats, const TrigUnit& trig);

  // Movable so pipelines can live in a std::vector; the op counters are
  // atomics (see below) and are carried over by value.
  Pipeline(Pipeline&& o) noexcept
      : formats_(o.formats_),
        trig_(o.trig_),
        waves_(std::move(o.waves_)),
        phase_mask_(o.phase_mask_),
        ops_(o.ops_.load(std::memory_order_relaxed)),
        saturations_(o.saturations_.load(std::memory_order_relaxed)) {}
  Pipeline& operator=(Pipeline&& o) noexcept {
    formats_ = o.formats_;
    trig_ = o.trig_;
    waves_ = std::move(o.waves_);
    phase_mask_ = o.phase_mask_;
    ops_.store(o.ops_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    saturations_.store(o.saturations_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  void load_waves(std::vector<WaveSlot> waves);
  std::size_t wave_count() const { return waves_.size(); }
  std::span<const WaveSlot> waves() const { return waves_; }

  /// DFT mode over a particle stream; returns one accumulator per loaded
  /// wave. Increments the pair-operation counter by waves * particles.
  std::vector<DftAccumulator> run_dft(std::span<const WineParticle> particles);

  /// Allocation-free DFT: writes one accumulator per loaded wave into `out`
  /// (out.size() must equal wave_count()). The step loop uses this form.
  void run_dft_into(std::span<const WineParticle> particles,
                    std::span<DftAccumulator> out);

  /// IDFT mode: the (normalized) force accumulation for one particle,
  /// summed over this pipeline's waves.
  Vec3 run_idft_particle(const WineParticle& particle);

  std::uint64_t wave_particle_ops() const {
    return ops_.load(std::memory_order_relaxed);
  }
  /// Products that fell outside the Q-format range and were clamped
  /// (hardware saturation, sec. 3.4.4).
  std::uint64_t saturation_count() const {
    return saturations_.load(std::memory_order_relaxed);
  }
  void reset_counter() {
    ops_.store(0, std::memory_order_relaxed);
    saturations_.store(0, std::memory_order_relaxed);
  }

  /// theta(n, particle) as a cyclic phase word (exposed for tests).
  std::uint64_t wave_phase(const WaveSlot& wave,
                           const WineParticle& particle) const;

 private:
  double quantize_counting(double v, const QFormat& fmt);

  WineFormats formats_;
  const TrigUnit* trig_;
  std::vector<WaveSlot> waves_;
  std::uint64_t phase_mask_;
  /// Atomic (relaxed) because the parallel IDFT streams different particles
  /// through the same pipeline from several threads; the totals are
  /// interleaving-independent.
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> saturations_{0};
};

/// Convert a position/charge to the pipeline's particle format.
WineParticle make_wine_particle(const Vec3& position, double box,
                                double charge, double charge_scale,
                                const WineFormats& formats);

}  // namespace mdm::wine2
