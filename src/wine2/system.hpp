#pragma once

/// \file system.hpp
/// The WINE-2 subsystem hierarchy (sec. 3.4, figs. 4-6): 20 clusters x 7
/// boards x 16 chips x 8 pipelines = 17,920 pipelines in the full machine.
/// Wave slots are distributed round-robin over every pipeline; the particle
/// image is broadcast to all boards (16 MB SDRAM of particle memory each).
///
/// The system-level driver also performs the block normalization the real
/// WINE-2 library does: charges, a_n and structure factors are scaled into
/// the pipelines' fixed-point range by powers of two and the scales are
/// reapplied on download.

#include <memory>
#include <vector>

#include "ewald/ewald.hpp"
#include "util/thread_pool.hpp"
#include "wine2/pipeline.hpp"

namespace mdm::wine2 {

struct SystemConfig {
  int clusters = 20;          ///< the paper's machine
  int boards_per_cluster = 7;
  int chips_per_board = 16;
  WineFormats formats = WineFormats::paper();
};

/// 16 MB SDRAM / 16 bytes per stored particle.
inline constexpr std::size_t kBoardParticleCapacity =
    16u * 1024 * 1024 / 16;

/// One WINE-2 chip: 8 pipelines sharing the wave set assigned to the chip.
class Chip {
 public:
  static constexpr int kPipelines = 8;

  Chip(const WineFormats& formats, const TrigUnit& trig);

  /// Distribute wave slots round-robin over the 8 pipelines.
  void load_waves(std::span<const WaveSlot> waves);
  std::size_t wave_count() const;

  /// DFT over the particle stream into `out` (out.size() must equal
  /// wave_count()), in this chip's wave order (pipeline 0's slots, then
  /// pipeline 1's, ...). Writes only into `out`, so chips with disjoint
  /// output ranges can run concurrently.
  void run_dft_into(std::span<const WineParticle> particles,
                    std::span<DftAccumulator> out);

  /// IDFT partial force for one particle over this chip's waves.
  Vec3 run_idft_particle(const WineParticle& particle);

  std::uint64_t wave_particle_ops() const;
  std::uint64_t saturation_count() const;
  void reset_counters();

 private:
  std::vector<Pipeline> pipelines_;
};

class Wine2System {
 public:
  explicit Wine2System(SystemConfig config = {});

  int chip_count() const { return static_cast<int>(chips_.size()); }
  int pipeline_count() const { return chip_count() * Chip::kPipelines; }
  const SystemConfig& config() const { return config_; }

  /// Load the wavenumber table; slots are dealt round-robin across chips.
  void load_waves(const KVectorTable& table);
  std::size_t wave_count() const { return wave_order_.size(); }

  /// Upload the particle image (broadcast to all boards in the machine; the
  /// per-board capacity is enforced).
  void set_particles(std::span<const Vec3> positions,
                     std::span<const double> charges, double box);

  /// DFT step (eqs. 9-10): structure factors in the k-vector table's order.
  StructureFactors run_dft();

  /// IDFT step (eq. 11): adds the wavenumber-space force to `forces`
  /// (including the physical prefactor 4 k_e q_i / L^4).
  void run_idft(const StructureFactors& sf, std::span<Vec3> forces);

  /// Reciprocal-space energy from structure factors,
  /// E = (k_e / (pi L^3)) sum_n a_n (S_n^2 + C_n^2) - evaluated on the host
  /// (the "pot" of calculate_force_and_pot_wavepart_nooffset).
  double reciprocal_energy(const StructureFactors& sf) const;

  std::uint64_t wave_particle_ops() const;
  /// Fixed-point saturations across every pipeline in the machine.
  std::uint64_t saturation_count() const;
  void reset_counters();

  /// Fan the DFT out over chips and the IDFT over particles on a thread
  /// pool (nullptr = serial). Chips write disjoint accumulator ranges and
  /// particles own disjoint force slots, so both passes are bit-identical
  /// to the serial loops at any pool size.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  SystemConfig config_;
  std::unique_ptr<TrigUnit> trig_;
  std::vector<Chip> chips_;

  const KVectorTable* kvectors_ = nullptr;
  std::vector<std::size_t> wave_order_;  ///< table index per dealt slot
  double a_scale_ = 1.0;

  double box_ = 0.0;
  double charge_scale_ = 1.0;
  std::vector<WineParticle> particles_;
  std::vector<double> charges_;

  ThreadPool* pool_ = nullptr;
  /// Per-step scratch, reused across steps.
  std::vector<DftAccumulator> dft_acc_;
  std::vector<std::size_t> chip_offsets_;  ///< accumulator offset per chip
  std::vector<std::vector<WaveSlot>> chip_slots_;  ///< IDFT reload staging
};

}  // namespace mdm::wine2
