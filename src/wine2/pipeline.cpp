#include "wine2/pipeline.hpp"

#include <stdexcept>

#include "util/fixed_point.hpp"

namespace mdm::wine2 {

Pipeline::Pipeline(const WineFormats& formats, const TrigUnit& trig)
    : formats_(formats), trig_(&trig) {
  phase_mask_ = (std::uint64_t{1} << formats_.phase_bits) - 1;
}

void Pipeline::load_waves(std::vector<WaveSlot> waves) {
  waves_ = std::move(waves);
}

double Pipeline::quantize_counting(double v, const QFormat& fmt) {
  if (v > fmt.max_value() || v < fmt.min_value())
    saturations_.fetch_add(1, std::memory_order_relaxed);
  return quantize(v, fmt);
}

std::uint64_t Pipeline::wave_phase(const WaveSlot& wave,
                                   const WineParticle& particle) const {
  // theta/2pi = (n_x u_x + n_y u_y + n_z u_z) mod 1: two's complement
  // multiply-accumulate on the phase words wraps for free.
  std::uint64_t acc = 0;
  for (int axis = 0; axis < 3; ++axis) {
    const auto term = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(wave.n[axis]) *
        static_cast<std::int64_t>(particle.phase[axis]));
    acc += term;
  }
  return acc & phase_mask_;
}

std::vector<DftAccumulator> Pipeline::run_dft(
    std::span<const WineParticle> particles) {
  std::vector<DftAccumulator> acc(waves_.size());
  run_dft_into(particles, acc);
  return acc;
}

void Pipeline::run_dft_into(std::span<const WineParticle> particles,
                            std::span<DftAccumulator> out) {
  if (out.size() != waves_.size())
    throw std::invalid_argument("Pipeline: DFT output size mismatch");
  const QFormat prod{.int_bits = 2, .frac_bits = formats_.product_frac_bits};
  for (std::size_t w = 0; w < waves_.size(); ++w) {
    double plus = 0.0;
    double minus = 0.0;
    for (const auto& p : particles) {
      const std::uint64_t phase = wave_phase(waves_[w], p);
      const double s = trig_->sine(phase);
      const double c = trig_->cosine(phase);
      const double qs = quantize_counting(p.charge_norm * s, prod);
      const double qc = quantize_counting(p.charge_norm * c, prod);
      // The wide accumulators add the product grid exactly.
      plus += qs + qc;
      minus += qs - qc;
    }
    out[w].s_plus_c = plus;
    out[w].s_minus_c = minus;
  }
  ops_.fetch_add(static_cast<std::uint64_t>(waves_.size()) * particles.size(),
                 std::memory_order_relaxed);
}

Vec3 Pipeline::run_idft_particle(const WineParticle& particle) {
  const QFormat prod{.int_bits = 2, .frac_bits = formats_.product_frac_bits};
  Vec3 f;
  for (const auto& wave : waves_) {
    const std::uint64_t phase = wave_phase(wave, particle);
    const double s = trig_->sine(phase);
    const double c = trig_->cosine(phase);
    const double cs = quantize_counting(wave.c_norm * s, prod);
    const double sc = quantize_counting(wave.s_norm * c, prod);
    const double t = quantize_counting(wave.a_norm * (cs - sc), prod);
    // Integer wave components scale the product exactly.
    f.x += t * wave.n[0];
    f.y += t * wave.n[1];
    f.z += t * wave.n[2];
  }
  ops_.fetch_add(waves_.size(), std::memory_order_relaxed);
  return f;
}

WineParticle make_wine_particle(const Vec3& position, double box,
                                double charge, double charge_scale,
                                const WineFormats& formats) {
  if (!(charge_scale > 0.0))
    throw std::invalid_argument("charge scale must be positive");
  WineParticle p;
  p.phase[0] = coordinate_phase(position.x, box, formats.phase_bits);
  p.phase[1] = coordinate_phase(position.y, box, formats.phase_bits);
  p.phase[2] = coordinate_phase(position.z, box, formats.phase_bits);
  const QFormat coeff{.int_bits = 2, .frac_bits = formats.coeff_frac_bits};
  p.charge_norm = quantize(charge / charge_scale, coeff);
  return p;
}

}  // namespace mdm::wine2
