#pragma once

/// \file trig_unit.hpp
/// The pipeline's sine/cosine unit: a fixed-point lookup table over one full
/// turn with linear interpolation. Phases arrive as unsigned fractions of a
/// turn (the natural output of the cyclic inner-product multiplier), so
/// quadrant handling is implicit in the table.

#include <cstdint>
#include <vector>

#include "wine2/formats.hpp"

namespace mdm::wine2 {

class TrigUnit {
 public:
  explicit TrigUnit(const WineFormats& formats);

  /// sin(2 pi * phase / 2^phase_bits), quantized to the trig format.
  double sine(std::uint64_t phase) const;
  /// cos(2 pi * phase / 2^phase_bits) via the quarter-turn phase shift.
  double cosine(std::uint64_t phase) const;

  const WineFormats& formats() const { return formats_; }

 private:
  WineFormats formats_;
  std::vector<double> table_;  ///< quantized sin at 2^table_bits + 1 knots
  std::uint64_t phase_mask_;
  int index_shift_;
};

/// Quantize a position coordinate to an unsigned phase fraction (used for
/// the per-axis base phases u = x / L).
std::uint64_t coordinate_phase(double x, double box, int phase_bits);

}  // namespace mdm::wine2
