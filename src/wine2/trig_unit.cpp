#include "wine2/trig_unit.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/fixed_point.hpp"

namespace mdm::wine2 {

TrigUnit::TrigUnit(const WineFormats& formats) : formats_(formats) {
  if (!formats.valid()) throw std::invalid_argument("TrigUnit: bad formats");
  const std::size_t entries = std::size_t{1} << formats.table_bits;
  const QFormat trig{.int_bits = 2, .frac_bits = formats.trig_frac_bits};
  table_.resize(entries + 1);
  for (std::size_t k = 0; k <= entries; ++k) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(entries);
    table_[k] = quantize(std::sin(angle), trig);
  }
  index_shift_ = formats.phase_bits - formats.table_bits;
  phase_mask_ = (std::uint64_t{1} << formats.phase_bits) - 1;
}

double TrigUnit::sine(std::uint64_t phase) const {
  phase &= phase_mask_;
  const std::uint64_t idx = phase >> index_shift_;
  const std::uint64_t rem = phase & ((std::uint64_t{1} << index_shift_) - 1);
  // Interpolation weight in the product format.
  const QFormat prod{.int_bits = 2, .frac_bits = formats_.product_frac_bits};
  const double w = quantize(
      static_cast<double>(rem) / std::ldexp(1.0, index_shift_), prod);
  const double t0 = table_[idx];
  const double t1 = table_[idx + 1];
  const QFormat trig{.int_bits = 2, .frac_bits = formats_.trig_frac_bits};
  return quantize(t0 + w * (t1 - t0), trig);
}

double TrigUnit::cosine(std::uint64_t phase) const {
  // cos(theta) = sin(theta + quarter turn).
  const std::uint64_t quarter = std::uint64_t{1}
                                << (formats_.phase_bits - 2);
  return sine(phase + quarter);
}

std::uint64_t coordinate_phase(double x, double box, int phase_bits) {
  const double frac = x / box;
  const double scaled = frac * std::ldexp(1.0, phase_bits);
  const auto raw = static_cast<std::int64_t>(std::nearbyint(scaled));
  const std::uint64_t mask = (std::uint64_t{1} << phase_bits) - 1;
  return static_cast<std::uint64_t>(raw) & mask;
}

}  // namespace mdm::wine2
