#include "wine2/api.hpp"

#include <stdexcept>

namespace mdm::wine2 {

void Wine2Library::wine2_allocate_board(int n_boards) {
  if (n_boards < 1)
    throw std::invalid_argument("wine2_allocate_board: n < 1");
  if (system_)
    throw std::logic_error("wine2_allocate_board: boards already acquired");
  requested_boards_ = n_boards;
}

void Wine2Library::wine2_initialize_board(WineFormats formats) {
  if (system_)
    throw std::logic_error("wine2_initialize_board: already initialized");
  SystemConfig config;
  // Boards come seven to a cluster; partial clusters are modelled as
  // single-board clusters.
  if (requested_boards_ % 7 == 0) {
    config.clusters = requested_boards_ / 7;
    config.boards_per_cluster = 7;
  } else {
    config.clusters = requested_boards_;
    config.boards_per_cluster = 1;
  }
  config.formats = formats;
  system_ = std::make_unique<Wine2System>(config);
}

void Wine2Library::wine2_set_nn(std::size_t n_particles) {
  expected_particles_ = n_particles;
}

double Wine2Library::calculate_force_and_pot_wavepart_nooffset(
    std::span<const Vec3> positions, std::span<const double> charges,
    double box, const KVectorTable& kvectors, std::span<Vec3> forces) {
  if (!system_)
    throw std::logic_error(
        "calculate_force_and_pot_wavepart_nooffset: initialize boards first");
  if (expected_particles_ != 0 && positions.size() != expected_particles_)
    throw std::invalid_argument(
        "calculate_force_and_pot_wavepart_nooffset: particle count does not "
        "match wine2_set_nn");
  system_->load_waves(kvectors);
  system_->set_particles(positions, charges, box);
  const auto sf = system_->run_dft();
  system_->run_idft(sf, forces);
  return system_->reciprocal_energy(sf);
}

void Wine2Library::wine2_free_board() { system_.reset(); }

}  // namespace mdm::wine2
