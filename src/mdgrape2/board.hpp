#pragma once

/// \file board.hpp
/// MDGRAPE-2 board model (sec. 3.5.2, fig. 9): two chips fed by an FPGA
/// holding the cell-index counter, cell memory, particle-index counter and
/// 8 MB of SSRAM particle memory. The board implements eqs. 7-8: for every
/// i-particle it scans the 27 cells neighbouring i's cell and streams each
/// cell's contiguous particle range through both chips.
///
/// Notable hardware behaviours reproduced here:
///  * no cutoff test - pairs beyond r_cut are evaluated and the zero tail
///    of the g-table discards them (the N_int_g inflation of eq. 6);
///  * no Newton's third law - every i sees all 27 cells;
///  * particle indices within a cell must be contiguous in memory.

#include <cstdint>
#include <span>
#include <vector>

#include "core/cell_list.hpp"
#include "mdgrape2/chip.hpp"

namespace mdm::mdgrape2 {

/// 8 MB SSRAM / 16 bytes per stored particle.
inline constexpr std::size_t kBoardParticleCapacity = 8u * 1024 * 1024 / 16;

class Board {
 public:
  static constexpr int kChips = 2;
  static constexpr int kPipelinesPerBoard = kChips * Chip::kPipelines;

  /// Load the j-side: particle memory (cell-sorted) plus the cell table.
  /// `cells` must have been built over the same positions used to produce
  /// `particles` (in cell order). Throws if the particle memory capacity is
  /// exceeded.
  void load_particles(std::vector<StoredParticle> particles,
                      const CellList& cells);
  std::size_t loaded_particles() const { return particles_.size(); }

  /// Permanent hardware failure: a failed board refuses further passes
  /// (Mdgrape2System repartitions its i-slice across the survivors).
  void mark_failed() { failed_ = true; }
  bool failed() const { return failed_; }

  /// Load the pass into both chips (MR1SetTable).
  void load_pass(const ForcePass& pass);

  /// Compute forces (or potentials in a potential-mode pass) for the given
  /// i-particles via the 27-cell scan. `i_cells[k]` is the cell id of
  /// i_batch[k]. Accumulates into `forces`/`potentials`.
  void calc_cell_forces(std::span<const StoredParticle> i_batch,
                        std::span<const int> i_cells, double box,
                        std::span<Vec3> forces);
  void calc_cell_potentials(std::span<const StoredParticle> i_batch,
                            std::span<const int> i_cells, double box,
                            std::span<double> potentials);

  const Chip& chip(int k) const { return chips_[k]; }
  Chip& chip(int k) { return chips_[k]; }

  std::uint64_t pair_operations() const;
  std::uint64_t useful_pair_operations() const;
  void reset_counters();

 private:
  /// Stream of one cell: contiguous range of the particle memory.
  std::span<const StoredParticle> cell_stream(int cell) const;

  std::vector<StoredParticle> particles_;      // cell-sorted particle memory
  std::vector<CellList::Range> cell_ranges_;   // cell memory
  std::vector<std::array<int, 27>> neighbors_; // cell-index counter logic
  Chip chips_[kChips];
  bool failed_ = false;
};

}  // namespace mdm::mdgrape2
