#include "mdgrape2/board.hpp"

#include <stdexcept>

namespace mdm::mdgrape2 {

void Board::load_particles(std::vector<StoredParticle> particles,
                           const CellList& cells) {
  if (particles.size() > kBoardParticleCapacity)
    throw std::length_error(
        "Board: particle memory capacity exceeded (8 MB SSRAM)");
  particles_ = std::move(particles);
  const int n_cells = cells.cell_count();
  cell_ranges_.resize(n_cells);
  neighbors_.resize(n_cells);
  for (int c = 0; c < n_cells; ++c) {
    cell_ranges_[c] = cells.cell_range(c);
    neighbors_[c] = cells.neighbors27(c);
  }
}

void Board::load_pass(const ForcePass& pass) {
  for (auto& chip : chips_) chip.load_pass(pass);
}

std::span<const StoredParticle> Board::cell_stream(int cell) const {
  const auto r = cell_ranges_[cell];
  return {particles_.data() + r.begin, r.end - r.begin};
}

void Board::calc_cell_forces(std::span<const StoredParticle> i_batch,
                             std::span<const int> i_cells, double box,
                             std::span<Vec3> forces) {
  if (failed_)
    throw std::logic_error("Board: pass issued to a failed board");
  if (particles_.empty() && !i_batch.empty())
    throw std::logic_error("Board: particle memory not loaded");
  if (i_batch.size() != i_cells.size() || i_batch.size() != forces.size())
    throw std::invalid_argument("Board: batch size mismatch");
  // The two chips split the i-batch; each sees the same j-streams.
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    Chip& chip = chips_[k % kChips];
    for (const int cell : neighbors_[i_cells[k]]) {
      chip.calc_forces({&i_batch[k], 1}, cell_stream(cell), box,
                       {&forces[k], 1});
    }
  }
}

void Board::calc_cell_potentials(std::span<const StoredParticle> i_batch,
                                 std::span<const int> i_cells, double box,
                                 std::span<double> potentials) {
  if (failed_)
    throw std::logic_error("Board: pass issued to a failed board");
  if (particles_.empty() && !i_batch.empty())
    throw std::logic_error("Board: particle memory not loaded");
  if (i_batch.size() != i_cells.size() ||
      i_batch.size() != potentials.size())
    throw std::invalid_argument("Board: batch size mismatch");
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    Chip& chip = chips_[k % kChips];
    for (const int cell : neighbors_[i_cells[k]]) {
      chip.calc_potentials({&i_batch[k], 1}, cell_stream(cell), box,
                           {&potentials[k], 1});
    }
  }
}

std::uint64_t Board::pair_operations() const {
  std::uint64_t total = 0;
  for (const auto& chip : chips_) total += chip.pair_operations();
  return total;
}

std::uint64_t Board::useful_pair_operations() const {
  std::uint64_t total = 0;
  for (const auto& chip : chips_) total += chip.useful_pair_operations();
  return total;
}

void Board::reset_counters() {
  for (auto& chip : chips_) chip.reset_counters();
}

}  // namespace mdm::mdgrape2
