#pragma once

/// \file chip.hpp
/// MDGRAPE-2 chip model (sec. 3.5.3, fig. 10): four identical pipelines, an
/// atom coefficient RAM holding a_ij/b_ij for up to 32 particle types, and a
/// neighbor-list RAM (present in silicon, unused in the paper's run but
/// modelled here for completeness). Peak throughput of the real chip is one
/// pair interaction per pipeline per 100 MHz cycle (~16 Gflops in the
/// paper's counting).

#include <cstdint>
#include <span>
#include <vector>

#include "mdgrape2/pipeline.hpp"

namespace mdm::mdgrape2 {

class Chip {
 public:
  static constexpr int kPipelines = 4;

  /// Load a pass (function table + coefficient RAM contents). Models
  /// MR1SetTable; the previous pass is overwritten.
  void load_pass(const ForcePass& pass);
  bool pass_loaded() const { return !pass_.table.empty(); }
  const ForcePass& pass() const { return pass_; }

  /// Compute forces for a batch of i-particles against one j-stream.
  /// i-particles are distributed over the four pipelines round-robin while
  /// the j-stream is broadcast, exactly like the board feeds the chip.
  /// Forces are *accumulated* into `forces` (size == i_batch.size()).
  void calc_forces(std::span<const StoredParticle> i_batch,
                   std::span<const StoredParticle> j_stream, double box,
                   std::span<Vec3> forces);

  /// Potential-mode variant (per-i scalar accumulation).
  void calc_potentials(std::span<const StoredParticle> i_batch,
                       std::span<const StoredParticle> j_stream, double box,
                       std::span<double> potentials);

  /// --- neighbor-list RAM -------------------------------------------------
  /// Load per-i neighbor lists (indices into a j-particle array).
  void load_neighbor_lists(std::vector<std::vector<std::uint32_t>> lists);
  bool neighbor_lists_loaded() const { return !neighbor_lists_.empty(); }

  /// Compute forces using the neighbor-list RAM: i_batch[k] interacts with
  /// j_particles[idx] for idx in the k-th loaded list.
  void calc_forces_with_neighbor_lists(
      std::span<const StoredParticle> i_batch,
      std::span<const StoredParticle> j_particles, double box,
      std::span<Vec3> forces);

  /// Total pair evaluations since construction (for the performance model).
  std::uint64_t pair_operations() const { return pair_operations_; }
  /// Pairs whose argument fell within the table domain (within r_cut).
  std::uint64_t useful_pair_operations() const { return useful_pairs_; }
  /// Pipeline-cycles consumed: pairs / 4 rounded up per (i-batch, stream).
  std::uint64_t pipeline_cycles() const { return pipeline_cycles_; }
  void reset_counters();

 private:
  ForcePass pass_;
  Pipeline pipelines_[kPipelines];
  std::vector<std::vector<std::uint32_t>> neighbor_lists_;
  std::uint64_t pair_operations_ = 0;
  std::uint64_t useful_pairs_ = 0;
  std::uint64_t pipeline_cycles_ = 0;
};

}  // namespace mdm::mdgrape2
