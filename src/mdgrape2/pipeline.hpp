#pragma once

/// \file pipeline.hpp
/// The MDGRAPE-2 pipeline datapath (sec. 3.5.4, fig. 11):
///
///   r_ij = x_i - x_j  (40-bit cyclic fixed-point coordinates; the modular
///                      subtraction performs the periodic minimum image)
///   x    = a_ij * r^2 (IEEE-754 single precision)
///   g(x)              (function evaluator, single precision)
///   f    = b_ij * g(x) * r_vec   accumulated in double precision
///          ("double floating point format is used for accumulating the
///           force in order to prevent the underflow when large number of
///           particles are used")
///
/// A zero displacement (particle against itself in the 27-cell scan) is
/// suppressed by the x <= 0 rule of the function evaluator for forces and
/// by an explicit r^2 == 0 guard in potential mode.

#include <cstdint>
#include <span>

#include "mdgrape2/gtables.hpp"
#include "util/vec3.hpp"

namespace mdm::mdgrape2 {

/// Cyclic fixed-point coordinate: position as a 40-bit fraction of the box.
struct CyclicCoord {
  std::uint64_t x = 0, y = 0, z = 0;
};

inline constexpr int kCoordBits = 40;

/// Quantize a wrapped position to cyclic coordinates.
CyclicCoord to_cyclic(const Vec3& r, double box);

/// Minimum-image displacement a - b in box units, via modular two's
/// complement arithmetic on the 40-bit words (the hardware trick: the wrap
/// is free).
Vec3 cyclic_delta(const CyclicCoord& a, const CyclicCoord& b, double box);

/// A particle as stored in the board's particle memory. "The position,
/// charge, and particle type of a particle j are supplied to both of the
/// MDGRAPE-2 chips" (sec. 3.5.2); the per-particle charge only enters the
/// datapath when the loaded pass sets `use_particle_charge` (needed when
/// the charge is not a function of the type - e.g. tree-code monopoles).
struct StoredParticle {
  CyclicCoord position;
  int type = 0;
  float charge = 1.0f;
};

/// Work accounting of one pipeline run. `evaluated` counts every streamed
/// pair (the hardware never skips, sec. 2.2); `useful` counts the pairs
/// whose argument fell inside the g-table domain, i.e. within r_cut - the
/// difference is the N_int_g vs N_int inflation the paper corrects for in
/// its effective-speed figure.
struct PairCount {
  std::size_t evaluated = 0;
  std::size_t useful = 0;

  PairCount& operator+=(const PairCount& o) {
    evaluated += o.evaluated;
    useful += o.useful;
    return *this;
  }
};

/// One pipeline. Stateless except for the loaded pass (table +
/// coefficients); `accumulate` processes a j-stream against one i-particle.
class Pipeline {
 public:
  void load(const ForcePass* pass) { pass_ = pass; }
  bool loaded() const { return pass_ != nullptr; }

  /// Force mode: add sum_j b_ij g(a r^2) r_vec to `force` (double accum).
  PairCount accumulate_force(const StoredParticle& i,
                             std::span<const StoredParticle> j_stream,
                             double box, Vec3& force) const;

  /// Potential mode: add sum_j b_ij g(a r^2) to `potential`.
  PairCount accumulate_potential(const StoredParticle& i,
                                 std::span<const StoredParticle> j_stream,
                                 double box, double& potential) const;

 private:
  const ForcePass* pass_ = nullptr;
};

}  // namespace mdm::mdgrape2
