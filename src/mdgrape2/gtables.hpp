#pragma once

/// \file gtables.hpp
/// The g(x) function shapes the MDM software loads into the MDGRAPE-2
/// function evaluator, together with their per-pair coefficients
/// (a_ij, b_ij) such that the pipeline's
///
///     f_ij = b_ij * g(a_ij * r_ij^2) * r_vec_ij                   (eq. 14)
///
/// reproduces each physical force term. Force tables (f = ... * r_vec) and
/// potential tables (phi = b * g(a r^2)) are both provided; the real machine
/// evaluates the potential every 100 steps with the same mechanism (sec. 5).
///
/// Conventions used below (k_e = Coulomb constant, beta = alpha/L):
///
///  term            g(x)                         a_ij        b_ij
///  Coulomb real    2 e^-x/(sqrt(pi) x)
///                   + erfc(sqrt x)/x^(3/2)      beta^2      k_e q_i q_j beta^3
///  LJ (eq. 4)      2 x^-7 - x^-4                sigma^-2    24 eps / sigma^2
///  Born-Mayer      e^-sqrt(x) / sqrt(x)         rho^-2      B_ij / rho^2
///  dispersion r^-6 x^-4                         1           -6 c_ij
///  dispersion r^-8 x^-5                         1           -8 d_ij
///
///  Coulomb real pot. erfc(sqrt x)/sqrt(x)       beta^2      k_e q_i q_j beta
///  Born-Mayer pot.   e^-sqrt(x)                 rho^-2      B_ij
///  dispersion pots.  x^-3 / x^-4                1           -c_ij / -d_ij

#include "core/lennard_jones.hpp"
#include "core/tosi_fumi.hpp"
#include "mdgrape2/function_evaluator.hpp"

namespace mdm::mdgrape2 {

/// Per-pair coefficients for one pass, sized for the chip's 32-type
/// coefficient RAM.
inline constexpr int kMaxAtomTypes = 32;

struct PairCoefficients {
  int species_count = 0;
  double a[kMaxAtomTypes][kMaxAtomTypes] = {};
  double b[kMaxAtomTypes][kMaxAtomTypes] = {};
};

/// One full MDGRAPE-2 pass: a fitted table plus its coefficients.
struct ForcePass {
  SegmentedTable table;
  PairCoefficients coefficients;
  bool potential_mode = false;  ///< accumulate b*g scalars instead of forces
  /// Multiply each contribution by the j-particle's stored charge (for
  /// passes whose strength is not type-determined, e.g. tree monopoles).
  bool use_particle_charge = false;
};

/// --- table shapes (pure functions of x) ---------------------------------
double g_coulomb_real_force(double x);
double g_coulomb_real_potential(double x);
double g_lennard_jones_force(double x);
double g_born_mayer_force(double x);
double g_born_mayer_potential(double x);
double g_r6_force(double x);   // x^-4
double g_r6_potential(double x);
double g_r8_force(double x);   // x^-5
double g_r8_potential(double x);

/// --- ready-to-load passes ------------------------------------------------

/// Real-space Ewald Coulomb force (paper sec. 3.5.4). `charges` per species.
ForcePass make_coulomb_real_pass(double beta, double r_cut,
                                 std::span<const double> charges,
                                 double r_min = 0.5);

/// Coulomb real-space potential pass (for energy sampling).
ForcePass make_coulomb_real_potential_pass(double beta, double r_cut,
                                           std::span<const double> charges,
                                           double r_min = 0.5);

/// Lennard-Jones force pass from per-pair parameters.
ForcePass make_lennard_jones_pass(const LennardJonesParameters& lj,
                                  double r_cut, double r_min = 0.5);

/// Tosi-Fumi short-range force as three passes (Born-Mayer, r^-6, r^-8).
std::vector<ForcePass> make_tosi_fumi_passes(const TosiFumiParameters& tf,
                                             double r_cut, double r_min = 1.0);

/// Tosi-Fumi short-range potential passes.
std::vector<ForcePass> make_tosi_fumi_potential_passes(
    const TosiFumiParameters& tf, double r_cut, double r_min = 1.0);

}  // namespace mdm::mdgrape2
