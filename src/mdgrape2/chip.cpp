#include "mdgrape2/chip.hpp"

#include <stdexcept>

namespace mdm::mdgrape2 {

void Chip::load_pass(const ForcePass& pass) {
  if (pass.coefficients.species_count < 1 ||
      pass.coefficients.species_count > kMaxAtomTypes)
    throw std::invalid_argument("Chip: coefficient RAM supports 1..32 types");
  pass_ = pass;
  for (auto& p : pipelines_) p.load(&pass_);
}

void Chip::calc_forces(std::span<const StoredParticle> i_batch,
                       std::span<const StoredParticle> j_stream, double box,
                       std::span<Vec3> forces) {
  if (!pass_loaded()) throw std::logic_error("Chip: no pass loaded");
  if (forces.size() != i_batch.size())
    throw std::invalid_argument("Chip: force array size mismatch");
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const auto count = pipelines_[k % kPipelines].accumulate_force(
        i_batch[k], j_stream, box, forces[k]);
    pair_operations_ += count.evaluated;
    useful_pairs_ += count.useful;
  }
  // Four pipelines run in lock-step on the broadcast j-stream.
  const std::uint64_t rounds = (i_batch.size() + kPipelines - 1) / kPipelines;
  pipeline_cycles_ += rounds * j_stream.size();
}

void Chip::calc_potentials(std::span<const StoredParticle> i_batch,
                           std::span<const StoredParticle> j_stream,
                           double box, std::span<double> potentials) {
  if (!pass_loaded()) throw std::logic_error("Chip: no pass loaded");
  if (potentials.size() != i_batch.size())
    throw std::invalid_argument("Chip: potential array size mismatch");
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    const auto count = pipelines_[k % kPipelines].accumulate_potential(
        i_batch[k], j_stream, box, potentials[k]);
    pair_operations_ += count.evaluated;
    useful_pairs_ += count.useful;
  }
  const std::uint64_t rounds = (i_batch.size() + kPipelines - 1) / kPipelines;
  pipeline_cycles_ += rounds * j_stream.size();
}

void Chip::load_neighbor_lists(
    std::vector<std::vector<std::uint32_t>> lists) {
  neighbor_lists_ = std::move(lists);
}

void Chip::calc_forces_with_neighbor_lists(
    std::span<const StoredParticle> i_batch,
    std::span<const StoredParticle> j_particles, double box,
    std::span<Vec3> forces) {
  if (!pass_loaded()) throw std::logic_error("Chip: no pass loaded");
  if (neighbor_lists_.size() != i_batch.size())
    throw std::invalid_argument(
        "Chip: neighbor-list RAM does not match i-batch");
  if (forces.size() != i_batch.size())
    throw std::invalid_argument("Chip: force array size mismatch");
  std::vector<StoredParticle> stream;
  for (std::size_t k = 0; k < i_batch.size(); ++k) {
    stream.clear();
    for (const auto idx : neighbor_lists_[k]) {
      if (idx >= j_particles.size())
        throw std::out_of_range("Chip: neighbor index out of range");
      stream.push_back(j_particles[idx]);
    }
    const auto count = pipelines_[k % kPipelines].accumulate_force(
        i_batch[k], stream, box, forces[k]);
    pair_operations_ += count.evaluated;
    useful_pairs_ += count.useful;
    pipeline_cycles_ += stream.size();
  }
}

void Chip::reset_counters() {
  pair_operations_ = 0;
  useful_pairs_ = 0;
  pipeline_cycles_ = 0;
}

}  // namespace mdm::mdgrape2
