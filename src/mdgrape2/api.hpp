#pragma once

/// \file api.hpp
/// The MDGRAPE-2 library interface of the paper's Table 3, as a thin facade
/// over Mdgrape2System. Method names follow the table verbatim so the MD
/// program of sec. 4 ports directly:
///
///   MR1allocateboard   set the number of MDGRAPE-2 boards to acquire
///   MR1init            acquire MDGRAPE-2 boards
///   MR1SetTable        set the function table g(x)
///   MR1calcvdw_block2  calculate the real-space part of force with the
///                      cell-index method
///   MR1free            release MDGRAPE-2 boards

#include <memory>

#include "mdgrape2/system.hpp"

namespace mdm::mdgrape2 {

class MR1Library {
 public:
  /// Set the number of boards the next MR1init acquires.
  void MR1allocateboard(int n_boards);

  /// Acquire the boards. Throws if called twice without MR1free.
  void MR1init();

  /// Load a g(x) table + coefficients into every acquired chip.
  void MR1SetTable(const ForcePass& pass);

  /// Real-space force calculation with the cell-index method: uploads the
  /// particle image, runs the loaded pass, accumulates into `forces`.
  PassStats MR1calcvdw_block2(const ParticleSystem& system, double r_cut,
                              std::span<Vec3> forces);

  /// Potential-mode variant (same table-swap mechanism).
  PassStats MR1calcpot_block2(const ParticleSystem& system, double r_cut,
                              std::span<double> potentials);

  /// Release the boards.
  void MR1free();

  bool initialized() const { return system_ != nullptr; }
  Mdgrape2System* system() { return system_.get(); }

 private:
  int requested_boards_ = 2;  ///< one cluster by default
  std::unique_ptr<Mdgrape2System> system_;
  std::unique_ptr<ForcePass> pass_;
};

}  // namespace mdm::mdgrape2
