#pragma once

/// \file function_evaluator.hpp
/// Software model of the MDGRAPE-2 function evaluator (sec. 3.5.4):
/// "fourth-order interpolation segmented by 1,024 region. The coefficients
/// of the interpolation function are stored in the RAM in the function
/// evaluator. Therefore, we can use any arbitrary central force by changing
/// the contents of the RAM."
///
/// Segmentation follows the GRAPE convention: the argument's binade
/// (floating-point exponent) selects a coarse region and the mantissa's top
/// bits a sub-segment, so relative interpolation error is uniform across
/// many orders of magnitude of x = a_ij r^2. Coefficients are stored in
/// IEEE-754 single precision and Horner evaluation runs in single precision,
/// reproducing the chip's ~1e-7 relative force accuracy.
///
/// Out-of-range rules (also hardware behaviour):
///  * x >= x_max  -> 0  (this is how the cutoff is realized: the pipeline
///    never skips a pair, the table is simply zero beyond r_cut)
///  * 0 < x < x_min -> the first segment's polynomial (closest overlap the
///    table can represent)
///  * x <= 0 -> 0 (the zero-distance self-interaction guard)

#include <cstdint>
#include <functional>
#include <vector>

namespace mdm::mdgrape2 {

/// Number of interpolation regions in the chip RAM.
inline constexpr int kHardwareSegments = 1024;
/// Interpolation order (quartic).
inline constexpr int kInterpolationOrder = 4;

struct TableConfig {
  double x_min = 0.0;   ///< lower edge of the represented domain (> 0)
  double x_max = 0.0;   ///< upper edge; g(x >= x_max) evaluates to 0
  int segments = kHardwareSegments;

  bool valid() const {
    return x_min > 0.0 && x_max > x_min && segments >= 2;
  }
};

/// A fitted, chip-resident interpolation table for one scalar function.
class SegmentedTable {
 public:
  SegmentedTable() = default;

  /// Fit `g` over [x_min, x_max) with Chebyshev interpolation per segment.
  /// This models the "separate utility program" of sec. 4 that generates the
  /// function table before the run.
  static SegmentedTable fit(const std::function<double(double)>& g,
                            const TableConfig& config);

  bool empty() const { return coefficients_.empty(); }
  const TableConfig& config() const { return config_; }
  int segment_count() const { return config_.segments; }

  /// Single-precision Horner evaluation, exactly as the pipeline does it.
  float evaluate(float x) const;

  /// Reference double-precision evaluation of the same polynomials (used by
  /// the tests to separate interpolation error from single-precision
  /// rounding).
  double evaluate_exact(double x) const;

  /// Segment index for an in-range x (exposed for tests).
  int segment_of(double x) const;

  /// Segment boundaries [lo, hi) of segment `s`.
  void segment_bounds(int s, double& lo, double& hi) const;

 private:
  TableConfig config_;
  int exp_min_ = 0;        ///< exponent of x_min's binade
  int exp_count_ = 0;      ///< number of binades covered
  int sub_per_exp_ = 0;    ///< sub-segments per binade
  /// coefficients_[s * (order+1) + k]: coefficient of t^k on segment s,
  /// with t the position within the segment rescaled to [-1, 1].
  std::vector<float> coefficients_;
};

}  // namespace mdm::mdgrape2
