#include "mdgrape2/system.hpp"

#include <stdexcept>

#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"

namespace mdm::mdgrape2 {
namespace {

/// One pass's worth of board counters into the global registry. Each
/// streamed j-particle costs one g-table interpolation in the pipeline, so
/// table lookups track pair operations one-to-one.
void report_pass(const PassStats& stats, bool degraded) {
  auto& reg = obs::Registry::global();
  static obs::Counter& passes = reg.counter("mdgrape2.passes");
  static obs::Counter& pair_ops = reg.counter("mdgrape2.pair_ops");
  static obs::Counter& useful = reg.counter("mdgrape2.useful_pairs");
  static obs::Counter& lookups = reg.counter("mdgrape2.table_lookups");
  static obs::Counter& degraded_passes =
      reg.counter("mdgrape2.degraded_passes");
  passes.add(1);
  pair_ops.add(stats.pair_operations);
  useful.add(stats.useful_pairs);
  lookups.add(stats.pair_operations);
  if (degraded) degraded_passes.add(1);
}

}  // namespace

Mdgrape2System::Mdgrape2System(SystemConfig config) : config_(config) {
  if (config_.clusters < 1 || config_.boards_per_cluster < 1)
    throw std::invalid_argument("Mdgrape2System: bad topology");
  if (config_.cell_margin < 1.0)
    throw std::invalid_argument(
        "Mdgrape2System: cell side must be at least r_cut");
  const int n = config_.clusters * config_.boards_per_cluster;
  boards_.reserve(n);
  for (int i = 0; i < n; ++i) boards_.push_back(std::make_unique<Board>());
}

void Mdgrape2System::load_particles(const ParticleSystem& system,
                                    double r_cut) {
  obs::ScopedPhase host_phase(obs::Phase::kHost);
  MDM_TRACE_SCOPE("mdgrape2.load_particles");
  box_ = system.box();
  cells_ = std::make_unique<CellList>(box_, r_cut * config_.cell_margin);
  if (cells_->cells_per_side() < 3)
    throw std::invalid_argument(
        "Mdgrape2System: cell-index method needs >= 3 cells per side "
        "(box >= 3 r_cut); the 27-cell scan would double count otherwise");
  cells_->build(system.positions());

  const auto order = cells_->order();
  stored_.resize(order.size());
  original_index_.assign(order.begin(), order.end());
  cell_of_slot_.resize(order.size());
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    const auto p = order[slot];
    stored_[slot].position = to_cyclic(system.positions()[p], box_);
    stored_[slot].type = system.type(p);
  }
  for (int c = 0; c < cells_->cell_count(); ++c) {
    const auto range = cells_->cell_range(c);
    for (auto slot = range.begin; slot < range.end; ++slot)
      cell_of_slot_[slot] = c;
  }
  // Broadcast the image to every alive board (PCI write in the real
  // machine; failed boards are off the bus).
  for (auto& board : boards_)
    if (!board->failed()) board->load_particles(stored_, *cells_);
}

void Mdgrape2System::fail_board(int b) {
  if (b < 0 || b >= board_count())
    throw std::out_of_range("Mdgrape2System: bad board index");
  if (boards_[b]->failed()) return;
  boards_[b]->mark_failed();
  static obs::Counter& failures =
      obs::Registry::global().counter("mdgrape2.board_failures");
  failures.add(1);
  MDM_LOG_WARN(
      "mdgrape2: board %d failed permanently; redistributing its i-slice "
      "across %d surviving boards",
      b, alive_board_count());
}

bool Mdgrape2System::board_failed(int b) const {
  if (b < 0 || b >= board_count())
    throw std::out_of_range("Mdgrape2System: bad board index");
  return boards_[b]->failed();
}

int Mdgrape2System::alive_board_count() const {
  int alive = 0;
  for (const auto& board : boards_)
    if (!board->failed()) ++alive;
  return alive;
}

PassStats Mdgrape2System::run_force_pass(const ForcePass& pass,
                                         std::span<Vec3> forces) {
  if (!cells_) throw std::logic_error("Mdgrape2System: particles not loaded");
  if (forces.size() != stored_.size())
    throw std::invalid_argument("Mdgrape2System: force array size mismatch");
  if (pass.potential_mode)
    throw std::invalid_argument("Mdgrape2System: pass is potential-mode");
  obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
  MDM_TRACE_SCOPE("mdgrape2.force_pass");

  const std::size_t n = stored_.size();
  alive_boards_.clear();
  for (std::size_t b = 0; b < boards_.size(); ++b)
    if (!boards_[b]->failed()) alive_boards_.push_back(b);
  const std::size_t nb = alive_boards_.size();
  if (nb == 0)
    throw std::runtime_error(
        "Mdgrape2System: every board has failed; no hardware left to run "
        "the pass");
  slot_forces_.assign(n, Vec3{});
  board_pairs_.assign(boards_.size(), 0);
  board_useful_.assign(boards_.size(), 0);

  // Each alive board owns a contiguous i-slice (block partition over
  // cell-sorted slots) and is fully self-contained, so boards run
  // concurrently and the result is bit-identical to the serial loop. When
  // boards have failed, the partition spans the survivors only (graceful
  // degradation).
  auto run_board = [&](std::size_t k) {
    const std::size_t b = alive_boards_[k];
    Board& board = *boards_[b];
    const std::uint64_t before = board.pair_operations();
    const std::uint64_t useful_before = board.useful_pair_operations();
    board.load_pass(pass);
    const std::size_t begin = k * n / nb;
    const std::size_t end = (k + 1) * n / nb;
    if (begin == end) return;
    board.calc_cell_forces(
        std::span(stored_).subspan(begin, end - begin),
        std::span(cell_of_slot_).subspan(begin, end - begin), box_,
        std::span(slot_forces_).subspan(begin, end - begin));
    board_pairs_[b] = board.pair_operations() - before;
    board_useful_[b] = board.useful_pair_operations() - useful_before;
  };
  if (pool_ && pool_->size() > 1) {
    pool_for(
        *pool_, nb,
        [&](unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t b = begin; b < end; ++b) run_board(b);
        },
        /*min_parallel=*/0);
  } else {
    for (std::size_t b = 0; b < nb; ++b) run_board(b);
  }

  PassStats stats;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    stats.pair_operations += board_pairs_[b];
    stats.useful_pairs += board_useful_[b];
    stats.max_board_pairs = std::max(stats.max_board_pairs, board_pairs_[b]);
  }
  for (std::size_t slot = 0; slot < n; ++slot)
    forces[original_index_[slot]] += slot_forces_[slot];
  report_pass(stats, nb < boards_.size());
  return stats;
}

PassStats Mdgrape2System::run_potential_pass(const ForcePass& pass,
                                             std::span<double> potentials) {
  if (!cells_) throw std::logic_error("Mdgrape2System: particles not loaded");
  if (potentials.size() != stored_.size())
    throw std::invalid_argument(
        "Mdgrape2System: potential array size mismatch");
  if (!pass.potential_mode)
    throw std::invalid_argument("Mdgrape2System: pass is force-mode");
  obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
  MDM_TRACE_SCOPE("mdgrape2.potential_pass");

  const std::size_t n = stored_.size();
  alive_boards_.clear();
  for (std::size_t b = 0; b < boards_.size(); ++b)
    if (!boards_[b]->failed()) alive_boards_.push_back(b);
  const std::size_t nb = alive_boards_.size();
  if (nb == 0)
    throw std::runtime_error(
        "Mdgrape2System: every board has failed; no hardware left to run "
        "the pass");
  slot_potentials_.assign(n, 0.0);
  board_pairs_.assign(boards_.size(), 0);
  board_useful_.assign(boards_.size(), 0);

  auto run_board = [&](std::size_t k) {
    const std::size_t b = alive_boards_[k];
    Board& board = *boards_[b];
    const std::uint64_t before = board.pair_operations();
    const std::uint64_t useful_before = board.useful_pair_operations();
    board.load_pass(pass);
    const std::size_t begin = k * n / nb;
    const std::size_t end = (k + 1) * n / nb;
    if (begin == end) return;
    board.calc_cell_potentials(
        std::span(stored_).subspan(begin, end - begin),
        std::span(cell_of_slot_).subspan(begin, end - begin), box_,
        std::span(slot_potentials_).subspan(begin, end - begin));
    board_pairs_[b] = board.pair_operations() - before;
    board_useful_[b] = board.useful_pair_operations() - useful_before;
  };
  if (pool_ && pool_->size() > 1) {
    pool_for(
        *pool_, nb,
        [&](unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t b = begin; b < end; ++b) run_board(b);
        },
        /*min_parallel=*/0);
  } else {
    for (std::size_t b = 0; b < nb; ++b) run_board(b);
  }

  PassStats stats;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    stats.pair_operations += board_pairs_[b];
    stats.useful_pairs += board_useful_[b];
    stats.max_board_pairs = std::max(stats.max_board_pairs, board_pairs_[b]);
  }
  for (std::size_t slot = 0; slot < n; ++slot)
    potentials[original_index_[slot]] += slot_potentials_[slot];
  report_pass(stats, nb < boards_.size());
  return stats;
}

std::uint64_t Mdgrape2System::pair_operations() const {
  std::uint64_t total = 0;
  for (const auto& board : boards_) total += board->pair_operations();
  return total;
}

std::uint64_t Mdgrape2System::useful_pair_operations() const {
  std::uint64_t total = 0;
  for (const auto& board : boards_)
    total += board->useful_pair_operations();
  return total;
}

void Mdgrape2System::reset_counters() {
  for (auto& board : boards_) board->reset_counters();
}

}  // namespace mdm::mdgrape2
