#include "mdgrape2/api.hpp"

#include <stdexcept>

namespace mdm::mdgrape2 {

void MR1Library::MR1allocateboard(int n_boards) {
  if (n_boards < 1) throw std::invalid_argument("MR1allocateboard: n < 1");
  if (system_)
    throw std::logic_error("MR1allocateboard: boards already acquired");
  requested_boards_ = n_boards;
}

void MR1Library::MR1init() {
  if (system_) throw std::logic_error("MR1init: boards already acquired");
  SystemConfig config;
  // Boards come in clusters of two; odd requests round up a cluster with a
  // single-board cluster, matching how partial machines were populated.
  config.clusters = (requested_boards_ + 1) / 2;
  config.boards_per_cluster = requested_boards_ >= 2 ? 2 : 1;
  if (config.clusters * config.boards_per_cluster != requested_boards_) {
    config.clusters = requested_boards_;
    config.boards_per_cluster = 1;
  }
  system_ = std::make_unique<Mdgrape2System>(config);
}

void MR1Library::MR1SetTable(const ForcePass& pass) {
  if (!system_) throw std::logic_error("MR1SetTable: call MR1init first");
  pass_ = std::make_unique<ForcePass>(pass);
}

PassStats MR1Library::MR1calcvdw_block2(const ParticleSystem& system,
                                        double r_cut,
                                        std::span<Vec3> forces) {
  if (!system_)
    throw std::logic_error("MR1calcvdw_block2: call MR1init first");
  if (!pass_)
    throw std::logic_error("MR1calcvdw_block2: call MR1SetTable first");
  system_->load_particles(system, r_cut);
  return system_->run_force_pass(*pass_, forces);
}

PassStats MR1Library::MR1calcpot_block2(const ParticleSystem& system,
                                        double r_cut,
                                        std::span<double> potentials) {
  if (!system_)
    throw std::logic_error("MR1calcpot_block2: call MR1init first");
  if (!pass_)
    throw std::logic_error("MR1calcpot_block2: call MR1SetTable first");
  system_->load_particles(system, r_cut);
  return system_->run_potential_pass(*pass_, potentials);
}

void MR1Library::MR1free() {
  system_.reset();
  pass_.reset();
}

}  // namespace mdm::mdgrape2
