#pragma once

/// \file system.hpp
/// The full MDGRAPE-2 subsystem (sec. 3.5, fig. 8): clusters of two boards
/// each. The paper's current machine has 16 clusters (64 chips, 1 Tflops);
/// the future machine 1,536 chips. Each board receives the full cell-sorted
/// particle image (broadcast over the PCI bus in the real machine) and a
/// slice of the i-particles.

#include <memory>
#include <vector>

#include "core/particle_system.hpp"
#include "mdgrape2/board.hpp"
#include "util/thread_pool.hpp"

namespace mdm::mdgrape2 {

struct SystemConfig {
  int clusters = 16;           ///< paper's current machine
  int boards_per_cluster = 2;
  double cell_margin = 1.0;    ///< cell side = cell_margin * r_cut ("a little
                               ///  larger than r_cut" uses > 1)
};

/// Result of one pass over all boards.
struct PassStats {
  std::uint64_t pair_operations = 0;
  /// Pairs within r_cut (the physically useful subset; eq. 6's inflation
  /// is pair_operations / useful_pairs ~ 27 / (4 pi / 3) ~ 6.4 plus the
  /// missing Newton's-third-law factor of 2).
  std::uint64_t useful_pairs = 0;
  /// Pair operations of the busiest board (load-balance indicator).
  std::uint64_t max_board_pairs = 0;
};

class Mdgrape2System {
 public:
  explicit Mdgrape2System(SystemConfig config = {});

  int board_count() const { return static_cast<int>(boards_.size()); }
  int chip_count() const { return board_count() * Board::kChips; }
  const SystemConfig& config() const { return config_; }

  /// Permanently fail board `b` (fault injection / hardware loss): its
  /// i-slice is redistributed across the surviving boards on subsequent
  /// passes, so the system degrades gracefully instead of dying. Logged
  /// and counted ("mdgrape2.board_failures"); throws std::out_of_range on a
  /// bad index. Failing the last alive board makes the next pass throw.
  void fail_board(int b);
  bool board_failed(int b) const;
  int alive_board_count() const;

  /// Upload positions/types: builds the cell decomposition (cell side >=
  /// r_cut), sorts particles by cell and broadcasts the image to every
  /// board. Must be called whenever positions change.
  void load_particles(const ParticleSystem& system, double r_cut);

  /// Run one force pass; adds b g(a r^2) r_vec sums into `forces` (indexed
  /// like the ParticleSystem). The i-range is partitioned across boards.
  PassStats run_force_pass(const ForcePass& pass, std::span<Vec3> forces);

  /// Run one potential pass; adds per-particle scalars into `potentials`.
  PassStats run_potential_pass(const ForcePass& pass,
                               std::span<double> potentials);

  /// Number of particles currently loaded.
  std::size_t loaded_particles() const { return stored_.size(); }
  /// Cells per side of the current decomposition.
  int cells_per_side() const { return cells_ ? cells_->cells_per_side() : 0; }

  /// Cumulative pair operations over all boards since the last reset.
  std::uint64_t pair_operations() const;
  std::uint64_t useful_pair_operations() const;
  void reset_counters();

  /// Run passes with the boards fanned out over a thread pool (nullptr =
  /// serial). Boards own disjoint contiguous i-slices and are fully
  /// self-contained, so the parallel pass is bit-identical to the serial
  /// one at any pool size.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  SystemConfig config_;
  std::vector<std::unique_ptr<Board>> boards_;
  std::unique_ptr<CellList> cells_;
  double box_ = 0.0;
  /// Cell-sorted particle image plus the original index of each slot.
  std::vector<StoredParticle> stored_;
  std::vector<std::uint32_t> original_index_;
  std::vector<int> cell_of_slot_;
  ThreadPool* pool_ = nullptr;
  /// Per-pass scratch, reused across steps (no steady-state allocations).
  std::vector<Vec3> slot_forces_;
  std::vector<double> slot_potentials_;
  std::vector<std::uint64_t> board_pairs_;
  std::vector<std::uint64_t> board_useful_;
  std::vector<std::size_t> alive_boards_;
};

}  // namespace mdm::mdgrape2
