#include "mdgrape2/pipeline.hpp"

#include <cmath>
#include <stdexcept>

namespace mdm::mdgrape2 {

namespace {
constexpr std::uint64_t kCoordMask = (std::uint64_t{1} << kCoordBits) - 1;

std::uint64_t quantize_coord(double v, double box) {
  const double frac = v / box;
  auto u = static_cast<std::int64_t>(
      std::nearbyint(frac * static_cast<double>(std::uint64_t{1} << kCoordBits)));
  return static_cast<std::uint64_t>(u) & kCoordMask;
}

double signed_delta(std::uint64_t a, std::uint64_t b, double box) {
  // Two's-complement interpretation of the modular difference gives the
  // minimum image directly.
  std::uint64_t d = (a - b) & kCoordMask;
  std::int64_t s = static_cast<std::int64_t>(d);
  if (d >= (std::uint64_t{1} << (kCoordBits - 1)))
    s = static_cast<std::int64_t>(d) - (std::int64_t{1} << kCoordBits);
  return static_cast<double>(s) * box /
         static_cast<double>(std::uint64_t{1} << kCoordBits);
}

}  // namespace

CyclicCoord to_cyclic(const Vec3& r, double box) {
  return {quantize_coord(r.x, box), quantize_coord(r.y, box),
          quantize_coord(r.z, box)};
}

Vec3 cyclic_delta(const CyclicCoord& a, const CyclicCoord& b, double box) {
  return {signed_delta(a.x, b.x, box), signed_delta(a.y, b.y, box),
          signed_delta(a.z, b.z, box)};
}

PairCount Pipeline::accumulate_force(const StoredParticle& i,
                                     std::span<const StoredParticle> j_stream,
                                     double box, Vec3& force) const {
  if (!pass_) throw std::logic_error("Pipeline: no pass loaded");
  const auto& coef = pass_->coefficients;
  const float x_max = static_cast<float>(pass_->table.config().x_max);
  PairCount count;
  double fx = 0.0, fy = 0.0, fz = 0.0;
  for (const auto& j : j_stream) {
    const Vec3 d = cyclic_delta(i.position, j.position, box);
    // Single-precision datapath from here to the multiply by r_vec.
    const float dx = static_cast<float>(d.x);
    const float dy = static_cast<float>(d.y);
    const float dz = static_cast<float>(d.z);
    const float r2 = dx * dx + dy * dy + dz * dz;
    const float a = static_cast<float>(coef.a[i.type][j.type]);
    const float x = a * r2;
    if (x > 0.0f && x < x_max) ++count.useful;
    const float g = pass_->table.evaluate(x);
    float bg = static_cast<float>(coef.b[i.type][j.type]) * g;
    if (pass_->use_particle_charge) bg *= j.charge;
    // Accumulation in double (the chip's force accumulator).
    fx += static_cast<double>(bg * dx);
    fy += static_cast<double>(bg * dy);
    fz += static_cast<double>(bg * dz);
  }
  count.evaluated = j_stream.size();
  force += Vec3{fx, fy, fz};
  return count;
}

PairCount Pipeline::accumulate_potential(
    const StoredParticle& i, std::span<const StoredParticle> j_stream,
    double box, double& potential) const {
  if (!pass_) throw std::logic_error("Pipeline: no pass loaded");
  const auto& coef = pass_->coefficients;
  const float x_max = static_cast<float>(pass_->table.config().x_max);
  PairCount count;
  double acc = 0.0;
  for (const auto& j : j_stream) {
    const Vec3 d = cyclic_delta(i.position, j.position, box);
    const float dx = static_cast<float>(d.x);
    const float dy = static_cast<float>(d.y);
    const float dz = static_cast<float>(d.z);
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 == 0.0f) continue;  // self-interaction guard in potential mode
    const float a = static_cast<float>(coef.a[i.type][j.type]);
    const float x = a * r2;
    if (x < x_max) ++count.useful;
    const float g = pass_->table.evaluate(x);
    float bg = static_cast<float>(coef.b[i.type][j.type]) * g;
    if (pass_->use_particle_charge) bg *= j.charge;
    acc += static_cast<double>(bg);
  }
  count.evaluated = j_stream.size();
  potential += acc;
  return count;
}

}  // namespace mdm::mdgrape2
