#include "mdgrape2/function_evaluator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mdm::mdgrape2 {
namespace {

/// Solve a small dense linear system in place (partial pivoting); used to
/// convert Chebyshev-node samples into monomial coefficients.
void solve_dense(std::vector<double>& a, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int row = col + 1; row < n; ++row)
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col]))
        pivot = row;
    for (int k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col * n + col];
    if (diag == 0.0) throw std::runtime_error("singular interpolation system");
    for (int row = col + 1; row < n; ++row) {
      const double f = a[row * n + col] / diag;
      for (int k = col; k < n; ++k) a[row * n + k] -= f * a[col * n + k];
      b[row] -= f * b[col];
    }
  }
  for (int row = n - 1; row >= 0; --row) {
    double s = b[row];
    for (int k = row + 1; k < n; ++k) s -= a[row * n + k] * b[k];
    b[row] = s / a[row * n + row];
  }
}

}  // namespace

SegmentedTable SegmentedTable::fit(const std::function<double(double)>& g,
                                   const TableConfig& config) {
  if (!config.valid())
    throw std::invalid_argument("SegmentedTable: invalid config");

  SegmentedTable table;
  table.config_ = config;
  table.exp_min_ = std::ilogb(config.x_min);
  const int exp_max = std::ilogb(config.x_max) +
                      (std::ldexp(1.0, std::ilogb(config.x_max)) <
                               config.x_max
                           ? 1
                           : 0);
  table.exp_count_ = std::max(1, exp_max - table.exp_min_);
  table.sub_per_exp_ = config.segments / table.exp_count_;
  if (table.sub_per_exp_ < 1)
    throw std::invalid_argument(
        "SegmentedTable: domain spans more binades than segments");
  table.config_.segments = table.exp_count_ * table.sub_per_exp_;
  // The represented domain starts at the binade floor of x_min.
  table.config_.x_min = std::ldexp(1.0, table.exp_min_);

  constexpr int kCoef = kInterpolationOrder + 1;
  table.coefficients_.assign(
      static_cast<std::size_t>(table.config_.segments) * kCoef, 0.0f);

  for (int s = 0; s < table.config_.segments; ++s) {
    double lo, hi;
    table.segment_bounds(s, lo, hi);
    // Degree-4 Chebyshev interpolation nodes on [lo, hi].
    std::vector<double> matrix(kCoef * kCoef);
    std::vector<double> rhs(kCoef);
    for (int node = 0; node < kCoef; ++node) {
      const double t = std::cos(std::numbers::pi *
                                (2.0 * node + 1.0) / (2.0 * kCoef));
      const double x = 0.5 * (lo + hi) + 0.5 * (hi - lo) * t;
      double power = 1.0;
      for (int k = 0; k < kCoef; ++k) {
        matrix[node * kCoef + k] = power;
        power *= t;
      }
      rhs[node] = g(x);
    }
    solve_dense(matrix, rhs, kCoef);
    for (int k = 0; k < kCoef; ++k)
      table.coefficients_[static_cast<std::size_t>(s) * kCoef + k] =
          static_cast<float>(rhs[k]);
  }
  return table;
}

int SegmentedTable::segment_of(double x) const {
  int e = std::ilogb(x);
  e = std::min(std::max(e, exp_min_), exp_min_ + exp_count_ - 1);
  const double mant = x / std::ldexp(1.0, e);  // in [1, 2)
  int sub = static_cast<int>((mant - 1.0) * sub_per_exp_);
  sub = std::min(std::max(sub, 0), sub_per_exp_ - 1);
  return (e - exp_min_) * sub_per_exp_ + sub;
}

void SegmentedTable::segment_bounds(int s, double& lo, double& hi) const {
  const int e = exp_min_ + s / sub_per_exp_;
  const int sub = s % sub_per_exp_;
  const double base = std::ldexp(1.0, e);
  lo = base * (1.0 + static_cast<double>(sub) / sub_per_exp_);
  hi = base * (1.0 + static_cast<double>(sub + 1) / sub_per_exp_);
}

float SegmentedTable::evaluate(float x) const {
  if (empty()) throw std::logic_error("SegmentedTable: table not loaded");
  if (!(x > 0.0f)) return 0.0f;                       // self-interaction guard
  if (x >= static_cast<float>(config_.x_max)) return 0.0f;  // beyond cutoff
  double xd = x;
  if (xd < config_.x_min) xd = config_.x_min;         // overlap clamp
  const int s = segment_of(xd);
  double lo, hi;
  segment_bounds(s, lo, hi);
  // Rescale to t in [-1, 1]; the subtraction and Horner run in single
  // precision like the hardware datapath.
  const float t = static_cast<float>((xd - 0.5 * (lo + hi)) / (0.5 * (hi - lo)));
  const float* c =
      coefficients_.data() + static_cast<std::size_t>(s) * (kInterpolationOrder + 1);
  float acc = c[kInterpolationOrder];
  for (int k = kInterpolationOrder - 1; k >= 0; --k) acc = acc * t + c[k];
  return acc;
}

double SegmentedTable::evaluate_exact(double x) const {
  if (empty()) throw std::logic_error("SegmentedTable: table not loaded");
  if (!(x > 0.0)) return 0.0;
  if (x >= config_.x_max) return 0.0;
  if (x < config_.x_min) x = config_.x_min;
  const int s = segment_of(x);
  double lo, hi;
  segment_bounds(s, lo, hi);
  const double t = (x - 0.5 * (lo + hi)) / (0.5 * (hi - lo));
  const float* c =
      coefficients_.data() + static_cast<std::size_t>(s) * (kInterpolationOrder + 1);
  double acc = c[kInterpolationOrder];
  for (int k = kInterpolationOrder - 1; k >= 0; --k) acc = acc * t + c[k];
  return acc;
}

}  // namespace mdm::mdgrape2
