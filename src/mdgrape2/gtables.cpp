#include "mdgrape2/gtables.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/units.hpp"

namespace mdm::mdgrape2 {
namespace {

const double kSqrtPi = std::sqrt(std::numbers::pi);

void require_species(int count) {
  if (count < 1 || count > kMaxAtomTypes)
    throw std::invalid_argument(
        "MDGRAPE-2 supports at most 32 atom types (sec. 3.5.3)");
}

}  // namespace

double g_coulomb_real_force(double x) {
  return 2.0 * std::exp(-x) / (kSqrtPi * x) +
         std::erfc(std::sqrt(x)) / (x * std::sqrt(x));
}

double g_coulomb_real_potential(double x) {
  return std::erfc(std::sqrt(x)) / std::sqrt(x);
}

double g_lennard_jones_force(double x) {
  const double x2 = x * x;
  const double x4 = x2 * x2;
  return 2.0 / (x4 * x2 * x) - 1.0 / x4;
}

double g_born_mayer_force(double x) {
  const double r = std::sqrt(x);
  return std::exp(-r) / r;
}

double g_born_mayer_potential(double x) { return std::exp(-std::sqrt(x)); }

double g_r6_force(double x) {
  const double x2 = x * x;
  return 1.0 / (x2 * x2);
}

double g_r6_potential(double x) { return 1.0 / (x * x * x); }

double g_r8_force(double x) {
  const double x2 = x * x;
  return 1.0 / (x2 * x2 * x);
}

double g_r8_potential(double x) {
  const double x2 = x * x;
  return 1.0 / (x2 * x2);
}

ForcePass make_coulomb_real_pass(double beta, double r_cut,
                                 std::span<const double> charges,
                                 double r_min) {
  require_species(static_cast<int>(charges.size()));
  ForcePass pass;
  TableConfig cfg;
  cfg.x_min = beta * beta * r_min * r_min;
  cfg.x_max = beta * beta * r_cut * r_cut;
  pass.table = SegmentedTable::fit(g_coulomb_real_force, cfg);
  pass.coefficients.species_count = static_cast<int>(charges.size());
  const double b3 = beta * beta * beta;
  for (std::size_t i = 0; i < charges.size(); ++i) {
    for (std::size_t j = 0; j < charges.size(); ++j) {
      pass.coefficients.a[i][j] = beta * beta;
      pass.coefficients.b[i][j] =
          units::kCoulomb * charges[i] * charges[j] * b3;
    }
  }
  return pass;
}

ForcePass make_coulomb_real_potential_pass(double beta, double r_cut,
                                           std::span<const double> charges,
                                           double r_min) {
  require_species(static_cast<int>(charges.size()));
  ForcePass pass;
  pass.potential_mode = true;
  TableConfig cfg;
  cfg.x_min = beta * beta * r_min * r_min;
  cfg.x_max = beta * beta * r_cut * r_cut;
  pass.table = SegmentedTable::fit(g_coulomb_real_potential, cfg);
  pass.coefficients.species_count = static_cast<int>(charges.size());
  for (std::size_t i = 0; i < charges.size(); ++i) {
    for (std::size_t j = 0; j < charges.size(); ++j) {
      pass.coefficients.a[i][j] = beta * beta;
      pass.coefficients.b[i][j] =
          units::kCoulomb * charges[i] * charges[j] * beta;
    }
  }
  return pass;
}

ForcePass make_lennard_jones_pass(const LennardJonesParameters& lj,
                                  double r_cut, double r_min) {
  require_species(lj.species_count);
  ForcePass pass;
  pass.coefficients.species_count = lj.species_count;
  // One shared shape; a_ij = sigma^-2 rescales per pair, so the table domain
  // must cover x over all pairs: x in [r_min^2/max(sigma)^2, r_cut^2/min(sigma)^2].
  double sigma_min = 1e300, sigma_max = 0.0;
  for (int i = 0; i < lj.species_count; ++i) {
    for (int j = 0; j < lj.species_count; ++j) {
      sigma_min = std::min(sigma_min, lj.sigma[i][j]);
      sigma_max = std::max(sigma_max, lj.sigma[i][j]);
      const double s2 = lj.sigma[i][j] * lj.sigma[i][j];
      pass.coefficients.a[i][j] = 1.0 / s2;
      pass.coefficients.b[i][j] = 24.0 * lj.epsilon[i][j] / s2;
    }
  }
  TableConfig cfg;
  cfg.x_min = r_min * r_min / (sigma_max * sigma_max);
  cfg.x_max = r_cut * r_cut / (sigma_min * sigma_min);
  pass.table = SegmentedTable::fit(g_lennard_jones_force, cfg);
  return pass;
}

std::vector<ForcePass> make_tosi_fumi_passes(const TosiFumiParameters& tf,
                                             double r_cut, double r_min) {
  require_species(tf.species_count);
  std::vector<ForcePass> passes(3);

  // Born-Mayer: a = rho^-2, b = B_ij / rho^2.
  {
    ForcePass& p = passes[0];
    p.coefficients.species_count = tf.species_count;
    TableConfig cfg;
    cfg.x_min = r_min * r_min / (tf.rho * tf.rho);
    cfg.x_max = r_cut * r_cut / (tf.rho * tf.rho);
    p.table = SegmentedTable::fit(g_born_mayer_force, cfg);
    for (int i = 0; i < tf.species_count; ++i) {
      for (int j = 0; j < tf.species_count; ++j) {
        p.coefficients.a[i][j] = 1.0 / (tf.rho * tf.rho);
        p.coefficients.b[i][j] =
            tf.born_prefactor[i][j] / (tf.rho * tf.rho);
      }
    }
  }
  // Dispersion terms: a = 1, b = -6c / -8d.
  TableConfig cfg;
  cfg.x_min = r_min * r_min;
  cfg.x_max = r_cut * r_cut;
  passes[1].table = SegmentedTable::fit(g_r6_force, cfg);
  passes[2].table = SegmentedTable::fit(g_r8_force, cfg);
  for (int pass = 1; pass <= 2; ++pass)
    passes[pass].coefficients.species_count = tf.species_count;
  for (int i = 0; i < tf.species_count; ++i) {
    for (int j = 0; j < tf.species_count; ++j) {
      passes[1].coefficients.a[i][j] = 1.0;
      passes[1].coefficients.b[i][j] = -6.0 * tf.c6[i][j];
      passes[2].coefficients.a[i][j] = 1.0;
      passes[2].coefficients.b[i][j] = -8.0 * tf.d8[i][j];
    }
  }
  return passes;
}

std::vector<ForcePass> make_tosi_fumi_potential_passes(
    const TosiFumiParameters& tf, double r_cut, double r_min) {
  require_species(tf.species_count);
  std::vector<ForcePass> passes(3);
  for (auto& p : passes) {
    p.potential_mode = true;
    p.coefficients.species_count = tf.species_count;
  }
  {
    TableConfig cfg;
    cfg.x_min = r_min * r_min / (tf.rho * tf.rho);
    cfg.x_max = r_cut * r_cut / (tf.rho * tf.rho);
    passes[0].table = SegmentedTable::fit(g_born_mayer_potential, cfg);
  }
  TableConfig cfg;
  cfg.x_min = r_min * r_min;
  cfg.x_max = r_cut * r_cut;
  passes[1].table = SegmentedTable::fit(g_r6_potential, cfg);
  passes[2].table = SegmentedTable::fit(g_r8_potential, cfg);
  for (int i = 0; i < tf.species_count; ++i) {
    for (int j = 0; j < tf.species_count; ++j) {
      passes[0].coefficients.a[i][j] = 1.0 / (tf.rho * tf.rho);
      passes[0].coefficients.b[i][j] = tf.born_prefactor[i][j];
      passes[1].coefficients.a[i][j] = 1.0;
      passes[1].coefficients.b[i][j] = -tf.c6[i][j];
      passes[2].coefficients.a[i][j] = 1.0;
      passes[2].coefficients.b[i][j] = -tf.d8[i][j];
    }
  }
  return passes;
}

}  // namespace mdm::mdgrape2
