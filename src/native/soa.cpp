#include "native/soa.hpp"

#include <algorithm>

namespace mdm::native {
namespace {

/// Shared body: wrap and scatter `positions` into the coordinate streams.
template <typename ChargeOf, typename TypeOf>
void fill(SoaParticles& soa, double box, std::span<const Vec3> positions,
          ChargeOf&& charge_of, TypeOf&& type_of) {
  const std::size_t n = positions.size();
  soa.box = box;
  soa.pos.resize(n);
  soa.x.resize(n);
  soa.y.resize(n);
  soa.z.resize(n);
  soa.q.resize(n);
  soa.type.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Wrapping here lets the pair kernel use the branch-blend minimum image
    // (|dx| < box guaranteed) instead of a libm floor/nearbyint call.
    const Vec3 w{wrap_coordinate(positions[i].x, box),
                 wrap_coordinate(positions[i].y, box),
                 wrap_coordinate(positions[i].z, box)};
    soa.pos[i] = w;
    soa.x[i] = w.x;
    soa.y[i] = w.y;
    soa.z[i] = w.z;
    soa.q[i] = charge_of(i);
    soa.type[i] = static_cast<std::int32_t>(type_of(i));
  }
}

}  // namespace

void SoaParticles::sync(const ParticleSystem& system) {
  species_count = system.species_count();
  fill(*this, system.box(), system.positions(),
       [&](std::size_t i) { return system.charge(i); },
       [&](std::size_t i) { return system.type(i); });
}

void SoaParticles::sync(double box_side, std::span<const Vec3> positions,
                        std::span<const int> types,
                        std::span<const double> charge_of_type) {
  species_count = static_cast<int>(charge_of_type.size());
  fill(*this, box_side, positions,
       [&](std::size_t i) { return charge_of_type[types[i]]; },
       [&](std::size_t i) { return types[i]; });
}

}  // namespace mdm::native
