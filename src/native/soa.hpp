#pragma once

/// \file soa.hpp
/// Structure-of-arrays particle mirror for the native SIMD backend
/// (DESIGN.md §11). `ParticleSystem` stores positions as an array of Vec3;
/// the vectorized kernels want each coordinate, the charge and the species
/// type as separate contiguous streams so inner loops compile to unit-stride
/// vector loads. The mirror is synced from the system once per force
/// evaluation (O(N), far below the pair sweep) and keeps a wrapped Vec3 copy
/// for the CellList, whose binning expects Vec3 spans.

#include <cstdint>
#include <span>
#include <vector>

#include "core/particle_system.hpp"
#include "util/vec3.hpp"

namespace mdm::native {

struct SoaParticles {
  double box = 0.0;
  int species_count = 0;
  std::vector<Vec3> pos;  ///< wrapped into [0, box), for CellList binning
  std::vector<double> x, y, z;  ///< wrapped coordinates, one stream each
  std::vector<double> q;        ///< per-particle charge, e
  std::vector<std::int32_t> type;

  std::size_t size() const { return x.size(); }

  /// Mirror a full ParticleSystem (positions, charges, types).
  void sync(const ParticleSystem& system);

  /// Mirror raw spans (the parallel ranks assemble owned + halo particles
  /// without a ParticleSystem round trip). `charge_of_type[t]` supplies the
  /// per-species charge.
  void sync(double box_side, std::span<const Vec3> positions,
            std::span<const int> types,
            std::span<const double> charge_of_type);
};

}  // namespace mdm::native
