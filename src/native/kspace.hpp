#pragma once

/// \file kspace.hpp
/// Vectorized wavenumber-space (DFT/IDFT) kernel of the native backend
/// (DESIGN.md §11), computing the same half-space Ewald reciprocal sum as
/// the reference solver (eqs. 9-11) and the WINE-2 pipelines.
///
/// The reference path builds a per-particle phase table and walks the
/// k-vector list per particle — per-k lookups through that table are
/// strided and do not vectorize. Here the loops are inverted and blocked:
/// particles are processed in blocks of kBlock, with per-axis cos/sin
/// recurrence tables laid out TRANSPOSED (`table[n * kBlock + p]`), so the
/// inner loop over the block at a fixed k reads six unit-stride streams and
/// compiles to pure vector arithmetic — no gathers, no trig (only 6 libm
/// sin/cos calls per particle per step seed the recurrences, identical to
/// the reference's table build). Charges are folded into the x-axis table,
/// which removes a multiply from both the DFT and IDFT inner loops.
///
/// The DFT accumulates each k's block sum through a store buffer plus a
/// scalar summation pass (strict-FP reductions do not auto-vectorize); the
/// IDFT writes per-particle force streams, which need no reduction at all.

#include <cstdint>
#include <span>
#include <vector>

#include "core/force_field.hpp"
#include "ewald/ewald.hpp"
#include "ewald/kvectors.hpp"
#include "native/soa.hpp"

namespace mdm::native {

class NativeKspace {
 public:
  /// Particles per block: large enough to amortize the recurrence build
  /// over the k loop, small enough that the six phase tables stay in L2.
  static constexpr std::size_t kBlock = 256;

  /// Mirrors the k-vector set (half-space convention) as SoA streams.
  explicit NativeKspace(const KVectorTable& table);

  /// DFT (eqs. 9-10): structure factors of the given particles, assigned
  /// (not accumulated) into `out`. Parallel wavenumber ranks call this on
  /// their local slice and allreduce the result.
  void dft(const SoaParticles& soa, StructureFactors& out);

  /// IDFT (eq. 11): adds reciprocal-space forces for the given particles
  /// from (already reduced) structure factors.
  void idft(const SoaParticles& soa, const StructureFactors& sf,
            std::span<Vec3> forces);

  /// Reciprocal energy and virial from structure factors (evaluated on one
  /// rank in the parallel app, exactly like the WINE-2 library flow).
  ForceResult energy_virial(const StructureFactors& sf) const;

  std::size_t k_count() const { return a_.size(); }

 private:
  /// Build the transposed per-axis recurrence tables for particles
  /// [p0, p0 + count); the x-axis tables carry the particle charge.
  void build_block(const SoaParticles& soa, std::size_t p0,
                   std::size_t count);

  double box_ = 0.0;
  double alpha_ = 0.0;
  int n_max_ = 0;
  /// K-vector streams: |n| per axis (table row), sign of nx/ny (nz >= 0 by
  /// the half-space convention), the signed integer triple as doubles (for
  /// the force direction), and the Gaussian weight a_n.
  std::vector<std::int32_t> anx_, any_, anz_;
  std::vector<double> sgx_, sgy_;
  std::vector<double> nxd_, nyd_, nzd_;
  std::vector<double> a_;

  /// Transposed recurrence tables, [axis row n * kBlock + p].
  std::vector<double> tcx_, tsx_, tcy_, tsy_, tcz_, tsz_;
  /// Per-particle seed phases cos/sin(2 pi r / L) of the current block.
  std::vector<double> c1_, s1_;
  /// Store buffers: DFT per-k block terms, IDFT per-particle force streams.
  std::vector<double> bc_, bs_, bfx_, bfy_, bfz_;
};

}  // namespace mdm::native
