#include "native/real_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "core/fastmath.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm::native {
namespace {

const double kTwoOverSqrtPi = 2.0 / std::sqrt(std::numbers::pi);
constexpr std::size_t kNoSkip = std::numeric_limits<std::size_t>::max();

}  // namespace

NativeRealKernel::NativeRealKernel(const Config& config)
    : cfg_(config), cells_(config.box, config.r_cut) {
  if (!(cfg_.box > 0.0) || !(cfg_.beta > 0.0) || !(cfg_.r_cut > 0.0))
    throw std::invalid_argument("NativeRealKernel: bad parameters");
  if (cfg_.r_cut > 0.5 * cfg_.box + 1e-12)
    throw std::invalid_argument("NativeRealKernel: r_cut must be <= L/2");
  cutoff2_ = cfg_.r_cut * cfg_.r_cut;
  if (cfg_.include_tosi_fumi) {
    if (cfg_.tosi_fumi.species_count > TosiFumiParameters::kMaxSpecies)
      throw std::invalid_argument("NativeRealKernel: too many species");
    inv_rho_ = 1.0 / cfg_.tosi_fumi.rho;
    if (cfg_.tf_shift_energy)
      for (int i = 0; i < cfg_.tosi_fumi.species_count; ++i)
        for (int j = 0; j < cfg_.tosi_fumi.species_count; ++j)
          shift_[i][j] = cfg_.tosi_fumi.pair_energy(i, j, cfg_.r_cut);
  }
}

/// The vectorizable inner loop: one i particle against the contiguous slot
/// range [jb, je). Two passes — a straight-line compute pass with only
/// unit-stride loads/stores (auto-vectorizes), then a scalar sum of the
/// 6-lane store buffer (strict-FP reductions do not vectorize; this keeps
/// the summation order explicit and deterministic).
template <bool kNewton>
void NativeRealKernel::pair_range(double xi, double yi, double zi,
                                  double qi_ke, const double* cb,
                                  const double* c6r, const double* d8r,
                                  const double* shr, std::size_t jb,
                                  std::size_t je, std::size_t skip,
                                  double* jfx, double* jfy, double* jfz,
                                  double* tmp, Acc& acc) const {
  const double box = cfg_.box;
  const double half = 0.5 * box;
  const double cutoff2 = cutoff2_;
  const double beta = cfg_.beta;
  const double inv_rho = inv_rho_;
  const std::size_t len = je - jb;
  double* t_fx = tmp;
  double* t_fy = tmp + tmp_stride_;
  double* t_fz = tmp + 2 * tmp_stride_;
  double* t_pot = tmp + 3 * tmp_stride_;
  double* t_vir = tmp + 4 * tmp_stride_;
  double* t_cnt = tmp + 5 * tmp_stride_;

  for (std::size_t k = 0; k < len; ++k) {
    const std::size_t j = jb + k;
    // Minimum image by compare-blend: coordinates are wrapped into
    // [0, box), so one correction per axis suffices.
    double dx = xi - xs_[j];
    double dy = yi - ys_[j];
    double dz = zi - zs_[j];
    dx += dx < -half ? box : 0.0;
    dx -= dx > half ? box : 0.0;
    dy += dy < -half ? box : 0.0;
    dy -= dy > half ? box : 0.0;
    dz += dz < -half ? box : 0.0;
    dz -= dz > half ? box : 0.0;
    const double r2 = dx * dx + dy * dy + dz * dz;
    const bool in = (r2 < cutoff2) & (j != skip);
    // Masked-out lanes (incl. the self slot at r = 0) evaluate at r = 1 so
    // every intermediate stays finite; their results blend to zero below.
    const double r2g = in ? r2 : 1.0;
    const double r = std::sqrt(r2g);
    const double inv_r = 1.0 / r;
    const double inv_r2 = inv_r * inv_r;
    // Ewald real space, eq. 2.
    const double bx = beta * r;
    const double eg = fastmath::fast_exp(-bx * bx);
    const double erfc = fastmath::erfc_from_exp(bx, eg);
    const double qq = qi_ke * qs_[j];
    const double pot_c = qq * erfc * inv_r;
    double s = (pot_c + qq * kTwoOverSqrtPi * bx * eg * inv_r) * inv_r2;
    // Tosi-Fumi short range, eq. 15 (coefficient rows are all-zero when the
    // kernel is Coulomb-only, so these lines contribute exactly 0).
    const double be = cb[j] * fastmath::fast_exp(-r * inv_rho);
    const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
    const double inv_r8 = inv_r6 * inv_r2;
    s += be * inv_rho * inv_r - 6.0 * c6r[j] * inv_r8 -
         8.0 * d8r[j] * inv_r8 * inv_r2;
    double pot = pot_c + be - c6r[j] * inv_r6 - d8r[j] * inv_r8 - shr[j];
    s = in ? s : 0.0;
    pot = in ? pot : 0.0;
    const double fx = s * dx;
    const double fy = s * dy;
    const double fz = s * dz;
    if constexpr (kNewton) {
      jfx[j] -= fx;
      jfy[j] -= fy;
      jfz[j] -= fz;
    }
    t_fx[k] = fx;
    t_fy[k] = fy;
    t_fz[k] = fz;
    t_pot[k] = pot;
    t_vir[k] = s * r2;
    t_cnt[k] = in ? 1.0 : 0.0;
  }
  for (std::size_t k = 0; k < len; ++k) {
    acc.fx += t_fx[k];
    acc.fy += t_fy[k];
    acc.fz += t_fz[k];
    acc.pot += t_pot[k];
    acc.vir += t_vir[k];
    acc.pairs += t_cnt[k];
  }
}

void NativeRealKernel::prepare(const SoaParticles& soa) {
  const std::size_t n = soa.size();
  if (std::abs(soa.box - cfg_.box) > 1e-12)
    throw std::invalid_argument("NativeRealKernel: box mismatch");
  cells_.build_auto(soa.pos, cfg_.r_cut);
  n2_ = cells_.use_n2_fallback(cfg_.r_cut);
  xs_.resize(n);
  ys_.resize(n);
  zs_.resize(n);
  qs_.resize(n);
  ts_.resize(n);
  if (n2_) {
    // Slots are particle ids in the fallback traversal.
    std::copy(soa.x.begin(), soa.x.end(), xs_.begin());
    std::copy(soa.y.begin(), soa.y.end(), ys_.begin());
    std::copy(soa.z.begin(), soa.z.end(), zs_.begin());
    std::copy(soa.q.begin(), soa.q.end(), qs_.begin());
    std::copy(soa.type.begin(), soa.type.end(), ts_.begin());
  } else {
    const auto order = cells_.order();
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t id = order[s];
      xs_[s] = soa.x[id];
      ys_[s] = soa.y[id];
      zs_[s] = soa.z[id];
      qs_[s] = soa.q[id];
      ts_[s] = soa.type[id];
    }
  }
  // Coefficient rows depend only on the slot->type mapping: rebuild them
  // when that mapping changed (or on first use), not every step. Keying on
  // the gathered type stream itself — not on the cell rebuild — matters in
  // the parallel app, where migration and halo churn can swap which species
  // a slot holds without triggering a rebuild (the N^2 fallback never
  // rebuilds, and the half-skin check can miss a same-size set change).
  const int rows = std::max(1, cfg_.include_tosi_fumi
                                   ? cfg_.tosi_fumi.species_count
                                   : soa.species_count);
  const bool types_changed = ts_ != coef_ts_;
  if (types_changed || !coef_valid_ || rows != coef_rows_) {
    coef_rows_ = rows;
    cb_.resize(static_cast<std::size_t>(rows) * n);
    cc6_.resize(static_cast<std::size_t>(rows) * n);
    cd8_.resize(static_cast<std::size_t>(rows) * n);
    csh_.resize(static_cast<std::size_t>(rows) * n);
    for (int ti = 0; ti < rows; ++ti) {
      const std::size_t base = static_cast<std::size_t>(ti) * n;
      for (std::size_t s = 0; s < n; ++s) {
        const int tj = ts_[s];
        const bool tf = cfg_.include_tosi_fumi;
        cb_[base + s] = tf ? cfg_.tosi_fumi.born_prefactor[ti][tj] : 0.0;
        cc6_[base + s] = tf ? cfg_.tosi_fumi.c6[ti][tj] : 0.0;
        cd8_[base + s] = tf ? cfg_.tosi_fumi.d8[ti][tj] : 0.0;
        csh_[base + s] = tf ? shift_[ti][tj] : 0.0;
      }
    }
    coef_ts_ = ts_;
    coef_valid_ = true;
  }
}

void NativeRealKernel::ensure_scratch(std::size_t n, int chunks) {
  // Store buffers must cover the longest j-range: a full row in N^2 mode,
  // one cell's occupancy otherwise.
  std::size_t stride = n;
  if (!n2_) {
    std::uint32_t max_occ = 1;
    for (int c = 0; c < cells_.cell_count(); ++c)
      max_occ = std::max(max_occ, cells_.cell_range(c).size());
    stride = max_occ;
  }
  if (n == scr_slots_ && chunks == scr_chunks_ && stride <= tmp_stride_)
    return;
  scr_slots_ = n;
  scr_chunks_ = chunks;
  tmp_stride_ = std::max(stride, tmp_stride_);
  const std::size_t cn = static_cast<std::size_t>(chunks) * n;
  jfx_.assign(cn, 0.0);
  jfy_.assign(cn, 0.0);
  jfz_.assign(cn, 0.0);
  dirty_.assign(static_cast<std::size_t>(chunks), {0, 0});
  tally_.assign(static_cast<std::size_t>(chunks), {});
  tmp_.resize(static_cast<std::size_t>(chunks) * 6 * tmp_stride_);
}

void NativeRealKernel::run_chunk(std::size_t k, int chunks, std::size_t n) {
  double* jfx = jfx_.data() + k * n;
  double* jfy = jfy_.data() + k * n;
  double* jfz = jfz_.data() + k * n;
  double* tmp = tmp_.data() + k * 6 * tmp_stride_;
  std::uint32_t lo = static_cast<std::uint32_t>(n);
  std::uint32_t hi = 0;
  ChunkTally tally;
  const auto touch = [&](std::uint32_t b, std::uint32_t e) {
    lo = std::min(lo, b);
    hi = std::max(hi, e);
  };
  const auto flush_i = [&](std::size_t slot, const Acc& acc) {
    jfx[slot] += acc.fx;
    jfy[slot] += acc.fy;
    jfz[slot] += acc.fz;
    touch(static_cast<std::uint32_t>(slot),
          static_cast<std::uint32_t>(slot) + 1);
    tally.pot += acc.pot;
    tally.vir += acc.vir;
    tally.pairs += acc.pairs;
  };

  if (n2_) {
    const std::size_t i_begin = k * n / static_cast<std::size_t>(chunks);
    const std::size_t i_end = (k + 1) * n / static_cast<std::size_t>(chunks);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      const std::size_t base = static_cast<std::size_t>(ts_[i]) * n;
      Acc acc;
      pair_range<true>(xs_[i], ys_[i], zs_[i], units::kCoulomb * qs_[i],
                       cb_.data() + base, cc6_.data() + base,
                       cd8_.data() + base, csh_.data() + base, i + 1, n,
                       kNoSkip, jfx, jfy, jfz, tmp, acc);
      touch(static_cast<std::uint32_t>(i + 1), static_cast<std::uint32_t>(n));
      flush_i(i, acc);
    }
  } else {
    const auto cell_count = static_cast<std::size_t>(cells_.cell_count());
    const int c_begin =
        static_cast<int>(k * cell_count / static_cast<std::size_t>(chunks));
    const int c_end = static_cast<int>((k + 1) * cell_count /
                                       static_cast<std::size_t>(chunks));
    const int m = cells_.cells_per_side();
    for (int c = c_begin; c < c_end; ++c) {
      const CellList::Range own = cells_.cell_range(c);
      if (own.size() == 0) continue;
      const int ix = c % m;
      const int iy = (c / m) % m;
      const int iz = c / (m * m);
      for (std::uint32_t a = own.begin; a < own.end; ++a) {
        const std::size_t base = static_cast<std::size_t>(ts_[a]) * n;
        const double* cb = cb_.data() + base;
        const double* c6r = cc6_.data() + base;
        const double* d8r = cd8_.data() + base;
        const double* shr = csh_.data() + base;
        const double qi_ke = units::kCoulomb * qs_[a];
        Acc acc;
        // Same-cell partners after i (each unordered pair once)...
        pair_range<true>(xs_[a], ys_[a], zs_[a], qi_ke, cb, c6r, d8r, shr,
                         a + 1, own.end, kNoSkip, jfx, jfy, jfz, tmp, acc);
        touch(a + 1, own.end);
        // ...then the 13 forward neighbour cells of the half stencil.
        for (const auto& off : CellList::kHalfStencil) {
          const int nc =
              cells_.cell_index(ix + off[0], iy + off[1], iz + off[2]);
          const CellList::Range other = cells_.cell_range(nc);
          if (other.size() == 0) continue;
          pair_range<true>(xs_[a], ys_[a], zs_[a], qi_ke, cb, c6r, d8r, shr,
                           other.begin, other.end, kNoSkip, jfx, jfy, jfz,
                           tmp, acc);
          touch(other.begin, other.end);
        }
        flush_i(a, acc);
      }
    }
  }
  dirty_[k] = {lo, lo < hi ? hi : lo};
  tally_[k] = tally;
}

ForceResult NativeRealKernel::sweep(const SoaParticles& soa,
                                    std::span<Vec3> forces,
                                    ThreadPool* pool) {
  MDM_TRACE_SCOPE("native.real_space");
  prepare(soa);
  const std::size_t n = soa.size();
  const std::size_t units =
      n2_ ? n : static_cast<std::size_t>(cells_.cell_count());
  const int chunks = static_cast<int>(
      std::min<std::size_t>(CellList::kPairChunks, units ? units : 1));
  ensure_scratch(n, chunks);

  if (pool && pool->size() > 1) {
    pool_for(
        *pool, static_cast<std::size_t>(chunks),
        [&](unsigned, std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) run_chunk(k, chunks, n);
        },
        /*min_parallel=*/0);
  } else {
    for (std::size_t k = 0; k < static_cast<std::size_t>(chunks); ++k)
      run_chunk(k, chunks, n);
  }

  // Chunk-ordered reduction into the caller's force array (slot -> particle
  // through the cell order); buffers are re-zeroed for the next sweep.
  const auto order = cells_.order();
  ForceResult result;
  double pairs = 0.0;
  for (int k = 0; k < chunks; ++k) {
    double* jfx = jfx_.data() + static_cast<std::size_t>(k) * n;
    double* jfy = jfy_.data() + static_cast<std::size_t>(k) * n;
    double* jfz = jfz_.data() + static_cast<std::size_t>(k) * n;
    const auto [lo, hi] = dirty_[static_cast<std::size_t>(k)];
    for (std::uint32_t s = lo; s < hi; ++s) {
      const std::uint32_t id = n2_ ? s : order[s];
      forces[id] += Vec3{jfx[s], jfy[s], jfz[s]};
      jfx[s] = 0.0;
      jfy[s] = 0.0;
      jfz[s] = 0.0;
    }
    result.potential += tally_[static_cast<std::size_t>(k)].pot;
    result.virial += tally_[static_cast<std::size_t>(k)].vir;
    pairs += tally_[static_cast<std::size_t>(k)].pairs;
  }
  last_pairs_ = static_cast<std::uint64_t>(pairs);
  static obs::Counter& pair_counter =
      obs::Registry::global().counter("native.real_pairs");
  pair_counter.add(last_pairs_);
  return result;
}

ForceResult NativeRealKernel::one_sided(const SoaParticles& soa,
                                        std::size_t n_i,
                                        std::span<Vec3> forces) {
  MDM_TRACE_SCOPE("native.real_space_one_sided");
  prepare(soa);
  const std::size_t n = soa.size();
  ensure_scratch(n, 1);
  double* tmp = tmp_.data();
  ForceResult result;
  double pairs = 0.0;

  const auto eval_i = [&](std::size_t slot, std::size_t id, auto&& ranges) {
    const std::size_t base = static_cast<std::size_t>(ts_[slot]) * n;
    Acc acc;
    ranges([&](std::uint32_t jb, std::uint32_t je) {
      pair_range<false>(xs_[slot], ys_[slot], zs_[slot],
                        units::kCoulomb * qs_[slot], cb_.data() + base,
                        cc6_.data() + base, cd8_.data() + base,
                        csh_.data() + base, jb, je, slot, nullptr, nullptr,
                        nullptr, tmp, acc);
    });
    forces[id] += Vec3{acc.fx, acc.fy, acc.fz};
    result.potential += acc.pot;
    result.virial += acc.vir;
    pairs += acc.pairs;
  };

  if (n2_) {
    for (std::size_t i = 0; i < std::min(n_i, n); ++i)
      eval_i(i, i, [&](auto&& range) {
        range(0, static_cast<std::uint32_t>(n));
      });
  } else {
    const auto order = cells_.order();
    for (int c = 0; c < cells_.cell_count(); ++c) {
      const CellList::Range own = cells_.cell_range(c);
      if (own.size() == 0) continue;
      const auto neigh = cells_.neighbors27(c);
      for (std::uint32_t a = own.begin; a < own.end; ++a) {
        const std::uint32_t id = order[a];
        if (id >= n_i) continue;  // halo particle: no force wanted
        eval_i(a, id, [&](auto&& range) {
          for (const int nc : neigh) {
            const CellList::Range r = cells_.cell_range(nc);
            if (r.size() != 0) range(r.begin, r.end);
          }
        });
      }
    }
  }
  last_pairs_ = static_cast<std::uint64_t>(pairs);
  static obs::Counter& pair_counter =
      obs::Registry::global().counter("native.real_pairs");
  pair_counter.add(last_pairs_);
  return result;
}

}  // namespace mdm::native
