#pragma once

/// \file native_force_field.hpp
/// The native SIMD backend as a ForceField (DESIGN.md §11): the same Ewald
/// physics as the emulated machine — real-space erfc sum, half-space
/// wavenumber DFT/IDFT, self and background corrections, optional fused
/// Tosi-Fumi short range — evaluated by the vectorized structure-of-arrays
/// kernels instead of the fixed-point hardware pipelines.
///
/// Accuracy contract: double precision throughout; agrees with the
/// reference solver to rounding error and therefore sits WELL inside the
/// emulator envelope (~1e-7 real-space, ~10^-4.5 wavenumber RMS relative)
/// enforced by the `backend` ctest label. Unlike the emulator path it needs
/// no box >= 3 r_cut guarantee (only the universal r_cut <= L/2) and it
/// reports the virial, so pressure comes free.

#include <span>

#include "core/force_field.hpp"
#include "core/particle_system.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/kvectors.hpp"
#include "native/kspace.hpp"
#include "native/real_kernel.hpp"
#include "native/soa.hpp"
#include "util/thread_pool.hpp"

namespace mdm::native {

struct NativeForceFieldConfig {
  EwaldParameters ewald;
  bool include_tosi_fumi = true;
  TosiFumiParameters tosi_fumi = TosiFumiParameters::nacl();
  /// Serve software-path convention (energy continuous at the cutoff);
  /// the emulator-parity configuration leaves it off.
  bool tf_shift_energy = false;
};

class NativeForceField final : public ForceField {
 public:
  NativeForceField(const NativeForceFieldConfig& config, double box);

  ForceResult add_forces(const ParticleSystem& system,
                         std::span<Vec3> forces) override;
  std::string name() const override { return "native-simd"; }
  /// The real-space kernel tracks displacement against lazily anchored
  /// positions (CellList::build_auto); a restore must reset that anchor.
  void invalidate_caches() override { real_.invalidate(); }

  /// Real-space sweep runs on the pool (bit-identical at any size); the
  /// k-space kernel is serial (a few percent of the step at machine alpha).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Components, exposed for the parity suite and bench_backend. Each adds
  /// into `forces`.
  ForceResult add_real_space(const ParticleSystem& system,
                             std::span<Vec3> forces);
  ForceResult add_wavenumber_space(const ParticleSystem& system,
                                   std::span<Vec3> forces);
  double self_energy(const ParticleSystem& system) const;
  double background_energy(const ParticleSystem& system) const;

  const EwaldParameters& parameters() const { return config_.ewald; }
  const KVectorTable& kvectors() const { return kvectors_; }

 private:
  NativeForceFieldConfig config_;
  double box_;
  double beta_;
  KVectorTable kvectors_;
  SoaParticles soa_;
  NativeRealKernel real_;
  NativeKspace kspace_;
  StructureFactors sf_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace mdm::native
