#include "native/native_force_field.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/step_breakdown.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm::native {
namespace {

NativeRealKernel::Config real_config(const NativeForceFieldConfig& config,
                                     double box) {
  NativeRealKernel::Config rc;
  rc.box = box;
  rc.beta = config.ewald.alpha / box;
  rc.r_cut = config.ewald.r_cut;
  rc.include_tosi_fumi = config.include_tosi_fumi;
  rc.tf_shift_energy = config.tf_shift_energy;
  rc.tosi_fumi = config.tosi_fumi;
  return rc;
}

}  // namespace

NativeForceField::NativeForceField(const NativeForceFieldConfig& config,
                                   double box)
    : config_(config),
      box_(box),
      beta_(config.ewald.alpha / box),
      kvectors_(box, config.ewald.alpha, config.ewald.lk_cut),
      real_(real_config(config, box)),
      kspace_(kvectors_) {}

ForceResult NativeForceField::add_real_space(const ParticleSystem& system,
                                             std::span<Vec3> forces) {
  obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
  soa_.sync(system);
  return real_.sweep(soa_, forces, pool_);
}

ForceResult NativeForceField::add_wavenumber_space(
    const ParticleSystem& system, std::span<Vec3> forces) {
  obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
  soa_.sync(system);
  kspace_.dft(soa_, sf_);
  kspace_.idft(soa_, sf_, forces);
  return kspace_.energy_virial(sf_);
}

double NativeForceField::self_energy(const ParticleSystem& system) const {
  return -units::kCoulomb * beta_ / std::sqrt(std::numbers::pi) *
         system.total_charge_squared();
}

double NativeForceField::background_energy(
    const ParticleSystem& system) const {
  const double q = system.total_charge();
  const double l3 = box_ * box_ * box_;
  return -units::kCoulomb * std::numbers::pi / (2.0 * beta_ * beta_ * l3) *
         q * q;
}

ForceResult NativeForceField::add_forces(const ParticleSystem& system,
                                         std::span<Vec3> forces) {
  if (forces.size() != system.size())
    throw std::invalid_argument("NativeForceField: force array size mismatch");
  MDM_TRACE_SCOPE("native.add_forces");
  // One sync feeds both kernels (the components above re-sync so they stay
  // usable standalone; the double sync costs O(N), noise next to the sweep).
  soa_.sync(system);
  ForceResult result;
  {
    obs::ScopedPhase real_phase(obs::Phase::kRealSpace);
    result += real_.sweep(soa_, forces, pool_);
  }
  {
    obs::ScopedPhase wave_phase(obs::Phase::kWavenumber);
    kspace_.dft(soa_, sf_);
    kspace_.idft(soa_, sf_, forces);
    result += kspace_.energy_virial(sf_);
  }
  result.potential += self_energy(system);
  result.potential += background_energy(system);
  return result;
}

}  // namespace mdm::native
