#pragma once

/// \file real_kernel.hpp
/// Vectorized real-space pair kernel of the native backend (DESIGN.md §11).
///
/// One fused sweep evaluates the erfc-damped Ewald real-space force (paper
/// eq. 2) and, optionally, the Tosi-Fumi short-range terms (eq. 15) — the
/// work MDGRAPE-2 performs in three separate emulated passes. The loop body
/// is straight-line arithmetic designed to auto-vectorize:
///
///  * particle data come from cell-sorted structure-of-arrays streams, so
///    a neighbour cell's particles are unit-stride loads;
///  * minimum image is two compare-blend corrections (positions are
///    pre-wrapped, so |dx| < box), not a libm rounding call;
///  * erfc/exp use the branch-free rationals of core/fastmath.hpp;
///  * the cutoff test is a mask (forces blend to zero), not a branch;
///  * Tosi-Fumi coefficients are per-slot streams pre-gathered per i-species
///    row, so species lookup is a contiguous load, never a gather;
///  * per-i sums (force, potential, virial) go through small store buffers
///    with a separate accumulation pass, because GCC will not vectorize a
///    floating-point reduction under strict FP semantics.
///
/// Parallel sweeps reuse the repo's fixed-chunk discipline (CellList
/// kPairChunks): the chunk partition depends only on the grid, j-side
/// forces land in per-chunk buffers reduced in chunk order, so results are
/// bit-identical at ANY pool size. The cell list itself is maintained with
/// CellList::build_auto (half-skin displacement tracking): the native
/// backend's accuracy contract is the envelope, not bit-equality across
/// restarts, so it may skip rebuilds the reference path would perform.

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/cell_list.hpp"
#include "core/force_field.hpp"
#include "core/tosi_fumi.hpp"
#include "native/soa.hpp"
#include "util/thread_pool.hpp"

namespace mdm::native {

class NativeRealKernel {
 public:
  struct Config {
    double box = 0.0;
    double beta = 0.0;   ///< alpha / L, 1/A
    double r_cut = 0.0;  ///< A, must be <= L/2
    bool include_tosi_fumi = false;
    /// Subtract phi_sr(r_cut) per pair (serve software-path convention);
    /// forces are unchanged either way.
    bool tf_shift_energy = false;
    TosiFumiParameters tosi_fumi{};
  };

  explicit NativeRealKernel(const Config& config);

  /// Newton half-stencil sweep: every unordered in-range pair once, forces
  /// accumulated for both partners. Adds into `forces` (indexed like
  /// soa streams); returns summed pair potential and virial. Bit-identical
  /// for any pool size (nullptr = serial).
  ForceResult sweep(const SoaParticles& soa, std::span<Vec3> forces,
                    ThreadPool* pool = nullptr);

  /// One-sided sweep for the parallel ranks: forces on particles with index
  /// < n_i (the rank's owned particles, listed first) from ALL particles,
  /// Newton's third law forgone exactly like the hardware scan. The
  /// returned potential/virial double-count owned-owned pairs; the caller
  /// halves them (host/parallel_app convention). Serial — each rank is
  /// already one thread.
  ForceResult one_sided(const SoaParticles& soa, std::size_t n_i,
                        std::span<Vec3> forces);

  /// In-range pair interactions evaluated by the last sweep/one_sided call.
  std::uint64_t last_pairs() const { return last_pairs_; }
  const CellList& cells() const { return cells_; }

  /// Drop the lazy cell-list anchor and cached coefficient rows; the next
  /// sweep rebuilds from scratch. Required after checkpoint restore or any
  /// other position teleport (see CellList::invalidate).
  void invalidate() {
    cells_.invalidate();
    coef_valid_ = false;
  }

 private:
  struct Acc {
    double fx = 0, fy = 0, fz = 0, pot = 0, vir = 0, pairs = 0;
  };

  /// Maintain the cell list (build_auto) and regather the sorted streams.
  void prepare(const SoaParticles& soa);
  void ensure_scratch(std::size_t n, int chunks);

  template <bool kNewton>
  void pair_range(double xi, double yi, double zi, double qi_ke,
                  const double* cb, const double* c6r, const double* d8r,
                  const double* shr, std::size_t jb, std::size_t je,
                  std::size_t skip, double* jfx, double* jfy, double* jfz,
                  double* tmp, Acc& acc) const;

  void run_chunk(std::size_t k, int chunks, std::size_t n);

  Config cfg_;
  double inv_rho_ = 0.0;
  double cutoff2_ = 0.0;
  /// phi_sr(r_cut) per type pair (zero unless tf_shift_energy).
  std::array<std::array<double, TosiFumiParameters::kMaxSpecies>,
             TosiFumiParameters::kMaxSpecies>
      shift_{};

  CellList cells_;
  bool n2_ = false;
  int coef_rows_ = 0;
  bool coef_valid_ = false;
  /// Slot->type stream the coefficient rows were built for; a mismatch
  /// (migration/halo churn in the parallel app) forces a rebuild.
  std::vector<std::int32_t> coef_ts_;

  /// Cell-sorted streams (slot order == CellList::order(); identity in the
  /// N^2 fallback).
  std::vector<double> xs_, ys_, zs_, qs_;
  std::vector<std::int32_t> ts_;
  /// Per-i-species coefficient rows, [ti * n + slot]: Born prefactor, c6,
  /// d8 and energy shift of the (ti, type[slot]) pair.
  std::vector<double> cb_, cc6_, cd8_, csh_;

  /// Per-chunk j-side force accumulators, [chunk * n + slot], kept zero
  /// outside each chunk's dirty range.
  std::vector<double> jfx_, jfy_, jfz_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dirty_;
  struct ChunkTally {
    double pot = 0, vir = 0, pairs = 0;
  };
  std::vector<ChunkTally> tally_;
  /// Per-chunk store buffers of the two-pass accumulation, 6 lanes each.
  std::vector<double> tmp_;
  std::size_t tmp_stride_ = 0;
  std::size_t scr_slots_ = 0;
  int scr_chunks_ = 0;

  std::uint64_t last_pairs_ = 0;
};

}  // namespace mdm::native
