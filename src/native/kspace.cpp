#include "native/kspace.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/units.hpp"

namespace mdm::native {
namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

NativeKspace::NativeKspace(const KVectorTable& table)
    : box_(table.box()), alpha_(table.alpha()), n_max_(table.n_max()) {
  const auto& kvecs = table.vectors();
  const std::size_t nk = kvecs.size();
  anx_.resize(nk);
  any_.resize(nk);
  anz_.resize(nk);
  sgx_.resize(nk);
  sgy_.resize(nk);
  nxd_.resize(nk);
  nyd_.resize(nk);
  nzd_.resize(nk);
  a_.resize(nk);
  for (std::size_t m = 0; m < nk; ++m) {
    const int nx = static_cast<int>(kvecs[m].n.x);
    const int ny = static_cast<int>(kvecs[m].n.y);
    const int nz = static_cast<int>(kvecs[m].n.z);
    if (nz < 0)
      throw std::invalid_argument("NativeKspace: not a half-space set");
    anx_[m] = nx < 0 ? -nx : nx;
    any_[m] = ny < 0 ? -ny : ny;
    anz_[m] = nz;
    sgx_[m] = nx < 0 ? -1.0 : 1.0;
    sgy_[m] = ny < 0 ? -1.0 : 1.0;
    nxd_[m] = kvecs[m].n.x;
    nyd_[m] = kvecs[m].n.y;
    nzd_[m] = kvecs[m].n.z;
    a_[m] = kvecs[m].a;
  }
  const std::size_t rows = static_cast<std::size_t>(n_max_ + 1) * kBlock;
  tcx_.resize(rows);
  tsx_.resize(rows);
  tcy_.resize(rows);
  tsy_.resize(rows);
  tcz_.resize(rows);
  tsz_.resize(rows);
  c1_.resize(3 * kBlock);
  s1_.resize(3 * kBlock);
  bc_.resize(kBlock);
  bs_.resize(kBlock);
  bfx_.resize(kBlock);
  bfy_.resize(kBlock);
  bfz_.resize(kBlock);
}

void NativeKspace::build_block(const SoaParticles& soa, std::size_t p0,
                               std::size_t count) {
  const double two_pi_l = 2.0 * kPi / box_;
  double* c1x = c1_.data();
  double* s1x = s1_.data();
  double* c1y = c1_.data() + kBlock;
  double* s1y = s1_.data() + kBlock;
  double* c1z = c1_.data() + 2 * kBlock;
  double* s1z = s1_.data() + 2 * kBlock;
  for (std::size_t p = 0; p < count; ++p) {
    const double tx = two_pi_l * soa.x[p0 + p];
    const double ty = two_pi_l * soa.y[p0 + p];
    const double tz = two_pi_l * soa.z[p0 + p];
    c1x[p] = std::cos(tx);
    s1x[p] = std::sin(tx);
    c1y[p] = std::cos(ty);
    s1y[p] = std::sin(ty);
    c1z[p] = std::cos(tz);
    s1z[p] = std::sin(tz);
  }
  // Row 0: n = 0 phases; the x row carries the charge so both the DFT terms
  // and the IDFT weights come out pre-multiplied by q.
  for (std::size_t p = 0; p < count; ++p) {
    tcx_[p] = soa.q[p0 + p];
    tsx_[p] = 0.0;
    tcy_[p] = 1.0;
    tsy_[p] = 0.0;
    tcz_[p] = 1.0;
    tsz_[p] = 0.0;
  }
  // Addition-formula recurrence per axis (sec. 2.3), row n from row n-1;
  // unit-stride across the block, so each row is one vector pass.
  for (int nrow = 1; nrow <= n_max_; ++nrow) {
    const std::size_t cur = static_cast<std::size_t>(nrow) * kBlock;
    const std::size_t prev = cur - kBlock;
    for (std::size_t p = 0; p < count; ++p) {
      tcx_[cur + p] = tcx_[prev + p] * c1x[p] - tsx_[prev + p] * s1x[p];
      tsx_[cur + p] = tsx_[prev + p] * c1x[p] + tcx_[prev + p] * s1x[p];
    }
    for (std::size_t p = 0; p < count; ++p) {
      tcy_[cur + p] = tcy_[prev + p] * c1y[p] - tsy_[prev + p] * s1y[p];
      tsy_[cur + p] = tsy_[prev + p] * c1y[p] + tcy_[prev + p] * s1y[p];
    }
    for (std::size_t p = 0; p < count; ++p) {
      tcz_[cur + p] = tcz_[prev + p] * c1z[p] - tsz_[prev + p] * s1z[p];
      tsz_[cur + p] = tsz_[prev + p] * c1z[p] + tcz_[prev + p] * s1z[p];
    }
  }
}

void NativeKspace::dft(const SoaParticles& soa, StructureFactors& out) {
  MDM_TRACE_SCOPE("native.kspace.dft");
  const std::size_t nk = a_.size();
  const std::size_t n = soa.size();
  out.s.assign(nk, 0.0);
  out.c.assign(nk, 0.0);
  for (std::size_t p0 = 0; p0 < n; p0 += kBlock) {
    const std::size_t count = std::min(kBlock, n - p0);
    build_block(soa, p0, count);
    for (std::size_t m = 0; m < nk; ++m) {
      const double* cx = tcx_.data() + static_cast<std::size_t>(anx_[m]) * kBlock;
      const double* sx = tsx_.data() + static_cast<std::size_t>(anx_[m]) * kBlock;
      const double* cy = tcy_.data() + static_cast<std::size_t>(any_[m]) * kBlock;
      const double* sy = tsy_.data() + static_cast<std::size_t>(any_[m]) * kBlock;
      const double* cz = tcz_.data() + static_cast<std::size_t>(anz_[m]) * kBlock;
      const double* sz = tsz_.data() + static_cast<std::size_t>(anz_[m]) * kBlock;
      const double sx_sign = sgx_[m];
      const double sy_sign = sgy_[m];
      for (std::size_t p = 0; p < count; ++p) {
        const double cxp = cx[p];
        const double sxp = sx_sign * sx[p];
        const double cyp = cy[p];
        const double syp = sy_sign * sy[p];
        const double cxy = cxp * cyp - sxp * syp;
        const double sxy = sxp * cyp + cxp * syp;
        bc_[p] = cxy * cz[p] - sxy * sz[p];  // q cos(2 pi n.r / L)
        bs_[p] = sxy * cz[p] + cxy * sz[p];  // q sin(2 pi n.r / L)
      }
      double sum_c = 0.0;
      double sum_s = 0.0;
      for (std::size_t p = 0; p < count; ++p) {
        sum_c += bc_[p];
        sum_s += bs_[p];
      }
      out.c[m] += sum_c;
      out.s[m] += sum_s;
    }
  }
}

void NativeKspace::idft(const SoaParticles& soa, const StructureFactors& sf,
                        std::span<Vec3> forces) {
  MDM_TRACE_SCOPE("native.kspace.idft");
  const std::size_t nk = a_.size();
  const std::size_t n = soa.size();
  if (sf.s.size() != nk || forces.size() != n)
    throw std::invalid_argument("NativeKspace::idft: size mismatch");
  // F_i = (4 k_e q_i / L^4) sum_half a_n n_vec [C_n sin_i - S_n cos_i];
  // q_i rides in the phase tables.
  const double force_pref =
      4.0 * units::kCoulomb / (box_ * box_ * box_ * box_);
  for (std::size_t p0 = 0; p0 < n; p0 += kBlock) {
    const std::size_t count = std::min(kBlock, n - p0);
    build_block(soa, p0, count);
    for (std::size_t p = 0; p < count; ++p) {
      bfx_[p] = 0.0;
      bfy_[p] = 0.0;
      bfz_[p] = 0.0;
    }
    for (std::size_t m = 0; m < nk; ++m) {
      const double* cx = tcx_.data() + static_cast<std::size_t>(anx_[m]) * kBlock;
      const double* sx = tsx_.data() + static_cast<std::size_t>(anx_[m]) * kBlock;
      const double* cy = tcy_.data() + static_cast<std::size_t>(any_[m]) * kBlock;
      const double* sy = tsy_.data() + static_cast<std::size_t>(any_[m]) * kBlock;
      const double* cz = tcz_.data() + static_cast<std::size_t>(anz_[m]) * kBlock;
      const double* sz = tsz_.data() + static_cast<std::size_t>(anz_[m]) * kBlock;
      const double sx_sign = sgx_[m];
      const double sy_sign = sgy_[m];
      const double cn = sf.c[m];
      const double sn = sf.s[m];
      const double am = a_[m];
      const double nx = nxd_[m];
      const double ny = nyd_[m];
      const double nz = nzd_[m];
      for (std::size_t p = 0; p < count; ++p) {
        const double cxp = cx[p];
        const double sxp = sx_sign * sx[p];
        const double cyp = cy[p];
        const double syp = sy_sign * sy[p];
        const double cxy = cxp * cyp - sxp * syp;
        const double sxy = sxp * cyp + cxp * syp;
        const double cosq = cxy * cz[p] - sxy * sz[p];
        const double sinq = sxy * cz[p] + cxy * sz[p];
        const double w = am * (cn * sinq - sn * cosq);
        bfx_[p] += w * nx;
        bfy_[p] += w * ny;
        bfz_[p] += w * nz;
      }
    }
    for (std::size_t p = 0; p < count; ++p)
      forces[p0 + p] +=
          force_pref * Vec3{bfx_[p], bfy_[p], bfz_[p]};
  }
}

ForceResult NativeKspace::energy_virial(const StructureFactors& sf) const {
  // Same closed forms as the reference solver (EwaldCoulomb::idft_forces).
  ForceResult result;
  const double l3 = box_ * box_ * box_;
  const double energy_pref = units::kCoulomb / (kPi * l3);
  for (std::size_t m = 0; m < a_.size(); ++m) {
    const double ek =
        energy_pref * a_[m] * (sf.c[m] * sf.c[m] + sf.s[m] * sf.s[m]);
    const double n2 =
        nxd_[m] * nxd_[m] + nyd_[m] * nyd_[m] + nzd_[m] * nzd_[m];
    result.potential += ek;
    result.virial += ek * (1.0 - 2.0 * kPi * kPi * n2 / (alpha_ * alpha_));
  }
  return result;
}

}  // namespace mdm::native
