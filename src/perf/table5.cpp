#include "perf/table5.hpp"

namespace mdm::perf {

AsciiTable table5(const std::vector<MachineModel>& machines,
                  const std::string& title) {
  AsciiTable t(title);
  std::vector<std::string> header{"System"};
  for (const auto& m : machines) header.push_back(m.name);
  t.set_header(header);

  auto row = [&](const std::string& label, auto getter, auto format) {
    std::vector<std::string> cells{label};
    for (const auto& m : machines) cells.push_back(format(getter(m)));
    t.add_row(cells);
  };
  row("Number of MDGRAPE-2 chips",
      [](const MachineModel& m) { return m.mdgrape_chips; },
      [](int v) { return format_int(v); });
  row("Number of WINE-2 chips",
      [](const MachineModel& m) { return m.wine_chips; },
      [](int v) { return format_int(v); });
  row("Peak performance of MDGRAPE-2 (Tflops)",
      [](const MachineModel& m) { return m.mdgrape_peak_flops() / 1e12; },
      [](double v) { return format_fixed(v, 1); });
  row("Peak performance of WINE-2 (Tflops)",
      [](const MachineModel& m) { return m.wine_peak_flops() / 1e12; },
      [](double v) { return format_fixed(v, 1); });
  row("Efficiency of MDGRAPE-2 (%)",
      [](const MachineModel& m) { return 100.0 * m.mdgrape_efficiency; },
      [](double v) { return format_fixed(v, 0); });
  row("Efficiency of WINE-2 (%)",
      [](const MachineModel& m) { return 100.0 * m.wine_efficiency; },
      [](double v) { return format_fixed(v, 0); });
  return t;
}

AsciiTable table5_paper() {
  return table5({MachineModel::mdm_current(), MachineModel::mdm_future()},
                "Table 5: Comparison of current and future versions of MDM");
}

AsciiTable table1_components() {
  AsciiTable t("Table 1: Components of the MDM system");
  t.set_header({"Component", "Product", "Manufacturer"});
  t.add_row({"Node computer", "Enterprise 4500", "Sun Microsystems"});
  t.add_row({"CPU", "Ultra SPARC-II 400 MHz", "Sun Microsystems"});
  t.add_row({"Network switch", "Myrinet 16-port LAN switch", "Myricom"});
  t.add_row({"Network card", "Myrinet LAN PCI card (LANai 4.3)", "Myricom"});
  t.add_row({"Link", "Bus bridge, PCI host card / (Compact)PCI",
             "SBS Technologies"});
  t.add_row({"Bus", "CompactPCI (WINE-2) / PCI rev 2.1 (MDGRAPE-2)", "-"});
  t.add_row({"WINE-2 chip", "LCB500K 0.5um 3.3V, 8 pipelines, ~20 Gflops",
             "LSI Logic"});
  t.add_row({"MDGRAPE-2 chip", "SA-12 0.25um 2.5V, 4 pipelines, ~16 Gflops",
             "IBM"});
  return t;
}

}  // namespace mdm::perf
