#include "perf/table4.hpp"

namespace mdm::perf {

Table4Column make_column(const std::string& name, const PaperWorkload& w,
                         double alpha, bool grape_counting,
                         double sec_per_step, double min_total_flops) {
  Table4Column col;
  col.system = name;
  col.n = w.n_particles;
  col.alpha = alpha;
  const auto params = parameters_from_alpha(alpha, w.box, w.accuracy);
  col.r_cut = params.r_cut;
  col.lk_cut = params.lk_cut;
  const auto flops = ewald_step_flops(w.n_particles, w.box, params);
  col.n_int = flops.n_int;
  col.n_wv = flops.n_wv;
  col.grape_counting = grape_counting;
  if (grape_counting) {
    col.n_int_g = flops.n_int_g;
    col.real_flops = flops.real_grape;
  } else {
    col.real_flops = flops.real_host;
  }
  col.wavenumber_flops = flops.wavenumber;
  col.total_flops = col.real_flops + col.wavenumber_flops;
  col.sec_per_step = sec_per_step;
  col.calc_speed_tflops = col.total_flops / sec_per_step / 1e12;
  col.effective_speed_tflops = min_total_flops / sec_per_step / 1e12;
  return col;
}

namespace {

Table4 build(const PaperWorkload& w, double alpha_current,
             double alpha_conventional, double alpha_future,
             double sec_current, double sec_future) {
  // The minimum operation count (conventional computer at the balanced
  // alpha) defines the effective speed of every column.
  const auto conv_params =
      parameters_from_alpha(alpha_conventional, w.box, w.accuracy);
  const auto conv_flops = ewald_step_flops(w.n_particles, w.box, conv_params);
  const double min_total = conv_flops.total_host();

  Table4 t;
  t.workload = w;
  t.columns.push_back(make_column("MDM current", w, alpha_current,
                                  /*grape=*/true, sec_current, min_total));
  t.columns.push_back(make_column("Conventional system", w,
                                  alpha_conventional,
                                  /*grape=*/false, sec_current, min_total));
  t.columns.push_back(make_column("MDM future", w, alpha_future,
                                  /*grape=*/true, sec_future, min_total));
  return t;
}

}  // namespace

Table4 table4_paper() {
  const PaperWorkload w;
  return build(w, 85.0, 30.1, 50.3, kMeasuredSecondsPerStep,
               kFutureSecondsPerStep);
}

Table4 table4_modeled() {
  const PaperWorkload w;
  const auto current = MachineModel::mdm_current();
  const auto future = MachineModel::mdm_future();

  const double a_current = optimal_alpha(current, w.n_particles, w.accuracy);
  const double a_conv = balanced_alpha(w.n_particles, w.accuracy);
  const double a_future = optimal_alpha(future, w.n_particles, w.accuracy);

  const double sec_current =
      predict_step(current, w.n_particles, w.box,
                   parameters_from_alpha(a_current, w.box, w.accuracy))
          .total_seconds();
  const double sec_future =
      predict_step(future, w.n_particles, w.box,
                   parameters_from_alpha(a_future, w.box, w.accuracy))
          .total_seconds();
  return build(w, a_current, a_conv, a_future, sec_current, sec_future);
}

AsciiTable Table4::render(const std::string& title) const {
  AsciiTable t(title);
  std::vector<std::string> header{"Quantity"};
  for (const auto& c : columns) header.push_back(c.system);
  t.set_header(header);

  auto row = [&](const std::string& label, auto getter, auto format) {
    std::vector<std::string> cells{label};
    for (const auto& c : columns) cells.push_back(format(getter(c)));
    t.add_row(cells);
  };
  auto fixed1 = [](double v) { return format_fixed(v, 1); };
  auto sci3 = [](double v) { return format_sci(v, 3); };

  row("N", [](const Table4Column& c) { return c.n; }, sci3);
  row("alpha", [](const Table4Column& c) { return c.alpha; }, fixed1);
  row("r_cut (A)", [](const Table4Column& c) { return c.r_cut; }, fixed1);
  row("L k_cut", [](const Table4Column& c) { return c.lk_cut; }, fixed1);
  row("N_int", [](const Table4Column& c) { return c.n_int; }, sci3);
  t.add_row({"N_int_g", columns[0].grape_counting
                            ? format_sci(columns[0].n_int_g, 3)
                            : "-",
             "-",
             columns.size() > 2 && columns[2].grape_counting
                 ? format_sci(columns[2].n_int_g, 3)
                 : "-"});
  row("N_wv", [](const Table4Column& c) { return c.n_wv; }, sci3);
  t.add_rule();
  row("Real-space flops/step",
      [](const Table4Column& c) { return c.real_flops; }, sci3);
  row("Wavenumber flops/step",
      [](const Table4Column& c) { return c.wavenumber_flops; }, sci3);
  row("Total flops/step",
      [](const Table4Column& c) { return c.total_flops; }, sci3);
  t.add_rule();
  row("sec/step", [](const Table4Column& c) { return c.sec_per_step; },
      [](double v) { return format_fixed(v, 2); });
  row("Calculation speed (Tflops)",
      [](const Table4Column& c) { return c.calc_speed_tflops; },
      [](double v) { return format_fixed(v, 2); });
  row("Effective speed (Tflops)",
      [](const Table4Column& c) { return c.effective_speed_tflops; },
      [](double v) { return format_fixed(v, 2); });
  return t;
}

}  // namespace mdm::perf
