#include "perf/machine_model.hpp"

namespace mdm::perf {

MachineModel MachineModel::mdm_current() {
  MachineModel m;
  m.name = "MDM current";
  m.mdgrape_chips = 64;     // 1 Tflops (sec. 3.2)
  m.wine_chips = 2240;      // 45 Tflops
  m.mdgrape_efficiency = 0.26;  // Table 5
  m.wine_efficiency = 0.29;
  m.host_flops = 4 * 6 * 400e6 * 2;  // 4 nodes x 6 UltraSPARC-II @400 MHz
  return m;
}

MachineModel MachineModel::mdm_future() {
  MachineModel m;
  m.name = "MDM future";
  m.mdgrape_chips = 1536;   // 25 Tflops (Table 5; ~16.3 Gflops/chip quoted
                            // as 25 Tflops total - keep the chip count and
                            // the table's totals via the efficiency knob)
  m.wine_chips = 2688;      // 54 Tflops
  m.mdgrape_efficiency = 0.50;
  m.wine_efficiency = 0.50;
  m.host_flops = 4 * 6 * 400e6 * 2;
  m.pci_bandwidth_bytes = 264e6;      // 64-bit PCI (sec. 6.1 item 2)
  m.network_bandwidth_bytes = 480e6;  // new Myrinet cards (item 3)
  return m;
}

MachineModel MachineModel::conventional_equivalent(double flops) {
  MachineModel m;
  m.name = "Conventional system";
  m.conventional = true;
  m.host_flops = flops;
  return m;
}

StepTiming predict_step(const MachineModel& machine, double n_particles,
                        double box, const EwaldParameters& params) {
  const auto flops = ewald_step_flops(n_particles, box, params);
  StepTiming t;
  if (machine.conventional) {
    t.concurrent_backends = false;  // one CPU pool runs both parts
    t.real_seconds = flops.real_host / machine.host_flops;
    t.wavenumber_seconds = flops.wavenumber / machine.host_flops;
    return t;
  }
  t.real_seconds = flops.real_grape / machine.mdgrape_sustained_flops();
  t.wavenumber_seconds = flops.wavenumber / machine.wine_sustained_flops();
  // Host work: ~100 flops/particle/step for integration and bookkeeping.
  t.host_seconds = 100.0 * n_particles / machine.host_flops;
  // Communication: positions out to both backends and forces back, spread
  // over the nodes' PCI links, plus one network exchange of the positions.
  const double bytes_per_particle = 2.0 * 3.0 * 8.0 + 3.0 * 8.0;  // x + f
  const double pci_links = machine.node_count * 9.0;  // 5 WINE + 4 MDG links
  t.comm_seconds =
      bytes_per_particle * n_particles /
          (machine.pci_bandwidth_bytes * pci_links) +
      3.0 * 8.0 * n_particles /
          (machine.network_bandwidth_bytes * machine.node_count);
  return t;
}

StepTiming predict_backend_step(const BackendCostModel& costs,
                                Backend backend, double n_particles,
                                double box, const EwaldParameters& params) {
  const auto flops = ewald_step_flops(n_particles, box, params);
  const double pairs = backend == Backend::kNative
                           ? n_particles * flops.n_int
                           : n_particles * flops.n_int_g;
  const double waves = n_particles * flops.n_wv;
  StepTiming t;
  t.concurrent_backends = false;  // one CPU runs both Ewald parts
  t.real_seconds = pairs * costs.ns_per_pair(backend) * 1e-9;
  t.wavenumber_seconds = waves * costs.ns_per_wave(backend) * 1e-9;
  return t;
}

Backend recommended_backend(const BackendCostModel& costs, double n_particles,
                            double box, const EwaldParameters& params,
                            bool accuracy_needs_emulator) {
  if (accuracy_needs_emulator) return Backend::kEmulator;
  const double native =
      predict_backend_step(costs, Backend::kNative, n_particles, box, params)
          .total_seconds();
  const double emulated =
      predict_backend_step(costs, Backend::kEmulator, n_particles, box,
                           params)
          .total_seconds();
  return native <= emulated ? Backend::kNative : Backend::kEmulator;
}

double optimal_alpha(const MachineModel& machine, double n_particles,
                     const EwaldAccuracy& accuracy) {
  if (machine.conventional)
    return balanced_alpha(n_particles, accuracy);
  return machine_optimal_alpha(n_particles,
                               machine.mdgrape_sustained_flops(),
                               machine.wine_sustained_flops(), accuracy,
                               /*grape_counting=*/true);
}

}  // namespace mdm::perf
