#pragma once

/// \file solver_select.hpp
/// Long-range solver auto-selection (DESIGN.md §12). The repo carries three
/// ways to evaluate the k-space / long-range Coulomb part:
///
///   * the exact truncated structure-factor sum (ewald/, WINE-2's method) —
///     O(N * N_wv), the most accurate, dominates cost at large N;
///   * smooth particle-mesh Ewald (ewald/pme) — O(N p^3 + K^3 log K^3),
///     accurate to the mesh envelope (~5e-4 RMS relative force error at
///     order 6 on a >= 32^3 grid, test_fft_pme);
///   * the Barnes-Hut treecode (tree/) — O(N log N) with an opening-angle
///     accuracy knob, but open-boundary and ~1e-2 RMS at theta = 0.5
///     (bench_treecode), so only admissible for loose targets.
///
/// This module extends the BackendCostModel host-cost accounting to those
/// three solvers: predict the per-step k-space wall clock of each, filter by
/// an RMS-relative-force-error target, and recommend the cheapest admissible
/// one. `--solver auto` in parallel_mdm / mdm_serve routes through
/// recommended_app_solver(), which restricts the choice to the two solvers
/// the parallel application can actually run (structure factor and PME).

#include <string>
#include <vector>

#include "ewald/flops.hpp"
#include "ewald/parameters.hpp"
#include "ewald/pme.hpp"
#include "perf/machine_model.hpp"

namespace mdm::perf {

/// A long-range solver the repo can run.
enum class KspaceMethod {
  kStructureFactor,  ///< exact truncated lattice sum (ewald/, WINE-2)
  kPme,              ///< smooth particle-mesh Ewald (ewald/pme)
  kBarnesHut,        ///< tree/ treecode (open boundary, loose accuracy)
};

const char* to_string(KspaceMethod method);

/// Host-cost coefficients of the three k-space solvers plus their accuracy
/// envelopes. Cost defaults extend BackendCostModel's measured native rates;
/// the tree anchors come from bench_treecode on the standard melt
/// (BENCH_treecode.json). Envelopes are RMS relative force error versus the
/// converged Ewald sum.
struct SolverCostModel {
  BackendCostModel backend{};  ///< per-(particle,wave) structure-factor cost

  /// PME native host rate per model flop of SmoothPme::reciprocal_flops
  /// (spread/gather + FFT + convolution share one rate; the flop model
  /// already weighs them).
  double pme_ns_per_flop = 0.35;

  /// Barnes-Hut per pseudo-particle interaction (traversal + kernel), and
  /// the theta = 0.5 anchor of BENCH_treecode.json: interaction-list length
  /// at the anchor N, scaled ~ log2 N elsewhere.
  double tree_ns_per_interaction = 39.0;
  double tree_anchor_interactions = 773.0;
  double tree_anchor_n = 1728.0;

  double structure_factor_rms = 3e-5;  ///< truncated sum, software accuracy
  double pme_rms = 5e-4;               ///< order >= 6, grid >= 32^3
  double tree_rms = 1.1e-2;            ///< theta = 0.5, open boundary
};

/// Predicted per-step k-space cost and accuracy of one solver.
struct SolverPrediction {
  KspaceMethod method = KspaceMethod::kStructureFactor;
  double seconds = 0.0;    ///< predicted host wall clock of the k-space part
  double rms_error = 0.0;  ///< accuracy envelope (RMS relative force error)
  bool meets_target = false;
};

/// Predict all three solvers for one workload. `accuracy_target` is the
/// acceptable RMS relative force error (e.g. 5e-4 for paper-envelope runs).
std::vector<SolverPrediction> predict_kspace_solvers(
    const SolverCostModel& costs, double n_particles, double box,
    const EwaldParameters& ewald, const PmeParameters& pme,
    double accuracy_target);

/// The cheapest solver that meets the accuracy target; when none does, the
/// most accurate one. `allow_tree = false` restricts the choice to the two
/// periodic solvers (what MdmParallelApp can run).
KspaceMethod recommended_kspace_solver(const SolverCostModel& costs,
                                       double n_particles, double box,
                                       const EwaldParameters& ewald,
                                       const PmeParameters& pme,
                                       double accuracy_target,
                                       bool allow_tree = true);

/// Smallest power-of-two PME mesh matching the accuracy of an exact Ewald
/// configuration: resolve integer wavevectors up to lk_cut with 2x spline
/// oversampling (grid >= 4 lk_cut), never smaller than 2 * order points per
/// axis (the spreading support) or 32 (the envelope's validated floor).
/// With the balanced-alpha parameter presets lk_cut grows ~ N^(1/6), so the
/// mesh stays small while the structure-factor wave count grows — the
/// origin of the SF -> PME cost crossover.
int recommended_pme_mesh(const EwaldParameters& ewald, int order);

/// `--solver auto` for the parallel application: kStructureFactor or kPme.
KspaceMethod recommended_app_solver(const SolverCostModel& costs,
                                    double n_particles, double box,
                                    const EwaldParameters& ewald,
                                    const PmeParameters& pme,
                                    double accuracy_target = 5e-4);

}  // namespace mdm::perf
