#pragma once

/// \file table5.hpp
/// Regeneration of the paper's Table 5 ("Comparison of current and future
/// versions of MDM") plus Table 1 ("Components of the MDM system").

#include <string>
#include <vector>

#include "perf/machine_model.hpp"
#include "util/table.hpp"

namespace mdm::perf {

/// Table 5 rows for a list of machines.
AsciiTable table5(const std::vector<MachineModel>& machines,
                  const std::string& title);

/// The paper's pair (current vs future).
AsciiTable table5_paper();

/// Table 1: static component inventory of the MDM system.
AsciiTable table1_components();

/// Topology facts used by Table 1 / sec. 3 (exposed for tests).
struct MdmTopology {
  int node_count = 4;
  int wine_clusters_per_node = 5;
  int wine_boards_per_cluster = 7;
  int wine_chips_per_board = 16;
  int mdgrape_clusters_per_node = 4;
  int mdgrape_boards_per_cluster = 2;
  int mdgrape_chips_per_board = 2;

  int wine_chips() const {
    return node_count * wine_clusters_per_node * wine_boards_per_cluster *
           wine_chips_per_board;
  }
  int mdgrape_chips() const {
    return node_count * mdgrape_clusters_per_node *
           mdgrape_boards_per_cluster * mdgrape_chips_per_board;
  }
};

}  // namespace mdm::perf
