#pragma once

/// \file machine_model.hpp
/// Analytic performance model of the MDM configurations discussed in the
/// paper (secs. 3, 5, 6): chip counts, peak speeds, efficiencies and the
/// communication fabric. Together with the operation-count model of
/// ewald/flops.hpp this regenerates Tables 1, 4 and 5.

#include <algorithm>
#include <string>

#include "core/backend.hpp"
#include "ewald/flops.hpp"
#include "ewald/parameters.hpp"

namespace mdm::perf {

/// One machine configuration.
struct MachineModel {
  std::string name;

  // --- special-purpose units --------------------------------------------
  int mdgrape_chips = 0;
  int wine_chips = 0;
  double mdgrape_chip_gflops = 16.0;  ///< sec. 3.5.3 (100 MHz, 4 pipelines)
  double wine_chip_gflops = 20.0;     ///< sec. 3.4.3 (66.6 MHz, 8 pipelines)
  /// Sustained fraction of peak (Table 5's "efficiency").
  double mdgrape_efficiency = 1.0;
  double wine_efficiency = 1.0;

  // --- conventional computer alternative ---------------------------------
  /// When true, both Ewald parts run on a general-purpose computer at
  /// `host_flops` and the real-space part uses Newton's third law + exact
  /// cutoff (N_int, not N_int_g).
  bool conventional = false;
  double host_flops = 0.0;

  // --- fabric (sec. 6.1) --------------------------------------------------
  double pci_bandwidth_bytes = 132e6;      ///< 32-bit PCI
  double network_bandwidth_bytes = 160e6;  ///< Myrinet, per link
  int node_count = 4;

  double mdgrape_peak_flops() const {
    return mdgrape_chips * mdgrape_chip_gflops * 1e9;
  }
  double wine_peak_flops() const {
    return wine_chips * wine_chip_gflops * 1e9;
  }
  double mdgrape_sustained_flops() const {
    return mdgrape_peak_flops() * mdgrape_efficiency;
  }
  double wine_sustained_flops() const {
    return wine_peak_flops() * wine_efficiency;
  }
  double peak_flops() const {
    return conventional ? host_flops
                        : mdgrape_peak_flops() + wine_peak_flops();
  }

  /// The machine of the July-2000 measurement: 64 MDGRAPE-2 chips (1 Tflops)
  /// + 2,240 WINE-2 chips (45 Tflops). Efficiencies from Table 5.
  static MachineModel mdm_current();
  /// End-of-2000 target: 1,536 + 2,688 chips, 25 + 54 Tflops, ~50% eff.
  static MachineModel mdm_future();
  /// General-purpose computer with the same *effective* speed as the
  /// current MDM (the paper's Table 4 comparison column).
  static MachineModel conventional_equivalent(double flops = 1.34e12);
};

/// Predicted timing of one MD step for a machine/workload pair.
struct StepTiming {
  double real_seconds = 0.0;        ///< real-space force part
  double wavenumber_seconds = 0.0;  ///< wavenumber force part
  double host_seconds = 0.0;        ///< O(N) integration etc.
  double comm_seconds = 0.0;        ///< host<->board + network traffic

  /// WINE-2 and MDGRAPE-2 are independent backends fed the same positions
  /// (sec. 3.1), so their work overlaps; the host/O(N) parts serialize.
  /// A conventional machine runs both parts on the same CPUs (sum).
  bool concurrent_backends = true;
  double total_seconds() const {
    const double backend =
        concurrent_backends ? std::max(real_seconds, wavenumber_seconds)
                            : real_seconds + wavenumber_seconds;
    return backend + host_seconds + comm_seconds;
  }
};

/// Predict one step of an N-particle Ewald MD run at the given parameters.
StepTiming predict_step(const MachineModel& machine, double n_particles,
                        double box, const EwaldParameters& params);

/// The alpha this machine prefers (sec. 5: "optimized for our hardware").
double optimal_alpha(const MachineModel& machine, double n_particles,
                     const EwaldAccuracy& accuracy = {});

/// Measured single-thread host costs of the two software backends
/// (DESIGN.md §11). The emulator pays per *candidate* pair of the MDGRAPE
/// 27-cell scan (N * n_int_g, eq. 6 — no Newton, no cutoff skip) and per
/// (particle, wave) on the WINE pipeline walk; the native kernels pay per
/// Newton pair (N * n_int, eq. 5) and per (particle, wave) of the blocked
/// recurrence DFT/IDFT. Defaults come from bench_backend on the standard
/// NaCl melt (BENCH_backend.json); override with your own measurements for
/// a different host.
struct BackendCostModel {
  double emulator_ns_per_pair = 114.0;
  double native_ns_per_pair = 271.0;
  double emulator_ns_per_wave = 285.0;
  double native_ns_per_wave = 6.3;

  double ns_per_pair(Backend b) const {
    return b == Backend::kNative ? native_ns_per_pair : emulator_ns_per_pair;
  }
  double ns_per_wave(Backend b) const {
    return b == Backend::kNative ? native_ns_per_wave : emulator_ns_per_wave;
  }
};

/// Predicted single-thread wall clock of one force evaluation on the host
/// for the given backend (both parts run on the same CPU, so they sum).
StepTiming predict_backend_step(const BackendCostModel& costs,
                                Backend backend, double n_particles,
                                double box, const EwaldParameters& params);

/// The backend the auto-selector picks for a host run: the one with the
/// smaller predicted step time. `accuracy_needs_emulator` forces the
/// emulator when the caller wants the hardware's exact fixed-point force
/// law (e.g. to reproduce machine trajectories bit-for-bit).
Backend recommended_backend(const BackendCostModel& costs, double n_particles,
                            double box, const EwaldParameters& params,
                            bool accuracy_needs_emulator = false);

}  // namespace mdm::perf
