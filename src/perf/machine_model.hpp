#pragma once

/// \file machine_model.hpp
/// Analytic performance model of the MDM configurations discussed in the
/// paper (secs. 3, 5, 6): chip counts, peak speeds, efficiencies and the
/// communication fabric. Together with the operation-count model of
/// ewald/flops.hpp this regenerates Tables 1, 4 and 5.

#include <algorithm>
#include <string>

#include "ewald/flops.hpp"
#include "ewald/parameters.hpp"

namespace mdm::perf {

/// One machine configuration.
struct MachineModel {
  std::string name;

  // --- special-purpose units --------------------------------------------
  int mdgrape_chips = 0;
  int wine_chips = 0;
  double mdgrape_chip_gflops = 16.0;  ///< sec. 3.5.3 (100 MHz, 4 pipelines)
  double wine_chip_gflops = 20.0;     ///< sec. 3.4.3 (66.6 MHz, 8 pipelines)
  /// Sustained fraction of peak (Table 5's "efficiency").
  double mdgrape_efficiency = 1.0;
  double wine_efficiency = 1.0;

  // --- conventional computer alternative ---------------------------------
  /// When true, both Ewald parts run on a general-purpose computer at
  /// `host_flops` and the real-space part uses Newton's third law + exact
  /// cutoff (N_int, not N_int_g).
  bool conventional = false;
  double host_flops = 0.0;

  // --- fabric (sec. 6.1) --------------------------------------------------
  double pci_bandwidth_bytes = 132e6;      ///< 32-bit PCI
  double network_bandwidth_bytes = 160e6;  ///< Myrinet, per link
  int node_count = 4;

  double mdgrape_peak_flops() const {
    return mdgrape_chips * mdgrape_chip_gflops * 1e9;
  }
  double wine_peak_flops() const {
    return wine_chips * wine_chip_gflops * 1e9;
  }
  double mdgrape_sustained_flops() const {
    return mdgrape_peak_flops() * mdgrape_efficiency;
  }
  double wine_sustained_flops() const {
    return wine_peak_flops() * wine_efficiency;
  }
  double peak_flops() const {
    return conventional ? host_flops
                        : mdgrape_peak_flops() + wine_peak_flops();
  }

  /// The machine of the July-2000 measurement: 64 MDGRAPE-2 chips (1 Tflops)
  /// + 2,240 WINE-2 chips (45 Tflops). Efficiencies from Table 5.
  static MachineModel mdm_current();
  /// End-of-2000 target: 1,536 + 2,688 chips, 25 + 54 Tflops, ~50% eff.
  static MachineModel mdm_future();
  /// General-purpose computer with the same *effective* speed as the
  /// current MDM (the paper's Table 4 comparison column).
  static MachineModel conventional_equivalent(double flops = 1.34e12);
};

/// Predicted timing of one MD step for a machine/workload pair.
struct StepTiming {
  double real_seconds = 0.0;        ///< real-space force part
  double wavenumber_seconds = 0.0;  ///< wavenumber force part
  double host_seconds = 0.0;        ///< O(N) integration etc.
  double comm_seconds = 0.0;        ///< host<->board + network traffic

  /// WINE-2 and MDGRAPE-2 are independent backends fed the same positions
  /// (sec. 3.1), so their work overlaps; the host/O(N) parts serialize.
  /// A conventional machine runs both parts on the same CPUs (sum).
  bool concurrent_backends = true;
  double total_seconds() const {
    const double backend =
        concurrent_backends ? std::max(real_seconds, wavenumber_seconds)
                            : real_seconds + wavenumber_seconds;
    return backend + host_seconds + comm_seconds;
  }
};

/// Predict one step of an N-particle Ewald MD run at the given parameters.
StepTiming predict_step(const MachineModel& machine, double n_particles,
                        double box, const EwaldParameters& params);

/// The alpha this machine prefers (sec. 5: "optimized for our hardware").
double optimal_alpha(const MachineModel& machine, double n_particles,
                     const EwaldAccuracy& accuracy = {});

}  // namespace mdm::perf
