#include "perf/solver_select.hpp"

#include <algorithm>
#include <cmath>

namespace mdm::perf {

const char* to_string(KspaceMethod method) {
  switch (method) {
    case KspaceMethod::kStructureFactor: return "structure-factor";
    case KspaceMethod::kPme: return "pme";
    case KspaceMethod::kBarnesHut: return "barnes-hut";
  }
  return "?";
}

std::vector<SolverPrediction> predict_kspace_solvers(
    const SolverCostModel& costs, double n_particles, double box,
    const EwaldParameters& ewald, const PmeParameters& pme,
    double accuracy_target) {
  std::vector<SolverPrediction> out;

  // Exact structure-factor sum: every (particle, half-space wave) pair pays
  // the DFT + IDFT walk (eq. 13 wave count).
  {
    const auto flops = ewald_step_flops(n_particles, box, ewald);
    SolverPrediction p;
    p.method = KspaceMethod::kStructureFactor;
    p.seconds = n_particles * flops.n_wv *
                costs.backend.native_ns_per_wave * 1e-9;
    p.rms_error = costs.structure_factor_rms;
    out.push_back(p);
  }

  // PME: the SmoothPme flop model (spread/gather ~ 2 N p^3 transcendental
  // weights, two K^3 FFT sweeps) at one host rate.
  {
    const double k3 = double(pme.grid) * pme.grid * pme.grid;
    const double p3 = double(pme.order) * pme.order * pme.order;
    const double flops = 2.0 * n_particles * p3 * 10.0 +
                         2.0 * 5.0 * k3 * std::log2(std::max(k3, 2.0));
    SolverPrediction p;
    p.method = KspaceMethod::kPme;
    p.seconds = flops * costs.pme_ns_per_flop * 1e-9;
    p.rms_error = costs.pme_rms;
    out.push_back(p);
  }

  // Barnes-Hut: interaction-list length scales ~ log2 N from the measured
  // theta = 0.5 anchor.
  {
    const double anchor_log = std::log2(std::max(costs.tree_anchor_n, 2.0));
    const double ipp = costs.tree_anchor_interactions *
                       std::log2(std::max(n_particles, 2.0)) / anchor_log;
    SolverPrediction p;
    p.method = KspaceMethod::kBarnesHut;
    p.seconds = n_particles * std::min(ipp, n_particles - 1.0) *
                costs.tree_ns_per_interaction * 1e-9;
    p.rms_error = costs.tree_rms;
    out.push_back(p);
  }

  for (auto& p : out) p.meets_target = p.rms_error <= accuracy_target;
  return out;
}

namespace {

KspaceMethod pick(const std::vector<SolverPrediction>& candidates) {
  const SolverPrediction* best = nullptr;
  for (const auto& p : candidates)
    if (p.meets_target && (!best || p.seconds < best->seconds)) best = &p;
  if (!best)  // nothing admissible: fail toward accuracy, not speed
    for (const auto& p : candidates)
      if (!best || p.rms_error < best->rms_error) best = &p;
  return best->method;
}

}  // namespace

KspaceMethod recommended_kspace_solver(const SolverCostModel& costs,
                                       double n_particles, double box,
                                       const EwaldParameters& ewald,
                                       const PmeParameters& pme,
                                       double accuracy_target,
                                       bool allow_tree) {
  auto all = predict_kspace_solvers(costs, n_particles, box, ewald, pme,
                                    accuracy_target);
  if (!allow_tree)
    all.erase(std::remove_if(all.begin(), all.end(),
                             [](const SolverPrediction& p) {
                               return p.method == KspaceMethod::kBarnesHut;
                             }),
              all.end());
  return pick(all);
}

int recommended_pme_mesh(const EwaldParameters& ewald, int order) {
  const double need =
      std::max({4.0 * ewald.lk_cut, 2.0 * double(order), 32.0});
  int grid = 32;
  while (double(grid) < need) grid *= 2;
  return grid;
}

KspaceMethod recommended_app_solver(const SolverCostModel& costs,
                                    double n_particles, double box,
                                    const EwaldParameters& ewald,
                                    const PmeParameters& pme,
                                    double accuracy_target) {
  return recommended_kspace_solver(costs, n_particles, box, ewald, pme,
                                   accuracy_target, /*allow_tree=*/false);
}

}  // namespace mdm::perf
