#pragma once

/// \file table4.hpp
/// Regeneration of the paper's Table 4 ("Performance of simulation"): for
/// each machine column the Ewald parameters, interaction counts, per-step
/// operation counts, step time and the calculation/effective speeds.
///
/// Two variants are produced:
///  * paper()  - the paper's own inputs (alpha = 85 / 30.1 / 50.3, measured
///    43.8 s/step for the current machine, estimated 4.48 s for the future
///    one); every derived number should match the published table.
///  * modeled() - alpha chosen by our optimizer and step time predicted by
///    the machine model; shows the same shape without using any measured
///    input.

#include <string>
#include <vector>

#include "perf/machine_model.hpp"
#include "util/table.hpp"

namespace mdm::perf {

/// The workload of sec. 5.
struct PaperWorkload {
  double n_particles = 18821096.0;
  double box = 850.0;
  EwaldAccuracy accuracy{};
};

struct Table4Column {
  std::string system;
  double n = 0.0;
  double alpha = 0.0;
  double r_cut = 0.0;
  double lk_cut = 0.0;
  double n_int = 0.0;
  double n_int_g = 0.0;  ///< 0 for the conventional column
  double n_wv = 0.0;
  bool grape_counting = false;
  double real_flops = 0.0;
  double wavenumber_flops = 0.0;
  double total_flops = 0.0;
  double sec_per_step = 0.0;
  double calc_speed_tflops = 0.0;
  double effective_speed_tflops = 0.0;
};

struct Table4 {
  PaperWorkload workload;
  std::vector<Table4Column> columns;  ///< current, conventional, future

  /// Render in the paper's layout (rows = quantities, columns = machines).
  AsciiTable render(const std::string& title) const;
};

/// Build one column for a machine at a given alpha and step time.
Table4Column make_column(const std::string& name, const PaperWorkload& w,
                         double alpha, bool grape_counting,
                         double sec_per_step, double min_total_flops);

/// The published table (paper alphas and step times).
Table4 table4_paper();

/// Fully model-derived variant (optimizer alphas, predicted step times).
Table4 table4_modeled();

/// The paper's measured wall clock for the current machine.
inline constexpr double kMeasuredSecondsPerStep = 43.8;
/// The paper's estimate for the future machine.
inline constexpr double kFutureSecondsPerStep = 4.48;

}  // namespace mdm::perf
