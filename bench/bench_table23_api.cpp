/// \file bench_table23_api.cpp
/// Walks the library interfaces of the paper's Tables 2 and 3 (the WINE-2
/// and MDGRAPE-2 driver routines of sec. 4) end to end, timing each call on
/// the simulators and printing the routine inventory.

#include <cstdio>

#include "core/lattice.hpp"
#include "ewald/parameters.hpp"
#include "host/vmpi.hpp"
#include "host/wine2_mpi.hpp"
#include "mdgrape2/api.hpp"
#include "obs/bench_report.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wine2/api.hpp"

int main() {
  using namespace mdm;
  obs::BenchReport report("table23_api");

  auto system = make_nacl_crystal(3);
  Random rng(12);
  for (auto& r : system.positions())
    r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
              rng.uniform(-0.3, 0.3)};
  system.wrap_positions();
  const auto params = clamp_to_box(
      parameters_from_alpha(8.0, system.box()), system.box());
  const double beta = params.alpha / system.box();
  std::vector<double> charges(system.size());
  for (std::size_t i = 0; i < system.size(); ++i)
    charges[i] = system.charge(i);

  // --- Table 2: WINE-2 routines -------------------------------------------
  AsciiTable t2("Table 2: WINE-2 library routines (timed on the simulator, "
                "N = " + format_int((long long)system.size()) + ")");
  t2.set_header({"Category", "Name", "time/ms"});
  {
    const KVectorTable kvectors(system.box(), params.alpha, params.lk_cut);
    wine2::Wine2Library lib;
    Timer t;
    lib.wine2_allocate_board(7);
    t2.add_row({"Initialization", "wine2_allocate_board",
                format_fixed(t.elapsed_ms(), 3)});
    t.reset();
    lib.wine2_initialize_board();
    t2.add_row({"Initialization", "wine2_initialize_board",
                format_fixed(t.elapsed_ms(), 3)});
    t.reset();
    lib.wine2_set_nn(system.size());
    t2.add_row({"Initialization", "wine2_set_nn",
                format_fixed(t.elapsed_ms(), 3)});
    std::vector<Vec3> forces(system.size(), Vec3{});
    t.reset();
    const double pot = lib.calculate_force_and_pot_wavepart_nooffset(
        system.positions(), charges, system.box(), kvectors, forces);
    report.add("wine2.force_call_ms", t.elapsed_ms(), "ms");
    report.add("wine2.wavenumber_potential", pot, "eV");
    t2.add_row({"Force calculation", "calculate_force_and_pot_wavepart"
                "_nooffset", format_fixed(t.elapsed_ms(), 3)});
    t.reset();
    lib.wine2_free_board();
    t2.add_row({"Finalization", "wine2_free_board",
                format_fixed(t.elapsed_ms(), 3)});
    std::printf("%s\nwavenumber potential: %.4f eV\n\n", t2.str().c_str(),
                pot);
  }

  // The MPI-parallel flavour (wine2_set_MPI_community) on 4 virtual ranks.
  {
    const KVectorTable kvectors(system.box(), params.alpha, params.lk_cut);
    vmpi::World world(4);
    Timer t;
    world.run([&](vmpi::Communicator& comm) {
      auto group = comm.subgroup({0, 1, 2, 3});
      host::Wine2MpiLibrary lib;
      lib.wine2_set_MPI_community(&group);
      lib.wine2_allocate_board(1);
      lib.wine2_initialize_board();
      std::vector<Vec3> pos;
      std::vector<double> q;
      for (std::size_t i = comm.rank(); i < system.size(); i += 4) {
        pos.push_back(system.positions()[i]);
        q.push_back(charges[i]);
      }
      lib.wine2_set_nn(pos.size());
      std::vector<Vec3> forces(pos.size(), Vec3{});
      lib.calculate_force_and_pot_wavepart_nooffset(
          pos, q, system.box(), kvectors, forces);
      lib.wine2_free_board();
    });
    report.add("wine2.mpi4_total_ms", t.elapsed_ms(), "ms");
    std::printf("wine2_set_MPI_community + 4-rank parallel force call: "
                "%.1f ms total\n\n", t.elapsed_ms());
  }

  // --- Table 3: MDGRAPE-2 routines ----------------------------------------
  AsciiTable t3("Table 3: MDGRAPE-2 library routines (timed on the "
                "simulator)");
  t3.set_header({"Category", "Name", "time/ms"});
  {
    mdgrape2::MR1Library lib;
    Timer t;
    lib.MR1allocateboard(4);
    t3.add_row({"Initialization", "MR1allocateboard",
                format_fixed(t.elapsed_ms(), 3)});
    t.reset();
    lib.MR1init();
    t3.add_row({"Initialization", "MR1init",
                format_fixed(t.elapsed_ms(), 3)});
    const double species_q[2] = {+1.0, -1.0};
    t.reset();
    lib.MR1SetTable(
        mdgrape2::make_coulomb_real_pass(beta, params.r_cut, species_q));
    t3.add_row({"Initialization", "MR1SetTable (fits 1024 quartics)",
                format_fixed(t.elapsed_ms(), 3)});
    std::vector<Vec3> forces(system.size(), Vec3{});
    t.reset();
    const auto stats = lib.MR1calcvdw_block2(system, params.r_cut, forces);
    report.add("mdgrape2.force_call_ms", t.elapsed_ms(), "ms");
    report.add("mdgrape2.pair_operations",
               double(stats.pair_operations), "pairs");
    t3.add_row({"Force calculation", "MR1calcvdw_block2",
                format_fixed(t.elapsed_ms(), 3)});
    t.reset();
    lib.MR1free();
    t3.add_row({"Finalization", "MR1free",
                format_fixed(t.elapsed_ms(), 3)});
    std::printf("%s\ncell-index pair operations: %llu (N_int_g scan, "
                "no cutoff skip, no Newton's 3rd law)\n",
                t3.str().c_str(),
                static_cast<unsigned long long>(stats.pair_operations));
  }
  report.write();
  return 0;
}
