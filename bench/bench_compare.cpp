// Perf-regression gate (DESIGN.md §10): diff current BENCH_*.json output
// against a committed baseline with per-metric tolerance bands.
//
//   bench_compare --baseline bench/baselines --current . \
//                 [--tolerances bench/baselines/tolerances.json]
//   bench_compare BENCH_a.json BENCH_b.json [--tolerances ...]
//
// Exit status: 0 all in band, 1 regression/missing metric, 2 usage or I/O
// error. CI runs the dir form after regenerating the benches on a small
// fixed workload; timing metrics are informational (machines differ),
// deterministic counts and accuracy metrics gate hard.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_compare.hpp"
#include "obs/json.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--baseline DIR --current DIR | BASE.json CUR.json)"
               " [--tolerances FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir, current_dir, tolerances;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      if (const char* v = next()) baseline_dir = v; else return usage(argv[0]);
    } else if (arg == "--current") {
      if (const char* v = next()) current_dir = v; else return usage(argv[0]);
    } else if (arg == "--tolerances") {
      if (const char* v = next()) tolerances = v; else return usage(argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  const bool dir_mode = !baseline_dir.empty() && !current_dir.empty();
  if (dir_mode == !files.empty() || (!dir_mode && files.size() != 2))
    return usage(argv[0]);

  try {
    mdm::obs::ToleranceRules rules;
    if (!tolerances.empty())
      rules = mdm::obs::ToleranceRules::load(tolerances);
    mdm::obs::CompareReport report =
        dir_mode
            ? mdm::obs::compare_bench_dirs(baseline_dir, current_dir, rules)
            : mdm::obs::compare_bench_files(files[0], files[1], rules);
    if (!dir_mode && !report.deltas.empty())
      mdm::obs::append_unmatched_rule_failures(rules, report,
                                               report.deltas.front().bench);
    mdm::obs::write_text(report, std::cout);
    return report.ok() ? 0 : 1;
  } catch (const mdm::obs::JsonError& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }
}
