/// \file bench_table4_performance.cpp
/// Regenerates the paper's Table 4 ("Performance of simulation") three ways:
///
///  1. paper inputs      - alpha = 85 / 30.1 / 50.3 and the measured
///                         43.8 s/step: every derived entry should match the
///                         published table;
///  2. model-derived     - alpha from the optimizer, step time from the
///                         machine model (no measured inputs);
///  3. measured-on-sim   - the simulated machine actually runs a scaled
///                         workload (default N = 512) and the pair/wave
///                         operation counters verify the operation-count
///                         model that Table 4 is built on.
///
///   ./bench_table4_performance [--cells 4] [--steps 3]

#include <cstdio>

#include "core/lattice.hpp"
#include "core/simulation.hpp"
#include "ewald/flops.hpp"
#include "host/mdm_force_field.hpp"
#include "obs/bench_report.hpp"
#include "perf/table4.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mdm;
  using namespace mdm::perf;
  const CommandLine cli(argc, argv);
  const int cells = static_cast<int>(cli.get_int("cells", 4));
  const int steps = static_cast<int>(cli.get_int("steps", 3));

  std::printf("%s\n",
              table4_paper()
                  .render("Table 4 (paper inputs: alpha and step times from "
                          "the publication)")
                  .str()
                  .c_str());
  std::printf("%s\n",
              table4_modeled()
                  .render("Table 4 (model-derived: optimizer alphas, "
                          "predicted step times - no measured inputs)")
                  .str()
                  .c_str());

  // --- measured on the simulated machine ---------------------------------
  auto system = make_nacl_crystal(cells);
  assign_maxwell_velocities(system, 1200.0, 4);
  host::MdmForceFieldConfig config;
  config.ewald = host::mdm_parameters(double(system.size()), system.box());
  config.mdgrape = {.clusters = 1, .boards_per_cluster = 2};
  config.wine = {.clusters = 1, .boards_per_cluster = 1,
                 .chips_per_board = 4};
  config.potential_interval = 100;  // the paper's sampling interval
  host::MdmForceField machine(config, system.box());

  // Prime (includes the once-per-100-evaluations potential passes), then
  // measure the steady-state per-step counters.
  SimulationConfig prime_protocol;
  prime_protocol.nvt_steps = 1;
  prime_protocol.nve_steps = 0;
  {
    auto warmup = system;
    Simulation prime(warmup, machine, prime_protocol);
    prime.run();
  }
  const auto pairs_before = machine.mdgrape_pair_operations();
  const auto waves_before = machine.wine_wave_particle_operations();

  SimulationConfig protocol;
  protocol.nvt_steps = steps;
  protocol.nve_steps = 0;
  Simulation sim(system, machine, protocol);
  Timer timer;
  sim.run();
  const double seconds = timer.seconds();
  const int evaluations = steps + 1;  // prime + one per step

  const auto flops =
      ewald_step_flops(double(system.size()), system.box(), config.ewald);
  const double measured_pairs =
      double(machine.mdgrape_pair_operations() - pairs_before) / evaluations;
  const double measured_waves =
      double(machine.wine_wave_particle_operations() - waves_before) /
      evaluations;

  AsciiTable t("Measured on the simulated machine (scaled workload)");
  t.set_header({"Quantity", "operation-count model", "simulator counter"});
  t.add_row({"N", format_int(static_cast<long long>(system.size())), "-"});
  t.add_row({"alpha / r_cut / Lk_cut",
             format_fixed(config.ewald.alpha, 2) + " / " +
                 format_fixed(config.ewald.r_cut, 2) + " / " +
                 format_fixed(config.ewald.lk_cut, 2),
             "-"});
  // Four force passes (Coulomb + 3 Tosi-Fumi) share the N*N_int_g scan.
  t.add_row({"MDGRAPE-2 pairs/step (4 passes)",
             format_sci(4.0 * system.size() * flops.n_int_g, 3),
             format_sci(measured_pairs, 3)});
  t.add_row({"WINE-2 (j,n) ops/step (DFT+IDFT)",
             format_sci(2.0 * system.size() * flops.n_wv, 3),
             format_sci(measured_waves, 3)});
  t.add_row({"paper-flops/step (59NN_int_g + 64NN_wv)",
             format_sci(flops.total_grape(), 3),
             format_sci(OperationCounts::kRealPair * measured_pairs / 4.0 +
                            32.0 * measured_waves,
                        3)});
  t.add_row({"simulator wall clock (s/step)", "-",
             format_fixed(seconds / evaluations, 3)});
  std::printf("%s\n", t.str().c_str());
  std::printf("Counters confirm the N_int_g (eq. 6) and N_wv (eq. 13) "
              "models that generate Table 4; absolute wall clock is the "
              "software emulation, not the 46-Tflops machine.\n");

  obs::BenchReport report("table4_performance");
  report.add("n_particles", double(system.size()), "count");
  report.add("model_pairs_per_step", 4.0 * system.size() * flops.n_int_g,
             "pairs");
  report.add("measured_pairs_per_step", measured_pairs, "pairs");
  report.add("model_wave_ops_per_step", 2.0 * system.size() * flops.n_wv,
             "ops");
  report.add("measured_wave_ops_per_step", measured_waves, "ops");
  report.add("wall_s_per_step", seconds / evaluations, "s");
  report.write();
  return 0;
}
