/// \file bench_fleet.cpp
/// Throughput + chaos bench for the sharded serving fleet (DESIGN.md §13).
/// Two phases over the same duplicate-heavy job mix (`--jobs` submissions
/// cycling over `--distinct` specs — the melt-parameter-sweep shape, where
/// many tenants ask for overlapping physics):
///
///   1. baseline: one single-process SimService worker (the bench_serve
///      configuration), every job computed;
///   2. fleet: Router over `--shards` x `--workers` shard processes, with
///      the deterministic result cache and in-flight coalescing.
///
/// Reports both job rates and their ratio to BENCH_fleet.json, and doubles
/// as the fleet acceptance check (exit non-zero on violation):
///   * every fleet submission reaches kCompleted — zero lost jobs, also
///     under `--kill-shard i` (SIGKILL mid-load: migration + resume);
///   * every fleet result is bit-identical to the standalone `run_job` of
///     its spec (samples, final positions and velocities);
///   * with `--min-speedup X`, fleet rate >= X * baseline rate.
///
///   ./bench_fleet [--jobs 80] [--distinct 4] [--shards 2] [--workers 2]
///                 [--cells 2] [--steps 30] [--checkpoint-every 5]
///                 [--kill-shard -1] [--min-speedup 0] [--root bench_fleet]
///
/// CI runs the shard-kill chaos smoke: `--kill-shard 0 --min-speedup 5`.

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "serve/fleet/router.hpp"
#include "serve/runner.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace mdm;

bool samples_equal(const Sample& a, const Sample& b) {
  return a.step == b.step && a.time_ps == b.time_ps &&
         a.temperature_K == b.temperature_K && a.kinetic_eV == b.kinetic_eV &&
         a.potential_eV == b.potential_eV && a.total_eV == b.total_eV &&
         a.pressure_GPa == b.pressure_GPa;
}

bool vecs_equal(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].x != b[i].x || a[i].y != b[i].y || a[i].z != b[i].z)
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int jobs = static_cast<int>(cli.get_int("jobs", 80));
  const int distinct = std::max(1, static_cast<int>(cli.get_int("distinct", 4)));
  const int kill_shard = static_cast<int>(cli.get_int("kill-shard", -1));
  const double min_speedup = cli.get_double("min-speedup", 0.0);
  const std::string root = cli.get_string("root", "bench_fleet");

  const auto spec_for = [&](int i) {
    serve::JobSpec spec;
    spec.tenant = "tenant-" + std::to_string(i % 3);
    spec.cells = static_cast<int>(cli.get_int("cells", 2));
    const int steps = static_cast<int>(cli.get_int("steps", 30));
    spec.nvt_steps = 2 * steps / 3;
    spec.nve_steps = steps - spec.nvt_steps;
    spec.seed = static_cast<std::uint64_t>(i % distinct + 1);
    // Fleet jobs checkpoint (the router adds manifests), so a killed
    // shard's jobs resume instead of recomputing. The baseline service has
    // no checkpoint root, so this is inert there, and run_job references
    // never see a checkpoint dir at all.
    spec.checkpoint_interval =
        static_cast<int>(cli.get_int("checkpoint-every", 5));
    return spec;
  };

  // Standalone references, one per distinct spec: the bit-identity anchors.
  std::vector<serve::JobResult> references;
  for (int d = 0; d < distinct; ++d) {
    references.push_back(serve::run_job(spec_for(d)));
    if (references.back().state != serve::JobState::kCompleted) {
      std::fprintf(stderr, "reference run %d failed\n", d);
      return 1;
    }
  }

  // ---- phase 1: single-process baseline (every job computed) ----
  double baseline_s;
  {
    serve::ServiceConfig config;
    config.workers = 1;
    config.threads_per_job = 1;
    config.admission.max_queue_depth = static_cast<std::size_t>(jobs) + 1;
    // The whole batch queues at once; size the memory budget to match.
    config.admission.max_inflight_bytes = std::size_t(4) << 30;
    serve::SimService service(config);
    service.start();
    Timer timer;
    std::vector<serve::JobHandle> handles;
    for (int i = 0; i < jobs; ++i) handles.push_back(service.submit(spec_for(i)));
    service.drain();
    baseline_s = timer.seconds();
    for (const auto& h : handles)
      if (h.wait().state != serve::JobState::kCompleted) {
        std::fprintf(stderr, "baseline job %llu did not complete\n",
                     static_cast<unsigned long long>(h.id()));
        return 1;
      }
  }
  const double baseline_rate = jobs / (baseline_s > 0 ? baseline_s : 1e-9);
  std::printf("baseline: %d jobs on 1 worker in %.2f s (%.1f jobs/s)\n",
              jobs, baseline_s, baseline_rate);

  // ---- phase 2: the fleet, same mix ----
  auto& reg = obs::Registry::global();
  const std::uint64_t completed0 = reg.counter_value("fleet.completed");
  int violations = 0;
  double fleet_s;
  {
    serve::fleet::FleetConfig config;
    config.shards = static_cast<int>(cli.get_int("shards", 2));
    config.workers_per_shard = static_cast<int>(cli.get_int("workers", 2));
    config.root = root;
    serve::fleet::Router router(config);
    router.start();

    Timer timer;
    std::vector<serve::JobHandle> handles;
    for (int i = 0; i < jobs; ++i) handles.push_back(router.submit(spec_for(i)));

    if (kill_shard >= 0) {
      // Chaos: SIGKILL once the fleet is genuinely mid-load.
      const std::uint64_t target =
          completed0 + static_cast<std::uint64_t>(jobs) / 4;
      while (reg.counter_value("fleet.completed") < target &&
             router.pending_jobs() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (router.signal_shard(kill_shard, SIGKILL))
        std::printf("chaos: SIGKILLed shard %d mid-load\n", kill_shard);
    }

    router.drain();
    fleet_s = timer.seconds();

    // Zero lost jobs + bit-identical results, kill or no kill.
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const auto& h = handles[i];
      if (!h.done()) {
        std::fprintf(stderr, "VIOLATION: fleet job %llu not terminal\n",
                     static_cast<unsigned long long>(h.id()));
        ++violations;
        continue;
      }
      const auto r = h.wait();
      if (r.state != serve::JobState::kCompleted) {
        std::fprintf(stderr, "VIOLATION: fleet job %llu ended %s (%s)\n",
                     static_cast<unsigned long long>(h.id()),
                     serve::to_string(r.state), r.error.c_str());
        ++violations;
        continue;
      }
      const auto& ref = references[static_cast<std::size_t>(
          static_cast<int>(i) % distinct)];
      bool identical = r.samples.size() == ref.samples.size() &&
                       vecs_equal(r.positions, ref.positions) &&
                       vecs_equal(r.velocities, ref.velocities);
      for (std::size_t s = 0; identical && s < r.samples.size(); ++s)
        identical = samples_equal(r.samples[s], ref.samples[s]);
      if (!identical) {
        std::fprintf(stderr,
                     "VIOLATION: fleet job %llu diverged from the "
                     "standalone run of its spec\n",
                     static_cast<unsigned long long>(h.id()));
        ++violations;
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(root, ec);

  const double fleet_rate = jobs / (fleet_s > 0 ? fleet_s : 1e-9);
  const double speedup = fleet_rate / (baseline_rate > 0 ? baseline_rate : 1e-9);
  const auto c = [&](const char* name) {
    return static_cast<long long>(reg.counter_value(name));
  };
  std::printf("fleet:    %d jobs in %.2f s (%.1f jobs/s) — %.1fx baseline\n",
              jobs, fleet_s, fleet_rate, speedup);
  std::printf("          cache_hits=%lld coalesced=%lld retries=%lld "
              "failovers=%lld migrated=%lld restarts=%lld\n",
              c("fleet.cache.hits"), c("fleet.cache.coalesced"),
              c("fleet.retries"), c("fleet.failovers"), c("fleet.migrated"),
              c("fleet.shard.restarts"));

  obs::BenchReport report("fleet");
  report.add("jobs", jobs, "jobs");
  report.add("distinct_specs", distinct, "specs");
  report.add("baseline_rate", baseline_rate, "jobs/s");
  report.add("fleet_rate", fleet_rate, "jobs/s");
  report.add("speedup", speedup, "x");
  report.add("cache_hits", static_cast<double>(c("fleet.cache.hits")),
             "hits");
  report.add("coalesced", static_cast<double>(c("fleet.cache.coalesced")),
             "jobs");
  report.add("failovers", static_cast<double>(c("fleet.failovers")),
             "count");
  report.add("violations", violations, "count");
  report.write();

  if (violations > 0) {
    std::fprintf(stderr, "\n%d fleet violation(s)\n", violations);
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "\nspeedup %.2fx below the %.2fx contract\n",
                 speedup, min_speedup);
    return 1;
  }
  std::printf("fleet checks: OK\n");
  return 0;
}
