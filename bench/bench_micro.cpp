/// \file bench_micro.cpp
/// Google-benchmark micro suite: throughput of the kernels every higher
/// layer is built on - the Ewald pair kernel, the structure-factor
/// recurrence, cell-list construction, both hardware pipelines, the trig
/// unit and the fixed-point primitives.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "obs/bench_report.hpp"

#include "core/cell_list.hpp"
#include "core/lattice.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "ewald/pme.hpp"
#include "mdgrape2/pipeline.hpp"
#include "util/fft.hpp"
#include "util/fixed_point.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "wine2/pipeline.hpp"

namespace {

using namespace mdm;

std::vector<Vec3> random_positions(std::size_t n, double box,
                                   std::uint64_t seed) {
  Random rng(seed);
  std::vector<Vec3> pos(n);
  for (auto& r : pos)
    r = {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)};
  return pos;
}

/// The 59-flop real-space pair kernel (erfc + exp + sqrt + div).
void BM_EwaldRealPairKernel(benchmark::State& state) {
  Random rng(1);
  const double beta = 0.3;
  double acc = 0.0;
  double r2 = rng.uniform(4.0, 100.0);
  for (auto _ : state) {
    const double r = std::sqrt(r2);
    const double e =
        std::erfc(beta * r) / r + 0.2 * std::exp(-beta * beta * r2);
    acc += e / r2;
    r2 += 1e-9;  // defeat constant folding
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EwaldRealPairKernel);

void BM_CellListBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double box = std::cbrt(double(n) / 0.0306);
  const auto pos = random_positions(n, box, 2);
  CellList cells(box, box / std::max(3, int(std::cbrt(double(n) / 16))));
  for (auto _ : state) {
    cells.build(pos);
    benchmark::DoNotOptimize(cells.order().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CellListBuild)->Arg(512)->Arg(4096)->Arg(32768);

void BM_EwaldRealSpace(benchmark::State& state) {
  auto system = make_nacl_crystal(static_cast<int>(state.range(0)));
  const auto params =
      software_parameters(double(system.size()), system.box());
  EwaldCoulomb ewald(params, system.box());
  std::vector<Vec3> forces(system.size());
  for (auto _ : state) {
    for (auto& f : forces) f = Vec3{};
    benchmark::DoNotOptimize(ewald.add_real_space(system, forces).potential);
  }
  state.SetItemsProcessed(state.iterations() * system.size());
}
BENCHMARK(BM_EwaldRealSpace)->Arg(2)->Arg(4);

void BM_StructureFactors(benchmark::State& state) {
  auto system = make_nacl_crystal(static_cast<int>(state.range(0)));
  const auto params =
      software_parameters(double(system.size()), system.box());
  EwaldCoulomb ewald(params, system.box());
  std::vector<double> charges(system.size());
  for (std::size_t i = 0; i < system.size(); ++i)
    charges[i] = system.charge(i);
  for (auto _ : state) {
    const auto sf = ewald.structure_factors(system.positions(), charges);
    benchmark::DoNotOptimize(sf.s.data());
  }
  state.SetItemsProcessed(state.iterations() * system.size() *
                          ewald.kvectors().size());
}
BENCHMARK(BM_StructureFactors)->Arg(2)->Arg(4);

void BM_PmeReciprocal(benchmark::State& state) {
  auto system = make_nacl_crystal(static_cast<int>(state.range(0)));
  const auto params =
      software_parameters(double(system.size()), system.box());
  SmoothPme pme({params.alpha, params.r_cut, 32, 4}, system.box());
  std::vector<Vec3> forces(system.size());
  for (auto _ : state) {
    for (auto& f : forces) f = Vec3{};
    benchmark::DoNotOptimize(pme.add_reciprocal(system, forces));
  }
  state.SetItemsProcessed(state.iterations() * system.size());
}
BENCHMARK(BM_PmeReciprocal)->Arg(2)->Arg(4);

void BM_Fft3D(benchmark::State& state) {
  Grid3D grid(static_cast<std::size_t>(state.range(0)));
  Random rng(8);
  for (auto& v : grid.data()) v = {rng.uniform(-1, 1), 0.0};
  for (auto _ : state) {
    grid.transform(false);
    benchmark::DoNotOptimize(grid.data().data());
  }
  state.SetItemsProcessed(state.iterations() * grid.size());
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32);

void BM_Mdgrape2Pipeline(benchmark::State& state) {
  const double box = 40.0;
  const double charges[2] = {+1.0, -1.0};
  const auto pass = mdgrape2::make_coulomb_real_pass(0.2, 12.0, charges);
  mdgrape2::Pipeline pipe;
  pipe.load(&pass);
  Random rng(3);
  mdgrape2::StoredParticle i{
      mdgrape2::to_cyclic({20, 20, 20}, box), 0};
  std::vector<mdgrape2::StoredParticle> stream;
  for (int k = 0; k < 256; ++k)
    stream.push_back({mdgrape2::to_cyclic({rng.uniform(0, box),
                                           rng.uniform(0, box),
                                           rng.uniform(0, box)},
                                          box),
                      k % 2});
  Vec3 force;
  for (auto _ : state) {
    pipe.accumulate_force(i, stream, box, force);
    benchmark::DoNotOptimize(force.x);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_Mdgrape2Pipeline);

void BM_Wine2DftPipeline(benchmark::State& state) {
  const auto formats = wine2::WineFormats::paper();
  wine2::TrigUnit trig(formats);
  wine2::Pipeline pipe(formats, trig);
  std::vector<wine2::WaveSlot> waves(8);
  for (int k = 0; k < 8; ++k) waves[k].n[0] = k + 1;
  pipe.load_waves(waves);
  Random rng(4);
  std::vector<wine2::WineParticle> particles;
  for (int k = 0; k < 64; ++k)
    particles.push_back(wine2::make_wine_particle(
        {rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)}, 10.0,
        k % 2 ? 1.0 : -1.0, 1.0, formats));
  for (auto _ : state) {
    const auto acc = pipe.run_dft(particles);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * waves.size() *
                          particles.size());
}
BENCHMARK(BM_Wine2DftPipeline);

void BM_TrigUnit(benchmark::State& state) {
  wine2::TrigUnit trig(wine2::WineFormats::paper());
  std::uint64_t phase = 12345;
  double acc = 0.0;
  for (auto _ : state) {
    acc += trig.sine(phase);
    phase += 98765;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrigUnit);

void BM_FixedPointMul(benchmark::State& state) {
  const QFormat in{.int_bits = 8, .frac_bits = 24};
  const QFormat out{.int_bits = 8, .frac_bits = 24};
  Fixed a = Fixed::from_double(1.2345, in);
  const Fixed b = Fixed::from_double(0.9876, in);
  for (auto _ : state) {
    a = mul(a, b, out);
    benchmark::DoNotOptimize(a.raw());
    if (a.raw() == 0) a = Fixed::from_double(1.2345, in);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FixedPointMul);

void BM_MinimumImage(benchmark::State& state) {
  Random rng(5);
  const double box = 25.0;
  Vec3 a{rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)};
  const Vec3 b{rng.uniform(0, box), rng.uniform(0, box),
               rng.uniform(0, box)};
  double acc = 0.0;
  for (auto _ : state) {
    acc += norm2(minimum_image(a, b, box));
    a.x += 1e-6;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinimumImage);

/// ConsoleReporter that also captures every run into a BenchReport so the
/// micro suite participates in the bench_compare regression gate.
class ReportingConsole : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsole(obs::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::string key = run.benchmark_name();
      for (auto& c : key)
        if (c == '/') c = '.';
      report_.add(key + ".time_per_iter", run.GetAdjustedRealTime(),
                  benchmark::GetTimeUnitString(run.time_unit));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end())
        report_.add(key + ".items_per_second", items->second.value,
                    "items/s");
    }
  }

 private:
  obs::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mdm::obs::BenchReport report("micro");
  ReportingConsole reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
