/// \file bench_fig2_temperature.cpp
/// Reproduces Figure 2: temperature against time for a set of system sizes,
/// NVT (velocity scaling) for the first 2/3 of the run and NVE for the last
/// 1/3. The paper's point is that the relative temperature fluctuation
/// shrinks as 1/sqrt(N); we run scaled-down sizes at the paper's density,
/// temperature (1200 K) and time step (2 fs) and print the fluctuation of
/// each size against the canonical-sampler prediction sqrt(2/(3N)).
///
/// Paper sizes: N = 1.10e5 / 1.48e6 / 1.88e7 (n = 24 / 57 / 133 supercells).
/// Defaults here: n = 4, 8 (N = 512, 4096); --full adds n = 12 (N = 13824);
/// the paper's own smallest size is n = 24 (runnable with --sizes 24 given
/// ~an hour).
///
///   ./bench_fig2_temperature [--sizes 4,8] [--steps 360] [--full]
///                            [--csv-prefix fig2] [--seed 1]

#include <cmath>
#include <cstdio>
#include <string>

#include "core/io.hpp"
#include "core/lattice.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  auto sizes = cli.get_int_list("sizes", {4, 8});
  if (cli.get_bool("full")) sizes.push_back(12);
  const int steps = static_cast<int>(cli.get_int("steps", 360));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string csv_prefix = cli.get_string("csv-prefix", "");

  std::printf("Figure 2: temperature fluctuation vs system size "
              "(T = 1200 K, dt = 2 fs, NVT %d steps then NVE %d steps)\n\n",
              2 * steps / 3, steps - 2 * steps / 3);

  AsciiTable table("Relative temperature fluctuation in the NVE phase");
  table.set_header({"n", "N", "<T>/K", "sigma_T/<T>", "sqrt(2/3N)",
                    "ratio", "s/step"});

  obs::BenchReport report("fig2_temperature");
  std::vector<double> measured, predicted;
  for (const auto n_cells : sizes) {
    auto system = make_nacl_crystal(static_cast<int>(n_cells));
    assign_maxwell_velocities(system, 1200.0, seed + n_cells);

    const auto params =
        software_parameters(double(system.size()), system.box());
    CompositeForceField field;
    field.add(std::make_unique<EwaldCoulomb>(params, system.box()));
    field.add(std::make_unique<TosiFumiShortRange>(
        TosiFumiParameters::nacl(), params.r_cut, /*shift_energy=*/true));

    SimulationConfig protocol;
    protocol.nvt_steps = 2 * steps / 3;
    protocol.nve_steps = steps - protocol.nvt_steps;
    Simulation sim(system, field, protocol);

    Timer timer;
    sim.run();
    const double per_step = timer.seconds() / steps;

    RunningStats t_stats;
    for (const auto& s : sim.nve_samples()) t_stats.add(s.temperature_K);
    const double rel = t_stats.stddev() / t_stats.mean();
    const double ideal =
        expected_relative_temperature_fluctuation(system.size());
    measured.push_back(rel);
    predicted.push_back(ideal);

    table.add_row({format_int(n_cells),
                   format_int(static_cast<long long>(system.size())),
                   format_fixed(t_stats.mean(), 1), format_fixed(rel, 5),
                   format_fixed(ideal, 5), format_fixed(rel / ideal, 2),
                   format_fixed(per_step, 3)});
    const std::string prefix = "n" + std::to_string(n_cells) + ".";
    report.add(prefix + "mean_temperature", t_stats.mean(), "K");
    report.add(prefix + "rel_fluctuation", rel, "rel");
    report.add(prefix + "fluctuation_vs_ideal", rel / ideal, "x");
    report.add(prefix + "s_per_step", per_step, "s");

    if (!csv_prefix.empty()) {
      const std::string path =
          csv_prefix + "_n" + std::to_string(n_cells) + ".csv";
      write_samples_csv(path, sim.samples());
      std::printf("wrote %s\n", path.c_str());
    }
  }
  std::printf("%s\n", table.str().c_str());

  if (measured.size() >= 2) {
    const double shrink = measured.front() / measured.back();
    const double ideal_shrink = predicted.front() / predicted.back();
    std::printf("Fluctuation shrinks by %.2fx from the smallest to the "
                "largest size (1/sqrt(N) predicts %.2fx) - the paper's "
                "Fig. 2 message, which motivates its 18.8M-particle run.\n",
                shrink, ideal_shrink);
    std::printf("(The ratio column is below 1 because the NVE ensemble "
                "suppresses kinetic fluctuations by ~sqrt(1-3NkB/2Cv) ~ 0.7 "
                "and short correlated series underestimate sigma.)\n");
  }
  std::printf("\nPaper sizes for reference: n = 24 -> N = 110,592 (Fig. 2c),"
              " n = 57 -> 1,481,544 (2b), n = 133 -> 18,821,096 (2a).\n");
  report.write();
  return 0;
}
