/// \file bench_treecode.cpp
/// Sec. 6.3 implemented: "we can accelerate fast methods with MDGRAPE-2 ...
/// If we use tree-code with MDM, we can not only compare the accuracy with
/// Ewald method but also perform larger simulation that cannot be done with
/// Ewald method." A Barnes-Hut O(N log N) solver built on our octree runs
/// its interaction lists either in software or through the MDGRAPE-2
/// pipeline, and is compared against the direct O(N^2) sum for accuracy and
/// work.
///
///   ./bench_treecode [--n 8000] [--mdgrape-n 500]

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/bench_report.hpp"
#include "tree/barnes_hut.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace {

using namespace mdm;

struct Cloud {
  std::vector<Vec3> positions;
  std::vector<double> charges;
};

Cloud make_cloud(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  Cloud c;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 r;
    do {
      r = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    } while (norm2(r) > 1.0);
    c.positions.push_back(15.0 * r);
    c.charges.push_back(i % 2 ? 1.0 : -1.0);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdm::tree;
  const CommandLine cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 8000));
  const auto n_hw = static_cast<std::size_t>(cli.get_int("mdgrape-n", 500));

  const auto cloud = make_cloud(n, 3);
  std::printf("Barnes-Hut tree-code on a %zu-charge open cloud\n\n", n);

  // Direct reference.
  std::vector<Vec3> ref(n, Vec3{});
  Timer timer;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 d = cloud.positions[i] - cloud.positions[j];
      const double r2 = norm2(d);
      const double s = units::kCoulomb * cloud.charges[i] *
                       cloud.charges[j] / (r2 * std::sqrt(r2));
      ref[i] += s * d;
      ref[j] -= s * d;
    }
  }
  const double direct_time = timer.seconds();
  double ref_rms = 0.0;
  for (const auto& f : ref) ref_rms += norm2(f);

  mdm::obs::BenchReport report("treecode");
  report.add("direct.s_per_eval", direct_time, "s");
  AsciiTable table("theta sweep (software traversal + kernel)");
  table.set_header({"theta", "interactions/particle", "vs direct", "rms rel."
                    " force error", "time/s", "speedup"});
  table.add_row({"direct", format_fixed(double(n - 1), 0), "1.00", "0",
                 format_fixed(direct_time, 3), "1.0"});
  for (double theta : {0.3, 0.5, 0.7, 1.0}) {
    BarnesHutCoulomb bh(theta);
    std::vector<Vec3> forces(n, Vec3{});
    timer.reset();
    const auto stats = bh.compute(cloud.positions, cloud.charges, forces);
    const double t = timer.seconds();
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) err += norm2(forces[i] - ref[i]);
    table.add_row({format_fixed(theta, 1), format_fixed(stats.mean_list(), 0),
                   format_fixed(stats.mean_list() / double(n - 1), 3),
                   format_sci(std::sqrt(err / ref_rms), 2),
                   format_fixed(t, 3), format_fixed(direct_time / t, 1)});
    const std::string prefix = "theta" + format_fixed(theta, 1) + ".";
    report.add(prefix + "interactions_per_particle", stats.mean_list(),
               "pairs");
    report.add(prefix + "rms_rel_error", std::sqrt(err / ref_rms), "rel");
    report.add(prefix + "s_per_eval", t, "s");
  }
  std::printf("%s\n", table.str().c_str());

  // MDGRAPE-2 acceleration of the same traversal.
  const auto hw_cloud = make_cloud(n_hw, 4);
  BarnesHutCoulomb bh(0.5);
  std::vector<Vec3> sw(n_hw, Vec3{}), hw(n_hw, Vec3{});
  bh.compute(hw_cloud.positions, hw_cloud.charges, sw);
  mdgrape2::Chip chip;
  bh.compute_on_mdgrape(hw_cloud.positions, hw_cloud.charges, chip, hw);
  double err = 0.0, rms = 0.0;
  for (std::size_t i = 0; i < n_hw; ++i) {
    err += norm2(hw[i] - sw[i]);
    rms += norm2(sw[i]);
  }
  std::printf("MDGRAPE-2-accelerated tree (N = %zu, theta = 0.5): pipeline "
              "vs software kernel rms rel. difference %.2e (single-precision "
              "datapath); %llu pair operations on the chip.\n",
              n_hw, std::sqrt(err / rms),
              static_cast<unsigned long long>(chip.pair_operations()));
  report.add("mdgrape.hw_vs_sw_rel_diff", std::sqrt(err / rms), "rel");
  report.add("mdgrape.pair_operations", double(chip.pair_operations()),
             "pairs");
  std::printf("\nThe tree needs no periodic box and its list length grows "
              "~log N: this is the \"larger simulation that cannot be done "
              "with Ewald method\" of sec. 6.3.\n");
  report.write();
  return 0;
}
