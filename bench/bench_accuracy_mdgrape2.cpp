/// \file bench_accuracy_mdgrape2.cpp
/// Reproduces the sec. 3.5.4 accuracy claim: "The relative accuracy of a
/// pairwise force is about 1e-7, since most of the arithmetic units in the
/// pipeline use IEEE754 single floating point format." Measures the
/// pairwise Coulomb real-space force of the pipeline emulator against the
/// double formula, plus a segment-count ablation of the function evaluator.
///
///   ./bench_accuracy_mdgrape2 [--pairs 20000]

#include <cmath>
#include <cstdio>

#include "mdgrape2/pipeline.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mdm;
  using namespace mdm::mdgrape2;
  const CommandLine cli(argc, argv);
  const int pairs = static_cast<int>(cli.get_int("pairs", 20000));

  const double box = 80.0;
  const double beta = 0.12;
  const double r_cut = 26.4;  // the paper's cutoff
  const double charges[2] = {+1.0, -1.0};
  const auto pass = make_coulomb_real_pass(beta, r_cut, charges);
  Pipeline pipe;
  pipe.load(&pass);

  Random rng(3);
  RunningStats err;
  for (int rep = 0; rep < pairs; ++rep) {
    const Vec3 ri{rng.uniform(0, box), rng.uniform(0, box),
                  rng.uniform(0, box)};
    Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    dir /= norm(dir);
    const double r = rng.uniform(1.5, 0.95 * r_cut);
    const Vec3 rj = wrap_position(ri + r * dir, box);

    StoredParticle pi{to_cyclic(ri, box), 0};
    StoredParticle pj{to_cyclic(rj, box), 1};
    Vec3 hw{};
    pipe.accumulate_force(pi, {&pj, 1}, box, hw);

    const Vec3 d = minimum_image(ri, rj, box);
    const double rr = norm(d);
    const double s = units::kCoulomb * charges[0] * charges[1] *
                     (std::erfc(beta * rr) / (rr * rr * rr) +
                      2.0 * beta / std::sqrt(M_PI) *
                          std::exp(-beta * beta * rr * rr) / (rr * rr));
    const Vec3 ref = s * d;
    err.add(norm(hw - ref) / norm(ref));
  }
  std::printf("MDGRAPE-2 pairwise Coulomb force vs double reference "
              "(%d random pairs, r in [1.5, %.1f] A)\n",
              pairs, 0.95 * r_cut);
  std::printf("  mean relative error: %.2e   max: %.2e   "
              "(paper: \"about 1e-7\")\n\n",
              err.mean(), err.max());
  obs::BenchReport report("accuracy_mdgrape2");
  report.add("pairwise_mean_rel_error", err.mean(), "rel");
  report.add("pairwise_max_rel_error", err.max(), "rel");

  // Segment-count ablation of the function evaluator (interpolation error
  // isolated from float storage via the double-precision polynomial path).
  AsciiTable table("Function-evaluator ablation: quartic segments vs error");
  table.set_header({"segments", "max interp. rel. error",
                    "max error incl. float datapath"});
  for (int segments : {32, 64, 128, 256, 512, 1024}) {
    TableConfig cfg;
    cfg.x_min = beta * beta * 1.5 * 1.5;
    cfg.x_max = beta * beta * r_cut * r_cut;
    cfg.segments = segments;
    const auto table_fit = SegmentedTable::fit(g_coulomb_real_force, cfg);
    double interp = 0.0, total = 0.0;
    for (double x = cfg.x_min * 1.01; x < cfg.x_max * 0.99; x *= 1.002) {
      const double exact = g_coulomb_real_force(x);
      interp = std::max(interp,
                        relative_error(table_fit.evaluate_exact(x), exact));
      total = std::max(
          total,
          relative_error(table_fit.evaluate(static_cast<float>(x)), exact));
    }
    table.add_row({format_int(segments), format_sci(interp, 2),
                   format_sci(total, 2)});
    report.add("seg" + std::to_string(segments) + ".interp_rel_error", interp,
               "rel");
    report.add("seg" + std::to_string(segments) + ".total_rel_error", total,
               "rel");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("At the hardware's 1,024 segments the quartic interpolation "
              "error is far below the IEEE-754 single-precision floor, so "
              "the datapath dominates - exactly the paper's 1e-7.\n");
  report.write();
  return 0;
}
