/// \file bench_table1_components.cpp
/// Regenerates the paper's Table 1 (component inventory) and the sec. 3.2
/// topology arithmetic: 4 nodes x (5 WINE-2 clusters x 7 boards x 16 chips
/// + 4 MDGRAPE-2 clusters x 2 boards x 2 chips).

#include <cstdio>

#include "obs/bench_report.hpp"
#include "perf/machine_model.hpp"
#include "perf/table5.hpp"

int main() {
  using namespace mdm;
  using namespace mdm::perf;

  std::printf("%s\n", table1_components().str().c_str());

  const MdmTopology topo;
  AsciiTable t("Topology (sec. 3.2, fig. 3)");
  t.set_header({"Level", "WINE-2", "MDGRAPE-2"});
  t.add_row({"node computers", format_int(topo.node_count),
             format_int(topo.node_count)});
  t.add_row({"clusters / node", format_int(topo.wine_clusters_per_node),
             format_int(topo.mdgrape_clusters_per_node)});
  t.add_row({"boards / cluster", format_int(topo.wine_boards_per_cluster),
             format_int(topo.mdgrape_boards_per_cluster)});
  t.add_row({"chips / board", format_int(topo.wine_chips_per_board),
             format_int(topo.mdgrape_chips_per_board)});
  t.add_rule();
  t.add_row({"total chips", format_int(topo.wine_chips()),
             format_int(topo.mdgrape_chips())});
  const auto current = MachineModel::mdm_current();
  t.add_row({"peak (Tflops)",
             format_fixed(current.wine_peak_flops() / 1e12, 1),
             format_fixed(current.mdgrape_peak_flops() / 1e12, 1)});
  std::printf("%s\n", t.str().c_str());

  std::printf("paper: 2,240 WINE-2 chips / 45 Tflops, 64 MDGRAPE-2 chips / "
              "1 Tflops -> reproduced: %d / %.1f, %d / %.1f\n",
              topo.wine_chips(), current.wine_peak_flops() / 1e12,
              topo.mdgrape_chips(), current.mdgrape_peak_flops() / 1e12);

  obs::BenchReport report("table1_components");
  report.add("wine_chips", topo.wine_chips(), "count");
  report.add("mdgrape_chips", topo.mdgrape_chips(), "count");
  report.add("wine_peak_tflops", current.wine_peak_flops() / 1e12, "Tflops");
  report.add("mdgrape_peak_tflops", current.mdgrape_peak_flops() / 1e12,
             "Tflops");
  report.write();
  return 0;
}
