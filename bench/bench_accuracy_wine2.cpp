/// \file bench_accuracy_wine2.cpp
/// Reproduces the sec. 3.4.4 accuracy claim: "The relative accuracy of
/// F(wn) is about 10^-4.5". The fixed-point pipeline emulator is compared
/// against the double-precision reference over a melt configuration, and a
/// word-width ablation shows how the accuracy scales with the pipeline
/// formats.
///
///   ./bench_accuracy_wine2 [--cells 3] [--seed 5]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/lattice.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "wine2/system.hpp"

namespace {

/// RMS relative error of the WINE-2 wavenumber force vs the double
/// reference for one format configuration.
double force_error(const mdm::ParticleSystem& system,
                   const mdm::EwaldParameters& params,
                   const mdm::wine2::WineFormats& formats) {
  using namespace mdm;
  EwaldCoulomb reference(params, system.box());
  std::vector<double> charges(system.size());
  for (std::size_t i = 0; i < system.size(); ++i)
    charges[i] = system.charge(i);

  std::vector<Vec3> ref(system.size(), Vec3{});
  reference.add_wavenumber_space(system, ref);

  wine2::Wine2System machine({.clusters = 1, .boards_per_cluster = 1,
                              .chips_per_board = 4, .formats = formats});
  machine.load_waves(reference.kvectors());
  machine.set_particles(system.positions(), charges, system.box());
  const auto sf = machine.run_dft();
  std::vector<Vec3> hw(system.size(), Vec3{});
  machine.run_idft(sf, hw);

  double err2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    err2 += norm2(hw[i] - ref[i]);
    ref2 += norm2(ref[i]);
  }
  return std::sqrt(err2 / ref2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  const int cells = static_cast<int>(cli.get_int("cells", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  auto system = make_nacl_crystal(cells);
  Random rng(seed);
  for (auto& r : system.positions())
    r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
              rng.uniform(-0.3, 0.3)};
  system.wrap_positions();
  const auto params = clamp_to_box(
      parameters_from_alpha(6.0, system.box()), system.box());

  std::printf("WINE-2 wavenumber-force accuracy vs double reference "
              "(N = %zu, %d k-vectors)\n\n",
              system.size(),
              static_cast<int>(
                  KVectorTable(system.box(), params.alpha, params.lk_cut)
                      .size()));

  const auto paper = wine2::WineFormats::paper();
  const double err_paper = force_error(system, params, paper);
  std::printf("paper configuration: rms relative error = %.2e "
              "(log10 = %.2f; paper claims \"about 10^-4.5\" = 3.2e-5)\n\n",
              err_paper, std::log10(err_paper));
  obs::BenchReport report("accuracy_wine2");
  report.add("paper_rms_rel_error", err_paper, "rel");

  AsciiTable table("Word-width ablation (phase/table/trig/coeff/product bits)");
  table.set_header({"configuration", "rms rel. error", "log10"});
  struct Config {
    const char* name;
    wine2::WineFormats formats;
  };
  wine2::WineFormats coarse = paper;
  coarse.phase_bits = 16;
  coarse.table_bits = 8;
  coarse.trig_frac_bits = 12;
  coarse.coeff_frac_bits = 12;
  coarse.product_frac_bits = 12;
  wine2::WineFormats mid = paper;
  mid.phase_bits = 20;
  mid.table_bits = 10;
  mid.trig_frac_bits = 16;
  mid.coeff_frac_bits = 16;
  mid.product_frac_bits = 16;
  wine2::WineFormats wide = paper;
  wide.phase_bits = 32;
  wide.table_bits = 14;
  wide.trig_frac_bits = 28;
  wide.coeff_frac_bits = 30;
  wide.product_frac_bits = 30;
  wide.accum_frac_bits = 30;
  for (const auto& [name, formats] :
       {Config{"coarse (16/8/12/12/12)", coarse},
        Config{"mid (20/10/16/16/16)", mid},
        Config{"paper (26/12/22/24/24)", paper},
        Config{"wide (32/14/28/30/30)", wide}}) {
    const double err = force_error(system, params, formats);
    table.add_row({name, format_sci(err, 2),
                   format_fixed(std::log10(err), 2)});
    const std::string key(name, std::strcspn(name, " "));
    report.add(key + "_rms_rel_error", err, "rel");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("\"The error in F(wn) is smaller than either that of F(re) or "
              "the truncation error of the Ewald sum\" (sec. 3.4.4): the "
              "truncation level here is erfc(s1) ~ %.1e.\n",
              EwaldAccuracy{}.real_space_error());
  report.write();
  return 0;
}
