/// \file bench_serve.cpp
/// Load generator for the simulation job service (DESIGN.md §9): open-loop
/// Poisson arrivals (submission times are independent of completions, so
/// overload shows up as queueing, not as a slowed generator) with mixed job
/// sizes across three tenants and three priority classes. Reports
/// throughput and p50/p99 wait+run latency to BENCH_serve.json.
///
///   ./bench_serve [--seconds 5] [--rate 40] [--workers 2]
///                 [--threads-per-job 1] [--queue-depth 32] [--seed 7]
///
/// The bench doubles as the admission-logic acceptance check and exits
/// non-zero on any violation:
///   * every submitted job reaches exactly one terminal state (no lost or
///     duplicated completions);
///   * no job is both rejected and run (rejected => empty trajectory);
///   * submitted == admitted + rejected, and every admitted job ends
///     completed, failed, cancelled or deadline-shed;
///   * completed jobs carry the full trajectory for their spec.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

double percentile_of(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  const double seconds = cli.get_double("seconds", 5.0);
  const double rate = cli.get_double("rate", 40.0);  // arrivals per second
  Random rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));

  serve::ServiceConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 2));
  config.threads_per_job =
      static_cast<unsigned>(cli.get_int("threads-per-job", 1));
  config.admission.max_queue_depth =
      static_cast<std::size_t>(cli.get_int("queue-depth", 32));
  serve::SimService service(config);
  service.start();

  std::printf("bench_serve: open-loop %.0f jobs/s for %.1f s on %d workers "
              "(queue cap %zu)\n",
              rate, seconds, config.workers,
              config.admission.max_queue_depth);

  // Open loop: precomputed exponential interarrival gaps; submission never
  // waits for completions.
  std::vector<serve::JobHandle> handles;
  Timer timer;
  double next_arrival_s = 0.0;
  int i = 0;
  while (timer.seconds() < seconds) {
    const double now_s = timer.seconds();
    if (now_s < next_arrival_s) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(next_arrival_s - now_s, 0.01)));
      continue;
    }
    next_arrival_s += -std::log(1.0 - rng.uniform()) / rate;

    serve::JobSpec spec;
    spec.tenant = "tenant-" + std::to_string(i % 3);
    spec.job_class = static_cast<serve::JobClass>(i % 3);
    // Mixed sizes: mostly small interactive-scale jobs, every 5th a larger
    // batch job; steps vary too.
    spec.cells = (i % 5 == 4) ? 2 : 1;
    spec.nvt_steps = 2 + static_cast<int>(rng.uniform_below(4));
    spec.nve_steps = 2 + static_cast<int>(rng.uniform_below(4));
    spec.seed = static_cast<std::uint64_t>(i + 1);
    if (i % 7 == 6) spec.deadline_ms = 1500.0;  // some deadline-sensitive
    handles.push_back(service.submit(spec));
    ++i;
  }
  const double submit_window_s = timer.seconds();
  service.drain();
  const double wall_s = timer.seconds();
  service.stop();

  // ---- tally + admission-logic acceptance checks ----
  int completed = 0, cancelled = 0, failed = 0, rejected = 0, shed = 0;
  int violations = 0;
  std::vector<double> wait_ms, run_ms;
  for (const auto& h : handles) {
    if (!h.done()) {
      std::fprintf(stderr, "VIOLATION: job %llu not terminal after drain\n",
                   static_cast<unsigned long long>(h.id()));
      ++violations;
      continue;
    }
    const auto r = h.wait();
    switch (r.state) {
      case serve::JobState::kCompleted:
        ++completed;
        if (r.completed_steps != h.spec().total_steps() ||
            r.samples.empty()) {
          std::fprintf(stderr,
                       "VIOLATION: job %llu completed with a partial "
                       "trajectory (%d/%d steps)\n",
                       static_cast<unsigned long long>(h.id()),
                       r.completed_steps, h.spec().total_steps());
          ++violations;
        }
        wait_ms.push_back(r.wait_ms);
        run_ms.push_back(r.run_ms);
        break;
      case serve::JobState::kCancelled: ++cancelled; break;
      case serve::JobState::kFailed: ++failed; break;
      case serve::JobState::kDeadlineExceeded: ++shed; break;
      case serve::JobState::kRejected:
        ++rejected;
        if (!r.samples.empty() || r.run_ms > 0.0) {
          std::fprintf(stderr,
                       "VIOLATION: job %llu both rejected and run\n",
                       static_cast<unsigned long long>(h.id()));
          ++violations;
        }
        break;
      default:
        std::fprintf(stderr, "VIOLATION: job %llu in non-terminal state %s\n",
                     static_cast<unsigned long long>(h.id()),
                     serve::to_string(r.state));
        ++violations;
    }
  }
  const int submitted = static_cast<int>(handles.size());
  const int accounted = completed + cancelled + failed + rejected + shed;
  if (accounted != submitted) {
    std::fprintf(stderr,
                 "VIOLATION: %d jobs submitted but %d accounted for "
                 "(lost or duplicated completions)\n",
                 submitted, accounted);
    ++violations;
  }
  auto& reg = obs::Registry::global();
  const auto admitted =
      static_cast<long long>(reg.counter_value("serve.admitted"));
  if (admitted + rejected != submitted) {
    std::fprintf(stderr,
                 "VIOLATION: admitted (%lld) + rejected (%d) != submitted "
                 "(%d)\n",
                 admitted, rejected, submitted);
    ++violations;
  }

  const double throughput = completed / (wall_s > 0 ? wall_s : 1.0);
  std::printf("\nsubmitted %d in %.2f s | completed %d cancelled %d "
              "failed %d rejected %d shed %d\n",
              submitted, submit_window_s, completed, cancelled, failed,
              rejected, shed);
  std::printf("throughput %.1f completed jobs/s over %.2f s\n", throughput,
              wall_s);
  std::printf("wait  p50 %8.2f ms   p99 %8.2f ms\n",
              percentile_of(wait_ms, 50.0), percentile_of(wait_ms, 99.0));
  std::printf("run   p50 %8.2f ms   p99 %8.2f ms\n",
              percentile_of(run_ms, 50.0), percentile_of(run_ms, 99.0));

  obs::BenchReport report("serve");
  report.add("submitted", submitted, "jobs");
  report.add("completed", completed, "jobs");
  report.add("rejected", rejected, "jobs");
  report.add("shed", shed, "jobs");
  report.add("throughput", throughput, "jobs/s");
  report.add("wait_p50_ms", percentile_of(wait_ms, 50.0), "ms");
  report.add("wait_p99_ms", percentile_of(wait_ms, 99.0), "ms");
  report.add("run_p50_ms", percentile_of(run_ms, 50.0), "ms");
  report.add("run_p99_ms", percentile_of(run_ms, 99.0), "ms");
  report.add("violations", violations, "count");
  report.write();

  if (violations > 0) {
    std::fprintf(stderr, "\n%d admission-logic violation(s)\n", violations);
    return 1;
  }
  std::printf("admission-logic checks: OK\n");
  return 0;
}
