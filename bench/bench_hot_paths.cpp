/// \file bench_hot_paths.cpp
/// Serial vs thread-pool cost of the hot per-step kernels — Ewald real
/// space, Tosi-Fumi short range, and the MDGRAPE-2 force pass — plus a
/// steady-state heap-allocation count per step. The parallel engines are
/// bit-reproducible at any pool size, so only time and allocations vary.
///
/// A global counting operator new measures the steady state: after one
/// warm-up evaluation (which grows the scratch arenas) the migrated cell
/// -list kernels should make zero heap allocations per step.
///
///   ./bench_hot_paths [--cells 6] [--reps 5] [--pools 1,2,4]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/lattice.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "mdgrape2/gtables.hpp"
#include "mdgrape2/system.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator: every operator new bumps one relaxed atomic so
// a measured region can report how many heap allocations it made (worker
// -thread allocations included).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace mdm;

struct Sample {
  double s_per_eval = 0.0;
  double allocs_per_eval = 0.0;
};

/// One warm-up call grows the scratch arenas and touches lazy statics; the
/// timed/counted region after it is the steady state.
template <typename Step>
Sample measure(int reps, Step&& step) {
  step();
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  Timer timer;
  for (int rep = 0; rep < reps; ++rep) step();
  Sample out;
  out.s_per_eval = timer.seconds() / reps;
  out.allocs_per_eval =
      double(g_allocations.load(std::memory_order_relaxed) - before) / reps;
  return out;
}

ParticleSystem melt(int n_cells, std::uint64_t seed) {
  auto sys = make_nacl_crystal(n_cells);
  Random rng(seed);
  for (auto& r : sys.positions())
    r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
              rng.uniform(-0.3, 0.3)};
  sys.wrap_positions();
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  apply_observability_cli(cli);
  const int cells = static_cast<int>(cli.get_int("cells", 6));
  const int reps = static_cast<int>(cli.get_int("reps", 5));
  const auto pool_sizes = cli.get_int_list("pools", {1, 2, 4});

  const auto sys = melt(cells, 1234);
  const double box = sys.box();
  const auto params = software_parameters(double(sys.size()), box);
  std::vector<Vec3> forces(sys.size());

  // MDGRAPE-2 needs box >= 3 r_cut for the cell-index method; derive its
  // cutoff from a fixed alpha as the host force field does.
  const double mg_alpha = 8.0;
  const double mg_r_cut = 2.636 * box / mg_alpha;
  const double mg_beta = mg_alpha / box;
  const double species_charges[2] = {+1.0, -1.0};
  const auto mg_pass =
      mdgrape2::make_coulomb_real_pass(mg_beta, mg_r_cut, species_charges);

  struct Row {
    std::string kernel;
    std::string config;
    Sample sample;
  };
  std::vector<Row> rows;
  obs::BenchReport report("hot_paths");

  // Each config owns fresh engine instances so the serial baseline never
  // shares scratch with a pooled run.
  auto run_config = [&](const std::string& config, ThreadPool* pool) {
    {
      EwaldCoulomb ewald(params, box);
      if (pool) ewald.set_thread_pool(pool);
      rows.push_back({"ewald_real", config, measure(reps, [&] {
                        std::fill(forces.begin(), forces.end(), Vec3{});
                        ewald.add_real_space(sys, forces);
                      })});
    }
    {
      TosiFumiShortRange tf(TosiFumiParameters::nacl(), params.r_cut);
      if (pool) tf.set_thread_pool(pool);
      rows.push_back({"tosi_fumi", config, measure(reps, [&] {
                        std::fill(forces.begin(), forces.end(), Vec3{});
                        tf.add_forces(sys, forces);
                      })});
    }
    {
      mdgrape2::Mdgrape2System mg({.clusters = 2, .boards_per_cluster = 2});
      if (pool) mg.set_thread_pool(pool);
      mg.load_particles(sys, mg_r_cut);
      rows.push_back({"mdgrape2_force", config, measure(reps, [&] {
                        std::fill(forces.begin(), forces.end(), Vec3{});
                        mg.run_force_pass(mg_pass, forces);
                      })});
    }
  };

  run_config("serial", nullptr);
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (const auto threads : pool_sizes) {
    if (threads < 1) continue;
    pools.push_back(std::make_unique<ThreadPool>(unsigned(threads)));
    run_config("pool" + std::to_string(threads), pools.back().get());
  }

  auto serial_time = [&](const std::string& kernel) {
    for (const auto& row : rows)
      if (row.kernel == kernel && row.config == "serial")
        return row.sample.s_per_eval;
    return 0.0;
  };

  AsciiTable table("Hot-path kernels: serial vs thread pool (N = " +
                   std::to_string(sys.size()) + ")");
  table.set_header({"kernel", "config", "s/eval", "speedup", "allocs/step"});
  for (const auto& row : rows) {
    const double base = serial_time(row.kernel);
    const double speedup =
        row.sample.s_per_eval > 0.0 ? base / row.sample.s_per_eval : 0.0;
    table.add_row({row.kernel, row.config, format_fixed(row.sample.s_per_eval, 5),
                   format_fixed(speedup, 2),
                   format_fixed(row.sample.allocs_per_eval, 1)});
    const std::string prefix = row.kernel + "." + row.config;
    report.add(prefix + ".s_per_eval", row.sample.s_per_eval, "s");
    report.add(prefix + ".speedup_vs_serial", speedup, "x");
    report.add(prefix + ".steady_allocs_per_step", row.sample.allocs_per_eval,
               "count");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "steady state: the cell-list kernels (ewald_real, tosi_fumi) reuse "
      "member scratch, so allocs/step should be 0 in every config; wall-clock "
      "speedups need real cores (this host: %u).\n",
      std::thread::hardware_concurrency());

  report.write();

  // Fail loudly if the migrated kernels regress to per-step allocation.
  bool clean = true;
  for (const auto& row : rows)
    if (row.kernel != "mdgrape2_force" && row.sample.allocs_per_eval > 0.0) {
      std::printf("REGRESSION: %s/%s allocates %.1f times per step\n",
                  row.kernel.c_str(), row.config.c_str(),
                  row.sample.allocs_per_eval);
      clean = false;
    }
  return clean ? 0 : 1;
}
