/// \file bench_alpha_balance.cpp
/// The alpha-optimization story of sec. 5 / Table 4: the Ewald splitting
/// parameter trades real-space work (~alpha^-3) against wavenumber work
/// (~alpha^3). A conventional computer minimizes the *sum of flops*
/// (alpha = 30.1 at the paper's N); the MDM minimizes *time* with a 45x
/// faster wavenumber engine (alpha = 85). This bench sweeps alpha and
/// prints both objective curves, marking the minima.
///
///   ./bench_alpha_balance [--n 18821096] [--box 850]

#include <cstdio>

#include "obs/bench_report.hpp"
#include "perf/machine_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mdm;
  using namespace mdm::perf;
  const CommandLine cli(argc, argv);
  const double n = cli.get_double("n", 18821096.0);
  const double box = cli.get_double("box", 850.0);

  const auto current = MachineModel::mdm_current();
  const auto future = MachineModel::mdm_future();
  const double alpha_conv = balanced_alpha(n);
  const double alpha_current = optimal_alpha(current, n);
  const double alpha_future = optimal_alpha(future, n);

  AsciiTable table("alpha sweep at N = " + format_int((long long)n) +
                   ", L = " + format_fixed(box, 0) + " A");
  table.set_header({"alpha", "r_cut/A", "flops/step (host)",
                    "t/step MDM-current", "t/step MDM-future", "note"});
  for (double alpha : {15.0, 20.0, 25.0, 30.1, 36.0, 43.0, 50.3, 60.0, 72.0,
                       85.0, 100.0, 120.0}) {
    const auto params = parameters_from_alpha(alpha, box);
    const auto flops = ewald_step_flops(n, box, params);
    const double t_cur =
        predict_step(current, n, box, params).total_seconds();
    const double t_fut = predict_step(future, n, box, params).total_seconds();
    std::string note;
    if (std::abs(alpha - 30.1) < 0.2) note = "<- paper's conventional alpha";
    if (std::abs(alpha - 50.3) < 0.2) note = "<- paper's future-MDM alpha";
    if (std::abs(alpha - 85.0) < 0.2) note = "<- paper's MDM alpha";
    table.add_row({format_fixed(alpha, 1), format_fixed(params.r_cut, 1),
                   format_sci(flops.total_host(), 3), format_fixed(t_cur, 1),
                   format_fixed(t_fut, 2), note});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("analytic minima: conventional flops at alpha = %.1f (paper "
              "30.1), MDM-current time at %.1f (paper 85), MDM-future time "
              "at %.1f (paper 50.3)\n",
              alpha_conv, alpha_current, alpha_future);
  const double inflation =
      ewald_step_flops(n, box, parameters_from_alpha(85.0, box))
          .total_grape() /
      ewald_step_flops(n, box, parameters_from_alpha(alpha_conv, box))
          .total_host();
  std::printf("\nflop inflation of the hardware-optimal alpha: %.1fx over "
              "the conventional minimum (sec. 5: \"about 10 times\"), which "
              "is exactly the 15.4 -> 1.34 Tflops effective-speed "
              "correction.\n",
              inflation);

  obs::BenchReport report("alpha_balance");
  report.add("alpha_conventional", alpha_conv, "1");
  report.add("alpha_mdm_current", alpha_current, "1");
  report.add("alpha_mdm_future", alpha_future, "1");
  report.add("flop_inflation", inflation, "1");
  report.write();
  return 0;
}
