/// \file bench_scaling.cpp
/// The complexity claims of secs. 1 and 3.1: the Ewald method costs
/// O(N^{3/2}) per step at the balanced alpha, against the native method's
/// O(N^2); the host and communication parts scale as O(N). Measures the
/// wall-clock of our software solvers over a size sweep and fits the
/// exponents.
///
///   ./bench_scaling [--sizes 2,3,4,6] [--reps 2]

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/lattice.hpp"
#include "ewald/direct_sum.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double fit_exponent(const std::vector<double>& n,
                    const std::vector<double>& t) {
  // Least-squares slope of log t vs log n.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double m = static_cast<double>(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double x = std::log(n[i]);
    const double y = std::log(t[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {3, 4, 6, 8});
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  AsciiTable table("Force evaluation cost vs N (software backends)");
  table.set_header({"n", "N", "Ewald s/eval", "direct O(N^2) s/eval"});
  std::vector<double> ns, t_ewald, t_direct;
  for (const auto n_cells : sizes) {
    auto system = make_nacl_crystal(static_cast<int>(n_cells));
    Random rng(n_cells);
    for (auto& r : system.positions())
      r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                rng.uniform(-0.3, 0.3)};
    system.wrap_positions();

    const auto params =
        software_parameters(double(system.size()), system.box());
    EwaldCoulomb ewald(params, system.box());
    DirectCoulombMinimumImage direct;
    std::vector<Vec3> forces(system.size());

    Timer timer;
    for (int rep = 0; rep < reps; ++rep)
      evaluate_forces(ewald, system, forces);
    const double ewald_time = timer.seconds() / reps;
    timer.reset();
    for (int rep = 0; rep < reps; ++rep)
      evaluate_forces(direct, system, forces);
    const double direct_time = timer.seconds() / reps;

    ns.push_back(double(system.size()));
    t_ewald.push_back(ewald_time);
    t_direct.push_back(direct_time);
    table.add_row({format_int(n_cells),
                   format_int(static_cast<long long>(system.size())),
                   format_fixed(ewald_time, 4), format_fixed(direct_time, 4)});
  }
  std::printf("%s\n", table.str().c_str());
  const double ewald_exp = fit_exponent(ns, t_ewald);
  const double direct_exp = fit_exponent(ns, t_direct);
  std::printf("fitted exponents: Ewald t ~ N^%.2f (theory 1.5), "
              "direct t ~ N^%.2f (theory 2.0)\n",
              ewald_exp, direct_exp);
  std::printf("crossover: the Ewald advantage grows as sqrt(N); at the "
              "paper's N = 1.88e7 the direct method would need ~%.0fx more "
              "operations.\n",
              std::sqrt(18821096.0) / std::sqrt(ns.front()) *
                  (t_direct.front() / t_ewald.front()));

  obs::BenchReport report("scaling");
  report.add("ewald_exponent", ewald_exp, "1");
  report.add("direct_exponent", direct_exp, "1");
  report.add("largest_n", ns.back(), "count");
  report.add("ewald_s_per_eval_at_largest_n", t_ewald.back(), "s");
  report.add("direct_s_per_eval_at_largest_n", t_direct.back(), "s");
  report.write();
  return 0;
}
