/// \file bench_scaling.cpp
/// The complexity claims of secs. 1 and 3.1, extended to the long-range
/// solver family (DESIGN.md §12):
///
///  * the exact Ewald sum costs O(N^{3/2}) per step at the balanced alpha,
///    the direct method O(N^2), smooth PME ~O(N log N) — measured over a
///    size sweep with fitted exponents;
///  * the distributed PME mesh (host/distributed_pme) strong-scales over
///    the wavenumber ranks: the per-rank mesh work drops as 1/W while the
///    halo overhead stays O(ghost planes), so the work-model parallel
///    efficiency stays near 1 (deterministic counts — wall clock on a
///    shared CI core is informational);
///  * Figure 2's finite-size law: the relative NVE temperature fluctuation
///    shrinks as 1/sqrt(N) (fitted exponent ~ -0.5 over the sweep).
///
///   ./bench_scaling [--sizes 2,3,4,6] [--reps 2] [--fluct-steps 120]
///                   [--pme-ranks 1,2,4,8]
///
/// Gated large run (not part of the CI baseline set — minutes of work):
///
///   ./bench_scaling --melt-cells 64 --melt-steps 2 --melt-real 16
///       runs the N = 8 * cells^3 NaCl melt (cells = 64 -> N = 2,097,152)
///       end-to-end on MdmParallelApp with the distributed-PME k-space
///       solver and the native real-space backend, and reports s/step.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/lattice.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/direct_sum.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "ewald/pme.hpp"
#include "host/distributed_pme.hpp"
#include "host/mdm_force_field.hpp"
#include "host/parallel_app.hpp"
#include "obs/bench_report.hpp"
#include "perf/solver_select.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double fit_exponent(const std::vector<double>& n,
                    const std::vector<double>& t) {
  // Least-squares slope of log t vs log n.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double m = static_cast<double>(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double x = std::log(n[i]);
    const double y = std::log(t[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

mdm::ParticleSystem jittered_melt(int cells) {
  auto system = mdm::make_nacl_crystal(cells);
  mdm::Random rng(static_cast<std::uint64_t>(cells));
  for (auto& r : system.positions())
    r += mdm::Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                   rng.uniform(-0.3, 0.3)};
  system.wrap_positions();
  return system;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {3, 4, 6, 8});
  const int reps = static_cast<int>(cli.get_int("reps", 2));
  const int fluct_steps = static_cast<int>(cli.get_int("fluct-steps", 120));
  const auto pme_ranks = cli.get_int_list("pme-ranks", {1, 2, 4, 8});
  obs::BenchReport report("scaling");

  // --- serial solver family: cost vs N ------------------------------------
  AsciiTable table("Force evaluation cost vs N (software backends)");
  table.set_header({"n", "N", "Ewald s/eval", "direct O(N^2) s/eval",
                    "PME s/eval"});
  std::vector<double> ns, t_ewald, t_direct, t_pme;
  for (const auto n_cells : sizes) {
    auto system = jittered_melt(static_cast<int>(n_cells));
    const auto params =
        software_parameters(double(system.size()), system.box());
    EwaldCoulomb ewald(params, system.box());
    DirectCoulombMinimumImage direct;
    PmeParameters pp;
    pp.alpha = params.alpha;
    pp.r_cut = params.r_cut;
    pp.order = 6;
    pp.grid = perf::recommended_pme_mesh(params, pp.order);
    SmoothPme pme(pp, system.box());
    std::vector<Vec3> forces(system.size());

    // Warm-up: first evaluations build tables / size scratch.
    evaluate_forces(ewald, system, forces);
    evaluate_forces(direct, system, forces);
    evaluate_forces(pme, system, forces);

    Timer timer;
    for (int rep = 0; rep < reps; ++rep)
      evaluate_forces(ewald, system, forces);
    const double ewald_time = timer.seconds() / reps;
    timer.reset();
    for (int rep = 0; rep < reps; ++rep)
      evaluate_forces(direct, system, forces);
    const double direct_time = timer.seconds() / reps;
    timer.reset();
    for (int rep = 0; rep < reps; ++rep)
      evaluate_forces(pme, system, forces);
    const double pme_time = timer.seconds() / reps;

    ns.push_back(double(system.size()));
    t_ewald.push_back(ewald_time);
    t_direct.push_back(direct_time);
    t_pme.push_back(pme_time);
    table.add_row({format_int(n_cells),
                   format_int(static_cast<long long>(system.size())),
                   format_fixed(ewald_time, 4), format_fixed(direct_time, 4),
                   format_fixed(pme_time, 4)});
  }
  std::printf("%s\n", table.str().c_str());
  const double ewald_exp = fit_exponent(ns, t_ewald);
  const double direct_exp = fit_exponent(ns, t_direct);
  const double pme_exp = fit_exponent(ns, t_pme);
  std::printf("fitted exponents: Ewald t ~ N^%.2f (theory 1.5), "
              "direct t ~ N^%.2f (theory 2.0), PME t ~ N^%.2f "
              "(theory ~1 + mesh log)\n",
              ewald_exp, direct_exp, pme_exp);
  std::printf("crossover: the Ewald advantage grows as sqrt(N); at the "
              "paper's N = 1.88e7 the direct method would need ~%.0fx more "
              "operations.\n",
              std::sqrt(18821096.0) / std::sqrt(ns.front()) *
                  (t_direct.front() / t_ewald.front()));
  report.add("ewald_exponent", ewald_exp, "1");
  report.add("direct_exponent", direct_exp, "1");
  report.add("pme_exponent", pme_exp, "1");
  report.add("largest_n", ns.back(), "count");
  report.add("ewald_s_per_eval_at_largest_n", t_ewald.back(), "s");
  report.add("direct_s_per_eval_at_largest_n", t_direct.back(), "s");
  report.add("pme_s_per_eval_at_largest_n", t_pme.back(), "s");

  // --- distributed PME strong scaling over the wavenumber ranks -----------
  // The deterministic basis of the strong-scaling claim is per-rank work:
  // the FFT + convolution sweeps partition exactly (owned planes = K / W,
  // ~10 log2 K flops per mesh point over the two forward transforms), while
  // the ghost-plane halo costs only ~2 ops per point (one receive + one
  // accumulate) on a fixed p - 1 planes. The op-weighted efficiency
  // work(1) / (W * max_rank_work(W)) therefore stays near 1 until slabs
  // thin to the spline support. Wall clock per step is also measured, but
  // CI ranks are threads sharing cores, so it is informational.
  {
    const int cells = static_cast<int>(cli.get_int("pme-cells", 3));
    auto system = jittered_melt(cells);
    const auto params =
        software_parameters(double(system.size()), system.box());
    PmeParameters pp;
    pp.alpha = params.alpha;
    pp.r_cut = params.r_cut;
    pp.order = 6;
    pp.grid = perf::recommended_pme_mesh(params, pp.order);

    AsciiTable dtable("Distributed PME mesh: per-rank work vs W (K = " +
                      std::to_string(pp.grid) + ")");
    dtable.set_header({"W", "planes/rank", "ghost", "work/rank", "work eff.",
                       "s/step (info)"});
    std::vector<double> charges(system.size());
    for (std::size_t i = 0; i < system.size(); ++i)
      charges[i] = system.charge(i);
    const std::vector<Vec3> positions(system.positions().begin(),
                                      system.positions().end());

    double work_w1 = 0.0, eff_at_max = 0.0, wall_w1 = 0.0, speedup = 0.0;
    int w_max = 0;
    for (const auto wl : pme_ranks) {
      const int w = static_cast<int>(wl);
      if (pp.grid % w != 0) continue;
      const auto layout = host::PmeSlabLayout::create(pp.grid, pp.order, w);
      const double k2 = double(pp.grid) * pp.grid;
      const double fft_ops = 10.0 * std::log2(double(pp.grid));
      const double work_rank = layout.planes * k2 * fft_ops +
                               layout.ghost_planes() * k2 * 2.0;
      if (w == 1) work_w1 = work_rank;
      const double eff = work_w1 > 0 ? work_w1 / (w * work_rank) : 0.0;

      // One multi-threaded world per W; every rank steps the same global
      // particle set routed by slab.
      vmpi::World world(w);
      std::vector<double> wall(static_cast<std::size_t>(w), 0.0);
      world.run([&](vmpi::Communicator& comm) {
        host::DistributedPmeRank engine(validated_pme(pp, system.box()),
                                        system.box(), comm);
        std::vector<Vec3> mine;
        std::vector<double> q;
        for (std::size_t i = 0; i < positions.size(); ++i)
          if (engine.layout().route(positions[i].z, system.box()) ==
              comm.rank()) {
            mine.push_back(positions[i]);
            q.push_back(charges[i]);
          }
        std::vector<Vec3> f;
        Timer t;
        for (int rep = 0; rep < reps; ++rep) engine.step(mine, q, f);
        wall[static_cast<std::size_t>(comm.rank())] = t.seconds() / reps;
      });
      double wall_max = 0.0;
      for (const double s : wall) wall_max = std::max(wall_max, s);
      if (w == 1) wall_w1 = wall_max;
      if (w >= w_max) {
        w_max = w;
        eff_at_max = eff;
        speedup = wall_w1 > 0 ? wall_w1 / wall_max : 0.0;
      }
      dtable.add_row({format_int(w), format_int(layout.planes),
                      format_int(layout.ghost_planes()),
                      format_fixed(work_rank, 0), format_fixed(eff, 3),
                      format_fixed(wall_max, 4)});
    }
    std::printf("%s\n", dtable.str().c_str());
    std::printf("work-model efficiency at W = %d: %.3f (near-linear strong "
                "scaling until slabs thin to the spline support)\n\n",
                w_max, eff_at_max);
    report.add("dpme_grid", double(pp.grid), "count");
    report.add("dpme_max_ranks", double(w_max), "count");
    report.add("dpme_work_efficiency_at_max_ranks", eff_at_max, "1");
    report.add("dpme_wall_speedup_at_max_ranks", speedup, "x");
  }

  // --- Figure 2: temperature fluctuation ~ 1 / sqrt(N) --------------------
  // Short NVT -> NVE melts; the NVE relative fluctuation sigma_T / <T>
  // must fall with exponent ~ -1/2 (the paper's finite-size argument,
  // canonical prediction sqrt(2 / 3N)). Sizes get their own default — the
  // 64-ion box is too small for the law to emerge from a short window.
  {
    const auto fluct_sizes = cli.get_int_list("fluct-sizes", {3, 4});
    AsciiTable ftable("NVE temperature fluctuation vs N");
    ftable.set_header({"n", "N", "sigma_T/<T>", "sqrt(2/3N)"});
    std::vector<double> fn, fluct;
    for (const auto n_cells : fluct_sizes) {
      auto system = make_nacl_crystal(static_cast<int>(n_cells));
      assign_maxwell_velocities(system, 1200.0,
                                42 + static_cast<std::uint64_t>(n_cells));
      const auto params =
          software_parameters(double(system.size()), system.box());
      CompositeForceField field;
      field.add(std::make_unique<EwaldCoulomb>(params, system.box()));
      field.add(std::make_unique<TosiFumiShortRange>(
          TosiFumiParameters::nacl(), params.r_cut));
      SimulationConfig protocol;
      protocol.nvt_steps = 2 * fluct_steps / 3;
      protocol.nve_steps = fluct_steps - protocol.nvt_steps;
      Simulation sim(system, field, protocol);
      sim.run();
      RunningStats temps;
      for (const auto& s : sim.samples())
        if (s.step > protocol.nvt_steps) temps.add(s.temperature_K);
      const double rel = temps.stddev() / temps.mean();
      fn.push_back(double(system.size()));
      fluct.push_back(rel);
      ftable.add_row({format_int(n_cells),
                      format_int(static_cast<long long>(system.size())),
                      format_sci(rel, 2),
                      format_sci(
                          std::sqrt(2.0 / (3.0 * double(system.size()))),
                          2)});
    }
    const double fluct_exp = fit_exponent(fn, fluct);
    std::printf("%s\nfluctuation exponent: sigma_T/<T> ~ N^%.2f "
                "(theory -0.5)\n\n",
                ftable.str().c_str(), fluct_exp);
    report.add("fluctuation_exponent", fluct_exp, "1");
  }

  // --- gated large melt: end-to-end distributed PME ------------------------
  if (const int melt_cells = static_cast<int>(cli.get_int("melt-cells", 0));
      melt_cells > 0) {
    const int melt_steps = static_cast<int>(cli.get_int("melt-steps", 2));
    auto system = make_nacl_crystal(melt_cells);
    assign_maxwell_velocities(system, 1200.0, 42);
    host::ParallelAppConfig config;
    config.real_processes = static_cast<int>(cli.get_int("melt-real", 16));
    config.wn_processes = static_cast<int>(cli.get_int("melt-wn", 8));
    config.protocol.nvt_steps = melt_steps;
    config.protocol.nve_steps = 0;
    // PME-appropriate splitting, not the machine-balanced preset: the mesh
    // absorbs the k-space, so the real-space cutoff stays short and fixed
    // (erfc(beta r_cut) ~ 7e-7 at beta r_cut = 3.5) instead of growing
    // ~N^(1/6) toward the MDGRAPE/WINE balance point.
    const double rcut = cli.get_double("melt-rcut", 12.0);
    config.ewald.r_cut = rcut;
    config.ewald.alpha = 3.5 * system.box() / rcut;
    config.ewald.lk_cut = 0.75 * config.ewald.alpha;  // envelope-matched
    config.backend = Backend::kNative;
    config.kspace_solver = host::KspaceSolver::kPme;
    config.pme.order = 6;
    config.pme.grid = 32;
    while (double(config.pme.grid) < 3.0 * config.ewald.lk_cut)
      config.pme.grid *= 2;
    std::printf("large melt: N = %zu, %d + %d ranks, PME mesh %d^3, "
                "%d steps...\n",
                system.size(), config.real_processes, config.wn_processes,
                config.pme.grid, melt_steps);
    Timer t;
    host::MdmParallelApp app(config);
    const auto result = app.run(system);
    const double s_per_step = t.seconds() / melt_steps;
    std::printf("large melt: %.2f s/step, final T = %.1f K, "
                "E = %.2f eV\n",
                s_per_step, result.samples.back().temperature_K,
                result.samples.back().total_eV);
    report.add("melt_n", double(system.size()), "count");
    report.add("melt_s_per_step", s_per_step, "s");
    report.add("melt_final_temperature", result.samples.back().temperature_K,
               "K");
  }

  report.write();
  return 0;
}
