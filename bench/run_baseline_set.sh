#!/bin/sh
# Run the baselined bench set on its small fixed CI workload, leaving one
# BENCH_<name>.json per bench in the output directory. CI and local baseline
# regeneration both go through this script so the workloads cannot drift:
#
#   bench/run_baseline_set.sh <build-bench-dir> <output-dir>
#
# To refresh the committed baselines after an intentional perf/accuracy
# change:
#
#   bench/run_baseline_set.sh build/bench bench/baselines
#
# Workloads are deliberately tiny: the regression gate lives in the
# deterministic metrics (pair counts, accuracy, model numbers); wall-time
# metrics are informational in bench/baselines/tolerances.json because CI
# machines differ.
set -eu

bin=${1:?usage: run_baseline_set.sh <build-bench-dir> <output-dir>}
out=${2:?usage: run_baseline_set.sh <build-bench-dir> <output-dir>}
bin=$(cd "$bin" && pwd)
mkdir -p "$out"
cd "$out"

run() {
  echo "== $*"
  "$bin/$@" > /dev/null
}

run bench_hot_paths --cells 2 --reps 2 --pools 1,2
run bench_backend --cells 3 --reps 2
run bench_scaling --sizes 2,3 --reps 1 --fluct-steps 150 --pme-ranks 1,2,4
run bench_serve --seconds 2 --rate 20 --workers 2
run bench_accuracy_mdgrape2 --pairs 2000
run bench_accuracy_wine2 --cells 2
run bench_ablation_cellindex --cells 4
run bench_treecode --n 2000 --mdgrape-n 200
run bench_table23_api
run bench_table1_components
run bench_table5_versions
run bench_alpha_balance
run bench_micro --benchmark_min_time=0.02

echo "wrote $(ls BENCH_*.json | wc -l) reports to $out"
