/// \file bench_backend.cpp
/// Native SIMD backend vs the hardware emulators (DESIGN.md §11) on the
/// standard NaCl melt: single-thread wall clock of the real-space and
/// wavenumber kernels, full-force-field parity against the double-precision
/// reference and the emulators, steady-state allocation counts, and the
/// derived per-pair / per-wave costs that seed perf::BackendCostModel.
///
/// Exits non-zero if the native real-space kernel is not at least 3x faster
/// than the MDGRAPE-2 emulation single-thread, or if a native kernel
/// allocates in the steady state — these are the PR's performance contract.
///
///   ./bench_backend [--cells 4] [--reps 5]

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <new>
#include <string>
#include <vector>

#include "core/lattice.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/flops.hpp"
#include "host/mdm_force_field.hpp"
#include "mdgrape2/gtables.hpp"
#include "mdgrape2/system.hpp"
#include "native/kspace.hpp"
#include "native/native_force_field.hpp"
#include "native/real_kernel.hpp"
#include "native/soa.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wine2/system.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator (same idiom as bench_hot_paths): the steady
// -state region of each kernel must not touch the heap.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace mdm;

struct Sample {
  double s_per_eval = 0.0;
  double allocs_per_eval = 0.0;
};

template <typename Step>
Sample measure(int reps, Step&& step) {
  // Two warm-up calls: the first grows scratch arenas and builds the cell
  // list, the second takes the lazy-rebuild skip path once (its skip
  // counter is a lazily created static).
  step();
  step();
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  Timer timer;
  for (int rep = 0; rep < reps; ++rep) step();
  Sample out;
  out.s_per_eval = timer.seconds() / reps;
  out.allocs_per_eval =
      double(g_allocations.load(std::memory_order_relaxed) - before) / reps;
  return out;
}

ParticleSystem melt(int n_cells, std::uint64_t seed) {
  auto sys = make_nacl_crystal(n_cells);
  Random rng(seed);
  for (auto& r : sys.positions())
    r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
              rng.uniform(-0.3, 0.3)};
  sys.wrap_positions();
  return sys;
}

double rms_rel_error(std::span<const Vec3> test, std::span<const Vec3> ref) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    num += norm2(test[i] - ref[i]);
    den += norm2(ref[i]);
  }
  return std::sqrt(num / den);
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  apply_observability_cli(cli);
  const int cells = static_cast<int>(cli.get_int("cells", 4));
  const int reps = static_cast<int>(cli.get_int("reps", 5));

  const auto sys = melt(cells, 1234);
  const double box = sys.box();
  const double n = double(sys.size());
  // The machine preset: its higher alpha keeps r_cut <= L/3 so both the
  // MDGRAPE cell scan and the native CellList run in cell (not N^2) mode —
  // the apples-to-apples cell-based comparison.
  const auto params = host::mdm_parameters(n, box);
  const double beta = params.alpha / box;
  std::vector<double> charges(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) charges[i] = sys.charge(i);
  const double species_charges[2] = {+1.0, -1.0};
  std::vector<Vec3> forces(sys.size());

  obs::BenchReport report("backend");
  AsciiTable table("Native backend vs emulators (N = " +
                   std::to_string(sys.size()) + ", single thread)");
  table.set_header({"kernel", "emulator s", "native s", "speedup",
                    "native allocs"});
  bool contract_ok = true;

  // ---- real space: MDGRAPE-2 emulation vs the fused native sweep ---------
  double real_speedup = 0.0;
  std::uint64_t native_pairs = 0;
  {
    mdgrape2::Mdgrape2System mg({.clusters = 2, .boards_per_cluster = 1});
    const auto coulomb_pass =
        mdgrape2::make_coulomb_real_pass(beta, params.r_cut, species_charges);
    auto tf_passes = mdgrape2::make_tosi_fumi_passes(
        TosiFumiParameters::nacl(), params.r_cut);
    mg.load_particles(sys, params.r_cut);
    const Sample emu = measure(reps, [&] {
      std::fill(forces.begin(), forces.end(), Vec3{});
      mg.load_particles(sys, params.r_cut);
      mg.run_force_pass(coulomb_pass, forces);
      for (const auto& pass : tf_passes) mg.run_force_pass(pass, forces);
    });

    native::SoaParticles soa;
    native::NativeRealKernel::Config rc;
    rc.box = box;
    rc.beta = beta;
    rc.r_cut = params.r_cut;
    rc.include_tosi_fumi = true;
    rc.tosi_fumi = TosiFumiParameters::nacl();
    native::NativeRealKernel kernel(rc);
    const Sample nat = measure(reps, [&] {
      std::fill(forces.begin(), forces.end(), Vec3{});
      soa.sync(sys);
      kernel.sweep(soa, forces);
    });
    native_pairs = kernel.last_pairs();

    real_speedup = emu.s_per_eval / nat.s_per_eval;
    table.add_row({"real_space", format_fixed(emu.s_per_eval, 5),
                   format_fixed(nat.s_per_eval, 5),
                   format_fixed(real_speedup, 2),
                   format_fixed(nat.allocs_per_eval, 1)});
    report.add("real.emulator_s_per_eval", emu.s_per_eval, "s");
    report.add("real.native_s_per_eval", nat.s_per_eval, "s");
    report.add("real.native_speedup", real_speedup, "x");
    report.add("real.native_pairs", double(native_pairs), "pairs");
    report.add("real.native_steady_allocs", nat.allocs_per_eval, "count");
    if (nat.allocs_per_eval > 0.0) contract_ok = false;

    // Per-pair costs for perf::BackendCostModel: the emulator pays per
    // candidate of the 27-cell scan (N n_int_g), the native kernel per
    // Newton pair actually evaluated.
    const auto flops = ewald_step_flops(n, box, params);
    report.add("real.emulator_ns_per_pair",
               emu.s_per_eval * 1e9 / (n * flops.n_int_g), "ns");
    report.add("real.native_ns_per_pair",
               nat.s_per_eval * 1e9 / double(native_pairs), "ns");
  }

  // ---- wavenumber: WINE-2 emulation vs the blocked recurrence kernels ----
  double wave_speedup = 0.0;
  {
    const KVectorTable kvectors(box, params.alpha, params.lk_cut);
    wine2::Wine2System wine(
        {.clusters = 1, .boards_per_cluster = 1, .chips_per_board = 2});
    wine.load_waves(kvectors);
    const Sample emu = measure(reps, [&] {
      std::fill(forces.begin(), forces.end(), Vec3{});
      wine.set_particles(sys.positions(), charges, box);
      const auto sf = wine.run_dft();
      wine.run_idft(sf, forces);
    });

    native::SoaParticles soa;
    native::NativeKspace kspace(kvectors);
    StructureFactors sf;
    const Sample nat = measure(reps, [&] {
      std::fill(forces.begin(), forces.end(), Vec3{});
      soa.sync(sys);
      kspace.dft(soa, sf);
      kspace.idft(soa, sf, forces);
    });

    wave_speedup = emu.s_per_eval / nat.s_per_eval;
    table.add_row({"wavenumber", format_fixed(emu.s_per_eval, 5),
                   format_fixed(nat.s_per_eval, 5),
                   format_fixed(wave_speedup, 2),
                   format_fixed(nat.allocs_per_eval, 1)});
    report.add("wave.emulator_s_per_eval", emu.s_per_eval, "s");
    report.add("wave.native_s_per_eval", nat.s_per_eval, "s");
    report.add("wave.native_speedup", wave_speedup, "x");
    report.add("wave.k_vectors", double(kspace.k_count()), "count");
    report.add("wave.native_steady_allocs", nat.allocs_per_eval, "count");
    if (nat.allocs_per_eval > 0.0) contract_ok = false;
    report.add("wave.emulator_ns_per_wave",
               emu.s_per_eval * 1e9 / (n * double(kspace.k_count())), "ns");
    report.add("wave.native_ns_per_wave",
               nat.s_per_eval * 1e9 / (n * double(kspace.k_count())), "ns");
  }

  // ---- full force field + parity (the accuracy contract) -----------------
  {
    host::MdmForceFieldConfig mdm_config;
    mdm_config.ewald = params;
    host::MdmForceField emulator(mdm_config, box);
    std::vector<Vec3> emu_forces(sys.size());
    const Sample emu = measure(reps, [&] {
      std::fill(emu_forces.begin(), emu_forces.end(), Vec3{});
      evaluate_forces(emulator, sys, emu_forces);
    });

    native::NativeForceFieldConfig nc;
    nc.ewald = params;
    native::NativeForceField nat_field(nc, box);
    std::vector<Vec3> nat_forces(sys.size());
    const Sample nat = measure(reps, [&] {
      std::fill(nat_forces.begin(), nat_forces.end(), Vec3{});
      evaluate_forces(nat_field, sys, nat_forces);
    });

    // Double-precision reference for the parity metrics.
    CompositeForceField reference;
    reference.add(std::make_unique<EwaldCoulomb>(params, box));
    reference.add(std::make_unique<TosiFumiShortRange>(
        TosiFumiParameters::nacl(), params.r_cut));
    std::vector<Vec3> ref_forces(sys.size());
    evaluate_forces(reference, sys, ref_forces);

    const double field_speedup = emu.s_per_eval / nat.s_per_eval;
    table.add_row({"force_field", format_fixed(emu.s_per_eval, 5),
                   format_fixed(nat.s_per_eval, 5),
                   format_fixed(field_speedup, 2),
                   format_fixed(nat.allocs_per_eval, 1)});
    report.add("field.emulator_s_per_eval", emu.s_per_eval, "s");
    report.add("field.native_s_per_eval", nat.s_per_eval, "s");
    report.add("field.native_speedup", field_speedup, "x");
    report.add("field.native_vs_reference_rms",
               rms_rel_error(nat_forces, ref_forces), "rel");
    report.add("field.native_vs_emulator_rms",
               rms_rel_error(nat_forces, emu_forces), "rel");
    report.add("field.emulator_vs_reference_rms",
               rms_rel_error(emu_forces, ref_forces), "rel");
  }

  std::printf("%s\n", table.str().c_str());
  report.write();

  if (real_speedup < 3.0) {
    std::printf("REGRESSION: native real-space speedup %.2fx < 3x contract\n",
                real_speedup);
    contract_ok = false;
  }
  if (!contract_ok)
    std::printf("bench_backend: performance contract FAILED\n");
  else
    std::printf("bench_backend: native %.1fx (real) / %.1fx (wavenumber) "
                "single-thread, zero steady-state allocations\n",
                real_speedup, wave_speedup);
  return contract_ok ? 0 : 1;
}
