/// \file bench_energy_conservation.cpp
/// Reproduces the sec. 5 energy-conservation claim: "The total energies are
/// well conserved; relative error of the total energy is less than 5e-5
/// percent" (= 5e-7 relative) over the 1,000-step NVE phase at dt = 2 fs.
///
/// Two backends are measured: the double-precision software Ewald and the
/// simulated MDM machine (whose WINE-2 fixed-point noise and table-based
/// real-space forces set a higher floor).
///
///   ./bench_energy_conservation [--cells 4] [--nvt 60] [--nve 240]

#include <cmath>
#include <cstdio>

#include "core/lattice.hpp"
#include "core/simulation.hpp"
#include "core/tosi_fumi.hpp"
#include "ewald/ewald.hpp"
#include "ewald/parameters.hpp"
#include "host/mdm_force_field.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct RunResult {
  double drift = 0.0;
  double seconds_per_step = 0.0;
};

RunResult run(mdm::ParticleSystem system, mdm::ForceField& field, int nvt,
              int nve) {
  mdm::SimulationConfig protocol;
  protocol.nvt_steps = nvt;
  protocol.nve_steps = nve;
  mdm::Simulation sim(system, field, protocol);
  mdm::Timer timer;
  sim.run();
  return {sim.nve_energy_drift(), timer.seconds() / (nvt + nve)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  const int cells = static_cast<int>(cli.get_int("cells", 4));
  const int nvt = static_cast<int>(cli.get_int("nvt", 60));
  const int nve = static_cast<int>(cli.get_int("nve", 240));

  auto system = make_nacl_crystal(cells);
  assign_maxwell_velocities(system, 1200.0, 17);
  std::printf("NVE energy conservation, N = %zu, dt = 2 fs, %d NVT + %d NVE "
              "steps\n\n",
              system.size(), nvt, nve);

  AsciiTable table("Max |E(t)-E(0)| / |E(0)| over the NVE phase");
  table.set_header({"backend", "truncation", "drift", "s/step"});
  obs::BenchReport report("energy_conservation");

  {
    // Paper-accuracy software path.
    const auto params =
        software_parameters(double(system.size()), system.box());
    CompositeForceField field;
    field.add(std::make_unique<EwaldCoulomb>(params, system.box()));
    field.add(std::make_unique<TosiFumiShortRange>(
        TosiFumiParameters::nacl(), params.r_cut, /*shift_energy=*/true));
    const auto r = run(system, field, nvt, nve);
    table.add_row({"software Ewald (double)", "paper accuracy",
                   format_sci(r.drift, 2), format_fixed(r.seconds_per_step, 3)});
    report.add("software_drift", r.drift, "1");
    report.add("software_s_per_step", r.seconds_per_step, "s");
  }
  {
    // Tight-truncation software path - approaches the paper's 5e-7.
    const EwaldAccuracy tight{3.6, 3.8};
    const auto params =
        software_parameters(double(system.size()), system.box(), tight);
    CompositeForceField field;
    field.add(std::make_unique<EwaldCoulomb>(params, system.box()));
    field.add(std::make_unique<TosiFumiShortRange>(
        TosiFumiParameters::nacl(), params.r_cut, /*shift_energy=*/true));
    const auto r = run(system, field, nvt, nve);
    table.add_row({"software Ewald (double)", "tight (s1=3.6, s2=3.8)",
                   format_sci(r.drift, 2), format_fixed(r.seconds_per_step, 3)});
    report.add("software_tight_drift", r.drift, "1");
    report.add("software_tight_s_per_step", r.seconds_per_step, "s");
  }
  {
    // The simulated machine.
    host::MdmForceFieldConfig config;
    config.ewald = host::mdm_parameters(double(system.size()), system.box());
    config.mdgrape = {.clusters = 1, .boards_per_cluster = 2};
    config.wine = {.clusters = 1, .boards_per_cluster = 1,
                   .chips_per_board = 4};
    host::MdmForceField machine(config, system.box());
    const auto r = run(system, machine, nvt, nve);
    table.add_row({"simulated MDM machine", "paper accuracy",
                   format_sci(r.drift, 2), format_fixed(r.seconds_per_step, 3)});
    report.add("mdm_drift", r.drift, "1");
    report.add("mdm_s_per_step", r.seconds_per_step, "s");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper claim: < 5e-7 relative at N = 1.88e7 (fluctuations "
              "shrink with N; small boxes see larger per-particle "
              "truncation noise).\n");
  report.write();
  return 0;
}
