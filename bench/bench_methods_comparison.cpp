/// \file bench_methods_comparison.cpp
/// Sec. 1: faster O(N) / O(N log N) methods exist (the paper cites smooth
/// particle-mesh Ewald as ref. [4]), "however, the accuracy of these
/// methods has not been well discussed on the actual system with large
/// number of particles". This bench has the discussion: exact Ewald vs
/// smooth PME on the molten-NaCl workload - rms force error against a
/// converged reference, measured time per evaluation, and the analytic
/// operation-count crossover at the paper's N.
///
///   ./bench_methods_comparison [--cells 6]

#include <cmath>
#include <cstdio>
#include <string>

#include "core/lattice.hpp"
#include "ewald/ewald.hpp"
#include "ewald/flops.hpp"
#include "ewald/parameters.hpp"
#include "ewald/pme.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mdm;
  const CommandLine cli(argc, argv);
  const int cells = static_cast<int>(cli.get_int("cells", 6));

  auto system = make_nacl_crystal(cells);
  Random rng(5);
  for (auto& r : system.positions())
    r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
              rng.uniform(-0.3, 0.3)};
  system.wrap_positions();
  const double n = double(system.size());

  // Converged reference (tight truncation).
  const auto tight = software_parameters(n, system.box(), {3.6, 3.8});
  EwaldCoulomb reference(tight, system.box());
  std::vector<Vec3> ref(system.size());
  evaluate_forces(reference, system, ref);
  double ref_rms = 0.0;
  for (const auto& f : ref) ref_rms += norm2(f);

  std::printf("Coulomb solver comparison, molten NaCl, N = %zu "
              "(reference: converged Ewald, s1=3.6 s2=3.8)\n\n",
              system.size());

  obs::BenchReport report("methods_comparison");
  AsciiTable table("accuracy vs cost");
  table.set_header({"method", "rms rel. force error", "s/eval",
                    "model flops/step @ N=1.88e7"});

  auto measure = [&](ForceField& field) {
    std::vector<Vec3> forces(system.size());
    Timer timer;
    evaluate_forces(field, system, forces);
    const double t = timer.seconds();
    double err = 0.0;
    for (std::size_t i = 0; i < system.size(); ++i)
      err += norm2(forces[i] - ref[i]);
    return std::pair{std::sqrt(err / ref_rms), t};
  };

  const double paper_n = 18821096.0;
  const double paper_box = 850.0;
  {
    const auto params = software_parameters(n, system.box());  // paper acc.
    EwaldCoulomb ewald(params, system.box());
    const auto [err, t] = measure(ewald);
    const auto flops = ewald_step_flops(
        paper_n, paper_box,
        parameters_from_alpha(balanced_alpha(paper_n), paper_box));
    table.add_row({"exact Ewald (paper accuracy)", format_sci(err, 2),
                   format_fixed(t, 3), format_sci(flops.total_host(), 2)});
    report.add("ewald.rms_rel_error", err, "rel");
    report.add("ewald.s_per_eval", t, "s");
    report.add("ewald.model_flops_per_step", flops.total_host(),
               "flops_model");
  }
  const auto params = software_parameters(n, system.box());
  for (const auto& [grid, order] :
       {std::pair{16, 4}, {32, 4}, {32, 6}, {64, 6}}) {
    SmoothPme pme({params.alpha, params.r_cut, grid, order}, system.box());
    const auto [err, t] = measure(pme);
    // Model at paper scale: real part 59 N N_int + mesh flops with the
    // grid scaled to keep the same mesh density per particle (no need to
    // allocate the paper-sized mesh; the estimate is closed-form).
    const double scale = std::cbrt(paper_n / n);
    const double paper_k =
        std::pow(2.0, std::ceil(std::log2(grid * scale)));
    const double k3 = paper_k * paper_k * paper_k;
    const double p3 = double(order) * order * order;
    const auto flops = ewald_step_flops(
        paper_n, paper_box,
        parameters_from_alpha(balanced_alpha(paper_n), paper_box));
    const double model = flops.real_host + 2.0 * paper_n * p3 * 10.0 +
                         10.0 * k3 * std::log2(k3);
    char name[64];
    std::snprintf(name, sizeof name, "smooth PME %d^3, order %d", grid,
                  order);
    table.add_row({name, format_sci(err, 2), format_fixed(t, 3),
                   format_sci(model, 2)});
    const std::string prefix = "pme" + std::to_string(grid) + "_o" +
                               std::to_string(order) + ".";
    report.add(prefix + "rms_rel_error", err, "rel");
    report.add(prefix + "s_per_eval", t, "s");
    report.add(prefix + "model_flops_per_step", model, "flops_model");
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Shape: at matched accuracy (~1e-3, set by the shared "
              "real-space truncation) the mesh reciprocal part is ~100x "
              "cheaper than the exact wavenumber sum at the paper's N, "
              "halving the total (the remaining cost is the shared erfc "
              "part, which shrinks if alpha is re-optimized for the cheap "
              "mesh: the O(N^1.5) -> O(N log N) scaling of refs. [2-5]). "
              "The MDM answer (sec. 6.3) is that its pipelines accelerate "
              "those methods too; see bench_treecode.\n");
  report.write();
  return 0;
}
