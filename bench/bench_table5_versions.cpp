/// \file bench_table5_versions.cpp
/// Regenerates the paper's Table 5 (current vs future MDM) and appends the
/// model's predicted per-step timings for both machines on the paper
/// workload.

#include <cstdio>
#include <string>

#include "obs/bench_report.hpp"
#include "perf/table4.hpp"
#include "perf/table5.hpp"

int main() {
  using namespace mdm;
  using namespace mdm::perf;

  std::printf("%s\n", table5_paper().str().c_str());

  const PaperWorkload w;
  AsciiTable t("Model-predicted step time on the paper workload "
               "(N = 18,821,096)");
  t.set_header({"Machine", "alpha*", "flops/step", "predicted s/step",
                "paper s/step"});
  struct Row {
    MachineModel machine;
    double paper_seconds;
  };
  obs::BenchReport report("table5_versions");
  for (const auto& [machine, paper_seconds] :
       {Row{MachineModel::mdm_current(), kMeasuredSecondsPerStep},
        Row{MachineModel::mdm_future(), kFutureSecondsPerStep}}) {
    const double alpha = optimal_alpha(machine, w.n_particles, w.accuracy);
    const auto params = parameters_from_alpha(alpha, w.box, w.accuracy);
    const auto flops = ewald_step_flops(w.n_particles, w.box, params);
    const auto timing = predict_step(machine, w.n_particles, w.box, params);
    t.add_row({machine.name, format_fixed(alpha, 1),
               format_sci(flops.total_grape(), 3),
               format_fixed(timing.total_seconds(), 2),
               format_fixed(paper_seconds, 2)});
    const std::string prefix = std::string(machine.name) + ".";
    report.add(prefix + "alpha", alpha, "1");
    report.add(prefix + "predicted_s_per_step", timing.total_seconds(), "s");
    report.add(prefix + "paper_s_per_step", paper_seconds, "s");
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("The current-machine prediction uses only chip counts and the "
              "paper's Table-5 efficiencies; the measured 43.8 s/step is "
              "matched within ~1.5x with no fitted inputs.\n");
  report.write();
  return 0;
}
